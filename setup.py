"""Legacy setuptools shim.

Kept so ``pip install -e .`` works on environments without the
``wheel`` package (PEP 660 editable builds need it; the legacy
``setup.py develop`` path does not).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
