#!/usr/bin/env python
"""The full SIP pipeline on the vision applications (paper Section 5.3).

Walks through every stage the paper's prototype performs, making the
intermediate artifacts visible:

1. profile MSER on a sample image (the *train* input set);
2. inspect the per-instruction Class 1/2/3 histograms;
3. compile the instrumentation plan (Table 2's 54 points for MSER);
4. run on different images (the *ref* input set) under baseline, SIP,
   DFP and the hybrid — and do the same for SIFT, whose profile
   correctly yields zero instrumentation points.

Run:  python examples/vision_pipeline.py
"""

from repro import (
    SimConfig,
    build_sip_plan,
    build_workload,
    improvement_pct,
    profile_workload,
    simulate,
)
from repro.analysis.report import format_table

SCALE = 16


def show_profile(profile, top=6):
    sites = sorted(
        profile.instructions.values(),
        key=lambda p: p.irregular_ratio,
        reverse=True,
    )
    rows = [
        [p.name, p.total, f"{p.class1}", f"{p.class2}", f"{p.class3}",
         f"{p.irregular_ratio:.1%}"]
        for p in sites[:top]
        if p.total
    ]
    print(
        format_table(
            ["instruction", "accesses", "C1", "C2", "C3", "irregular"],
            rows,
            title=f"top {top} sites of {profile.workload} by irregular ratio",
        )
    )


def evaluate(name: str, config: SimConfig) -> None:
    workload = build_workload(name, scale=SCALE)
    print(f"\n=== {name} "
          f"({workload.footprint_pages / config.epc_pages:.1f}x the EPC) ===")

    # 1-2. profile on the sample image.
    profile = profile_workload(workload, config, input_set="train")
    show_profile(profile)

    # 3. compile the plan at the paper's 5% threshold.
    plan = build_sip_plan(profile, config.sip_threshold)
    print(f"\nSIP pass: {plan.instrumentation_points} instrumentation "
          f"point(s) at threshold {plan.threshold:.0%}")

    # 4. measure on the ref input.
    base = simulate(workload, config, "baseline")
    rows = []
    for scheme in ("sip", "dfp-stop", "hybrid"):
        result = simulate(workload, config, scheme, sip_plan=plan)
        rows.append(
            [scheme, f"{improvement_pct(result, base):+.1f}%",
             f"{result.stats.faults:,} vs {base.stats.faults:,}"]
        )
    print()
    print(format_table(["scheme", "improvement", "faults (vs baseline)"], rows))


def main() -> None:
    config = SimConfig.scaled(SCALE)
    for name in ("MSER", "SIFT", "mixed-blood"):
        evaluate(name, config)
    print(
        "\nPaper reference points: SIFT +9.5% (DFP), MSER +3.0% (SIP),\n"
        "mixed-blood SIP +1.6% / DFP +6.0% / hybrid +7.1%."
    )


if __name__ == "__main__":
    main()
