#!/usr/bin/env python
"""Observability tour: metrics, a Perfetto trace, and a manifest diff.

One DFP-stop run of lbm is observed three ways at once:

* a :class:`~repro.obs.metrics.MetricsRegistry` collects every layer's
  counters (driver, DFP engine, predictor, EPC) with zero effect on
  the simulated outcome;
* a bounded :class:`~repro.obs.trace.RingBufferSink` captures the
  timeline, which is then exported in Chrome ``trace_event`` format —
  open the file at https://ui.perfetto.dev to see the app, channel and
  scan tracks;
* run manifests for the baseline and DFP-stop runs are diffed with
  :func:`~repro.obs.diff.diff_manifests` — the same cycle-attribution
  report ``repro report`` prints.

Run:  python examples/trace_capture.py
Artifacts land in the current directory (trace_capture.trace.json).
"""

from repro import SimConfig, build_workload, simulate
from repro.analysis.report import format_table
from repro.obs.chrome import validate_chrome_trace, write_chrome_trace
from repro.obs.diff import diff_manifests, render_diff
from repro.obs.manifest import build_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import RingBufferSink

SCALE = 16
WORKLOAD = "lbm"
TRACE_PATH = "trace_capture.trace.json"


def main() -> None:
    config = SimConfig.scaled(SCALE)
    workload = build_workload(WORKLOAD, scale=SCALE)

    # Observe a DFP-stop run: metrics registry + bounded event capture.
    metrics = MetricsRegistry()
    capture = RingBufferSink(1 << 18)
    observed = simulate(
        workload, config, "dfp-stop", metrics=metrics, tracer=capture
    )
    blind = simulate(workload, config, "dfp-stop")
    assert observed == blind, "observability must never change the outcome"

    picks = (
        "fault.count",
        "preload.completed",
        "preload.accessed",
        "abort.in_stream",
        "dfp.stream_hits",
        "dfp.stream_misses",
        "time.fault_wait_cycles",
    )
    dump = metrics.as_dict()
    print(
        format_table(
            ["metric", "value"],
            [[name, f"{dump[name]:,}"] for name in picks],
            title=f"{WORKLOAD} [dfp-stop]: selected metrics",
        )
    )
    hist = dump["fault.wait_hist"]
    print(
        f"\nfault-wait histogram: {hist['count']:,} waits, "
        f"{hist['sum']:,} cycles total (reconciles with the "
        f"fault_wait bucket: {observed.stats.time.fault_wait:,})"
    )

    # Export the timeline for Perfetto and sanity-check the document.
    records = write_chrome_trace(TRACE_PATH, capture.events)
    import json

    counts = validate_chrome_trace(json.loads(open(TRACE_PATH).read()))
    print(
        f"\nwrote {records:,} trace records to {TRACE_PATH} "
        f"({counts['tracks']} tracks, {counts['complete']:,} spans, "
        f"{counts['instant']:,} instants) — open it in ui.perfetto.dev"
    )

    # Manifest the baseline too, and attribute the improvement.
    base = simulate(workload, config, "baseline")
    print()
    print(
        render_diff(
            diff_manifests(build_manifest(base), build_manifest(observed))
        )
    )


if __name__ == "__main__":
    main()
