#!/usr/bin/env python
"""Bring your own workload: model, classify, tune, decide.

The library is not limited to the paper's benchmarks — any page-level
access behaviour can be assembled from the synthetic generators.  This
example models a hypothetical key-value store inside an enclave:

* a log segment written sequentially (stream),
* a hash index probed irregularly with a hot head (Zipf),
* periodic compaction scans.

It then runs the paper's decision pipeline on it: classify the
behaviour (Table 1 style), sweep LOADLENGTH for the DFP side
(Figure 7 style), compile a SIP plan, and report which scheme this
application should ship with.

Run:  python examples/custom_workload.py
"""

from repro import SimConfig, improvement_pct, prepare_sip_plan, simulate
from repro.analysis.patterns import classify_benchmark
from repro.analysis.report import format_table, render_series
from repro.workloads.base import SyntheticWorkload
from repro.workloads.synthetic import (
    interleave_phases,
    sequential,
    uniform_random,
    zipf_random,
)

SCALE = 16
EPC_FULL = 24_576


def make_kv_store() -> SyntheticWorkload:
    epc = EPC_FULL // SCALE
    log_pages = int(epc * 1.2)
    index_pages = int(epc * 0.8)
    footprint = log_pages + index_pages
    instructions = {
        0: "append(): log segment write",
        1: "get(): index probe (hot head)",
        2: "get(): index probe (cold chain)",
        3: "compact(): segment scan",
    }
    body = interleave_phases(
        [
            sequential(0, 0, log_pages, compute=4_000, jitter=600, passes=2, salt=1),
            zipf_random(
                [1], log_pages, log_pages + index_pages // 2, 24_000,
                alpha=1.1, compute=4_000, jitter=600, salt=2,
            ),
            uniform_random(
                [2], log_pages + index_pages // 2, footprint, 3_000,
                compute=4_000, jitter=600, run_length=(1, 2),
                multi_run_prob=0.2, salt=3,
            ),
        ],
        chunk=[2, 8, 1],
        salt=4,
    )
    compaction = sequential(
        3, 0, log_pages, compute=3_000, jitter=500, passes=1, salt=5
    )
    return SyntheticWorkload("kv-store", footprint, instructions, [body, compaction])


def main() -> None:
    config = SimConfig.scaled(SCALE)
    workload = make_kv_store()

    kind, summary = classify_benchmark(workload, config)
    print(f"workload:        {workload.name}")
    print(f"classification:  {kind.value}")
    print(f"stream coverage: {summary.stream_coverage:.2f}")

    # Figure 7-style LOADLENGTH sweep.
    base = simulate(workload, config, "baseline")
    sweep = []
    for load_length in (1, 2, 4, 8, 16):
        result = simulate(
            workload, config.replace(load_length=load_length), "dfp-stop"
        )
        sweep.append((load_length, result.total_cycles / base.total_cycles))
    print()
    print(render_series({"dfp-stop": sweep},
                        title="LOADLENGTH sweep (normalized time)"))

    # SIP plan and the final scheme comparison.
    plan = prepare_sip_plan(workload, config)
    print(f"\nSIP pass: {plan.instrumentation_points} instrumentation points")
    rows = []
    for scheme in ("dfp-stop", "sip", "hybrid"):
        result = simulate(workload, config, scheme, sip_plan=plan)
        rows.append([scheme, f"{improvement_pct(result, base):+.1f}%"])
    print()
    print(format_table(["scheme", "improvement"], rows,
                       title="scheme comparison for kv-store"))
    best = max(rows, key=lambda r: float(r[1].rstrip("%")))
    print(f"\nrecommendation: ship with {best[0]} ({best[1]}).")


if __name__ == "__main__":
    main()
