#!/usr/bin/env python
"""A SPEC-style evaluation campaign, like the paper's Section 5.

Runs the large-working-set SPEC CPU2017 models under baseline, DFP
(with and without the abort valve) and — for the C/C++ benchmarks —
SIP and the hybrid; prints a combined Figure 8 + Figure 10 style
summary with the Table 1 classification alongside.

Run:  python examples/spec_campaign.py [scale]
"""

import sys

from repro import (
    CPP_BENCHMARKS,
    LARGE_IRREGULAR,
    LARGE_REGULAR,
    SimConfig,
    build_workload,
    compare_schemes,
    improvement_pct,
)
from repro.analysis.patterns import classify_benchmark
from repro.analysis.report import format_table


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    config = SimConfig.scaled(scale)
    rows = []
    for name in LARGE_REGULAR + LARGE_IRREGULAR:
        workload = build_workload(name, scale=scale)
        kind, _summary = classify_benchmark(workload, config)
        schemes = ["baseline", "dfp", "dfp-stop"]
        sip_capable = name in CPP_BENCHMARKS
        if sip_capable:
            schemes += ["sip", "hybrid"]
        results = compare_schemes(workload, config, schemes)
        base = results["baseline"]

        def gain(scheme):
            if scheme not in results:
                return "n/a"
            return f"{improvement_pct(results[scheme], base):+.1f}%"

        rows.append(
            [
                name,
                kind.value.replace("large working set, ", "").replace(
                    " access", ""
                ),
                f"{base.fault_overhead_fraction:.0%}",
                gain("dfp"),
                gain("dfp-stop"),
                gain("sip"),
                gain("hybrid"),
            ]
        )
        print(f"  done: {name}")

    print()
    print(
        format_table(
            ["benchmark", "class", "fault time", "DFP", "DFP-stop", "SIP",
             "hybrid"],
            rows,
            title=(
                f"SPEC campaign at scale {scale} "
                f"(EPC = {config.epc_pages:,} pages). "
                "SIP columns show n/a for the Fortran benchmarks and "
                "omnetpp, which the paper's toolchain cannot instrument."
            ),
        )
    )


if __name__ == "__main__":
    main()
