#!/usr/bin/env python
"""Quickstart: one benchmark, all five schemes.

Builds the ``lbm`` workload model (a stencil code with a footprint 3x
the usable EPC), runs it under every scheme the paper evaluates, and
prints the normalized results — the 60-second tour of the library.

Run:  python examples/quickstart.py
"""

from repro import (
    SimConfig,
    build_workload,
    compare_schemes,
    improvement_pct,
)
from repro.analysis.report import format_table

#: Scale the 96 MB EPC (and the workload footprints) down 16x so the
#: whole example runs in seconds; all results are normalized, so the
#: relative behaviour matches the full-scale system.
SCALE = 16


def main() -> None:
    config = SimConfig.scaled(SCALE)
    workload = build_workload("lbm", scale=SCALE)

    print(f"workload:  {workload.name}, {workload.footprint_pages:,} pages")
    print(f"EPC:       {config.epc_pages:,} pages "
          f"({workload.footprint_pages / config.epc_pages:.1f}x oversubscribed)")
    print("running baseline, DFP, DFP-stop, SIP and hybrid ...\n")

    results = compare_schemes(
        workload, config, ["baseline", "dfp", "dfp-stop", "sip", "hybrid"]
    )
    base = results["baseline"]

    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                f"{result.total_cycles:,}",
                f"{result.total_cycles / base.total_cycles:.3f}",
                f"{improvement_pct(result, base):+.1f}%",
                f"{result.stats.faults:,}",
                f"{result.stats.preloads_completed:,}",
                f"{result.stats.sip_loads:,}",
            ]
        )
    print(
        format_table(
            ["scheme", "cycles", "normalized", "improvement", "faults",
             "preloads", "SIP loads"],
            rows,
        )
    )
    print()
    print("lbm is stream-dominated: DFP eliminates most faults by riding")
    print("the multi-stream predictor; SIP finds nothing to instrument")
    print("(its one boundary-handling site is below the 5% threshold).")


if __name__ == "__main__":
    main()
