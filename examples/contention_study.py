#!/usr/bin/env python
"""EPC contention between enclaves (paper Section 5.6, made runnable).

The paper's discussion: EPC sharing keeps the total EPC fixed, each
enclave receives a smaller effective portion, contention becomes "a
serious issue", and fairness is future work.  This example runs a
streaming enclave (lbm) against an irregular one (deepsjeng) on one
shared EPC and shows all of it — including the fairness problem the
paper defers: preloading helps its own enclave while *exporting* wait
time to the neighbour through the exclusive page-load channel.

Run:  python examples/contention_study.py
"""

from repro import FleetScenario, SimConfig, TenantSpec, build_workload, simulate, simulate_fleet
from repro.analysis.report import format_table

SCALE = 16
PAIR = ("lbm", "deepsjeng")


def main() -> None:
    config = SimConfig.scaled(SCALE)
    workloads = [build_workload(name, scale=SCALE) for name in PAIR]

    def shared(schemes):
        scenario = FleetScenario(
            name="contention-study",
            tenants=tuple(
                TenantSpec(workload=w, scheme=s)
                for w, s in zip(workloads, schemes)
            ),
            config=config,
        )
        return simulate_fleet(scenario).results

    solo = {wl.name: simulate(wl, config, "baseline") for wl in workloads}
    shared_base = shared(["baseline", "baseline"])
    lbm_dfp = shared(["dfp-stop", "baseline"])
    both = shared(["dfp-stop", "sip"])

    def rows_for(label, results):
        rows = []
        for i, name in enumerate(PAIR):
            result = results[i]
            rows.append(
                [
                    f"{name} [{result.scheme}]",
                    label,
                    f"{result.total_cycles / solo[name].total_cycles:.2f}x",
                    f"{result.stats.faults:,}",
                    f"{result.stats.time.overhead / 1e6:,.0f}M",
                ]
            )
        return rows

    table = format_table(
        ["enclave", "configuration", "vs solo", "faults", "non-compute"],
        rows_for("shared, no preloading", shared_base)
        + rows_for("shared, lbm runs DFP", lbm_dfp)
        + rows_for("shared, both schemes", both),
        title=f"EPC contention study (scale {SCALE}, shared {config.epc_pages:,}-page EPC)",
    )
    print(table)
    print()
    print("Reading the table:")
    print(" * row pair 1: frame contention alone slows both enclaves;")
    print(" * row pair 2: DFP restores lbm almost to its solo time — but its")
    print("   bursts monopolize the exclusive load channel and deepsjeng's")
    print("   waits explode (the fairness problem Section 5.6 defers);")
    print(" * row pair 3: deepsjeng's SIP removes most of its faults, yet")
    print("   each remaining load still queues behind the streamer.")


if __name__ == "__main__":
    main()
