#!/usr/bin/env python
"""Calibration harness: paper targets vs current model behaviour.

Runs every workload under every scheme at a reduced scale and prints
the improvement percentages next to the paper's reported numbers, plus
the SIP instrumentation-point counts next to Table 2.  Used while
tuning the workload models; not part of the test suite.

Usage: python tools/calibrate.py [scale] [workload ...]
"""

from __future__ import annotations

import sys
import time

from repro import (
    CPP_BENCHMARKS,
    SimConfig,
    build_workload,
    compare_schemes,
    improvement_pct,
    prepare_sip_plan,
)

# Paper-reported improvements (positive = faster than baseline).
PAPER_DFP = {
    "microbenchmark": 18.6,
    "lbm": 13.3,
    "bwaves": 9.0,
    "wrf": 8.0,
    "mcf": -34.0,
    "deepsjeng": -34.0,
    "roms": -42.0,
    "omnetpp": -20.0,
    "SIFT": 9.5,
    "mixed-blood": 6.0,
}
PAPER_DFP_STOP = {
    "deepsjeng": 0.0,
    "roms": -0.1,
    "mcf": 0.0,
    "omnetpp": 0.0,
}
PAPER_SIP = {
    "deepsjeng": 9.0,
    "mcf.2006": 4.9,
    "mcf": 0.0,
    "lbm": 0.0,
    "microbenchmark": 0.0,
    "MSER": 3.0,
    "mixed-blood": 1.6,
}
PAPER_HYBRID = {
    "mixed-blood": 7.1,
}
PAPER_POINTS = {
    "mcf.2006": 114,
    "mcf": 99,
    "xz": 46,
    "deepsjeng": 35,
    "lbm": 0,
    "MSER": 54,
    "SIFT": 0,
    "microbenchmark": 0,
}

DEFAULT_WORKLOADS = [
    "microbenchmark",
    "bwaves",
    "lbm",
    "wrf",
    "roms",
    "mcf",
    "mcf.2006",
    "deepsjeng",
    "omnetpp",
    "xz",
    "SIFT",
    "MSER",
    "mixed-blood",
]


def main() -> None:
    args = sys.argv[1:]
    scale = int(args[0]) if args else 16
    names = args[1:] or DEFAULT_WORKLOADS
    config = SimConfig.scaled(scale)
    print(
        f"scale={scale}  epc={config.epc_pages} pages  "
        f"valve_slack={config.valve_slack}  scan={config.scan_period_cycles}"
    )
    header = (
        f"{'workload':<15} {'accesses':>9} {'fault%':>7} "
        f"{'dfp':>7} {'(paper)':>8} {'dfpstop':>8} {'sip':>7} {'(paper)':>8} "
        f"{'hybrid':>7} {'pts':>4} {'(paper)':>7} {'secs':>6}"
    )
    print(header)
    print("-" * len(header))
    for name in names:
        t0 = time.time()
        wl = build_workload(name, scale=scale)
        sip_ok = name in CPP_BENCHMARKS or name == "mixed-blood"
        schemes = ["baseline", "dfp", "dfp-stop"]
        plan = None
        if sip_ok:
            plan = prepare_sip_plan(wl, config)
            schemes += ["sip", "hybrid"]
        runs = compare_schemes(wl, config, schemes, sip_plan=plan)
        base = runs["baseline"]
        dfp = improvement_pct(runs["dfp"], base)
        stop = improvement_pct(runs["dfp-stop"], base)
        sip = improvement_pct(runs["sip"], base) if sip_ok else float("nan")
        hyb = improvement_pct(runs["hybrid"], base) if sip_ok else float("nan")
        pts = plan.instrumentation_points if plan else 0
        fault_share = base.stats.time.overhead / base.total_cycles * 100
        print(
            f"{name:<15} {base.stats.accesses:>9,} {fault_share:>6.1f}% "
            f"{dfp:>6.1f}% {PAPER_DFP.get(name, float('nan')):>7.1f}% "
            f"{stop:>7.1f}% "
            f"{sip:>6.1f}% {PAPER_SIP.get(name, float('nan')):>7.1f}% "
            f"{hyb:>6.1f}% {pts:>4} {PAPER_POINTS.get(name, -1):>7} "
            f"{time.time() - t0:>5.1f}s"
        )


if __name__ == "__main__":
    main()
