#!/usr/bin/env python
"""Chaos smoke: kill a checkpointed sweep, resume it, demand identity.

The CI-facing end-to-end proof of the resilience layer
(:mod:`repro.robust`).  Five phases:

1. **Reference** — an uninterrupted serial sweep; its manifests are
   the ground truth.
2. **Chaos leg** — the same sweep under a hostile
   :class:`~repro.robust.FaultPlan` (worker crashes, a hang past the
   timeout, a corrupted result, a transient submission error) with a
   retry budget; it must survive every injected fault and reproduce
   the reference manifests byte for byte.
3. **Kill** — the sweep again, checkpointing to disk, with a scripted
   crash and no retry budget: it must die partway, leaving a partial
   checkpoint directory.
4. **Resume** — ``repro sweep --checkpoint DIR --resume`` (through the
   real CLI) finishes the job; every checkpoint record must then be
   byte-identical to a manifest of the reference run.
5. **Observed chaos** — the phase-2 sweep again with execution
   telemetry collecting (worker-shipped metrics on): observation must
   be passive (manifests still byte-identical to the reference), the
   collector's fault/retry tallies must match the scripted
   ``CHAOS_PLAN``, and the fleet manifest plus per-worker Chrome exec
   trace written to the artifact directory must both validate.

Exit status is non-zero on any mismatch; a JSON report and the
checkpoint records are left in the artifact directory for upload.

Usage: python tools/chaos_smoke.py [--artifact-dir DIR] [--scale N]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cli import main as repro_main
from repro.core.config import SimConfig
from repro.errors import JobRetriesExhaustedError
from repro.obs import (
    ExecTelemetry,
    TelemetryConfig,
    build_fleet_manifest,
    load_manifest,
    validate_chrome_trace,
    write_chrome_trace,
    write_manifest,
)
from repro.obs.manifest import build_manifest
from repro.robust import (
    CheckpointStore,
    ExecutionPolicy,
    FaultKind,
    FaultPlan,
    RetryPolicy,
)
from repro.sim.parallel import WorkloadSpec
from repro.sim.sweep import sweep_config

WORKLOAD = "microbenchmark"
PARAM = "load_length"
#: Six sweep points, one scheme — the same experiment ``repro sweep``
#: spells, so the CLI resume in phase 4 completes phase 3's records.
VALUES = (1, 2, 3, 4, 6, 8)
SCHEME = "dfp-stop"

#: Every fault class the runner must survive, scripted onto distinct
#: (job_index, attempt) coordinates of the 6-job sweep.
CHAOS_PLAN = FaultPlan.script(
    {
        (0, 1): FaultKind.CRASH,
        (2, 1): FaultKind.HANG,
        (3, 1): FaultKind.CORRUPT,
        (4, 1): FaultKind.SUBMIT_ERROR,
    },
    hang_s=30.0,
)


def sweep_points(scale, policy=None, telemetry=None):
    base = SimConfig.scaled(scale)
    configs = [base.replace(**{PARAM: value}) for value in VALUES]
    return sweep_config(
        WorkloadSpec(WORKLOAD, scale),
        configs,
        [SCHEME],
        values=list(VALUES),
        policy=policy,
        telemetry=telemetry,
    )


def manifest_blobs(points):
    """Canonical manifest serialization of every sweep point's run."""
    return [
        json.dumps(
            build_manifest(point.results[SCHEME]), sort_keys=True, indent=2
        )
        + "\n"
        for point in points
    ]


def check(report, name, ok, detail=""):
    report["checks"].append({"name": name, "ok": bool(ok), "detail": detail})
    status = "ok" if ok else "FAIL"
    print(f"[chaos-smoke] {name}: {status}{' - ' + detail if detail else ''}")
    return bool(ok)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifact-dir", default="chaos-artifacts")
    parser.add_argument("--scale", type=int, default=64)
    args = parser.parse_args(argv)

    artifacts = Path(args.artifact_dir)
    artifacts.mkdir(parents=True, exist_ok=True)
    ckpt = artifacts / "checkpoints"
    report = {"checks": []}
    ok = True

    # Phase 1: ground truth.
    reference = sweep_points(args.scale)
    reference_blobs = manifest_blobs(reference)

    # Phase 2: survive every fault class, reproduce the bytes.
    chaos_policy = ExecutionPolicy(
        jobs=2,
        retry=RetryPolicy(max_attempts=3, base_delay=0.01),
        timeout=5.0,
        fault_plan=CHAOS_PLAN,
    )
    chaos = sweep_points(args.scale, policy=chaos_policy)
    ok &= check(
        report,
        "chaos leg is byte-identical to the reference",
        manifest_blobs(chaos) == reference_blobs,
        "faults injected: crash, hang, corrupt, submit-error",
    )

    # Phase 3: kill the checkpointed sweep partway (no retry budget).
    kill_policy = ExecutionPolicy(
        checkpoint_dir=ckpt,
        fault_plan=FaultPlan.script({(4, 1): FaultKind.CRASH}),
    )
    died = False
    try:
        sweep_points(args.scale, policy=kill_policy)
    except JobRetriesExhaustedError as exc:
        died = True
        report["kill"] = str(exc)
    survivors = len(CheckpointStore(ckpt))
    ok &= check(report, "scripted kill interrupts the sweep", died)
    ok &= check(
        report,
        "partial checkpoints survive the kill",
        0 < survivors < len(VALUES),
        f"{survivors} of {len(VALUES)} records",
    )

    # Phase 4: resume through the real CLI.
    exit_code = repro_main(
        [
            "sweep", WORKLOAD,
            "--param", PARAM,
            "--values", ",".join(str(v) for v in VALUES),
            "--scheme", SCHEME,
            "--scale", str(args.scale),
            "--jobs", "2",
            "--checkpoint", str(ckpt),
            "--resume",
        ]
    )
    ok &= check(report, "CLI resume exits cleanly", exit_code == 0)

    store = CheckpointStore(ckpt)
    ok &= check(
        report,
        "resume completes the record set",
        len(store) == len(VALUES),
        f"{len(store)} records",
    )
    expected = set(reference_blobs)
    actual = {store.path_for(key).read_text() for key in store.keys()}
    ok &= check(
        report,
        "resumed checkpoint records are byte-identical to the reference",
        actual == expected,
    )

    # Phase 5: the chaos leg again, observed — telemetry must be
    # passive, tally the scripted faults, and export validating
    # fleet-manifest and Chrome-trace artifacts.
    telemetry = ExecTelemetry(TelemetryConfig(metrics=True))
    observed = sweep_points(args.scale, policy=chaos_policy, telemetry=telemetry)
    ok &= check(
        report,
        "observed chaos leg is byte-identical to the reference",
        manifest_blobs(observed) == reference_blobs,
        "telemetry collection is passive",
    )
    kinds = [kind for _, kind in CHAOS_PLAN.scripted]
    # A submit-error is absorbed at dispatch without burning the job's
    # attempt budget, so it injects a fault but not a retry; every
    # other scripted fault costs one attempt (the hang via a timeout).
    expected_retries = sum(
        1 for kind in kinds if kind is not FaultKind.SUBMIT_ERROR
    )
    expected_timeouts = sum(1 for kind in kinds if kind is FaultKind.HANG)
    ok &= check(
        report,
        "telemetry tallies match the scripted fault plan",
        telemetry.total_faults == len(kinds)
        and telemetry.total_retries == expected_retries
        and telemetry.total_timeouts == expected_timeouts
        and telemetry.submit_errors == 1,
        f"faults={telemetry.total_faults} retries={telemetry.total_retries} "
        f"timeouts={telemetry.total_timeouts} "
        f"submit_errors={telemetry.submit_errors}",
    )

    fleet_path = artifacts / "chaos_fleet.manifest.json"
    write_manifest(
        fleet_path,
        build_fleet_manifest(
            [point.results[SCHEME] for point in observed],
            telemetry=telemetry,
            labels=list(VALUES),
        ),
    )
    try:
        fleet = load_manifest(fleet_path)  # validates both schemas
        fleet_ok = fleet["run"]["runs"] == len(VALUES)
        fleet_detail = f"{fleet_path}"
    except Exception as exc:  # pragma: no cover - failure path
        fleet_ok, fleet_detail = False, str(exc)
    ok &= check(report, "fleet manifest validates", fleet_ok, fleet_detail)

    trace_path = artifacts / "chaos_exec.trace.json"
    write_chrome_trace(trace_path, [], exec_spans=telemetry.spans)
    try:
        counts = validate_chrome_trace(json.loads(trace_path.read_text()))
        trace_ok = counts["tracks"] >= 2  # exec-runner + worker lane(s)
        trace_detail = f"{counts['tracks']} tracks, {trace_path}"
    except Exception as exc:  # pragma: no cover - failure path
        trace_ok, trace_detail = False, str(exc)
    ok &= check(report, "chrome exec trace validates", trace_ok, trace_detail)

    report["ok"] = bool(ok)
    (artifacts / "chaos_report.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print(f"[chaos-smoke] report -> {artifacts / 'chaos_report.json'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
