#!/usr/bin/env python
"""Performance harness for the simulation hot path.

Measures four things and writes them to ``BENCH_perf.json`` so every
future PR has a perf trajectory to compare against:

* ``engine`` — steady-state :func:`repro.sim.engine.simulate`
  throughput per scheme (runs/sec and accesses/sec) over a warm
  materialized trace, measured through *both* hot-loop engines: the
  per-event scalar walk and the batched event-horizon engine.  The
  harness asserts the two results equal per scheme, reports both
  legs plus the batched speedup, and publishes the *faster* leg as
  the scheme's headline numbers (``headline_engine`` names it) — on
  some hosts the batched engine loses to the scalar walk for a
  scheme, and headlining the loser would let ``--compare`` gate
  against a figure nobody should ship.  With ``--profile-out PATH``
  it additionally cProfiles the batched hot loop and dumps the
  pstats data as a CI artifact.
* ``trace_cache`` — one simulate comparison run twice, with the trace
  regenerated per run (pre-PR behaviour) and replayed from one
  materialized copy; reports both runs/sec figures and the gain.
* ``profiling`` — the same hot loop run blind and then with a
  :class:`repro.obs.paging.PagingProfiler` attached: both runs/sec
  figures and the overhead factor of the per-access ledger hooks.
  The harness asserts the profiled run's result equals the blind
  run's (the profiler's passivity contract) before reporting.
* ``sweep`` — wall-clock of a 5-point, 2-scheme ``LOADLENGTH`` sweep.
  The *reference* leg replicates the pre-PR serial driver's cost
  model point by point — a full profiling run and plan compilation
  per point, a fresh generator walk per scheme run, no caches — and
  the *optimized* leg is ``sweep_config`` under an
  ``ExecutionPolicy(jobs=N)``.  Both legs
  run the same experiment (plans compile once per (workload, seed,
  threshold) — a compile-time artifact — so the reference profiles
  against the sweep's first configuration) and the harness asserts
  their results are equal before reporting the speedup.

With ``--compare OLD.json`` the harness additionally gates against a
previous snapshot (typically the committed ``BENCH_perf.json``): after
measuring, it prints an old-vs-new table for the engine per-scheme
throughput, the trace-cache figures and the sweep speedup, and exits
nonzero when any figure regressed by more than ``--compare-tolerance``
(a fraction; default 0.5, i.e. new may not fall below half of old —
wide because CI machines are noisy, tight enough to catch a lost
fast path).

Usage: python tools/perf_bench.py [--quick] [--jobs N] [--out PATH]
       [--compare OLD.json] [--compare-tolerance FRAC]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.config import SimConfig
from repro.core.instrumentation import build_sip_plan
from repro.core.profiler import profile_workload
from repro.obs.exec_telemetry import ExecTelemetry, SpanKind
from repro.obs.paging import PagingProfiler
from repro.robust import ExecutionPolicy
from repro.sim.engine import prepare_sip_plan, simulate
from repro.sim.parallel import WorkloadSpec
from repro.sim.sweep import SIP_SCHEMES, sweep_config
from repro.sim.tracecache import TraceCache, shared_trace_cache

#: Engine-throughput and trace-cache legs use the paper's dilemma
#: benchmark: realistic fault mix, RNG-heavy generator.
HOT_WORKLOAD = "mcf"

#: Sweep leg: a small-working-set workload, where the driver machinery
#: (profiling, plan compilation, trace generation) dominates the
#: per-run cost — the overhead this PR removes.
SWEEP_WORKLOAD = "leela"

SWEEP_VALUES = (1, 2, 4, 6, 8)
SWEEP_SCHEMES = ("dfp-stop", "sip")

ENGINE_SCHEMES = ("baseline", "dfp", "dfp-stop", "sip", "hybrid")


def pick_headline(legs: dict) -> str:
    """Name of the faster engine leg by runs/sec.

    Ties go to ``batched`` — that is what ``engine="auto"`` runs, so
    it wins when the measurement cannot separate the two.
    """
    if legs["batched"]["runs_per_sec"] >= legs["scalar"]["runs_per_sec"]:
        return "batched"
    return "scalar"


def measure_engine(scale: int, repeats: int) -> dict:
    """Steady-state simulate() throughput per scheme, warm trace.

    Each scheme is timed through both hot-loop engines over the same
    materialized trace — ``engine="scalar"`` and ``engine="batched"``
    — and the two results are asserted equal (the batched engine's
    byte-identity contract) before either figure is reported.  The
    scheme's headline ``runs_per_sec``/``accesses_per_sec`` come from
    whichever leg measured faster, recorded as ``headline_engine`` —
    both legs always ship, so ``--compare`` gates the best figure
    while the per-leg rows keep the slower path from rotting.
    """
    config = SimConfig.scaled(scale)
    workload = WorkloadSpec(HOT_WORKLOAD, scale).build()
    trace = shared_trace_cache().get(workload, seed=0, input_set="ref")
    plan = prepare_sip_plan(workload, config)
    out = {}
    for scheme in ENGINE_SCHEMES:
        sip_plan = plan if scheme in SIP_SCHEMES else None
        legs = {}
        results = {}
        for engine in ("scalar", "batched"):
            simulate(
                workload, config, scheme, seed=0, sip_plan=sip_plan,
                trace=trace, engine=engine,
            )
            t0 = time.perf_counter()
            for _ in range(repeats):
                result = simulate(
                    workload, config, scheme, seed=0, sip_plan=sip_plan,
                    trace=trace, engine=engine,
                )
            elapsed = time.perf_counter() - t0
            results[engine] = result
            legs[engine] = {
                "seconds": round(elapsed, 4),
                "runs_per_sec": round(repeats / elapsed, 3),
                "accesses_per_sec": round(
                    repeats * result.stats.accesses / elapsed
                ),
            }
        assert results["batched"] == results["scalar"], (
            f"batched engine diverged from scalar on scheme {scheme!r}"
        )
        headline = pick_headline(legs)
        out[scheme] = {
            "runs": repeats,
            "seconds": legs[headline]["seconds"],
            "runs_per_sec": legs[headline]["runs_per_sec"],
            "accesses_per_sec": legs[headline]["accesses_per_sec"],
            "headline_engine": headline,
            "scalar": legs["scalar"],
            "batched": legs["batched"],
            "batched_speedup": round(
                legs["batched"]["runs_per_sec"] / legs["scalar"]["runs_per_sec"],
                3,
            ),
            "results_equal": True,
        }
    return out


def dump_engine_profile(path: str, scale: int, repeats: int) -> None:
    """cProfile the batched hot loop; dump pstats data to ``path``.

    The artifact answers "where do the remaining cycles go" after the
    bulk path: load it with ``pstats.Stats(path)`` (or snakeviz) and
    sort by cumulative time.
    """
    import cProfile
    import pstats

    config = SimConfig.scaled(scale)
    workload = WorkloadSpec(HOT_WORKLOAD, scale).build()
    trace = shared_trace_cache().get(workload, seed=0, input_set="ref")
    simulate(workload, config, "dfp-stop", seed=0, trace=trace, engine="batched")
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(repeats):
        simulate(
            workload, config, "dfp-stop", seed=0, trace=trace, engine="batched"
        )
    profiler.disable()
    profiler.dump_stats(path)
    top = pstats.Stats(profiler)
    top.sort_stats("cumulative")
    print(f"wrote engine profile to {path} (top of the batched hot loop):")
    top.print_stats(8)


def measure_trace_cache(scale: int, repeats: int) -> dict:
    """One simulate comparison, generator-per-run vs replay-from-cache."""
    config = SimConfig.scaled(scale)
    workload = WorkloadSpec(HOT_WORKLOAD, scale).build()

    t0 = time.perf_counter()
    for _ in range(repeats):
        uncached = simulate(workload, config, "dfp-stop", seed=0)
    uncached_s = time.perf_counter() - t0

    cache = TraceCache()
    t0 = time.perf_counter()
    for _ in range(repeats):
        trace = cache.get(workload, seed=0, input_set="ref")
        cached = simulate(workload, config, "dfp-stop", seed=0, trace=trace)
    cached_s = time.perf_counter() - t0

    assert cached == uncached, "trace replay changed the simulation result"
    return {
        "workload": HOT_WORKLOAD,
        "scheme": "dfp-stop",
        "runs": repeats,
        "uncached_runs_per_sec": round(repeats / uncached_s, 3),
        "cached_runs_per_sec": round(repeats / cached_s, 3),
        "speedup": round(uncached_s / cached_s, 3),
        "cache": cache.stats(),
    }


def measure_profiling(scale: int, repeats: int) -> dict:
    """Hot-loop cost of the paging-decision ledger, blind vs profiled."""
    config = SimConfig.scaled(scale)
    workload = WorkloadSpec(HOT_WORKLOAD, scale).build()
    trace = shared_trace_cache().get(workload, seed=0, input_set="ref")

    simulate(workload, config, "dfp-stop", seed=0, trace=trace)
    t0 = time.perf_counter()
    for _ in range(repeats):
        blind = simulate(workload, config, "dfp-stop", seed=0, trace=trace)
    blind_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(repeats):
        profiler = PagingProfiler()
        observed = simulate(
            workload, config, "dfp-stop", seed=0, trace=trace, profiler=profiler
        )
    profiled_s = time.perf_counter() - t0

    assert observed == blind, "paging profiler perturbed the simulation"
    profile = profiler.profile()
    totals = profile["totals"]
    return {
        "workload": HOT_WORKLOAD,
        "scheme": "dfp-stop",
        "runs": repeats,
        "blind_runs_per_sec": round(repeats / blind_s, 3),
        "profiled_runs_per_sec": round(repeats / profiled_s, 3),
        "overhead_x": round(profiled_s / blind_s, 3),
        "ledger_accesses": totals["accesses"],
        "ledger_faults": totals["faults"],
    }


def run_reference_sweep(spec: WorkloadSpec, configs, schemes, seed: int):
    """Replicate the pre-PR serial driver's cost model.

    Per point: rebuild the workload, run a full profiling pass and
    plan compilation when any scheme needs SIP, then walk a fresh
    trace generator per scheme run.  Profiling uses the sweep's first
    configuration at every point so both legs run the identical
    experiment (the plan is a compile-time artifact); the *work* is
    still repeated per point, as the old driver repeated it.
    """
    needs_sip = any(scheme in SIP_SCHEMES for scheme in schemes)
    first = configs[0]
    points = []
    for config in configs:
        workload = spec.build()
        plan = None
        if needs_sip:
            profile = profile_workload(workload, first, input_set="train", seed=seed)
            plan = build_sip_plan(profile, first.sip_threshold)
        points.append(
            {
                scheme: simulate(
                    workload, config, scheme, seed=seed, sip_plan=plan
                )
                for scheme in schemes
            }
        )
    return points


def measure_sweep(scale: int, jobs: int) -> dict:
    """Reference (pre-PR cost model) vs optimized sweep wall-clock."""
    spec = WorkloadSpec(SWEEP_WORKLOAD, scale)
    base = SimConfig.scaled(scale)
    configs = [base.replace(load_length=value) for value in SWEEP_VALUES]

    t0 = time.perf_counter()
    reference = run_reference_sweep(spec, configs, SWEEP_SCHEMES, seed=0)
    reference_s = time.perf_counter() - t0

    shared_trace_cache().clear()
    telemetry = ExecTelemetry()
    t0 = time.perf_counter()
    optimized = sweep_config(
        spec,
        configs,
        SWEEP_SCHEMES,
        values=list(SWEEP_VALUES),
        policy=ExecutionPolicy(jobs=jobs),
        telemetry=telemetry,
    )
    optimized_s = time.perf_counter() - t0

    # The worker count the sweep *actually* used, observed from the
    # attempt spans' lane assignments — ``jobs`` is only the request,
    # and on a small machine (or a degraded pool) fewer lanes run.
    lanes = {
        span.lane for span in telemetry.spans if span.kind is SpanKind.ATTEMPT
    }
    effective_workers = max(1, len(lanes))

    results_equal = all(
        reference[i][scheme] == point.results[scheme]
        for i, point in enumerate(optimized)
        for scheme in SWEEP_SCHEMES
    )
    assert results_equal, "optimized sweep diverged from the reference leg"
    return {
        "workload": SWEEP_WORKLOAD,
        "points": len(SWEEP_VALUES),
        "schemes": list(SWEEP_SCHEMES),
        "parameter": "load_length",
        "jobs": jobs,
        "effective_workers": effective_workers,
        "reference_serial_s": round(reference_s, 4),
        "optimized_s": round(optimized_s, 4),
        "speedup": round(reference_s / optimized_s, 3),
        "results_equal": results_equal,
    }


def compare_reports(old: dict, new: dict, tolerance: float) -> list:
    """Old-vs-new rows: ``(label, old_value, new_value, regressed)``.

    Higher is better for every compared figure.  A row regresses when
    the new value falls below ``old * (1 - tolerance)``.
    """
    floor = 1.0 - tolerance
    rows = []

    def add(label: str, old_value, new_value) -> None:
        if old_value is None or new_value is None:
            return
        regressed = old_value > 0 and new_value < old_value * floor
        rows.append((label, old_value, new_value, regressed))

    old_engine = old.get("engine", {})
    new_engine = new.get("engine", {})
    for scheme in sorted(set(old_engine) & set(new_engine)):
        add(
            f"engine.{scheme}.runs_per_sec",
            old_engine[scheme].get("runs_per_sec"),
            new_engine[scheme].get("runs_per_sec"),
        )
        # Snapshots predating the batched engine lack the per-engine
        # legs; add() skips those rows until a new snapshot is
        # committed, then they gate the bulk path staying fast *and*
        # the scalar fallback not rotting.
        for leg in ("scalar", "batched"):
            add(
                f"engine.{scheme}.{leg}.runs_per_sec",
                old_engine[scheme].get(leg, {}).get("runs_per_sec"),
                new_engine[scheme].get(leg, {}).get("runs_per_sec"),
            )
        add(
            f"engine.{scheme}.batched_speedup",
            old_engine[scheme].get("batched_speedup"),
            new_engine[scheme].get("batched_speedup"),
        )

    old_cache = old.get("trace_cache", {})
    new_cache = new.get("trace_cache", {})
    add(
        "trace_cache.cached_runs_per_sec",
        old_cache.get("cached_runs_per_sec"),
        new_cache.get("cached_runs_per_sec"),
    )
    add("trace_cache.speedup", old_cache.get("speedup"), new_cache.get("speedup"))

    # Older snapshots predate the profiling leg; add() skips the row
    # when either side lacks it, so the gate still applies cleanly.
    old_profiling = old.get("profiling", {})
    new_profiling = new.get("profiling", {})
    add(
        "profiling.profiled_runs_per_sec",
        old_profiling.get("profiled_runs_per_sec"),
        new_profiling.get("profiled_runs_per_sec"),
    )

    add(
        "sweep.speedup",
        old.get("sweep", {}).get("speedup"),
        new.get("sweep", {}).get("speedup"),
    )
    return rows


def print_comparison(rows: list, tolerance: float) -> int:
    """Render the comparison table; return the regression count."""
    if not rows:
        print("compare: no overlapping figures between snapshots")
        return 0
    width = max(len(label) for label, *_ in rows)
    regressions = 0
    print(f"comparison vs previous snapshot (tolerance {tolerance:.0%}):")
    for label, old_value, new_value, regressed in rows:
        ratio = new_value / old_value if old_value else float("inf")
        verdict = "REGRESSED" if regressed else "ok"
        if regressed:
            regressions += 1
        print(
            f"  {label:<{width}}  {old_value:>10.3f} -> {new_value:>10.3f}"
            f"  ({ratio:.2f}x)  {verdict}"
        )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized run: smaller traces, fewer reps"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=min(4, os.cpu_count() or 1),
        help="worker processes for the optimized sweep leg (default: min(4, cores))",
    )
    parser.add_argument(
        "--out", default="BENCH_perf.json", help="output path (default: %(default)s)"
    )
    parser.add_argument(
        "--compare",
        metavar="OLD.json",
        default=None,
        help="previous snapshot to gate against; exit 1 on regression",
    )
    parser.add_argument(
        "--compare-tolerance",
        type=float,
        default=0.5,
        metavar="FRAC",
        help="allowed fractional drop before a figure counts as a "
        "regression (default: %(default)s)",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="additionally cProfile the batched hot loop and dump "
        "pstats data to PATH",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if not 0.0 <= args.compare_tolerance < 1.0:
        parser.error("--compare-tolerance must be in [0, 1)")

    # Read the old snapshot up front: --out may point at the same file
    # (the committed BENCH_perf.json), and the gate must compare
    # against what was there before this run overwrites it.
    previous = None
    if args.compare is not None:
        with open(args.compare, "r", encoding="utf-8") as handle:
            previous = json.load(handle)

    # Scale 8 (SimConfig.scaled divides the paper-scale geometry, so
    # smaller scale = larger traces) keeps runs big enough that pool
    # startup amortizes even on one core; --quick trims repeats only.
    scale = 8
    repeats = 3 if args.quick else 5

    report = {
        "schema": "repro/perf-bench/v1",
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "quick": args.quick,
        "scale": scale,
        "engine": measure_engine(scale, repeats),
        "trace_cache": measure_trace_cache(scale, repeats),
        "profiling": measure_profiling(scale, repeats),
        "sweep": measure_sweep(scale, args.jobs),
    }

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    sweep = report["sweep"]
    cache = report["trace_cache"]
    profiling = report["profiling"]
    print(f"wrote {args.out}")
    for scheme, row in report["engine"].items():
        print(
            f"engine.{scheme}: scalar {row['scalar']['accesses_per_sec']} -> "
            f"batched {row['batched']['accesses_per_sec']} acc/sec "
            f"({row['batched_speedup']}x, headline={row['headline_engine']}, "
            "results equal)"
        )
    print(
        f"sweep: {sweep['reference_serial_s']}s -> {sweep['optimized_s']}s "
        f"({sweep['speedup']}x, jobs={sweep['jobs']}, "
        f"effective workers={sweep['effective_workers']})"
    )
    print(
        f"trace cache: {cache['uncached_runs_per_sec']} -> "
        f"{cache['cached_runs_per_sec']} runs/sec ({cache['speedup']}x)"
    )
    print(
        f"profiling: {profiling['blind_runs_per_sec']} -> "
        f"{profiling['profiled_runs_per_sec']} runs/sec "
        f"({profiling['overhead_x']}x ledger overhead)"
    )

    if args.profile_out is not None:
        dump_engine_profile(args.profile_out, scale, repeats)

    if previous is not None:
        rows = compare_reports(previous, report, args.compare_tolerance)
        regressions = print_comparison(rows, args.compare_tolerance)
        if regressions:
            print(f"FAIL: {regressions} figure(s) regressed beyond tolerance")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
