"""The runtime sanitizer end to end: transparency and bug detection.

Two contracts:

* **Transparency** — the sanitizer is read-only, so a sanitized run
  must produce bit-identical :class:`RunResult` numbers for every
  scheme (the ISSUE acceptance criterion).
* **Detection** — when a core invariant is deliberately broken
  (burst filtering, valve-counter crediting, EPC occupancy, cycle
  accounting), the run dies with :class:`SanitizerError` carrying the
  event-trace tail, instead of silently producing wrong numbers.
"""

import pytest

from repro.core.config import SimConfig
from repro.core.dfp import DfpEngine
from repro.enclave.driver import SgxDriver
from repro.enclave.epc import Epc
from repro.enclave.eviction import ClockEvictor
from repro.errors import SanitizerError
from repro.sim.engine import simulate
from repro.sim.fleet import FleetScenario, TenantSpec, simulate_fleet
from repro.workloads.base import SyntheticWorkload
from repro.workloads.synthetic import sequential, uniform_random

SCHEMES = ["baseline", "dfp", "dfp-stop", "sip", "hybrid"]


@pytest.fixture
def config():
    """Small EPC + short scan period: faults, preloads, and many
    service-thread ticks within a fast run."""
    return SimConfig(
        epc_pages=96,
        stream_list_length=8,
        load_length=4,
        scan_period_cycles=400_000,
        valve_slack=24,
        valve_ratio=0.8,
    )


def seq_workload():
    """The sequential micro workload: streaming passes over 4x EPC."""
    return SyntheticWorkload(
        "mini-seq",
        384,
        {0: "scan"},
        [sequential(0, 0, 384, compute=5_000, passes=3)],
    )


def noisy_workload():
    return SyntheticWorkload(
        "mini-noise",
        768,
        {0: "probe"},
        [
            uniform_random(
                [0],
                0,
                768,
                3_000,
                compute=4_000,
                run_length=(2, 3),
                multi_run_prob=0.5,
            )
        ],
    )


class TestTransparency:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_sanitized_run_is_bit_identical(self, config, scheme):
        plain = simulate(seq_workload(), config, scheme)
        checked = simulate(seq_workload(), config.replace(sanitize=True), scheme)
        assert checked.total_cycles == plain.total_cycles
        assert checked.stats == plain.stats

    def test_sanitized_noisy_valve_run_is_bit_identical(self, config):
        """The valve-stop path (in-stream abort + counter checks) is
        exercised and still changes nothing."""
        plain = simulate(noisy_workload(), config, "dfp-stop")
        checked = simulate(
            noisy_workload(), config.replace(sanitize=True), "dfp-stop"
        )
        assert plain.stats.valve_stops >= 1
        assert checked.stats == plain.stats

    def test_sanitized_shared_platform_run_is_bit_identical(self, config):
        schemes = ["dfp", "dfp-stop"]

        def run(cfg):
            scenario = FleetScenario(
                name="sanitized-shared",
                tenants=tuple(
                    TenantSpec(workload=w, scheme=s)
                    for w, s in zip([seq_workload(), noisy_workload()], schemes)
                ),
                config=cfg,
            )
            return simulate_fleet(scenario).results

        plain = run(config)
        checked = run(config.replace(sanitize=True))
        for before, after in zip(plain, checked):
            assert after.total_cycles == before.total_cycles
            assert after.stats == before.stats


class TestDetection:
    def test_broken_burst_filter_is_caught(self, config, monkeypatch):
        """Drop the residency/queue filtering before enqueue: the
        sanitizer must flag the first redundant preload request."""

        def leaky_filter(self, burst):
            return [p for p in burst if self._enclave.contains_page(p)]

        monkeypatch.setattr(SgxDriver, "_filter_burst", leaky_filter)
        with pytest.raises(SanitizerError, match="enqueued for preload") as excinfo:
            simulate(seq_workload(), config.replace(sanitize=True), "dfp")
        assert any("enqueue burst" in entry for entry in excinfo.value.trace)

    def test_broken_counter_crediting_is_caught(self, config, monkeypatch):
        """Over-credit AccPreloadCounter: the scan-time valve-counter
        check must see it exceed PreloadCounter."""

        def over_credit(self, count):
            self.acc_preload_counter += 100 * count + 100

        monkeypatch.setattr(DfpEngine, "credit_accessed", over_credit)
        with pytest.raises(
            SanitizerError, match="exceeds PreloadCounter"
        ) as excinfo:
            simulate(seq_workload(), config.replace(sanitize=True), "dfp")
        assert any("scan:" in entry for entry in excinfo.value.trace)

    def test_broken_eviction_policy_is_caught(self, config, monkeypatch):
        """An eviction path that triggers one frame late over-commits
        the EPC on the first load past capacity; the load-landing
        occupancy check must fire.  The CLOCK ring is grown in step so
        only the sanitizer can see the violation."""

        class OvercommittingEpc(Epc):
            @property
            def is_full(self):
                return self.resident_count >= self.capacity + 1

        real_init = ClockEvictor.__init__

        def roomy_init(self, epc):
            real_init(self, epc)
            self._ring.append(None)
            self._free_slots.insert(0, len(self._ring) - 1)

        monkeypatch.setattr("repro.enclave.platform.Epc", OvercommittingEpc)
        monkeypatch.setattr(ClockEvictor, "__init__", roomy_init)
        with pytest.raises(SanitizerError, match="EPC over-committed"):
            simulate(seq_workload(), config.replace(sanitize=True), "baseline")

    def test_lost_cycle_is_caught(self, config, monkeypatch):
        """Leak a single cycle out of the AEX bucket: the per-tick
        bucket-sum-equals-clock identity must catch the drift."""
        real_access = SgxDriver.access

        def leaky_access(self, page, now):
            end = real_access(self, page, now)
            if self.stats.time.aex > 0 and not getattr(self, "_leaked", False):
                self._leaked = True
                self.stats.time.aex -= 1
            return end

        monkeypatch.setattr(SgxDriver, "access", leaky_access)
        with pytest.raises(
            SanitizerError, match="cycle accounting drifted"
        ) as excinfo:
            simulate(seq_workload(), config.replace(sanitize=True), "baseline")
        assert "delta -1" in str(excinfo.value)
        assert excinfo.value.trace  # the event tail rode along

    def test_unsanitized_run_does_not_police(self, config, monkeypatch):
        """Without --sanitize the same cycle leak sails through (the
        engine's own end check sees the mismatch instead) — the checks
        really are opt-in."""

        def over_credit(self, count):
            self.acc_preload_counter += 100 * count + 100

        monkeypatch.setattr(DfpEngine, "credit_accessed", over_credit)
        result = simulate(seq_workload(), config, "dfp")
        assert result.total_cycles > 0
