"""Every shipped example must actually run.

The examples are the library's front door; these tests import each
script and drive its ``main()`` at a reduced scale so the whole batch
stays fast.  Output is captured and spot-checked for the content each
example promises.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

#: Scale used when running examples under test (they default to 16).
TEST_SCALE = 48


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys, monkeypatch):
        module = load_example("quickstart")
        monkeypatch.setattr(module, "SCALE", TEST_SCALE)
        module.main()
        out = capsys.readouterr().out
        assert "baseline" in out and "hybrid" in out
        assert "improvement" in out

    def test_spec_campaign(self, capsys, monkeypatch):
        module = load_example("spec_campaign")
        monkeypatch.setattr(sys, "argv", ["spec_campaign.py", str(TEST_SCALE)])
        module.main()
        out = capsys.readouterr().out
        assert "SPEC campaign" in out
        assert "lbm" in out and "deepsjeng" in out
        assert "n/a" in out  # Fortran exclusions

    def test_vision_pipeline(self, capsys, monkeypatch):
        module = load_example("vision_pipeline")
        monkeypatch.setattr(module, "SCALE", TEST_SCALE)
        module.main()
        out = capsys.readouterr().out
        assert "MSER" in out and "SIFT" in out
        assert "instrumentation point" in out
        assert "union_find" in out

    def test_custom_workload(self, capsys, monkeypatch):
        module = load_example("custom_workload")
        monkeypatch.setattr(module, "SCALE", TEST_SCALE)
        module.main()
        out = capsys.readouterr().out
        assert "kv-store" in out
        assert "recommendation" in out

    def test_contention_study(self, capsys, monkeypatch):
        module = load_example("contention_study")
        monkeypatch.setattr(module, "SCALE", TEST_SCALE)
        module.main()
        out = capsys.readouterr().out
        assert "EPC contention study" in out
        assert "vs solo" in out

    def test_trace_capture(self, capsys, monkeypatch, tmp_path):
        module = load_example("trace_capture")
        monkeypatch.setattr(module, "SCALE", TEST_SCALE)
        monkeypatch.setattr(
            module, "TRACE_PATH", str(tmp_path / "trace.json")
        )
        module.main()
        out = capsys.readouterr().out
        assert "selected metrics" in out
        assert "reconciles" in out
        assert "ui.perfetto.dev" in out
        assert "cycle attribution (B - A)" in out
        assert (tmp_path / "trace.json").exists()


class TestExampleHygiene:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "spec_campaign",
            "vision_pipeline",
            "custom_workload",
            "contention_study",
            "trace_capture",
        ],
    )
    def test_example_has_docstring_and_main(self, name):
        module = load_example(name)
        assert module.__doc__, f"{name} lacks a module docstring"
        assert callable(getattr(module, "main", None))
