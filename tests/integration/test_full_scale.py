"""Full-scale configuration smoke tests.

The benches run scaled 16x; these verify the *unscaled* platform (the
paper's 24,576-page EPC and original valve constants) works end to end
on short traces, so nothing in the library silently assumes a small
EPC.
"""

import pytest

from repro.core.config import SimConfig
from repro.sim.engine import prepare_sip_plan, simulate
from repro.workloads.base import SyntheticWorkload
from repro.workloads.registry import build_workload
from repro.workloads.synthetic import sequential, uniform_random

FULL = SimConfig()  # scale 1


class TestFullScaleConstants:
    def test_epc_is_96mb(self):
        assert FULL.epc_pages == 24_576

    def test_paper_valve_constants(self):
        assert FULL.valve_slack == 200_000
        assert FULL.valve_ratio == pytest.approx(0.5)


class TestFullScaleRuns:
    def test_baseline_against_full_epc(self):
        wl = SyntheticWorkload(
            "big-seq",
            30_000,
            {0: "scan"},
            [sequential(0, 0, 30_000, compute=3_000)],
        )
        result = simulate(wl, FULL, "baseline", max_accesses=30_000)
        # 30,000 pages > 24,576 frames: the tail of the scan evicts.
        assert result.stats.evictions == 30_000 - 24_576
        assert result.stats.faults == 30_000

    def test_dfp_on_full_scale_stream(self):
        wl = SyntheticWorkload(
            "big-seq",
            30_000,
            {0: "scan"},
            [sequential(0, 0, 30_000, compute=3_000)],
        )
        base = simulate(wl, FULL, "baseline")
        dfp = simulate(wl, FULL, "dfp-stop")
        assert dfp.total_cycles < base.total_cycles
        assert dfp.stats.valve_stops == 0

    def test_full_scale_workload_factories(self):
        """scale=1 models build with the paper's true footprints."""
        micro = build_workload("microbenchmark", scale=1)
        assert micro.footprint_pages == 262_144  # 1 GB of 4 KiB pages
        lbm = build_workload("lbm", scale=1)
        assert lbm.footprint_pages == pytest.approx(3 * 24_576, rel=0.01)

    def test_sip_pipeline_at_full_scale(self):
        wl = SyntheticWorkload(
            "big-rand",
            60_000,
            {0: "probe"},
            [uniform_random([0], 0, 60_000, 8_000, compute=3_000)],
        )
        plan = prepare_sip_plan(wl, FULL)
        assert plan.instrumentation_points == 1
        result = simulate(wl, FULL, "sip", sip_plan=plan)
        assert result.stats.sip_loads > 0
