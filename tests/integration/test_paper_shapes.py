"""Fast sanity versions of the headline paper results.

These run the real benchmark models at a small scale (32x) with short
traces; the full-resolution reproduction lives in ``benchmarks/``.
They protect the calibration: if a refactor breaks who-wins-where,
these fail before the bench suite is ever run.
"""

import pytest

from repro.core.config import SimConfig
from repro.sim.engine import prepare_sip_plan, simulate
from repro.sim.results import improvement_pct
from repro.workloads.registry import build_workload

SCALE = 32
CONFIG = SimConfig.scaled(SCALE)


def run_pair(name, scheme, seed=0):
    wl = build_workload(name, scale=SCALE)
    base = simulate(wl, CONFIG, "baseline", seed=seed)
    other = simulate(wl, CONFIG, scheme, seed=seed)
    return improvement_pct(other, base), base, other


class TestDfpShapes:
    def test_microbenchmark_gains_most(self):
        """Figure 8: the microbenchmark is DFP's best case (+18.6%)."""
        gain, _, _ = run_pair("microbenchmark", "dfp-stop")
        assert gain > 10

    def test_lbm_gains(self):
        gain, _, _ = run_pair("lbm", "dfp-stop")
        assert gain > 8

    def test_regular_benchmarks_all_gain(self):
        for name in ("bwaves", "wrf", "SIFT"):
            gain, _, _ = run_pair(name, "dfp-stop")
            assert gain > 3, name

    def test_roms_suffers_most_without_valve(self):
        """Figure 8: roms -42% is the worst DFP overhead."""
        gain, _, _ = run_pair("roms", "dfp")
        assert gain < -25

    def test_irregular_benchmarks_suffer_without_valve(self):
        for name in ("deepsjeng", "omnetpp"):
            gain, _, _ = run_pair(name, "dfp")
            assert gain < -10, name

    def test_valve_rescues_irregular(self):
        """Figure 8 DFP-stop: overheads collapse to ~0."""
        for name in ("roms", "deepsjeng", "mcf", "omnetpp"):
            gain, _, _ = run_pair(name, "dfp-stop")
            assert gain > -5, name

    def test_valve_never_fires_on_regular(self):
        for name in ("microbenchmark", "lbm"):
            _, _, run = run_pair(name, "dfp-stop")
            assert run.stats.valve_stops == 0, name


class TestSipShapes:
    def test_deepsjeng_wins(self):
        """Figure 10: deepsjeng +9.0% is SIP's best case."""
        gain, _, _ = run_pair("deepsjeng", "sip")
        assert gain > 5

    def test_mcf2006_wins(self):
        gain, _, _ = run_pair("mcf.2006", "sip")
        assert gain > 2

    def test_mcf_is_a_wash(self):
        """Section 5.2: the Class 1/Class 3 dilemma benchmark."""
        gain, _, _ = run_pair("mcf", "sip")
        assert -4 < gain < 6

    def test_sequential_apps_unchanged(self):
        """Figure 10 + Table 2: no points, no effect."""
        for name in ("lbm", "microbenchmark", "SIFT"):
            gain, _, run = run_pair(name, "sip")
            assert run.sip_points == 0, name
            assert gain == pytest.approx(0.0, abs=0.01), name


class TestTable2Points:
    """SIP instrumentation-point counts, scale-invariant by design."""

    # Bands are wider than at the benches' scale 16 (where mcf lands
    # at 97, mcf.2006 at 111, MSER at 54): the scale-32 training trace
    # gives each site only ~60 profiled accesses, so sites near the 5%
    # threshold drop in and out — honest PGO sampling noise.
    EXPECTED = {
        "lbm": (0, 0),
        "SIFT": (0, 0),
        "microbenchmark": (0, 0),
        "MSER": (45, 54),
        "mcf": (75, 99),
        "mcf.2006": (95, 114),
        "deepsjeng": (28, 40),
        "xz": (40, 46),
    }

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_point_counts_near_paper(self, name):
        lo, hi = self.EXPECTED[name]
        wl = build_workload(name, scale=SCALE)
        plan = prepare_sip_plan(wl, CONFIG)
        assert lo <= plan.instrumentation_points <= hi, (
            f"{name}: {plan.instrumentation_points} points, expected "
            f"within [{lo}, {hi}]"
        )


class TestVisionShapes:
    def test_sift_prefers_dfp(self):
        """Figure 11: SIFT +9.5% under DFP."""
        dfp_gain, _, _ = run_pair("SIFT", "dfp-stop")
        sip_gain, _, _ = run_pair("SIFT", "sip")
        assert dfp_gain > 4
        assert dfp_gain > sip_gain

    def test_mser_prefers_sip(self):
        """Figure 11: MSER +3.0% under SIP."""
        sip_gain, _, _ = run_pair("MSER", "sip")
        assert sip_gain > 1

    def test_mixed_blood_hybrid_beats_parts(self):
        """Figure 13: SIP 1.6% < DFP 6.0% < hybrid 7.1%."""
        wl = build_workload("mixed-blood", scale=SCALE)
        plan = prepare_sip_plan(wl, CONFIG)
        base = simulate(wl, CONFIG, "baseline")
        dfp = simulate(wl, CONFIG, "dfp-stop")
        sip = simulate(wl, CONFIG, "sip", sip_plan=plan)
        hybrid = simulate(wl, CONFIG, "hybrid", sip_plan=plan)
        dfp_gain = improvement_pct(dfp, base)
        sip_gain = improvement_pct(sip, base)
        hybrid_gain = improvement_pct(hybrid, base)
        assert sip_gain > 0
        assert dfp_gain > sip_gain
        assert hybrid_gain >= dfp_gain
