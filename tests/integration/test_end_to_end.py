"""End-to-end scheme behaviour on miniature workloads.

Fast integration checks of the qualitative claims (the quantitative
reproduction lives in ``benchmarks/``): DFP wins on streams, hurts on
noise without the valve, the valve rescues it, SIP wins on profiled
irregular sites, and the hybrid composes.
"""

import pytest

from repro.core.config import SimConfig
from repro.sim.engine import prepare_sip_plan, simulate
from repro.sim.results import improvement_pct
from repro.workloads.base import SyntheticWorkload
from repro.workloads.synthetic import (
    interleave_phases,
    sequential,
    uniform_random,
    zipf_random,
)


@pytest.fixture
def config():
    return SimConfig(
        epc_pages=96,
        stream_list_length=8,
        load_length=4,
        scan_period_cycles=400_000,
        valve_slack=24,
        valve_ratio=0.8,
    )


def seq_workload(compute=5_000):
    return SyntheticWorkload(
        "mini-seq",
        384,
        {0: "scan"},
        [sequential(0, 0, 384, compute=compute, passes=3)],
    )


def noisy_workload():
    """Sparse short runs over a large region: DFP's nightmare."""
    return SyntheticWorkload(
        "mini-noise",
        768,
        {0: "probe"},
        [
            uniform_random(
                [0],
                0,
                768,
                4_000,
                compute=4_000,
                run_length=(2, 3),
                multi_run_prob=0.5,
            )
        ],
    )


def sip_friendly_workload():
    """A hot resident loop (one site) plus cold scatter (other site).

    The hot region is well inside the EPC/recency window even with the
    cold traffic churning it, so the hot site profiles Class 1."""
    phases = [
        interleave_phases(
            [
                zipf_random([0], 0, 32, 6_000, alpha=1.3, compute=4_000),
                uniform_random([1], 64, 768, 1_500, compute=4_000),
            ],
            chunk=[4, 1],
        )
    ]
    return SyntheticWorkload(
        "mini-sip", 768, {0: "hot", 1: "cold"}, phases
    )


class TestDfp:
    def test_dfp_improves_streams(self, config):
        wl = seq_workload()
        base = simulate(wl, config, "baseline")
        dfp = simulate(wl, config, "dfp-stop")
        assert improvement_pct(dfp, base) > 5

    def test_dfp_reduces_full_faults_on_streams(self, config):
        wl = seq_workload(compute=60_000)
        base = simulate(wl, config, "baseline")
        dfp = simulate(wl, config, "dfp-stop")
        # With compute-rich pages the burst lands in time: roughly one
        # fault per LOADLENGTH+1 pages instead of one per page.
        assert dfp.stats.faults < base.stats.faults / 3

    def test_dfp_hurts_noise_without_valve(self, config):
        wl = noisy_workload()
        base = simulate(wl, config, "baseline")
        dfp = simulate(wl, config, "dfp")
        assert improvement_pct(dfp, base) < -3

    def test_valve_rescues_noise(self, config):
        wl = noisy_workload()
        base = simulate(wl, config, "baseline")
        dfp = simulate(wl, config, "dfp")
        stop = simulate(wl, config, "dfp-stop")
        assert stop.total_cycles < dfp.total_cycles
        assert stop.stats.valve_stops == 1
        assert improvement_pct(stop, base) > -5

    def test_dfp_neutral_on_resident_working_set(self, config):
        """Once a small working set is warm, there are no faults for
        DFP to act on (the small-WS rows of Table 1).  Enough passes
        make the warm-up share negligible."""
        wl = SyntheticWorkload(
            "mini-hot", 64, {0: "x"}, [sequential(0, 0, 64, compute=20_000, passes=64)]
        )
        base = simulate(wl, config, "baseline")
        dfp = simulate(wl, config, "dfp-stop")
        assert abs(improvement_pct(dfp, base)) < 3
        # Identical steady state: the only faults either way are the
        # 64 warm-up loads.
        assert base.stats.faults == 64
        assert dfp.stats.epc_hits == dfp.stats.accesses - dfp.stats.faults


class TestSip:
    def test_sip_instruments_only_the_cold_site(self, config):
        wl = sip_friendly_workload()
        plan = prepare_sip_plan(wl, config)
        assert plan.is_instrumented(1)
        assert not plan.is_instrumented(0)

    def test_sip_improves_the_irregular_workload(self, config):
        wl = sip_friendly_workload()
        base = simulate(wl, config, "baseline")
        sip = simulate(wl, config, "sip")
        assert improvement_pct(sip, base) > 3
        assert sip.stats.faults < base.stats.faults

    def test_sip_neutral_on_pure_streams(self, config):
        """Table 2 lbm/SIFT/micro: nothing to instrument, zero cost."""
        wl = seq_workload()
        plan = prepare_sip_plan(wl, config)
        assert plan.instrumentation_points == 0
        base = simulate(wl, config, "baseline")
        sip = simulate(wl, config, "sip", sip_plan=plan)
        assert sip.total_cycles == base.total_cycles

    def test_sip_loads_have_no_world_switch(self, config):
        wl = sip_friendly_workload()
        sip = simulate(wl, config, "sip")
        base = simulate(wl, config, "baseline")
        # Converted faults: SIP pays check+load+notify, never AEX.
        assert sip.stats.time.aex < base.stats.time.aex


class TestHybrid:
    def test_hybrid_beats_or_matches_both_on_mixed(self, config):
        """Section 5.4: a scan phase plus an irregular phase — the
        hybrid collects both benefits."""
        phases = [
            sequential(0, 0, 384, compute=4_000, passes=2),
            interleave_phases(
                [
                    zipf_random([1], 0, 64, 4_000, alpha=1.2, compute=4_000),
                    uniform_random([2], 64, 768, 1_200, compute=4_000),
                ],
                chunk=[4, 1],
            ),
        ]
        wl = SyntheticWorkload(
            "mini-mixed", 768, {0: "scan", 1: "hot", 2: "cold"}, phases
        )
        plan = prepare_sip_plan(wl, config)
        base = simulate(wl, config, "baseline")
        dfp = simulate(wl, config, "dfp-stop")
        sip = simulate(wl, config, "sip", sip_plan=plan)
        hybrid = simulate(wl, config, "hybrid", sip_plan=plan)
        best = min(dfp.total_cycles, sip.total_cycles)
        assert hybrid.total_cycles <= best * 1.02
        assert hybrid.total_cycles < base.total_cycles
