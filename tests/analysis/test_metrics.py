"""Aggregate metric helpers."""

import pytest

from repro.analysis.metrics import (
    geomean_normalized,
    mean_improvement,
    summarize_results,
)
from repro.errors import SimulationError

from tests.sim.test_results import result


class TestMeanImprovement:
    def test_single_pair(self):
        assert mean_improvement([(result(900), result(1000))]) == pytest.approx(10.0)

    def test_average_over_pairs(self):
        pairs = [
            (result(900), result(1000)),
            (result(700), result(1000)),
        ]
        assert mean_improvement(pairs) == pytest.approx(20.0)

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            mean_improvement([])


class TestGeomean:
    def test_identity(self):
        assert geomean_normalized([(result(1000), result(1000))]) == pytest.approx(1.0)

    def test_mixed(self):
        pairs = [
            (result(500), result(1000)),  # 0.5
            (result(2000), result(1000)),  # 2.0
        ]
        assert geomean_normalized(pairs) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            geomean_normalized([])


class TestSummarize:
    def test_normalizes_per_workload(self):
        table = summarize_results(
            {
                "w": {
                    "baseline": result(1000),
                    "dfp": result(850, scheme="dfp"),
                }
            }
        )
        assert table["w"]["baseline"] == pytest.approx(1.0)
        assert table["w"]["dfp"] == pytest.approx(0.85)

    def test_missing_baseline_rejected(self):
        with pytest.raises(SimulationError):
            summarize_results({"w": {"dfp": result(1)}})
