"""Plain-text report rendering."""

import pytest

from repro.analysis.report import ascii_bar_chart, format_table, render_series
from repro.errors import SimulationError


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(
            ["name", "value"], [["lbm", 1.5], ["mcf", 0.25]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "lbm" in lines[3]
        # Columns align: the separator row matches header width.
        assert len(lines[2]) >= len("name  value")

    def test_floats_formatted(self):
        text = format_table(["x"], [[0.123456]])
        assert "0.123" in text

    def test_ragged_row_rejected(self):
        with pytest.raises(SimulationError):
            format_table(["a", "b"], [["only-one"]])


class TestAsciiBarChart:
    def test_bars_scale_with_values(self):
        text = ascii_bar_chart({"a": 1.0, "b": 0.5}, width=10)
        a_line, b_line = text.splitlines()
        assert a_line.count("#") == 10
        assert b_line.count("#") == 5

    def test_reference_marker_drawn(self):
        text = ascii_bar_chart({"a": 0.5}, width=10, reference=1.0)
        assert "." in text or "+" in text

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            ascii_bar_chart({})

    def test_title_included(self):
        assert ascii_bar_chart({"a": 1.0}, title="Fig").startswith("Fig")


class TestRenderSeries:
    def test_grid_layout(self):
        text = render_series(
            {"dfp": [(1, 0.9), (2, 0.8)], "sip": [(1, 1.0), (2, 0.95)]},
            title="sweep",
        )
        lines = text.splitlines()
        assert "dfp" in lines[1] and "sip" in lines[1]
        assert "0.900" in text and "0.950" in text

    def test_mismatched_x_rejected(self):
        with pytest.raises(SimulationError):
            render_series({"a": [(1, 0.5)], "b": [(2, 0.5)]})

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            render_series({})
