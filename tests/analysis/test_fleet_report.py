"""Fleet report renderers: sparklines, SLO/thrash tables, comparisons."""

import pytest

from repro.analysis.fleet_report import (
    render_fleet_table,
    render_policy_comparison,
    render_slo_report,
    render_thrash_table,
    render_timeseries,
    sparkline,
)
from repro.errors import ObsError
from repro.obs.fleet_telemetry import SloSpec, detect_thrash, evaluate_slo
from repro.sim.fleet import build_scenario, simulate_fleet

from tests.obs.test_fleet_telemetry import observed_run, synthetic_block


class TestSparkline:
    def test_maps_min_to_low_and_max_to_high_glyph(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_flat_series_renders_all_minimum(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_downsampling_keeps_spikes(self):
        values = [0] * 100
        values[50] = 10
        line = sparkline(values, width=10)
        assert len(line) == 10
        assert "█" in line

    def test_empty_and_bad_width(self):
        assert sparkline([]) == ""
        with pytest.raises(ObsError):
            sparkline([1], width=0)


class TestRenderTimeseries:
    def test_renders_one_row_per_signal(self):
        text = render_timeseries(observed_run().timeseries)
        assert "fleet timeseries:" in text
        for label in ("faults/window", "EPC resident", "queue depth",
                      "channel util", "fault-wait p99"):
            assert label in text

    def test_rejects_wrong_schema(self):
        with pytest.raises(ObsError, match="schema"):
            render_timeseries({"schema": "bogus"})

    def test_rebalance_line_appears_under_adaptive_quota(self):
        text = render_timeseries(observed_run(policy="adaptive-quota").timeseries)
        assert "rebalance decisions:" in text


class TestRenderSlo:
    def test_breach_table_lists_tenant_and_objectives(self):
        block = synthetic_block(faults=((10, 10), (0, 0)))
        doc = evaluate_slo(block, SloSpec(max_fault_rate=0.25))
        text = render_slo_report(doc)
        assert "alpha" in text
        assert "fault_rate" in text
        assert "breach interval" in text

    def test_clean_run_reports_objectives_met(self):
        block = synthetic_block(faults=((0, 0), (0, 0)),
                                wait_p99=((0.0, 0.0), (0.0, 0.0)))
        doc = evaluate_slo(block, SloSpec(max_fault_rate=0.9))
        assert "all objectives met" in render_slo_report(doc)

    def test_rejects_wrong_schema(self):
        with pytest.raises(ObsError, match="schema"):
            render_slo_report({"schema": "bogus"})


class TestRenderThrash:
    def test_interval_table(self):
        block = synthetic_block(
            faults=((1, 1, 1, 40), (1, 1, 1, 1)),
            accesses=((20, 20, 20, 60), (20, 20, 20, 20)),
            wait_p99=((0.0,) * 4, (0.0,) * 4),
            quota=((8,) * 4, (8,) * 4),
            resident=((8,) * 4, (8,) * 4),
        )
        intervals = detect_thrash(block, factor=2.0, min_faults=8)
        text = render_thrash_table(intervals)
        assert "alpha" in text
        assert "peak vs mean" in text

    def test_no_intervals_is_one_line(self):
        assert render_thrash_table([]).endswith("0 interval(s)")


class TestComparisonHeader:
    def test_policy_comparison_shows_truncated_counts_per_policy(self):
        blocks = [
            simulate_fleet(build_scenario("smoke", seed=0, policy=p)).fleet_block()
            for p in ("shared-clock", "static-partition")
        ]
        text = render_policy_comparison(blocks)
        assert "truncated tenants:" in text
        assert "shared-clock=" in text
        assert "static-partition=" in text

    def test_fleet_table_header_still_counts_truncated(self):
        text = render_fleet_table(
            simulate_fleet(build_scenario("smoke", seed=0)).fleet_block()
        )
        assert "truncated" in text
