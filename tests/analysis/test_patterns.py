"""Pattern characterization tests (Figure 3 / Table 1 machinery)."""

import random

import pytest

from repro.analysis.patterns import (
    PatternKind,
    characterize_trace,
    classify_benchmark,
)
from repro.core.config import SimConfig
from repro.errors import WorkloadError
from repro.workloads.registry import build_workload


class TestCharacterizeTrace:
    def test_pure_sequence_is_fully_sequential(self):
        summary = characterize_trace(list(range(1000)))
        assert summary.sequential_coverage == pytest.approx(1.0)
        assert summary.linearity > 0.95
        assert summary.looks_sequential
        assert summary.max_run_length == 1000

    def test_random_trace_is_irregular(self):
        rng = random.Random(1)
        pages = [rng.randrange(100_000) for _ in range(2000)]
        summary = characterize_trace(pages)
        assert summary.sequential_coverage < 0.1
        assert not summary.looks_sequential

    def test_descending_runs_count(self):
        summary = characterize_trace(list(range(500, 0, -1)))
        assert summary.sequential_coverage == pytest.approx(1.0)

    def test_interleaved_streams_detected_via_stream_table(self):
        """Two alternating streams have no raw monotone runs, but the
        stream-tail table (the paper's 'table to track recently
        accessed pages') sees both — lbm's signature."""
        pages = [x for pair in zip(range(1000), range(5000, 6000)) for x in pair]
        summary = characterize_trace(pages)
        assert summary.sequential_coverage < 0.1  # raw runs blind
        assert summary.stream_coverage > 0.9  # stream table sees it
        assert summary.looks_sequential

    def test_random_noise_has_no_stream_coverage(self):
        rng = random.Random(2)
        noise = [rng.randrange(100_000) for _ in range(2000)]
        assert characterize_trace(noise).stream_coverage < 0.05

    def test_constant_trace_is_predictable(self):
        summary = characterize_trace([7] * 100)
        assert summary.linearity == pytest.approx(1.0)
        assert summary.distinct_pages == 1

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            characterize_trace([])

    def test_mean_run_length(self):
        # 0,1,2 | 10 | 20,21 -> runs of 3, 1, 2
        summary = characterize_trace([0, 1, 2, 10, 20, 21])
        assert summary.mean_run_length == pytest.approx(2.0)


class TestClassifyBenchmark:
    CONFIG = SimConfig.scaled(32)

    @pytest.mark.parametrize("name", ["lbm", "bwaves", "microbenchmark"])
    def test_regular_benchmarks(self, name):
        kind, _ = classify_benchmark(
            build_workload(name, scale=32), self.CONFIG
        )
        assert kind is PatternKind.LARGE_REGULAR

    @pytest.mark.parametrize("name", ["deepsjeng", "mcf", "roms", "omnetpp"])
    def test_irregular_benchmarks(self, name):
        kind, _ = classify_benchmark(
            build_workload(name, scale=32), self.CONFIG
        )
        assert kind is PatternKind.LARGE_IRREGULAR

    @pytest.mark.parametrize("name", ["leela", "imagick", "exchange2"])
    def test_small_benchmarks(self, name):
        kind, _ = classify_benchmark(
            build_workload(name, scale=32), self.CONFIG
        )
        assert kind is PatternKind.SMALL_WORKING_SET
