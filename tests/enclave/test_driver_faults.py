"""Driver fault-path tests (no preloading): the baseline cost model."""

import pytest

from repro.core.config import CostModel, SimConfig
from repro.enclave.driver import SgxDriver
from repro.enclave.enclave import Enclave
from repro.errors import SimulationError


def make_driver(epc_pages=4, elrange=100, **cost_overrides):
    cost = CostModel(**cost_overrides)
    config = SimConfig(epc_pages=epc_pages, cost=cost, scan_period_cycles=10**9)
    enclave = Enclave("t", elrange_pages=elrange)
    return SgxDriver(config, enclave), config


class TestHitPath:
    def test_resident_access_is_free_and_marks_bit(self):
        driver, config = make_driver()
        end = driver.access(5, 0)  # cold fault loads it
        t = driver.access(5, end + 100)
        assert t == end + 100
        assert driver.epc.state_of(5).accessed
        assert driver.stats.epc_hits == 1


class TestFaultPath:
    def test_cold_fault_costs_paper_total(self):
        """AEX + load + ERESUME == 60k-64k (Section 2)."""
        driver, config = make_driver()
        end = driver.access(5, 1000)
        assert end - 1000 == config.cost.fault_cycles
        assert driver.stats.faults == 1
        assert driver.epc.is_resident(5)

    def test_fault_time_attribution(self):
        driver, config = make_driver()
        driver.access(5, 0)
        tb = driver.stats.time
        assert tb.aex == config.cost.aex_cycles
        assert tb.eresume == config.cost.eresume_cycles
        assert tb.fault_wait == config.cost.page_load_cycles
        assert tb.compute == 0

    def test_fault_when_full_evicts_via_clock(self):
        driver, _ = make_driver(epc_pages=2)
        t = driver.access(0, 0)
        t = driver.access(1, t)
        assert driver.epc.is_full
        t = driver.access(2, t)
        assert driver.epc.is_resident(2)
        assert driver.epc.resident_count == 2
        assert driver.stats.evictions == 1

    def test_clock_protects_recently_accessed(self):
        """After a scan ages both pages, only the re-touched one has
        its bit set, so CLOCK must evict the other."""
        config = SimConfig(epc_pages=2, scan_period_cycles=1_000_000)
        driver = SgxDriver(config, Enclave("t", elrange_pages=100))
        t = driver.access(0, 0)
        t = driver.access(1, t)
        t = max(t, 1_000_001)  # a scan fires: both accessed bits clear
        t = driver.access(0, t)  # re-touch page 0 only
        t = driver.access(2, t)
        assert driver.epc.is_resident(0)
        assert not driver.epc.is_resident(1)

    def test_out_of_elrange_access_rejected(self):
        driver, _ = make_driver(elrange=10)
        with pytest.raises(SimulationError):
            driver.access(10, 0)

    def test_time_must_not_go_backwards(self):
        driver, _ = make_driver()
        driver.access(1, 10_000)
        with pytest.raises(SimulationError):
            driver.access(2, 5_000)

    def test_fault_counts_accesses(self):
        driver, _ = make_driver()
        t = driver.access(1, 0)
        t = driver.access(1, t)
        t = driver.access(2, t)
        s = driver.stats
        assert s.accesses == 3
        assert s.faults == 2
        assert s.epc_hits == 1
        assert s.fault_rate == pytest.approx(2 / 3)


class TestEwbHousekeeping:
    def test_isolated_fault_latency_excludes_ewb(self):
        """EWB is hidden from a lone fault's latency (Section 2's 60-64k
        stands even when the EPC is full)."""
        driver, config = make_driver(epc_pages=1, ewb_cycles=12_000)
        t = driver.access(0, 0)
        start = t + 100_000  # long gap: housekeeping fully hidden
        end = driver.access(1, start)
        assert end - start == config.cost.fault_cycles

    def test_back_to_back_faults_feel_heavy_ewb(self):
        """When the EWB outlasts the AEX+ERESUME gap between faults,
        the next demand load waits for the remainder."""
        ewb = 26_000  # > world_switch_cycles (20k): 6k leaks through
        driver, config = make_driver(epc_pages=1, ewb_cycles=ewb)
        t = driver.access(0, 0)  # no eviction yet (EPC had a free frame)
        t = driver.access(1, t)  # evicts 0; EWB housekeeping follows
        end = driver.access(2, t)  # load delayed by the EWB tail
        leak = ewb - config.cost.world_switch_cycles
        assert end - t == config.cost.fault_cycles + leak

    def test_back_to_back_faults_hide_light_ewb(self):
        """The default 12k EWB fits inside the 20k AEX+ERESUME gap, so
        consecutive demand faults never see it — consistent with the
        paper quoting 60k-64k per fault on a full EPC."""
        driver, config = make_driver(epc_pages=1, ewb_cycles=12_000)
        t = driver.access(0, 0)
        t = driver.access(1, t)
        end = driver.access(2, t)
        assert end - t == config.cost.fault_cycles


class TestFinish:
    def test_finish_propagates_channel_counters(self):
        driver, _ = make_driver()
        t = driver.access(1, 0)
        driver.finish(t)
        assert driver.stats.preloads_enqueued == 0
        assert driver.stats.preloads_aborted == 0
