"""Service-thread scan tests: CLOCK aging, preload accounting, valve
(Section 4.2)."""

import pytest

from repro.core.config import SimConfig
from repro.core.dfp import DfpConfig, DfpEngine
from repro.enclave.driver import SgxDriver
from repro.enclave.enclave import Enclave

SCAN = 100_000
LOAD = 44_000


def make(valve=True, slack=2, ratio=0.5):
    config = SimConfig(epc_pages=32, scan_period_cycles=SCAN)
    dfp = DfpEngine(
        DfpConfig(
            stream_list_length=8,
            load_length=4,
            valve_enabled=valve,
            valve_slack=slack,
            valve_ratio=ratio,
        )
    )
    driver = SgxDriver(config, Enclave("t", elrange_pages=2048), dfp=dfp)
    return driver, dfp


class TestScanScheduling:
    def test_scans_fire_on_schedule(self):
        driver, _ = make()
        driver.poll(5 * SCAN + 1)
        assert driver.stats.scans == 5

    def test_no_scan_before_first_period(self):
        driver, _ = make()
        driver.poll(SCAN - 1)
        assert driver.stats.scans == 0

    def test_scan_clears_accessed_bits(self):
        driver, _ = make()
        t = driver.access(1, 0)
        assert driver.epc.state_of(1).accessed
        driver.poll(SCAN + 1)
        assert not driver.epc.state_of(1).accessed


class TestPreloadAccounting:
    def _preload_and_touch(self, driver, touch: bool):
        t = driver.access(10, 0)
        t = driver.access(11, t)  # burst 12..15
        t += 5 * LOAD
        if touch:
            t = driver.access(12, t)
        return t

    def test_accessed_preload_credited_at_scan(self):
        driver, dfp = make(valve=False)
        t = self._preload_and_touch(driver, touch=True)
        driver.poll(((t // SCAN) + 1) * SCAN + 1)
        assert dfp.acc_preload_counter >= 1
        assert driver.stats.preloads_accessed >= 1
        # Credit clears the preloaded mark: no double counting.
        assert not driver.epc.state_of(12).preloaded

    def test_untouched_preload_not_credited(self):
        driver, dfp = make(valve=False)
        t = self._preload_and_touch(driver, touch=False)
        driver.poll(((t // SCAN) + 1) * SCAN + 1)
        assert dfp.acc_preload_counter == 0

    def test_preload_counter_tracks_completions(self):
        driver, dfp = make(valve=False)
        t = self._preload_and_touch(driver, touch=False)
        driver.finish(t + 10 * LOAD)
        assert dfp.preload_counter == driver.stats.preloads_completed == 4

    def test_eviction_of_accessed_preload_credits(self):
        """A correct preload evicted before the next scan still counts
        (the driver credits at EWB time)."""
        driver, dfp = make(valve=False)
        config_pages = driver.epc.capacity
        t = driver.access(10, 0)
        t = driver.access(11, t)
        t += 5 * LOAD
        t = driver.access(12, t)  # touch the preload
        # Force evictions by filling the EPC with cold faults.
        page = 1000
        while driver.stats.evictions < config_pages + 8:
            t = driver.access(page, t)
            page += 2  # non-sequential: no new streams extended
        assert dfp.acc_preload_counter + driver.stats.preloads_accessed >= 1


class TestValve:
    def test_valve_fires_on_bad_accuracy(self):
        driver, dfp = make(valve=True, slack=2, ratio=0.5)
        # Simulate a pathological run: many completed, none accessed.
        dfp.preload_counter = 100
        driver.poll(SCAN + 1)
        assert not dfp.active
        assert driver.stats.valve_stops == 1

    def test_valve_respects_slack(self):
        driver, dfp = make(valve=True, slack=1000, ratio=0.5)
        dfp.preload_counter = 100
        driver.poll(SCAN + 1)
        assert dfp.active

    def test_valve_quiet_on_good_accuracy(self):
        driver, dfp = make(valve=True, slack=2, ratio=0.5)
        dfp.preload_counter = 100
        dfp.acc_preload_counter = 90
        driver.poll(SCAN + 1)
        assert dfp.active

    def test_valve_stop_aborts_queue(self):
        driver, dfp = make(valve=True, slack=2, ratio=0.5)
        t = driver.access(10, 0)
        t = driver.access(11, t)  # burst queued
        dfp.preload_counter += 100  # poison the accounting
        driver.poll(((t // SCAN) + 1) * SCAN + 1)
        assert not dfp.active
        assert driver.channel.queued_pages == ()

    def test_valve_disabled_never_stops(self):
        driver, dfp = make(valve=False, slack=0)
        dfp.preload_counter = 10_000
        driver.poll(SCAN + 1)
        assert dfp.active
        assert driver.stats.valve_stops == 0
