"""Unit tests for the exclusive, non-preemptible load channel."""

import pytest

from repro.enclave.loader import LoadChannel, LoadKind
from repro.errors import ChannelError

LOAD = 44_000


class Recorder:
    """Collects (page, kind, finish) applications in order."""

    def __init__(self, evict_pages=()):
        self.applied = []
        self._evict_pages = set(evict_pages)

    def __call__(self, page, kind, finish):
        self.applied.append((page, kind, finish))
        return page in self._evict_pages

    @property
    def pages(self):
        return [p for p, _k, _f in self.applied]


def make(evict_cycles=0, evict_pages=()):
    rec = Recorder(evict_pages)
    chan = LoadChannel(LOAD, rec, evict_cycles=evict_cycles)
    return chan, rec


class TestConstruction:
    def test_zero_load_cycles_rejected(self):
        with pytest.raises(ChannelError):
            LoadChannel(0, lambda *a: False)

    def test_negative_evict_cycles_rejected(self):
        with pytest.raises(ChannelError):
            LoadChannel(LOAD, lambda *a: False, evict_cycles=-1)


class TestSynchronousLoads:
    def test_demand_load_takes_load_cycles(self):
        chan, rec = make()
        finish = chan.load_sync(5, LoadKind.DEMAND, 1000)
        assert finish == 1000 + LOAD
        assert rec.applied == [(5, LoadKind.DEMAND, 1000 + LOAD)]
        assert chan.demand_loads == 1

    def test_back_to_back_demands_serialize(self):
        chan, _ = make()
        f1 = chan.load_sync(1, LoadKind.DEMAND, 0)
        f2 = chan.load_sync(2, LoadKind.DEMAND, f1)
        assert f2 == 2 * LOAD

    def test_eviction_housekeeping_delays_next_load_not_this_one(self):
        """EWB runs after the landing page is usable: the faulting
        thread sees 44k, but a load right behind it sees the extra."""
        chan, _ = make(evict_cycles=12_000, evict_pages={1})
        f1 = chan.load_sync(1, LoadKind.DEMAND, 0)
        assert f1 == LOAD  # latency unchanged
        f2 = chan.load_sync(2, LoadKind.DEMAND, f1)
        assert f2 == f1 + 12_000 + LOAD  # throughput pays the EWB

    def test_preload_kind_rejected_on_sync_path(self):
        chan, _ = make()
        with pytest.raises(ChannelError):
            chan.load_sync(1, LoadKind.PRELOAD, 0)

    def test_sip_load_counted_separately(self):
        chan, _ = make()
        chan.load_sync(1, LoadKind.SIP, 0)
        assert chan.sip_loads == 1
        assert chan.demand_loads == 0


class TestBackgroundPreloads:
    def test_preloads_complete_at_natural_times(self):
        chan, rec = make()
        chan.enqueue_preloads([10, 11, 12], 1000)
        chan.advance_to(1000 + 3 * LOAD)
        assert rec.applied == [
            (10, LoadKind.PRELOAD, 1000 + LOAD),
            (11, LoadKind.PRELOAD, 1000 + 2 * LOAD),
            (12, LoadKind.PRELOAD, 1000 + 3 * LOAD),
        ]
        assert chan.preloads_completed == 3

    def test_advance_is_partial(self):
        chan, rec = make()
        chan.enqueue_preloads([10, 11], 0)
        chan.advance_to(LOAD)
        assert rec.pages == [10]
        assert chan.current_page == 11

    def test_idle_channel_starts_at_enqueue_time(self):
        """A long-idle channel must not backdate preload starts."""
        chan, rec = make()
        chan.load_sync(1, LoadKind.DEMAND, 0)  # free_at = 44k
        chan.enqueue_preloads([2], 500_000)
        chan.advance_to(500_000 + LOAD)
        assert rec.applied[-1] == (2, LoadKind.PRELOAD, 500_000 + LOAD)

    def test_duplicate_queued_page_rejected(self):
        chan, _ = make()
        chan.enqueue_preloads([5, 6], 0)  # 5 goes in flight, 6 queues
        with pytest.raises(ChannelError):
            chan.enqueue_preloads([6], 0)

    def test_is_queued_and_tags(self):
        chan, _ = make()
        tag_a = chan.enqueue_preloads([1, 2], 0)
        tag_b = chan.enqueue_preloads([3], 0)
        # Page 1 starts immediately (in flight), 2 and 3 stay queued.
        assert chan.current_page == 1 or chan.is_queued(1)
        assert chan.queued_tag(2) == tag_a
        assert chan.queued_tag(3) == tag_b
        assert chan.queued_tag(99) is None


class TestAborts:
    def test_abort_tag_drops_only_that_burst(self):
        chan, rec = make()
        tag_a = chan.enqueue_preloads([1, 2, 3], 0)
        tag_b = chan.enqueue_preloads([4, 5], 0)
        # Page 1 is in flight; abort burst A's remainder (2, 3).
        dropped = chan.abort_tag(tag_a, 0)
        assert dropped == 2
        chan.advance_to(10 * LOAD)
        # 1 (in flight, non-preemptible) and burst B complete.
        assert rec.pages == [1, 4, 5]
        assert chan.preloads_aborted == 2

    def test_abort_all(self):
        chan, rec = make()
        chan.enqueue_preloads([1, 2, 3], 0)
        assert chan.abort_all(0) == 2  # 1 already in flight
        chan.advance_to(10 * LOAD)
        assert rec.pages == [1]

    def test_abort_never_cancels_in_flight(self):
        """Non-preemptible: the in-flight load always completes."""
        chan, rec = make()
        tag = chan.enqueue_preloads([7], 0)
        chan.abort_tag(tag, 0)
        chan.advance_to(LOAD)
        assert rec.pages == [7]

    def test_abort_unknown_tag_is_noop(self):
        chan, _ = make()
        chan.enqueue_preloads([1, 2], 0)
        assert chan.abort_tag(12345, 0) == 0
        assert chan.is_queued(2)


class TestDrainSemantics:
    def test_demand_waits_for_whole_queue(self):
        """Section 5.6: the load-in path is exclusive — a demand load
        issued behind a 3-page burst waits for all of it."""
        chan, rec = make()
        chan.enqueue_preloads([1, 2, 3], 0)
        finish = chan.load_sync(9, LoadKind.DEMAND, 100)
        assert finish == 4 * LOAD
        assert rec.pages == [1, 2, 3, 9]

    def test_drain_on_idle_channel_returns_now(self):
        chan, _ = make()
        assert chan.drain(777) == 777

    def test_wait_for_current_rides_in_flight(self):
        chan, rec = make()
        chan.enqueue_preloads([5, 6], 0)
        t = chan.wait_for_current(10_000)
        assert t == LOAD
        assert rec.pages == [5]
        # The queued page 6 is untouched (still pending).
        assert chan.is_queued(6)

    def test_wait_for_current_idle_is_noop(self):
        chan, _ = make()
        assert chan.wait_for_current(123) == 123


class TestIsIdle:
    def test_idle_after_drain(self):
        chan, _ = make()
        chan.enqueue_preloads([1], 0)
        assert not chan.is_idle(100)
        assert chan.is_idle(LOAD)
