"""Unit tests for the enclave object and TCB accounting."""

import pytest

from repro import units
from repro.enclave.enclave import NOTIFICATION_STUB_LOC, Enclave
from repro.errors import ConfigError


class TestGeometry:
    def test_elrange_bytes(self):
        enclave = Enclave("app", elrange_pages=1024)
        assert enclave.elrange_bytes == 1024 * units.PAGE_SIZE

    def test_contains_page(self):
        enclave = Enclave("app", elrange_pages=10)
        assert enclave.contains_page(0)
        assert enclave.contains_page(9)
        assert not enclave.contains_page(10)
        assert not enclave.contains_page(-1)

    def test_empty_elrange_rejected(self):
        with pytest.raises(ConfigError):
            Enclave("app", elrange_pages=0)

    def test_negative_pid_rejected(self):
        with pytest.raises(ConfigError):
            Enclave("app", elrange_pages=1, pid=-1)


class TestTcbAccounting:
    def test_uninstrumented_enclave_adds_nothing(self):
        """DFP / baseline: zero TCB increase (Section 5.5)."""
        assert Enclave("app", elrange_pages=10).added_tcb_loc == 0

    def test_sip_adds_stub_plus_sites(self):
        """Section 5.5: the notification function is 23 lines of C,
        plus one site per instrumentation point."""
        enclave = Enclave("app", elrange_pages=10, instrumentation_points=35)
        assert enclave.added_tcb_loc == NOTIFICATION_STUB_LOC + 35
        assert NOTIFICATION_STUB_LOC == 23
