"""Unit tests for CLOCK (second chance) eviction."""

import pytest

from repro.enclave.epc import Epc
from repro.enclave.eviction import ClockEvictor
from repro.errors import EpcError


def make(capacity: int):
    epc = Epc(capacity)
    evictor = ClockEvictor(epc)
    return epc, evictor


def insert(epc, evictor, page, *, accessed=False):
    epc.insert(page)
    evictor.note_insert(page)
    if accessed:
        epc.mark_accessed(page)


class TestRingMaintenance:
    def test_double_insert_rejected(self):
        epc, evictor = make(4)
        insert(epc, evictor, 1)
        with pytest.raises(EpcError):
            evictor.note_insert(1)

    def test_evict_untracked_rejected(self):
        _epc, evictor = make(4)
        with pytest.raises(EpcError):
            evictor.note_evict(9)

    def test_slot_reuse_after_evict(self):
        epc, evictor = make(2)
        insert(epc, evictor, 0)
        insert(epc, evictor, 1)
        epc.evict(0)
        evictor.note_evict(0)
        insert(epc, evictor, 2)  # must not overflow the ring
        assert sorted(epc.resident_pages()) == [1, 2]


class TestVictimSelection:
    def test_empty_epc_rejected(self):
        _epc, evictor = make(4)
        with pytest.raises(EpcError):
            evictor.select_victim()

    def test_unaccessed_page_is_victim(self):
        epc, evictor = make(4)
        insert(epc, evictor, 0)
        assert evictor.select_victim() == 0

    def test_accessed_page_gets_second_chance(self):
        epc, evictor = make(4)
        insert(epc, evictor, 0, accessed=True)
        insert(epc, evictor, 1)
        assert evictor.select_victim() == 1
        assert evictor.second_chances == 1
        # The sweep cleared page 0's bit.
        assert not epc.state_of(0).accessed

    def test_all_accessed_falls_back_to_sweep_order(self):
        """When every page is accessed, the first revolution clears all
        bits and the second picks the first page swept."""
        epc, evictor = make(3)
        for page in range(3):
            insert(epc, evictor, page, accessed=True)
        victim = evictor.select_victim()
        assert victim == 0
        assert evictor.second_chances == 3

    def test_hand_advances_between_selections(self):
        """Consecutive victims differ: the hand does not reset."""
        epc, evictor = make(4)
        for page in range(4):
            insert(epc, evictor, page)
        first = evictor.select_victim()
        epc.evict(first)
        evictor.note_evict(first)
        second = evictor.select_victim()
        assert second != first

    def test_hot_page_survives_many_rounds(self):
        """A constantly re-accessed page is never chosen while cold
        pages remain."""
        epc, evictor = make(3)
        insert(epc, evictor, 0)  # hot
        insert(epc, evictor, 1)
        insert(epc, evictor, 2)
        for step in range(10, 20):
            epc.mark_accessed(0)
            victim = evictor.select_victim()
            assert victim != 0
            epc.evict(victim)
            evictor.note_evict(victim)
            insert(epc, evictor, step)
