"""Driver + DFP integration: bursts, rides, aborts (Sections 3.1/4.1)."""

import pytest

from repro.core.config import CostModel, SimConfig
from repro.core.dfp import DfpConfig, DfpEngine
from repro.enclave.driver import SgxDriver
from repro.enclave.enclave import Enclave

LOAD = 44_000
FAULT = 64_000


def make(epc_pages=32, load_length=4, valve=False, ewb=0):
    config = SimConfig(
        epc_pages=epc_pages,
        load_length=load_length,
        scan_period_cycles=10**9,
        cost=CostModel(ewb_cycles=ewb),
    )
    dfp = DfpEngine(
        DfpConfig(
            stream_list_length=8,
            load_length=load_length,
            valve_enabled=valve,
            valve_slack=4,
        )
    )
    driver = SgxDriver(config, Enclave("t", elrange_pages=4096), dfp=dfp)
    return driver, dfp


class TestBurstScheduling:
    def test_second_sequential_fault_triggers_burst(self):
        driver, dfp = make()
        t = driver.access(10, 0)
        assert driver.channel.is_idle(t)  # one fault: no pattern yet
        t = driver.access(11, t)
        # Burst 12..15 scheduled: channel busy or queued.
        assert not driver.channel.is_idle(t)
        driver.finish(t + 10 * LOAD)
        assert driver.stats.preloads_completed == 4
        for page in (12, 13, 14, 15):
            assert driver.epc.is_resident(page)

    def test_preloaded_pages_hit_without_fault(self):
        driver, _ = make()
        t = driver.access(10, 0)
        t = driver.access(11, t)
        t += 10 * LOAD  # plenty of time: burst lands
        before = driver.stats.faults
        t = driver.access(12, t)
        assert driver.stats.faults == before
        assert driver.stats.preload_hits >= 1

    def test_burst_filtered_of_resident_pages(self):
        driver, _ = make()
        t = driver.access(13, 0)  # 13 resident
        t = driver.access(10, t)
        t = driver.access(11, t)  # burst 12..15, but 13 already in
        driver.finish(t + 10 * LOAD)
        # 13 was not re-loaded: only 12, 14, 15 preloaded.
        assert driver.stats.preloads_enqueued == 3


class TestRidesAndAborts:
    def test_fault_rides_in_flight_preload(self):
        """A fault on the page currently loading waits only for that
        load — no second load is issued."""
        driver, _ = make()
        t = driver.access(10, 0)
        t = driver.access(11, t)  # burst 12..15 starts loading 12
        end = driver.access(12, t)  # immediately: 12 is in flight
        assert driver.stats.faults_absorbed_by_inflight == 1
        assert driver.channel.demand_loads == 2  # only the two cold faults

    def test_fault_on_queued_page_aborts_burst_remainder(self):
        """The paper's in-stream abort: fault inside the queued burst
        drops its remainder and demand-loads the page."""
        driver, dfp = make()
        t = driver.access(10, 0)
        t = driver.access(11, t)  # burst 12,13,14,15; 12 in flight
        t = driver.access(14, t)  # queued → abort 13 and 15, load 14
        assert dfp.aborted_preloads >= 2
        assert driver.epc.is_resident(14)
        driver.finish(t + 10 * LOAD)
        # 13 (behind the fault) stays aborted; the fault itself
        # extended the stream, so a *new* burst 15..18 was scheduled —
        # exactly the paper's "page(5) becomes the start of a new
        # stream" behaviour.
        assert not driver.epc.is_resident(13)
        for page in (15, 16, 17, 18):
            assert driver.epc.is_resident(page)

    def test_unrelated_fault_keeps_other_bursts(self):
        """Multi-stream correctness: stream B's fault must not cancel
        stream A's queued burst (it waits behind it instead)."""
        driver, dfp = make()
        t = driver.access(10, 0)
        t = driver.access(11, t)  # stream A burst 12..15
        t = driver.access(500, t)  # unrelated cold fault
        assert dfp.aborted_preloads == 0
        driver.finish(t + 20 * LOAD)
        for page in (12, 13, 14, 15):
            assert driver.epc.is_resident(page)

    def test_unrelated_fault_waits_behind_queue(self):
        """Section 5.6: the exclusive load-in path delays demand loads
        behind outstanding preloads — the cost of misprediction."""
        driver, _ = make()
        t = driver.access(10, 0)
        t = driver.access(11, t)  # burst of 4 queued
        start = t
        end = driver.access(500, t)
        # The fault waited for (most of) the burst plus its own load.
        assert end - start > FAULT + 2 * LOAD


class TestPredictorIntegration:
    def test_window_extension_across_bursts(self):
        """After a burst of LOADLENGTH, the next stream fault lands
        LOADLENGTH+1 ahead of the recorded tail and must still extend
        the stream (windowed matching)."""
        driver, dfp = make()
        t = driver.access(10, 0)
        t = driver.access(11, t)
        t += 10 * LOAD  # burst 12..15 lands
        t = driver.access(16, t)  # 5 ahead of tail 11: extension
        driver.finish(t + 10 * LOAD)
        assert dfp.predictor.stream_hits >= 2
        for page in (17, 18, 19, 20):
            assert driver.epc.is_resident(page)

    def test_dfp_disabled_after_valve_stop(self):
        driver, dfp = make(valve=True)
        # Force the valve: lots of completed preloads, none accessed.
        dfp.preload_counter = 1000
        assert dfp.check_valve()
        assert not dfp.active
        t = driver.access(10, 0)
        t = driver.access(11, t)
        driver.finish(t + 10 * LOAD)
        assert driver.stats.preloads_enqueued == 0
