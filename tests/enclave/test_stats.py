"""RunStats / TimeBreakdown accounting."""

import pytest

from repro.enclave.stats import RunStats, TimeBreakdown


class TestTimeBreakdown:
    def test_total_sums_buckets(self):
        tb = TimeBreakdown(
            compute=100, aex=10, eresume=10, fault_wait=44, sip_check=1, sip_wait=5
        )
        assert tb.total == 170

    def test_overhead_excludes_compute(self):
        tb = TimeBreakdown(compute=100, aex=10, fault_wait=44)
        assert tb.overhead == 54

    def test_empty_is_zero(self):
        assert TimeBreakdown().total == 0


class TestRunStats:
    def test_fault_rate(self):
        stats = RunStats(accesses=10, faults=3)
        assert stats.fault_rate == pytest.approx(0.3)

    def test_fault_rate_empty_run(self):
        assert RunStats().fault_rate == 0.0

    def test_preload_accuracy(self):
        stats = RunStats(preloads_completed=8, preloads_accessed=6)
        assert stats.preload_accuracy == pytest.approx(0.75)

    def test_preload_accuracy_without_preloads(self):
        assert RunStats().preload_accuracy == 0.0

    def test_total_cycles_delegates_to_breakdown(self):
        stats = RunStats()
        stats.time.compute = 123
        assert stats.total_cycles == 123
