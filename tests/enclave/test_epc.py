"""Unit tests for the EPC frame pool."""

import pytest

from repro.enclave.epc import Epc
from repro.errors import EpcError


class TestConstruction:
    def test_capacity_required_positive(self):
        with pytest.raises(EpcError):
            Epc(0)

    def test_starts_empty(self):
        epc = Epc(8)
        assert epc.resident_count == 0
        assert epc.free_frames == 8
        assert not epc.is_full


class TestInsertEvict:
    def test_insert_makes_resident(self):
        epc = Epc(4)
        epc.insert(7)
        assert epc.is_resident(7)
        assert epc.resident_count == 1

    def test_insert_duplicate_rejected(self):
        epc = Epc(4)
        epc.insert(7)
        with pytest.raises(EpcError):
            epc.insert(7)

    def test_insert_into_full_epc_rejected(self):
        """The physical constraint: no frame, no load."""
        epc = Epc(2)
        epc.insert(0)
        epc.insert(1)
        assert epc.is_full
        with pytest.raises(EpcError):
            epc.insert(2)

    def test_evict_frees_frame(self):
        epc = Epc(2)
        epc.insert(0)
        epc.insert(1)
        epc.evict(0)
        assert not epc.is_resident(0)
        assert epc.free_frames == 1
        epc.insert(2)  # frame reusable
        assert epc.is_resident(2)

    def test_evict_non_resident_rejected(self):
        with pytest.raises(EpcError):
            Epc(2).evict(5)

    def test_lifetime_counters(self):
        epc = Epc(2)
        epc.insert(0)
        epc.insert(1)
        epc.evict(0)
        epc.insert(2)
        assert epc.total_inserts == 3
        assert epc.total_evictions == 1

    def test_evict_returns_final_state(self):
        epc = Epc(2)
        epc.insert(0, preloaded=True)
        epc.mark_accessed(0)
        state = epc.evict(0)
        assert state.preloaded and state.accessed


class TestFlags:
    def test_insert_clears_accessed(self):
        epc = Epc(2)
        state = epc.insert(3)
        assert not state.accessed

    def test_preloaded_flag_set_on_preload_insert(self):
        epc = Epc(2)
        assert epc.insert(3, preloaded=True).preloaded
        assert not epc.insert(4).preloaded

    def test_mark_and_clear_accessed(self):
        epc = Epc(2)
        epc.insert(3)
        epc.mark_accessed(3)
        assert epc.state_of(3).accessed
        epc.clear_accessed(3)
        assert not epc.state_of(3).accessed

    def test_mark_accessed_non_resident_rejected(self):
        with pytest.raises(EpcError):
            Epc(2).mark_accessed(9)

    def test_state_of_non_resident_rejected(self):
        with pytest.raises(EpcError):
            Epc(2).state_of(9)


class TestIteration:
    def test_resident_pages_iterates_all(self):
        epc = Epc(8)
        for page in (3, 5, 7):
            epc.insert(page)
        assert sorted(epc.resident_pages()) == [3, 5, 7]
