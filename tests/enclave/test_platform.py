"""Shared-platform (multi-enclave) unit tests."""

import pytest

from repro.core.config import SimConfig
from repro.core.dfp import DfpConfig, DfpEngine
from repro.enclave.driver import SgxDriver
from repro.enclave.enclave import Enclave
from repro.enclave.platform import SharedPlatform
from repro.errors import SimulationError


def make_platform(epc_pages=8):
    config = SimConfig(epc_pages=epc_pages, scan_period_cycles=10**9)
    return SharedPlatform(config), config


def add_enclave(platform, config, name, base, pages, dfp=False):
    enclave = Enclave(name, elrange_pages=pages, base_page=base)
    engine = (
        DfpEngine(DfpConfig(stream_list_length=4, load_length=4, valve_enabled=False))
        if dfp
        else None
    )
    return SgxDriver(config, enclave, dfp=engine, platform=platform)


class TestRegistration:
    def test_disjoint_ranges_accepted(self):
        platform, config = make_platform()
        a = add_enclave(platform, config, "a", 0, 100)
        b = add_enclave(platform, config, "b", 100, 100)
        assert platform.drivers == (a, b)

    def test_overlapping_ranges_rejected(self):
        platform, config = make_platform()
        add_enclave(platform, config, "a", 0, 100)
        with pytest.raises(SimulationError):
            add_enclave(platform, config, "b", 50, 100)

    def test_owner_lookup(self):
        platform, config = make_platform()
        a = add_enclave(platform, config, "a", 0, 100)
        b = add_enclave(platform, config, "b", 100, 100)
        assert platform.owner_of(5) is a
        assert platform.owner_of(100) is b
        assert platform.owner_of(199) is b
        assert platform.owner_of(200) is None

    def test_single_enclave_gets_private_platform(self):
        config = SimConfig(epc_pages=8, scan_period_cycles=10**9)
        a = SgxDriver(config, Enclave("a", elrange_pages=10))
        b = SgxDriver(config, Enclave("b", elrange_pages=10))
        assert a.platform is not b.platform
        assert a.epc is not b.epc


class TestSharedResources:
    def test_enclaves_share_frames(self):
        platform, config = make_platform(epc_pages=4)
        a = add_enclave(platform, config, "a", 0, 100)
        b = add_enclave(platform, config, "b", 100, 100)
        t = a.access(0, 0)
        t = b.access(100, t)
        assert platform.epc.resident_count == 2
        assert a.epc is b.epc

    def test_cross_enclave_eviction_attribution(self):
        """When B's load evicts A's page, A gets the eviction stat."""
        platform, config = make_platform(epc_pages=2)
        a = add_enclave(platform, config, "a", 0, 100)
        b = add_enclave(platform, config, "b", 100, 100)
        t = a.access(0, 0)
        t = a.access(1, t)  # EPC full with A's pages
        # Age the bits so CLOCK evicts A's pages freely.
        for page in list(platform.epc.resident_pages()):
            platform.epc.clear_accessed(page)
        t = b.access(100, t)
        assert a.stats.evictions == 1
        assert b.stats.evictions == 0
        assert platform.epc.is_resident(100)

    def test_channel_shared_demands_serialize(self):
        """B's fault right behind A's waits on the exclusive channel."""
        platform, config = make_platform()
        a = add_enclave(platform, config, "a", 0, 100)
        b = add_enclave(platform, config, "b", 100, 100)
        a_end = a.access(0, 0)
        # B faults 1 cycle after A's fault started: its load waits for
        # A's in-channel time.
        b_end = b.access(100, 1)
        assert b_end > config.cost.fault_cycles + 1

    def test_access_to_other_enclaves_pages_rejected(self):
        platform, config = make_platform()
        a = add_enclave(platform, config, "a", 0, 100)
        add_enclave(platform, config, "b", 100, 100)
        with pytest.raises(SimulationError):
            a.access(150, 0)


class TestSharedScan:
    def test_scan_runs_once_globally(self):
        config = SimConfig(epc_pages=8, scan_period_cycles=1000)
        platform = SharedPlatform(config)
        a = add_enclave(platform, config, "a", 0, 100)
        b = add_enclave(platform, config, "b", 100, 100)
        a.poll(5_000)
        b.poll(5_000)
        # 5 scan periods elapsed: each driver observed 5 scans, not 10.
        assert a.stats.scans == 5
        assert b.stats.scans == 5

    def test_preload_credit_routed_to_owner(self):
        config = SimConfig(epc_pages=32, scan_period_cycles=500_000)
        platform = SharedPlatform(config)
        a = add_enclave(platform, config, "a", 0, 1000, dfp=True)
        b = add_enclave(platform, config, "b", 1000, 1000, dfp=True)
        t = a.access(10, 0)
        t = a.access(11, t)  # A's burst 12..15
        t += 5 * 44_000
        t = a.access(12, t)  # touch A's preload
        a.poll(1_000_001)
        b.poll(1_000_001)
        assert a._dfp.acc_preload_counter >= 1
        assert b._dfp.acc_preload_counter == 0

    def test_valve_abort_only_cancels_own_bursts(self):
        config = SimConfig(
            epc_pages=64, scan_period_cycles=500_000, valve_slack=0
        )
        platform = SharedPlatform(config)
        a = add_enclave(platform, config, "a", 0, 1000, dfp=True)
        b_engine = DfpEngine(
            DfpConfig(
                stream_list_length=4,
                load_length=4,
                valve_enabled=True,
                valve_slack=0,
            )
        )
        b = SgxDriver(
            config,
            Enclave("b", elrange_pages=1000, base_page=1000),
            dfp=b_engine,
            platform=platform,
        )
        t = a.access(10, 0)
        t = a.access(11, t)  # A's burst queued/in flight
        t = b.access(1010, t)
        t = b.access(1011, t)  # B's burst queued
        # Fire B's valve artificially.
        b._dfp.preload_counter = 10_000
        queued_before = set(platform.channel.queued_pages)
        b._after_scan(t, 0)
        queued_after = set(platform.channel.queued_pages)
        # Only B's pages (>= 1000) disappeared from the queue.
        assert all(page < 1000 for page in queued_after)
        assert queued_before - queued_after <= {1012, 1013, 1014, 1015}
