"""Unit contract of :class:`repro.enclave.sanitizer.SimSanitizer`.

These tests drive the hooks directly against stub EPC/channel state so
each invariant can be violated in isolation; the end-to-end injection
tests live in ``tests/integration/test_sanitizer_end_to_end.py``.
"""

import pytest

from repro.enclave.events import EventKind
from repro.enclave.loader import LoadKind
from repro.enclave.sanitizer import TRACE_TAIL_LENGTH, SimSanitizer
from repro.enclave.stats import RunStats
from repro.errors import ReproError, SanitizerError, SimulationError


class StubEpc:
    """Just enough EPC surface for the sanitizer: residency + capacity."""

    def __init__(self, capacity=4, resident=()):
        self.capacity = capacity
        self.resident = set(resident)

    @property
    def resident_count(self):
        return len(self.resident)

    def is_resident(self, page):
        return page in self.resident


class StubChannel:
    """Just enough channel surface: the in-flight page and the queue."""

    def __init__(self, current=None, queued=()):
        self.current_page = current
        self.queued = set(queued)

    def is_queued(self, page):
        return page in self.queued


def make_sanitizer(epc=None, channel=None, **kwargs):
    return SimSanitizer(
        epc if epc is not None else StubEpc(),
        channel if channel is not None else StubChannel(),
        **kwargs,
    )


class TestErrorType:
    def test_sanitizer_error_is_a_simulation_error(self):
        assert issubclass(SanitizerError, SimulationError)
        assert issubclass(SanitizerError, ReproError)

    def test_error_carries_and_formats_the_trace(self):
        exc = SanitizerError("boom", trace=["[1] aex", "[2] scan"])
        assert exc.trace == ("[1] aex", "[2] scan")
        assert "event trace" in str(exc)
        assert "[2] scan" in str(exc)

    def test_error_without_trace_is_plain(self):
        exc = SanitizerError("boom")
        assert exc.trace == ()
        assert str(exc) == "boom"


class TestLoadChecks:
    def test_clean_load_passes_and_counts_checks(self):
        san = make_sanitizer(StubEpc(capacity=4, resident={7}))
        san.check_load(7, LoadKind.DEMAND, finish=100)
        assert san.checks == 3
        assert san.violations == 0

    def test_overcommitted_epc_is_caught(self):
        san = make_sanitizer(StubEpc(capacity=2, resident={1, 2, 3}))
        with pytest.raises(SanitizerError, match="over-committed"):
            san.check_load(3, LoadKind.PRELOAD, finish=100)
        assert san.violations == 1

    def test_load_that_did_not_land_is_caught(self):
        san = make_sanitizer(StubEpc(capacity=4, resident=()))
        with pytest.raises(SanitizerError, match="not resident"):
            san.check_load(9, LoadKind.DEMAND, finish=100)

    def test_resident_page_still_queued_is_caught(self):
        san = make_sanitizer(
            StubEpc(capacity=4, resident={5}), StubChannel(queued={5})
        )
        with pytest.raises(SanitizerError, match="still queued"):
            san.check_load(5, LoadKind.DEMAND, finish=100)

    def test_redundant_preload_always_fails(self):
        san = make_sanitizer()
        with pytest.raises(SanitizerError, match="already resident"):
            san.check_redundant_preload(5, finish=100)


class TestEnqueueAndAbortChecks:
    def test_enqueueing_resident_page_is_caught(self):
        san = make_sanitizer(StubEpc(capacity=4, resident={3}))
        with pytest.raises(SanitizerError, match="already\\s+resident"):
            san.check_enqueue([2, 3], now=50)

    def test_enqueueing_inflight_page_is_caught(self):
        san = make_sanitizer(channel=StubChannel(current=8))
        with pytest.raises(SanitizerError, match="in flight"):
            san.check_enqueue([8], now=50)

    def test_enqueueing_queued_page_is_caught(self):
        san = make_sanitizer(channel=StubChannel(queued={4}))
        with pytest.raises(SanitizerError, match="already\\s+queued"):
            san.check_enqueue([4], now=50)

    def test_abort_of_loaded_page_is_caught(self):
        san = make_sanitizer(StubEpc(capacity=4, resident={6}))
        with pytest.raises(SanitizerError, match="already loaded"):
            san.check_abort([6], now=70)

    def test_abort_of_queued_only_pages_passes(self):
        san = make_sanitizer(StubEpc(capacity=4, resident={1}))
        san.check_abort([2, 3], now=70)
        assert san.violations == 0

    def test_enqueue_is_recorded_in_the_trace(self):
        san = make_sanitizer(StubEpc(capacity=4, resident={3}))
        with pytest.raises(SanitizerError) as excinfo:
            san.check_enqueue([3], now=50)
        assert any("enqueue burst" in entry for entry in excinfo.value.trace)


class TestCounterChecks:
    def test_monotone_counters_pass(self):
        san = make_sanitizer()
        san.check_counters(10, 4, now=100)
        san.check_counters(12, 6, now=200)
        assert san.violations == 0

    def test_acc_exceeding_preload_is_caught(self):
        san = make_sanitizer()
        with pytest.raises(SanitizerError, match="exceeds PreloadCounter"):
            san.check_counters(5, 6, now=100)

    def test_preload_counter_decrease_is_caught(self):
        san = make_sanitizer()
        san.check_counters(10, 4, now=100)
        with pytest.raises(SanitizerError, match="PreloadCounter decreased"):
            san.check_counters(9, 4, now=200)

    def test_acc_counter_decrease_is_caught(self):
        san = make_sanitizer()
        san.check_counters(10, 4, now=100)
        with pytest.raises(SanitizerError, match="AccPreloadCounter decreased"):
            san.check_counters(11, 3, now=200)

    def test_scan_is_recorded_in_the_trace(self):
        san = make_sanitizer()
        san.check_counters(10, 4, now=100)
        assert any("PreloadCounter=10" in entry for entry in san.trace_tail)


class TestTickChecks:
    def test_matching_accounting_passes(self):
        stats = RunStats()
        stats.time.compute = 700
        stats.time.aex = 300
        san = make_sanitizer()
        san.check_tick(stats, clock=1000, now=900)
        assert san.violations == 0

    def test_drifted_accounting_is_caught_with_delta(self):
        stats = RunStats()
        stats.time.compute = 999
        san = make_sanitizer()
        with pytest.raises(SanitizerError, match=r"drifted.*-1"):
            san.check_tick(stats, clock=1000, now=900)

    def test_final_check_covers_abort_accounting(self):
        stats = RunStats()
        stats.preloads_enqueued = 3
        stats.preloads_aborted = 5
        san = make_sanitizer()
        with pytest.raises(SanitizerError, match="more preloads aborted"):
            san.check_final(stats, clock=0)


class TestTrace:
    def test_ring_buffer_is_bounded(self):
        san = make_sanitizer()
        for i in range(TRACE_TAIL_LENGTH * 3):
            san.record_event(EventKind.AEX, i, i + 1)
        assert len(san.trace_tail) == TRACE_TAIL_LENGTH

    def test_events_format_with_kind_and_page(self):
        san = make_sanitizer()
        san.record_event(EventKind.PRELOAD, 10, 54, page=42)
        assert san.trace_tail[-1] == "[10..54] preload page=42"

    def test_label_prefixes_failures(self):
        san = make_sanitizer(StubEpc(capacity=1, resident={1, 2}), label="lbm")
        with pytest.raises(SanitizerError, match="^lbm:"):
            san.check_load(1, LoadKind.DEMAND, finish=5)
