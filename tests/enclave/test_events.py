"""Timeline event recording (the Figure 2 / Figure 4 data source)."""

from repro.core.config import SimConfig
from repro.core.dfp import DfpConfig, DfpEngine
from repro.enclave.driver import SgxDriver
from repro.enclave.enclave import Enclave
from repro.enclave.events import EventKind, TimelineEvent


def make(record=True, dfp=False):
    config = SimConfig(epc_pages=16, scan_period_cycles=10**9)
    engine = (
        DfpEngine(DfpConfig(stream_list_length=4, load_length=4, valve_enabled=False))
        if dfp
        else None
    )
    return SgxDriver(
        config, Enclave("t", elrange_pages=256), dfp=engine, record_events=record
    )


class TestRecording:
    def test_fault_produces_aex_load_eresume(self):
        driver = make()
        driver.access(5, 0)
        kinds = [e.kind for e in driver.events]
        assert kinds == [EventKind.AEX, EventKind.DEMAND_LOAD, EventKind.ERESUME]

    def test_events_are_time_ordered_and_contiguous(self):
        driver = make()
        driver.access(5, 0)
        events = driver.events
        for prev, cur in zip(events, events[1:]):
            assert cur.start >= prev.start

    def test_preload_events_recorded(self):
        driver = make(dfp=True)
        t = driver.access(10, 0)
        t = driver.access(11, t)
        driver.finish(t + 1_000_000)
        preloads = [e for e in driver.events if e.kind is EventKind.PRELOAD]
        assert [e.page for e in preloads] == [12, 13, 14, 15]

    def test_sip_events_recorded(self):
        driver = make()
        driver.sip_prefetch(5, 0)
        kinds = [e.kind for e in driver.events]
        assert kinds == [EventKind.SIP_CHECK, EventKind.SIP_LOAD]

    def test_recording_off_by_default(self):
        driver = make(record=False)
        driver.access(5, 0)
        assert driver.events == []


class TestTimelineEvent:
    def test_duration(self):
        event = TimelineEvent(EventKind.AEX, 100, 350)
        assert event.duration == 250

    def test_str_includes_page_when_present(self):
        event = TimelineEvent(EventKind.PRELOAD, 0, 10, page=7)
        assert "page=7" in str(event)
        assert "page" not in str(TimelineEvent(EventKind.AEX, 0, 10))
