"""Driver SIP-notification path tests (Sections 3.2/4.3, Figure 4)."""

import pytest

from repro.core.config import CostModel, SimConfig
from repro.enclave.driver import SgxDriver
from repro.enclave.enclave import Enclave


def make(epc_pages=16, **cost_overrides):
    cost = CostModel(**cost_overrides)
    config = SimConfig(epc_pages=epc_pages, cost=cost, scan_period_cycles=10**9)
    driver = SgxDriver(config, Enclave("t", elrange_pages=1024))
    return driver, cost


class TestCheckOnly:
    def test_resident_page_costs_only_the_check(self):
        driver, cost = make()
        t = driver.access(5, 0)
        end = driver.sip_prefetch(5, t)
        assert end - t == cost.bitmap_check_cycles
        assert driver.stats.sip_checks == 1
        assert driver.stats.sip_check_hits == 1
        assert driver.stats.sip_loads == 0

    def test_bitmap_read_counted(self):
        driver, _ = make()
        t = driver.access(5, 0)
        driver.sip_prefetch(5, t)
        assert driver.bitmap.reads == 1


class TestLoadPath:
    def test_absent_page_loaded_without_world_switch(self):
        """Figure 4: SIP converts AEX+load+ERESUME into
        check+load+notification."""
        driver, cost = make()
        end = driver.sip_prefetch(7, 0)
        expected = (
            cost.bitmap_check_cycles
            + cost.page_load_cycles
            + cost.notification_cycles
        )
        assert end == expected
        assert driver.epc.is_resident(7)
        assert driver.stats.sip_loads == 1
        # No fault, no AEX, no ERESUME happened.
        assert driver.stats.faults == 0
        assert driver.stats.time.aex == 0
        assert driver.stats.time.eresume == 0

    def test_sip_cheaper_than_fault(self):
        """The scheme's raison d'etre: the notification path must beat
        the fault path by about AEX + ERESUME - notification."""
        driver, cost = make()
        sip_cost = driver.sip_prefetch(7, 0)
        fault_cost = cost.fault_cycles + cost.bitmap_check_cycles
        saving = fault_cost - sip_cost
        expected = cost.world_switch_cycles - cost.notification_cycles
        assert saving == expected
        assert saving > 0

    def test_following_access_hits(self):
        driver, _ = make()
        t = driver.sip_prefetch(7, 0)
        end = driver.access(7, t)
        assert end == t
        assert driver.stats.epc_hits == 1

    def test_sip_load_evicts_when_full(self):
        driver, _ = make(epc_pages=2)
        t = driver.access(0, 0)
        t = driver.access(1, t)
        t = driver.sip_prefetch(2, t)
        assert driver.epc.is_resident(2)
        assert driver.stats.evictions == 1

    def test_out_of_elrange_rejected(self):
        from repro.errors import SimulationError

        driver, _ = make()
        with pytest.raises(SimulationError):
            driver.sip_prefetch(5000, 0)


class TestTimeAttribution:
    def test_sip_buckets(self):
        driver, cost = make()
        end = driver.sip_prefetch(7, 0)
        tb = driver.stats.time
        assert tb.sip_check == cost.bitmap_check_cycles
        assert tb.sip_wait == end - cost.bitmap_check_cycles
        assert tb.total == end
