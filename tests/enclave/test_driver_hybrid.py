"""Driver-level SIP + DFP interplay (the hybrid scheme's mechanics)."""

import pytest

from repro.core.config import SimConfig
from repro.core.dfp import DfpConfig, DfpEngine
from repro.enclave.driver import SgxDriver
from repro.enclave.enclave import Enclave

LOAD = 44_000


def make(epc_pages=64):
    config = SimConfig(epc_pages=epc_pages, scan_period_cycles=10**9)
    dfp = DfpEngine(
        DfpConfig(stream_list_length=8, load_length=4, valve_enabled=False)
    )
    driver = SgxDriver(config, Enclave("t", elrange_pages=4096), dfp=dfp)
    return driver, dfp, config


class TestSipDoesNotDisturbDfp:
    def test_sip_load_keeps_queued_bursts(self):
        """A SIP load is not a misprediction signal: the queued burst
        of a healthy stream survives it (unlike a demand fault inside
        the burst)."""
        driver, dfp, _ = make()
        t = driver.access(10, 0)
        t = driver.access(11, t)  # burst 12..15 queued
        t = driver.sip_prefetch(500, t)  # unrelated irregular page
        assert dfp.aborted_preloads == 0
        driver.finish(t + 20 * LOAD)
        for page in (12, 13, 14, 15):
            assert driver.epc.is_resident(page)

    def test_sip_load_waits_behind_preloads(self):
        """The exclusive channel serializes SIP loads behind queued
        preload work, like any other load-in."""
        driver, _, config = make()
        t = driver.access(10, 0)
        t = driver.access(11, t)  # 4-page burst on the channel
        start = t
        end = driver.sip_prefetch(500, t)
        min_cost = (
            config.cost.bitmap_check_cycles
            + config.cost.page_load_cycles
            + config.cost.notification_cycles
        )
        assert end - start > min_cost  # paid queue-drain time too

    def test_sip_check_hit_on_preloaded_page(self):
        """A page DFP already brought in makes the SIP stub a pure
        check — the schemes hand off cleanly."""
        driver, _, config = make()
        t = driver.access(10, 0)
        t = driver.access(11, t)
        t += 10 * LOAD  # burst 12..15 lands
        end = driver.sip_prefetch(12, t)
        assert end - t == config.cost.bitmap_check_cycles
        assert driver.stats.sip_check_hits == 1
        assert driver.stats.sip_loads == 0


class TestDfpSeesSipLoads:
    def test_sip_loaded_page_prevents_future_fault(self):
        driver, _, _ = make()
        t = driver.sip_prefetch(700, 0)
        end = driver.access(700, t)
        assert end == t
        assert driver.stats.faults == 0

    def test_sip_load_is_not_a_fault_for_the_predictor(self):
        """The predictor consumes *fault* history; SIP loads bypass the
        fault handler, so they must not extend streams."""
        driver, dfp, _ = make()
        t = driver.sip_prefetch(700, 0)
        t = driver.access(700, t)
        # A fault at 701 sees no stream (700 never reached the
        # predictor): it is a miss, not an extension.
        t = driver.access(701, t)
        assert dfp.predictor.stream_hits == 0

    def test_burst_filter_skips_sip_resident_pages(self):
        driver, _, _ = make()
        t = driver.sip_prefetch(13, 0)  # 13 resident via SIP
        t = driver.access(10, t)
        t = driver.access(11, t)  # burst 12..15, 13 filtered
        driver.finish(t + 20 * LOAD)
        assert driver.stats.preloads_enqueued == 3
