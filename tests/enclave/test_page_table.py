"""Unit tests for the shared residency bitmap (Section 4.3)."""

import pytest

from repro.enclave.epc import Epc
from repro.enclave.page_table import SharedBitmap
from repro.errors import EpcError


class TestSharedBitmap:
    def test_reflects_residency(self):
        epc = Epc(4)
        bitmap = SharedBitmap(epc, elrange_pages=100)
        assert not bitmap.check(5)
        epc.insert(5)
        assert bitmap.check(5)
        epc.evict(5)
        assert not bitmap.check(5)

    def test_out_of_elrange_rejected(self):
        bitmap = SharedBitmap(Epc(4), elrange_pages=10)
        with pytest.raises(EpcError):
            bitmap.check(10)
        with pytest.raises(EpcError):
            bitmap.check(-1)

    def test_read_counter(self):
        bitmap = SharedBitmap(Epc(4), elrange_pages=10)
        for page in range(5):
            bitmap.check(page)
        assert bitmap.reads == 5

    def test_size_is_one_bit_per_page(self):
        """The prototype's bitmap array: one bit per ELRANGE page."""
        bitmap = SharedBitmap(Epc(4), elrange_pages=24_576)
        assert bitmap.size_bytes == 3_072  # 24576 / 8

    def test_size_rounds_up(self):
        assert SharedBitmap(Epc(4), elrange_pages=9).size_bytes == 2

    def test_empty_elrange_rejected(self):
        with pytest.raises(EpcError):
            SharedBitmap(Epc(4), elrange_pages=0)
