"""Observation under resilience: passive, exactly-once, truthful.

PR 5's core claim is that attaching execution telemetry to a resilient
run changes nothing about the run itself — results and manifests stay
byte-identical to a blind serial reference even while workers crash
and retry — and that worker telemetry arrives exactly once per job no
matter how many attempts the job burned.
"""

import json

import pytest

from repro.core.config import SimConfig
from repro.obs.exec_telemetry import ExecTelemetry, TelemetryConfig
from repro.obs.manifest import build_manifest
from repro.robust import ExecutionPolicy, FaultKind, FaultPlan, RetryPolicy
from repro.sim.parallel import JobSpec, WorkloadSpec, run_jobs

SPEC = WorkloadSpec("microbenchmark", 64)


def make_specs(count=4):
    base = SimConfig.scaled(64)
    return [
        JobSpec(
            workload=SPEC,
            config=base.replace(load_length=value),
            scheme="dfp-stop",
        )
        for value in range(1, count + 1)
    ]


def chaos_policy(jobs=4):
    return ExecutionPolicy(
        jobs=jobs,
        retry=RetryPolicy(max_attempts=3, base_delay=0.01),
        fault_plan=FaultPlan.script(
            {(0, 1): FaultKind.CRASH, (2, 1): FaultKind.CRASH}
        ),
    )


def manifest_bytes(results):
    return [
        json.dumps(build_manifest(r), sort_keys=True, indent=2).encode()
        for r in results
    ]


class TestObservationIsPassive:
    def test_observed_chaotic_run_matches_blind_serial(self):
        specs = make_specs()
        reference = run_jobs(specs)
        telemetry = ExecTelemetry(TelemetryConfig(metrics=True, trace=True))
        observed = run_jobs(
            specs, policy=chaos_policy(), telemetry=telemetry
        )
        assert observed == reference
        assert manifest_bytes(observed) == manifest_bytes(reference)
        assert telemetry.total_retries == 2  # both crashes burned one

    def test_shipped_results_carry_no_telemetry_fields(self):
        # The worker strips metrics/events off the result before the
        # digest; the parent re-attaches nothing — shipped telemetry
        # lives only on the collector.
        telemetry = ExecTelemetry(TelemetryConfig(metrics=True))
        results = run_jobs(
            make_specs(2), policy=ExecutionPolicy(jobs=2), telemetry=telemetry
        )
        assert all(r.metrics is None for r in results)
        assert all(r.events is None for r in results)
        assert telemetry.merged_metrics()  # ...but it did arrive

    def test_collector_without_config_observes_spans_only(self):
        # A bare collector (sweep-progress health counting) narrates
        # the schedule but asks workers for nothing.
        telemetry = ExecTelemetry()
        results = run_jobs(
            make_specs(2), policy=ExecutionPolicy(jobs=2), telemetry=telemetry
        )
        assert len(results) == 2
        assert telemetry.total_attempts == 2
        assert telemetry.worker_for(0) is None
        assert telemetry.merged_metrics() == {}


class TestExactlyOnceDelivery:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_one_payload_per_job_across_retries(self, jobs):
        specs = make_specs()
        telemetry = ExecTelemetry(TelemetryConfig(metrics=True))
        run_jobs(specs, policy=chaos_policy(jobs=jobs), telemetry=telemetry)
        for job in range(len(specs)):
            assert telemetry.deliveries_for(job) == 1
            assert telemetry.worker_for(job) is not None

    def test_merged_metrics_equal_the_sum_of_job_dumps(self):
        specs = make_specs()
        telemetry = ExecTelemetry(TelemetryConfig(metrics=True))
        run_jobs(specs, policy=chaos_policy(), telemetry=telemetry)
        per_job = [
            telemetry.worker_for(job).metrics for job in range(len(specs))
        ]
        merged = telemetry.merged_metrics()
        key = "app.accesses"
        assert merged[key] == sum(dump[key] for dump in per_job)

    def test_retried_attempts_are_tallied_but_not_double_delivered(self):
        telemetry = ExecTelemetry(TelemetryConfig(metrics=True))
        run_jobs(make_specs(), policy=chaos_policy(), telemetry=telemetry)
        block = telemetry.as_dict()
        crashed = {
            entry["job"]: entry
            for entry in block["jobs"]["per_job"]
            if entry["faults"]
        }
        assert set(crashed) == {0, 2}
        for entry in crashed.values():
            assert entry["attempts"] == 2
            assert entry["retries"] == 1
            assert entry["faults"] == {"crash": 1}
