"""RetryPolicy and ExecutionPolicy: validation, defaults, resolution."""

import pytest

from repro.errors import ConfigError
from repro.robust import ExecutionPolicy, FaultPlan, RetryPolicy, resolve_policy


class TestRetryPolicy:
    def test_defaults_are_the_pre_policy_behaviour(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.timeout is None
        assert not policy.retries_enabled

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(max_attempts=8, base_delay=0.1, max_delay=0.5)
        assert policy.delay_for(1) == pytest.approx(0.1)
        assert policy.delay_for(2) == pytest.approx(0.2)
        assert policy.delay_for(3) == pytest.approx(0.4)
        assert policy.delay_for(4) == pytest.approx(0.5)  # capped
        assert policy.delay_for(10) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ConfigError):
            RetryPolicy().delay_for(0)


class TestExecutionPolicy:
    def test_default_policy_is_not_resilient(self):
        policy = ExecutionPolicy()
        assert policy.jobs == 1
        assert not policy.is_resilient
        assert policy.effective_timeout is None
        assert policy.max_attempts == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"jobs": 4},
            {"retry": RetryPolicy(max_attempts=2)},
            {"timeout": 5.0},
            {"checkpoint_dir": "somewhere"},
            {"fault_plan": FaultPlan(crash_rate=0.1)},
        ],
    )
    def test_any_feature_makes_it_resilient(self, kwargs):
        assert ExecutionPolicy(**kwargs).is_resilient

    def test_timeout_field_overrides_retry_timeout(self):
        policy = ExecutionPolicy(
            timeout=3.0, retry=RetryPolicy(timeout=9.0)
        )
        assert policy.effective_timeout == 3.0
        assert ExecutionPolicy(
            retry=RetryPolicy(timeout=9.0)
        ).effective_timeout == 9.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            ExecutionPolicy(jobs=0)
        with pytest.raises(ConfigError):
            ExecutionPolicy(timeout=-1.0)
        with pytest.raises(ConfigError, match="checkpoint_dir"):
            ExecutionPolicy(resume=True)

    def test_with_progress_preserves_everything_else(self):
        policy = ExecutionPolicy(jobs=3, timeout=1.0)
        ticks = []
        callback = ticks.append
        carrying = policy.with_progress(callback)
        assert carrying.progress is callback
        assert carrying.jobs == 3 and carrying.timeout == 1.0
        # progress is excluded from equality: observation is not
        # part of the experiment's identity.
        assert carrying == policy


class TestResolvePolicy:
    def test_default_is_the_default_policy(self):
        assert resolve_policy() == ExecutionPolicy()

    def test_policy_passes_through(self):
        policy = ExecutionPolicy(jobs=2)
        assert resolve_policy(policy) is policy

    def test_legacy_jobs_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            resolved = resolve_policy(jobs=3, caller="compare_schemes")
        assert resolved == ExecutionPolicy(jobs=3)

    def test_both_spellings_rejected(self):
        with pytest.raises(ConfigError, match="not both"):
            resolve_policy(ExecutionPolicy(), jobs=2)
