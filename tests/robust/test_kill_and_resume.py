"""Kill-and-resume: an interrupted sweep, resumed, is byte-identical.

The scenario the checkpoint layer exists for, end to end: a sweep dies
partway (scripted worker crash with no retry budget), a second
invocation with ``resume=True`` picks up the surviving records, and
the final manifest collection — and the checkpoint directory itself —
is byte-for-byte the one an uninterrupted run produces.
"""

import json

import pytest

from repro.core.config import SimConfig
from repro.errors import CheckpointError, JobRetriesExhaustedError
from repro.obs.manifest import build_manifest, result_from_manifest
from repro.robust import CheckpointStore, ExecutionPolicy, FaultKind, FaultPlan
from repro.sim.parallel import JobSpec, WorkloadSpec, run_jobs
from repro.sim.sweep import sweep_config

WORKLOAD = WorkloadSpec("microbenchmark", 64)
VALUES = (1, 2, 4)
SCHEMES = ("baseline", "dfp-stop")


def sweep_configs():
    base = SimConfig.scaled(64)
    return [base.replace(load_length=v) for v in VALUES]


def sweep_manifest_bytes(points):
    return [
        {
            scheme: json.dumps(
                build_manifest(result), sort_keys=True
            ).encode()
            for scheme, result in point.results.items()
        }
        for point in points
    ]


class TestKillAndResume:
    def test_interrupted_sweep_resumes_byte_identical(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        reference = sweep_config(
            WORKLOAD, sweep_configs(), SCHEMES, values=list(VALUES)
        )

        # Phase 1: the sweep is killed at the fifth of six jobs; with
        # no retry budget the crash is fatal.  Serial execution makes
        # the kill point deterministic: jobs 0-3 are checkpointed.
        kill = ExecutionPolicy(
            checkpoint_dir=ckpt,
            fault_plan=FaultPlan.script({(4, 1): FaultKind.CRASH}),
        )
        with pytest.raises(JobRetriesExhaustedError):
            sweep_config(
                WORKLOAD,
                sweep_configs(),
                SCHEMES,
                values=list(VALUES),
                policy=kill,
            )
        assert len(CheckpointStore(ckpt)) == 4

        # Phase 2: resume — the four surviving records are restored
        # without re-execution, the remaining two jobs run (in worker
        # processes, for good measure), and the sweep's manifests are
        # byte-identical to the uninterrupted reference.
        resumed = sweep_config(
            WORKLOAD,
            sweep_configs(),
            SCHEMES,
            values=list(VALUES),
            policy=ExecutionPolicy(jobs=2, checkpoint_dir=ckpt, resume=True),
        )
        assert sweep_manifest_bytes(resumed) == sweep_manifest_bytes(reference)
        assert len(CheckpointStore(ckpt)) == 6

        # The checkpoint directory itself matches one written by an
        # uninterrupted checkpointed run, file for file, byte for byte.
        fresh = tmp_path / "fresh"
        sweep_config(
            WORKLOAD,
            sweep_configs(),
            SCHEMES,
            values=list(VALUES),
            policy=ExecutionPolicy(checkpoint_dir=fresh),
        )
        resumed_store, fresh_store = CheckpointStore(ckpt), CheckpointStore(fresh)
        assert resumed_store.keys() == fresh_store.keys()
        for key in fresh_store.keys():
            assert (
                resumed_store.path_for(key).read_bytes()
                == fresh_store.path_for(key).read_bytes()
            )

    def test_resumed_points_tick_progress_instantly(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        sweep_config(
            WORKLOAD,
            sweep_configs(),
            SCHEMES,
            values=list(VALUES),
            policy=ExecutionPolicy(checkpoint_dir=ckpt),
        )
        ticks = []
        sweep_config(
            WORKLOAD,
            sweep_configs(),
            SCHEMES,
            values=list(VALUES),
            policy=ExecutionPolicy(
                checkpoint_dir=ckpt, resume=True, progress=ticks.append
            ),
        )
        assert sorted(t.completed for t in ticks) == [1, 2, 3]
        assert {t.label for t in ticks} == set(VALUES)

    def test_checkpoint_record_for_a_different_run_is_rejected(
        self, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        spec = JobSpec(
            workload=WORKLOAD, config=SimConfig.scaled(64), scheme="baseline"
        )
        other = JobSpec(
            workload=WORKLOAD, config=SimConfig.scaled(64), scheme="dfp"
        )
        [result] = run_jobs([other])
        # A record stored under the wrong key (hand-copied, say) names
        # a different run than the key claims; resume must refuse it.
        CheckpointStore(ckpt).store(
            spec.checkpoint_key(), build_manifest(result)
        )
        with pytest.raises(CheckpointError, match="different run"):
            run_jobs(
                [spec],
                policy=ExecutionPolicy(checkpoint_dir=ckpt, resume=True),
            )


class TestManifestRoundTrip:
    def test_result_from_manifest_is_exact(self):
        [result] = run_jobs(
            [
                JobSpec(
                    workload=WORKLOAD,
                    config=SimConfig.scaled(64),
                    scheme="dfp-stop",
                )
            ]
        )
        manifest = build_manifest(result)
        restored = result_from_manifest(manifest)
        assert restored == result
        assert json.dumps(
            build_manifest(restored), sort_keys=True
        ) == json.dumps(manifest, sort_keys=True)
