"""The content-addressed checkpoint store."""

import json

import pytest

from repro.core.config import SimConfig
from repro.errors import CheckpointError
from repro.obs.manifest import MANIFEST_SCHEMA, build_manifest
from repro.robust import CheckpointStore, checkpoint_key
from repro.sim.parallel import JobSpec, WorkloadSpec, run_job

SPEC = JobSpec(
    workload=WorkloadSpec("microbenchmark", 64),
    config=SimConfig.scaled(64),
    scheme="baseline",
)


class TestCheckpointKey:
    def test_stable_for_equal_coordinates(self):
        assert checkpoint_key({"a": 1, "b": [2, 3]}) == checkpoint_key(
            {"b": [2, 3], "a": 1}
        )

    def test_any_coordinate_change_moves_the_address(self):
        base = {"scheme": "dfp", "seed": 0}
        assert checkpoint_key(base) != checkpoint_key({**base, "seed": 1})

    def test_unserializable_coordinates_rejected(self):
        with pytest.raises(CheckpointError, match="serializable"):
            checkpoint_key({"workload": object()})

    def test_jobspec_key_covers_the_config(self):
        moved = JobSpec(
            workload=SPEC.workload,
            config=SPEC.config.replace(load_length=SPEC.config.load_length + 1),
            scheme=SPEC.scheme,
        )
        assert SPEC.checkpoint_key() != moved.checkpoint_key()

    def test_jobspec_key_ignores_the_sip_plan(self):
        # The plan is a deterministic artifact of coordinates already
        # in the key; two spellings of the same job share an address.
        assert SPEC.checkpoint_key() == JobSpec(
            workload=SPEC.workload,
            config=SPEC.config,
            scheme=SPEC.scheme,
            sip_plan=None,
        ).checkpoint_key()


class TestCheckpointStore:
    def test_round_trips_a_manifest(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        manifest = build_manifest(run_job(SPEC))
        key = SPEC.checkpoint_key()
        store.store(key, manifest)
        assert store.load(key) == manifest
        assert store.keys() == [key]
        assert len(store) == 1

    def test_missing_record_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load("0" * 64) is None

    def test_malformed_record_raises_not_reruns(self, tmp_path):
        store = CheckpointStore(tmp_path)
        key = "1" * 64
        store.path_for(key).write_text("{ not json")
        with pytest.raises(CheckpointError, match="unreadable or malformed"):
            store.load(key)

    def test_wrong_schema_refused_on_store(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError, match="schema"):
            store.store("2" * 64, {"schema": "something-else/9"})

    def test_records_are_stable_manifest_json(self, tmp_path):
        store = CheckpointStore(tmp_path)
        manifest = build_manifest(run_job(SPEC))
        path = store.store(SPEC.checkpoint_key(), manifest)
        document = json.loads(path.read_text())
        assert document["schema"] == MANIFEST_SCHEMA
