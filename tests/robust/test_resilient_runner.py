"""The resilient job runner under every injected fault class.

The contract: resilience changes *whether* a result arrives, never
*what* it is.  Every scenario here asserts the faulted run's results
are equal — and, for the acceptance-criteria case, byte-identical at
the manifest level — to the plain serial run of the same jobs.
"""

import json
import time

import pytest

from repro.core.config import SimConfig
from repro.errors import (
    JobRetriesExhaustedError,
    JobTimeoutError,
    ResultIntegrityError,
)
from repro.obs.manifest import build_manifest
from repro.robust import ExecutionPolicy, FaultKind, FaultPlan, RetryPolicy
from repro.sim.parallel import JobSpec, WorkloadSpec, run_jobs

WORKLOAD = WorkloadSpec("microbenchmark", 64)
CONFIG = SimConfig.scaled(64)

#: Fast retries for tests: three chances, near-instant backoff.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001)


def make_specs(n=4):
    schemes = ("baseline", "dfp-stop", "dfp", "baseline")
    return [
        JobSpec(
            workload=WORKLOAD,
            config=CONFIG,
            scheme=schemes[i % len(schemes)],
            seed=i % 2,
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def serial_results():
    return run_jobs(make_specs())


def manifest_bytes(results):
    return [
        json.dumps(build_manifest(r), sort_keys=True).encode()
        for r in results
    ]


class TestNoFaultEquivalence:
    def test_resilient_parallel_run_is_byte_identical_to_serial(
        self, serial_results
    ):
        # The acceptance criterion: a jobs=4 run with retries, timeout
        # and integrity checking enabled — but no faults injected —
        # produces byte-identical manifests to the plain serial run.
        policy = ExecutionPolicy(jobs=4, retry=FAST_RETRY, timeout=60.0)
        resilient = run_jobs(make_specs(), policy=policy)
        assert manifest_bytes(resilient) == manifest_bytes(serial_results)


class TestCrashFaults:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_crashed_attempt_is_retried_transparently(
        self, jobs, serial_results
    ):
        plan = FaultPlan.script(
            {(0, 1): FaultKind.CRASH, (2, 1): FaultKind.CRASH}
        )
        policy = ExecutionPolicy(jobs=jobs, retry=FAST_RETRY, fault_plan=plan)
        assert run_jobs(make_specs(), policy=policy) == serial_results

    def test_exhausted_attempts_raise_with_attempt_count(self):
        plan = FaultPlan.script(
            {(1, n): FaultKind.CRASH for n in (1, 2, 3)}
        )
        policy = ExecutionPolicy(retry=FAST_RETRY, fault_plan=plan)
        with pytest.raises(JobRetriesExhaustedError) as excinfo:
            run_jobs(make_specs(), policy=policy)
        assert excinfo.value.attempts == 3
        assert "dfp-stop" in excinfo.value.job

    def test_rate_driven_crashes_still_converge(self, serial_results):
        # With a generous attempt budget, even a high crash rate
        # cannot change the results, only the wall-clock.
        plan = FaultPlan(seed=11, crash_rate=0.4)
        policy = ExecutionPolicy(
            jobs=2,
            retry=RetryPolicy(max_attempts=10, base_delay=0.001),
            fault_plan=plan,
        )
        assert run_jobs(make_specs(), policy=policy) == serial_results


class TestHangFaults:
    def test_pool_hang_times_out_and_retries(self, serial_results):
        # The hang outlives the whole sweep: the runner must abandon
        # the attempt, retry it on a free worker, and — because a
        # running attempt cannot be cancelled — release the pool
        # without waiting for the wedged worker.  run_jobs returning
        # well before hang_s elapses proves both.
        plan = FaultPlan.script({(0, 1): FaultKind.HANG}, hang_s=8.0)
        policy = ExecutionPolicy(
            jobs=2, retry=FAST_RETRY, timeout=1.0, fault_plan=plan
        )
        start = time.monotonic()
        assert run_jobs(make_specs(), policy=policy) == serial_results
        assert time.monotonic() - start < plan.hang_s

    def test_queued_jobs_do_not_expire_while_waiting_for_a_worker(self):
        # The timeout is a budget on the attempt, not on queue wait:
        # with both workers hung longer than the timeout, the jobs
        # queued behind them must not have their deadlines running —
        # one attempt budget each is enough once the workers free up.
        specs = make_specs(8)
        plan = FaultPlan.script(
            {(0, 1): FaultKind.HANG, (1, 1): FaultKind.HANG}, hang_s=3.0
        )
        policy = ExecutionPolicy(
            jobs=2,
            retry=RetryPolicy(max_attempts=2, base_delay=0.001),
            timeout=1.0,
            fault_plan=plan,
        )
        assert run_jobs(specs, policy=policy) == run_jobs(specs)

    def test_serial_hang_converts_synchronously(self, serial_results):
        # Serially there is no second process to sleep in; the runner
        # converts the injected hang straight into a timeout failure
        # instead of actually stalling for hang_s.
        plan = FaultPlan.script({(0, 1): FaultKind.HANG}, hang_s=300.0)
        policy = ExecutionPolicy(
            retry=FAST_RETRY, timeout=0.5, fault_plan=plan
        )
        assert run_jobs(make_specs(), policy=policy) == serial_results

    def test_hang_without_retries_is_a_timeout_failure(self):
        plan = FaultPlan.script({(0, 1): FaultKind.HANG}, hang_s=300.0)
        policy = ExecutionPolicy(timeout=0.5, fault_plan=plan)
        with pytest.raises(JobRetriesExhaustedError) as excinfo:
            run_jobs(make_specs(1), policy=policy)
        assert isinstance(excinfo.value.__cause__, JobTimeoutError)


class TestCorruptionFaults:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_corrupted_result_is_rejected_and_retried(
        self, jobs, serial_results
    ):
        plan = FaultPlan.script({(3, 1): FaultKind.CORRUPT})
        policy = ExecutionPolicy(jobs=jobs, retry=FAST_RETRY, fault_plan=plan)
        assert run_jobs(make_specs(), policy=policy) == serial_results

    def test_corruption_without_retries_is_an_integrity_failure(self):
        plan = FaultPlan.script({(0, 1): FaultKind.CORRUPT})
        policy = ExecutionPolicy(jobs=2, fault_plan=plan)
        with pytest.raises(JobRetriesExhaustedError) as excinfo:
            run_jobs(make_specs(2), policy=policy)
        assert isinstance(excinfo.value.__cause__, ResultIntegrityError)
        assert "digest" in str(excinfo.value.__cause__)


class TestSubmissionFaults:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_submission_error_is_absorbed(
        self, jobs, serial_results
    ):
        # A submission that never happened must not burn the job's
        # attempt budget: no retries are configured here, yet the run
        # completes because the dispatch itself is retried.
        plan = FaultPlan.script({(1, 1): FaultKind.SUBMIT_ERROR})
        policy = ExecutionPolicy(jobs=jobs, fault_plan=plan)
        assert run_jobs(make_specs(), policy=policy) == serial_results


class TestPoolBreak:
    def test_dead_pool_degrades_to_serial_and_completes(
        self, serial_results
    ):
        # The injected os._exit kills a worker hard enough to break
        # the whole pool; the runner must finish the remaining jobs
        # serially in-process, with identical results.
        plan = FaultPlan.script({(1, 1): FaultKind.POOL_BREAK})
        policy = ExecutionPolicy(jobs=2, retry=FAST_RETRY, fault_plan=plan)
        assert run_jobs(make_specs(), policy=policy) == serial_results


class TestCallbackFailures:
    """A failing on_result callback is the caller's bug, not the job's.

    It must propagate to the run_jobs caller — in particular a real
    OSError (e.g. BrokenPipeError from a progress pipe) must never be
    mistaken for the injected transient dispatch fault and absorbed in
    an unbounded retry loop, nor burn the job's attempt budget.
    """

    @staticmethod
    def _boom(seen):
        def on_result(index, spec):
            seen.append(index)
            raise BrokenPipeError("downstream progress pipe closed")

        return on_result

    def test_serial_callback_oserror_propagates_without_retry(self):
        seen = []
        policy = ExecutionPolicy(retry=FAST_RETRY)
        with pytest.raises(BrokenPipeError):
            run_jobs(make_specs(2), policy=policy, on_result=self._boom(seen))
        # Fired once for the job that completed; the failure was not
        # retried into re-running the simulation or exhaustion.
        assert seen == [0]

    def test_pool_callback_oserror_propagates(self):
        seen = []
        policy = ExecutionPolicy(jobs=2, retry=FAST_RETRY)
        with pytest.raises(BrokenPipeError):
            run_jobs(make_specs(4), policy=policy, on_result=self._boom(seen))
        assert len(seen) == 1


class TestDeliveryGuarantees:
    def test_on_result_fires_exactly_once_despite_retries(self):
        plan = FaultPlan.script(
            {(0, 1): FaultKind.CRASH, (1, 1): FaultKind.CORRUPT}
        )
        policy = ExecutionPolicy(jobs=2, retry=FAST_RETRY, fault_plan=plan)
        seen = []
        run_jobs(
            make_specs(3), policy=policy, on_result=lambda i, s: seen.append(i)
        )
        assert sorted(seen) == [0, 1, 2]
