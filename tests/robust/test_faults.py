"""The fault-injection plan: deterministic, picklable, scriptable."""

import pickle

import pytest

from repro.errors import ConfigError
from repro.robust import FaultKind, FaultPlan, InjectedWorkerCrash, perform_worker_fault


class TestFaultKind:
    def test_coerce_accepts_names_values_and_kinds(self):
        assert FaultKind.coerce("crash") is FaultKind.CRASH
        assert FaultKind.coerce("pool-break") is FaultKind.POOL_BREAK
        assert FaultKind.coerce(FaultKind.HANG) is FaultKind.HANG

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            FaultKind.coerce("explode")


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(hang_rate=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(hang_s=0.0)

    def test_scripted_faults_win(self):
        plan = FaultPlan.script({(3, 1): FaultKind.CORRUPT})
        assert plan.fault_for(3, 1) is FaultKind.CORRUPT
        assert plan.fault_for(3, 2) is None
        assert plan.fault_for(0, 1) is None

    def test_script_accepts_string_kinds(self):
        plan = FaultPlan.script({(0, 1): "hang"})
        assert plan.fault_for(0, 1) is FaultKind.HANG

    def test_seeded_draws_are_deterministic(self):
        a = FaultPlan(seed=7, crash_rate=0.5, corrupt_rate=0.25)
        b = FaultPlan(seed=7, crash_rate=0.5, corrupt_rate=0.25)
        decisions = [(i, n, a.fault_for(i, n)) for i in range(64) for n in (1, 2)]
        assert decisions == [
            (i, n, b.fault_for(i, n)) for i in range(64) for n in (1, 2)
        ]
        # A certain rate always fires.
        always = FaultPlan(seed=1, crash_rate=1.0)
        assert all(always.fault_for(i, 1) is FaultKind.CRASH for i in range(16))

    def test_different_seeds_differ_somewhere(self):
        a = FaultPlan(seed=1, crash_rate=0.5)
        b = FaultPlan(seed=2, crash_rate=0.5)
        assert any(
            a.fault_for(i, 1) is not b.fault_for(i, 1) for i in range(256)
        )

    def test_injects_anything(self):
        assert not FaultPlan().injects_anything
        assert FaultPlan(crash_rate=0.1).injects_anything
        assert FaultPlan.script({(0, 1): FaultKind.CRASH}).injects_anything

    def test_plan_is_picklable(self):
        plan = FaultPlan.script(
            {(0, 1): FaultKind.CRASH}, seed=3, hang_rate=0.5
        )
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestPerformWorkerFault:
    def test_crash_raises_typed_error(self):
        with pytest.raises(InjectedWorkerCrash):
            perform_worker_fault(FaultKind.CRASH, in_worker=False)

    def test_pool_break_downgrades_to_crash_in_process(self):
        # os._exit in the parent would kill the experiment; serially
        # the hard break degrades to an ordinary injected crash.
        with pytest.raises(InjectedWorkerCrash):
            perform_worker_fault(FaultKind.POOL_BREAK, in_worker=False)

    def test_corrupt_and_submit_error_are_not_performed_here(self):
        # Corruption tampers the result after digesting; submission
        # errors fire parent-side.  Neither raises in the worker body.
        perform_worker_fault(FaultKind.CORRUPT, in_worker=True)
        perform_worker_fault(FaultKind.SUBMIT_ERROR, in_worker=True)
