"""Unit tests for the user-level paging comparator."""

import pytest

from repro.core.config import SimConfig
from repro.core.userpaging import UserPagingModel, simulate_user_paging
from repro.errors import ConfigError
from repro.sim.engine import simulate
from repro.workloads.base import SyntheticWorkload
from repro.workloads.synthetic import sequential, uniform_random

from tests.conftest import ScriptedWorkload


@pytest.fixture
def config():
    return SimConfig(epc_pages=100, scan_period_cycles=10**9)


class TestModel:
    def test_usable_pages_reduced_by_overhead(self):
        model = UserPagingModel(epc_overhead=0.10)
        assert model.usable_pages(100) == 90

    def test_zero_overhead_keeps_all(self):
        assert UserPagingModel(epc_overhead=0.0).usable_pages(100) == 100

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"spt_check_cycles": -1},
            {"soft_load_cycles": -1},
            {"epc_overhead": 1.0},
            {"epc_overhead": -0.1},
        ],
    )
    def test_invalid_model_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            UserPagingModel(**kwargs)


class TestExecution:
    def test_exact_cost_accounting(self, config):
        model = UserPagingModel(
            spt_check_cycles=100, soft_load_cycles=10_000, soft_evict_cycles=0
        )
        wl = ScriptedWorkload([(0, 0, 1_000), (0, 0, 1_000), (0, 1, 1_000)])
        result = simulate_user_paging(wl, config, model)
        # 3 accesses * (compute + check) + 2 misses * load
        assert result.total_cycles == 3 * 1_100 + 2 * 10_000
        assert result.stats.faults == 2
        assert result.stats.epc_hits == 1

    def test_no_world_switches_ever(self, config):
        wl = SyntheticWorkload(
            "seq", 400, {0: "scan"}, [sequential(0, 0, 400, compute=3_000)]
        )
        result = simulate_user_paging(wl, config)
        assert result.stats.time.aex == 0
        assert result.stats.time.eresume == 0
        assert result.scheme == "user-paging"

    def test_time_buckets_reconcile(self, config):
        wl = SyntheticWorkload(
            "rand", 500, {0: "p"}, [uniform_random([0], 0, 500, 1_000, compute=2_000)]
        )
        result = simulate_user_paging(wl, config)
        assert result.stats.time.total == result.total_cycles

    def test_eviction_when_reduced_pool_full(self, config):
        model = UserPagingModel(epc_overhead=0.5)  # only 50 frames
        wl = SyntheticWorkload(
            "seq", 200, {0: "scan"}, [sequential(0, 0, 200, compute=1_000)]
        )
        result = simulate_user_paging(wl, config, model)
        assert result.stats.evictions == 200 - 50

    def test_runtime_overhead_costs_capacity(self, config):
        """The same workload misses more under user paging than under
        the kernel's full EPC, because the runtime eats frames."""
        wl = SyntheticWorkload(
            "loop",
            100,
            {0: "scan"},
            [sequential(0, 0, 100, compute=1_000, passes=4)],
        )
        hardware = simulate(wl, config, "baseline")
        user = simulate_user_paging(wl, config, UserPagingModel(epc_overhead=0.2))
        assert user.stats.faults > hardware.stats.faults

    def test_thrashing_workload_beats_hardware_paging(self, config):
        """Eleos's headline: software swaps (~15k) beat 64k faults."""
        wl = SyntheticWorkload(
            "thrash", 400, {0: "scan"}, [sequential(0, 0, 400, compute=2_000, passes=2)]
        )
        hardware = simulate(wl, config, "baseline")
        user = simulate_user_paging(wl, config)
        assert user.total_cycles < hardware.total_cycles

    def test_hit_dominated_workload_pays_check_tax(self, config):
        """A resident working set: hardware paging is free after
        warm-up, user paging pays translation on every access.  Enough
        passes amortize the warm-up (where user paging's cheap swap
        wins) below the accumulated translation tax."""
        wl = SyntheticWorkload(
            "hot", 50, {0: "scan"}, [sequential(0, 0, 50, compute=1_000, passes=100)]
        )
        hardware = simulate(wl, config, "baseline")
        user = simulate_user_paging(wl, config)
        assert user.total_cycles > hardware.total_cycles
        # The tax is exactly the per-access check.
        model_check = user.stats.time.sip_check / user.stats.accesses
        assert model_check == UserPagingModel().spt_check_cycles

    def test_deterministic(self, config):
        wl = SyntheticWorkload(
            "rand", 500, {0: "p"}, [uniform_random([0], 0, 500, 500, compute=2_000)]
        )
        a = simulate_user_paging(wl, config, seed=3)
        b = simulate_user_paging(wl, config, seed=3)
        assert a.total_cycles == b.total_cycles
