"""Unit tests for the PGO profiler (Sections 3.2 / 4.4)."""

import pytest

from repro.core.classify import AccessClass
from repro.core.config import SimConfig
from repro.core.profiler import InstructionProfile, profile_workload
from repro.errors import WorkloadError
from repro.workloads.base import SyntheticWorkload
from repro.workloads.synthetic import sequential, uniform_random

from tests.conftest import ScriptedWorkload


@pytest.fixture
def config():
    return SimConfig(epc_pages=32, scan_period_cycles=10**9)


class TestInstructionProfile:
    def test_ratio(self):
        prof = InstructionProfile(0, "x", class1=60, class2=20, class3=20)
        assert prof.total == 100
        assert prof.irregular_ratio == pytest.approx(0.2)

    def test_empty_profile_ratio_zero(self):
        assert InstructionProfile(0, "x").irregular_ratio == 0.0

    def test_add_dispatches(self):
        prof = InstructionProfile(0, "x")
        prof.add(AccessClass.CLASS1)
        prof.add(AccessClass.CLASS2)
        prof.add(AccessClass.CLASS3)
        assert (prof.class1, prof.class2, prof.class3) == (1, 1, 1)


class TestProfileWorkload:
    def test_sequential_instruction_profiles_regular(self, config):
        wl = SyntheticWorkload(
            "seq", 256, {0: "scan"}, [sequential(0, 0, 256, compute=100)]
        )
        profile = profile_workload(wl, config)
        prof = profile.instructions[0]
        assert prof.irregular_ratio < 0.05
        assert profile.sequential_ratio > 0.9

    def test_random_instruction_profiles_irregular(self, config):
        wl = SyntheticWorkload(
            "rand",
            4096,
            {0: "probe"},
            [uniform_random([0], 0, 4096, 2000, compute=100)],
        )
        profile = profile_workload(wl, config)
        assert profile.instructions[0].irregular_ratio > 0.5

    def test_per_instruction_separation(self, config):
        """One regular and one irregular site in the same workload must
        profile differently — the basis of selective instrumentation."""
        from repro.workloads.synthetic import interleave_phases

        phases = [
            interleave_phases(
                [
                    sequential(0, 0, 256, compute=100),
                    uniform_random([1], 256, 4096, 256, compute=100),
                ],
                chunk=[1, 1],
            )
        ]
        wl = SyntheticWorkload("mix", 4096, {0: "scan", 1: "probe"}, phases)
        profile = profile_workload(wl, config)
        assert profile.instructions[0].irregular_ratio < 0.10
        assert profile.instructions[1].irregular_ratio > 0.40

    def test_total_accesses_counted(self, config):
        wl = ScriptedWorkload([(0, 0, 10), (0, 1, 10), (0, 2, 10)])
        profile = profile_workload(wl, config)
        assert profile.total_accesses == 3

    def test_unknown_instruction_rejected(self, config):
        wl = ScriptedWorkload([(0, 0, 10)], instructions={5: "other"})
        with pytest.raises(WorkloadError):
            profile_workload(wl, config)

    def test_exceeds_epc_flag(self, config):
        big = ScriptedWorkload([(0, 0, 10)], footprint_pages=1000)
        small = ScriptedWorkload([(0, 0, 10)], footprint_pages=10)
        assert profile_workload(big, config).exceeds_epc
        assert not profile_workload(small, config).exceeds_epc

    def test_pattern_samples_collected_when_requested(self, config):
        wl = SyntheticWorkload(
            "seq", 256, {0: "scan"}, [sequential(0, 0, 256, compute=100)]
        )
        profile = profile_workload(wl, config, sample_patterns=True)
        assert profile.pattern_samples
        indices = [i for i, _p in profile.pattern_samples]
        assert indices == sorted(indices)

    def test_pattern_samples_bounded(self, config):
        wl = SyntheticWorkload(
            "seq", 512, {0: "scan"}, [sequential(0, 0, 512, compute=1, passes=8)]
        )
        profile = profile_workload(
            wl, config, sample_patterns=True, max_pattern_samples=100
        )
        assert len(profile.pattern_samples) <= 101

    def test_class_totals_sum_to_accesses(self, config):
        wl = SyntheticWorkload(
            "seq", 256, {0: "scan"}, [sequential(0, 0, 256, compute=100)]
        )
        profile = profile_workload(wl, config)
        assert sum(profile.class_totals.values()) == profile.total_accesses
