"""Unit tests for the SIP runtime dispatcher."""

from repro.core.instrumentation import SipPlan
from repro.core.sip import SipRuntime


def make_plan(instrumented):
    return SipPlan(
        workload="t", threshold=0.05, instrumented=frozenset(instrumented)
    )


class TestDispatch:
    def test_instrumented_site_notifies(self):
        rt = SipRuntime(make_plan({1, 2}))
        assert rt.should_notify(1)
        assert not rt.should_notify(3)

    def test_site_execution_counts(self):
        rt = SipRuntime(make_plan({1}))
        for _ in range(3):
            rt.should_notify(1)
        rt.should_notify(2)  # uninstrumented: not counted
        assert rt.site_executions == {1: 3}
        assert rt.total_notifications == 3

    def test_plan_accessible(self):
        plan = make_plan({1})
        assert SipRuntime(plan).plan is plan

    def test_instrumented_attribute_matches_plan(self):
        plan = make_plan({4, 5})
        assert SipRuntime(plan).instrumented == frozenset({4, 5})
