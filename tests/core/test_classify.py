"""Unit tests for the Class 1/2/3 access classifier (Section 4.4)."""

import pytest

from repro.core.classify import AccessClass, StreamClassifier
from repro.errors import ConfigError


def make(window=16, stream_list_length=4, load_length=4):
    return StreamClassifier(
        window=window,
        stream_list_length=stream_list_length,
        load_length=load_length,
    )


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"window": 8, "stream_list_length": 0},
            {"window": 8, "load_length": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            StreamClassifier(**kwargs)

    def test_negative_page_rejected(self):
        with pytest.raises(ConfigError):
            make().classify(-1)


class TestClass1:
    def test_repeated_page_is_class1(self):
        c = make()
        c.classify(5)
        assert c.classify(5) is AccessClass.CLASS1

    def test_window_eviction_forgets_old_pages(self):
        c = make(window=2)
        c.classify(1)
        c.classify(100)
        c.classify(200)  # 1 falls out of the 2-entry window
        assert c.classify(1) is AccessClass.CLASS3

    def test_recency_refresh_keeps_hot_page(self):
        c = make(window=2)
        c.classify(1)
        c.classify(100)
        c.classify(1)  # refresh
        c.classify(200)  # evicts 100, not 1
        assert c.classify(1) is AccessClass.CLASS1


class TestClass2:
    def test_sequential_successor_is_class2(self):
        c = make()
        c.classify(10)
        assert c.classify(11) is AccessClass.CLASS2

    def test_windowed_successor_is_class2(self):
        c = make(load_length=4)
        c.classify(10)
        assert c.classify(15) is AccessClass.CLASS2  # within window 5

    def test_beyond_window_is_class3(self):
        c = make(load_length=4)
        c.classify(10)
        assert c.classify(16) is AccessClass.CLASS3

    def test_class1_takes_precedence_over_class2(self):
        """A recently touched page is 'in EPC with high probability'
        even if it also continues a stream."""
        c = make()
        c.classify(10)
        c.classify(11)
        c.classify(10)
        assert c.classify(11) is AccessClass.CLASS1


class TestClass3:
    def test_cold_random_page_is_class3(self):
        c = make()
        assert c.classify(1000) is AccessClass.CLASS3

    def test_class3_seeds_a_stream(self):
        c = make()
        c.classify(1000)
        assert c.classify(1001) is AccessClass.CLASS2


class TestSequences:
    def test_pure_scan_is_class2_dominated(self):
        c = make(window=8)
        counts = c.classify_trace(list(range(100)))
        assert counts[AccessClass.CLASS2] >= 98
        assert counts[AccessClass.CLASS3] <= 1

    def test_hot_loop_is_class1_dominated(self):
        c = make(window=8)
        counts = c.classify_trace([1, 2, 3, 4] * 25)
        assert counts[AccessClass.CLASS1] >= 90

    def test_cold_scatter_is_class3_dominated(self):
        c = make(window=4, stream_list_length=2)
        pages = [i * 1000 for i in range(100)]
        counts = c.classify_trace(pages)
        assert counts[AccessClass.CLASS3] >= 95

    def test_classify_trace_counts_sum(self):
        c = make()
        counts = c.classify_trace(list(range(50)))
        assert sum(counts.values()) == 50
