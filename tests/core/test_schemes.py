"""Unit tests for scheme construction."""

import pytest

from repro.core.config import SimConfig
from repro.core.instrumentation import SipPlan
from repro.core.schemes import SCHEME_NAMES, Scheme, make_scheme
from repro.errors import ConfigError


@pytest.fixture
def config():
    return SimConfig(epc_pages=64)


@pytest.fixture
def plan():
    return SipPlan(workload="t", threshold=0.05, instrumented=frozenset({1}))


class TestMakeScheme:
    def test_all_names_buildable(self, config, plan):
        for name in SCHEME_NAMES:
            scheme = make_scheme(name, config, sip_plan=plan)
            assert scheme.name == name

    def test_unknown_name_rejected(self, config):
        with pytest.raises(ConfigError):
            make_scheme("turbo", config)

    def test_baseline_has_no_engines(self, config):
        scheme = make_scheme("baseline", config)
        assert scheme.build_dfp() is None
        assert scheme.build_sip() is None

    def test_dfp_has_valve_disabled(self, config):
        scheme = make_scheme("dfp", config)
        assert scheme.dfp_config is not None
        assert not scheme.dfp_config.valve_enabled

    def test_dfp_stop_has_valve_enabled(self, config):
        scheme = make_scheme("dfp-stop", config)
        assert scheme.dfp_config.valve_enabled

    def test_sip_requires_plan(self, config):
        with pytest.raises(ConfigError):
            make_scheme("sip", config)

    def test_hybrid_enables_both(self, config, plan):
        scheme = make_scheme("hybrid", config, sip_plan=plan)
        assert scheme.dfp_enabled and scheme.sip_enabled
        assert scheme.build_dfp() is not None
        assert scheme.build_sip() is not None

    def test_sip_scheme_has_no_dfp(self, config, plan):
        scheme = make_scheme("sip", config, sip_plan=plan)
        assert not scheme.dfp_enabled
        assert scheme.build_dfp() is None

    def test_config_parameters_propagate(self, plan):
        config = SimConfig(epc_pages=64, stream_list_length=11, load_length=7)
        scheme = make_scheme("hybrid", config, sip_plan=plan)
        assert scheme.dfp_config.stream_list_length == 11
        assert scheme.dfp_config.load_length == 7


class TestSchemeInvariants:
    def test_enabling_dfp_without_config_rejected(self):
        with pytest.raises(ConfigError):
            Scheme(name="x", dfp_enabled=True, sip_enabled=False)

    def test_enabling_sip_without_plan_rejected(self):
        with pytest.raises(ConfigError):
            Scheme(name="x", dfp_enabled=False, sip_enabled=True)

    def test_engines_are_fresh_per_build(self, config):
        scheme = make_scheme("dfp-stop", config)
        a, b = scheme.build_dfp(), scheme.build_dfp()
        assert a is not b
        a.preload_counter = 99
        assert b.preload_counter == 0
