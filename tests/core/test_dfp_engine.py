"""Unit tests for the DFP engine: counters and the safety valve."""

import pytest

from repro.core.config import SimConfig
from repro.core.dfp import DfpConfig, DfpEngine
from repro.errors import ConfigError


def make(valve=True, slack=10, ratio=0.5):
    return DfpEngine(
        DfpConfig(valve_enabled=valve, valve_slack=slack, valve_ratio=ratio)
    )


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stream_list_length": 0},
            {"load_length": 0},
            {"valve_slack": -1},
            {"valve_ratio": 0.0},
            {"valve_ratio": 1.1},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            DfpConfig(**kwargs)

    def test_from_sim_config_copies_fields(self):
        sim = SimConfig(
            stream_list_length=17,
            load_length=6,
            valve_enabled=False,
            valve_slack=123,
            valve_ratio=0.7,
        )
        cfg = DfpConfig.from_sim_config(sim)
        assert cfg.stream_list_length == 17
        assert cfg.load_length == 6
        assert not cfg.valve_enabled
        assert cfg.valve_slack == 123
        assert cfg.valve_ratio == pytest.approx(0.7)


class TestFaultHook:
    def test_burst_flows_through(self):
        engine = make()
        engine.on_fault(10)
        assert engine.on_fault(11) == [12, 13, 14, 15]

    def test_stopped_engine_returns_empty(self):
        engine = make(slack=0)
        engine.preload_counter = 100
        assert engine.check_valve()
        engine.on_fault(10)
        assert engine.on_fault(11) == []

    def test_stopped_engine_still_observes(self):
        """The fault handler runs regardless; history keeps updating."""
        engine = make(slack=0)
        engine.preload_counter = 100
        engine.check_valve()
        engine.on_fault(10)
        engine.on_fault(11)
        assert engine.predictor.stream_hits == 1


class TestValve:
    def test_paper_formula_shape(self):
        """Stops exactly when acc + slack < ratio * preload."""
        engine = make(slack=10, ratio=0.5)
        engine.preload_counter = 40
        engine.acc_preload_counter = 10
        assert not engine.check_valve()  # 10 + 10 = 20 >= 20
        engine.preload_counter = 41
        assert engine.check_valve()  # 20 < 20.5

    def test_stop_is_permanent(self):
        engine = make(slack=0)
        engine.preload_counter = 100
        assert engine.check_valve()
        engine.acc_preload_counter = 1000  # even if accuracy recovers
        assert not engine.check_valve()  # no second firing
        assert not engine.active

    def test_disabled_valve_never_fires(self):
        engine = make(valve=False, slack=0)
        engine.preload_counter = 10**6
        assert not engine.check_valve()
        assert engine.active

    def test_counters_accumulate(self):
        engine = make()
        engine.note_preload_completed()
        engine.note_preload_completed()
        engine.credit_accessed(1)
        engine.note_aborted(3)
        assert engine.preload_counter == 2
        assert engine.acc_preload_counter == 1
        assert engine.aborted_preloads == 3
