"""Unit tests for the multiple-stream predictor (Algorithm 1)."""

import pytest

from repro.core.predictor import MultiStreamPredictor, StreamEntry
from repro.errors import ConfigError


def make(length=4, load_length=4, backward=False):
    return MultiStreamPredictor(length, load_length, track_backward=backward)


class TestConstruction:
    def test_invalid_length_rejected(self):
        with pytest.raises(ConfigError):
            make(length=0)

    def test_invalid_load_length_rejected(self):
        with pytest.raises(ConfigError):
            make(load_length=0)

    def test_negative_page_rejected(self):
        with pytest.raises(ConfigError):
            make().on_fault(-1)


class TestStreamDetection:
    def test_first_fault_never_preloads(self):
        """One fault is not a pattern."""
        assert make().on_fault(100) == []

    def test_sequential_fault_returns_burst(self):
        p = make(load_length=4)
        p.on_fault(100)
        burst = p.on_fault(101)
        assert burst == [102, 103, 104, 105]

    def test_burst_length_is_load_length(self):
        p = make(load_length=8)
        p.on_fault(10)
        assert len(p.on_fault(11)) == 8

    def test_burst_excludes_faulting_page(self):
        """The handler demand-loads npn itself; the burst is strictly
        ahead of it."""
        p = make()
        p.on_fault(10)
        assert 11 not in [10, *[]]  # trivially
        burst = p.on_fault(11)
        assert 11 not in burst

    def test_windowed_match_across_burst(self):
        """After preloading LOADLENGTH pages, the stream's next fault
        lands LOADLENGTH+1 ahead and must still extend the stream."""
        p = make(load_length=4)
        p.on_fault(10)
        p.on_fault(11)  # tail = 11, burst 12..15
        burst = p.on_fault(16)  # 5 ahead: still the same stream
        assert burst == [17, 18, 19, 20]

    def test_beyond_window_starts_new_stream(self):
        p = make(load_length=4)
        p.on_fault(10)
        p.on_fault(11)
        assert p.on_fault(17) == []  # 6 ahead: new stream

    def test_same_page_is_not_sequential(self):
        p = make()
        p.on_fault(10)
        assert p.on_fault(10) == []

    def test_burst_never_contains_negative_pages(self):
        p = make(backward=True)
        p.on_fault(3)
        p.on_fault(2)  # descending stream near zero
        burst = p.on_fault(1)
        assert all(page >= 0 for page in burst)


class TestMultipleStreams:
    def test_interleaved_streams_tracked_independently(self):
        """The whole point of the *multiple*-stream predictor."""
        p = make(length=4)
        p.on_fault(100)
        p.on_fault(500)
        assert p.on_fault(101) != []
        assert p.on_fault(501) != []

    def test_lru_recycles_oldest_stream(self):
        p = make(length=2)
        p.on_fault(100)  # stream A
        p.on_fault(200)  # stream B
        p.on_fault(300)  # stream C recycles A (LRU)
        assert p.on_fault(201) != []  # B survived
        assert p.on_fault(101) == []  # A forgotten

    def test_extension_moves_stream_to_head(self):
        p = make(length=2)
        p.on_fault(100)  # A
        p.on_fault(200)  # B (A is now LRU)
        p.on_fault(101)  # extend A: A moves to head, B becomes LRU
        p.on_fault(300)  # C recycles B
        assert p.on_fault(102) != []  # A still tracked
        assert p.on_fault(201) == []  # B forgotten

    def test_stream_list_never_exceeds_capacity(self):
        p = make(length=3)
        for page in range(0, 1000, 10):
            p.on_fault(page)
        assert len(p.streams) == 3


class TestBackwardStreams:
    def test_forward_only_ignores_descending(self):
        p = make(backward=False)
        p.on_fault(100)
        assert p.on_fault(99) == []

    def test_backward_tracking_detects_descending(self):
        p = make(backward=True)
        p.on_fault(100)
        burst = p.on_fault(99)
        assert burst == [98, 97, 96, 95]


class TestCountersAndReset:
    def test_hit_miss_counters(self):
        p = make()
        p.on_fault(10)
        p.on_fault(11)
        p.on_fault(500)
        assert p.stream_hits == 1
        assert p.stream_misses == 2

    def test_reset_forgets_streams(self):
        p = make()
        p.on_fault(10)
        p.reset()
        assert p.streams == ()
        assert p.on_fault(11) == []

    def test_entry_hit_counter(self):
        p = make()
        p.on_fault(10)
        p.on_fault(11)
        p.on_fault(12)
        entry = p.streams[0]
        assert isinstance(entry, StreamEntry)
        assert entry.hits == 2
        assert entry.stpn == 12
