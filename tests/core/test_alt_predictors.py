"""Unit tests for the ablation predictors."""

import pytest

from repro.core.alt_predictors import (
    MarkovPredictor,
    NextLinePredictor,
    StridePredictor,
)
from repro.errors import ConfigError


class TestNextLine:
    def test_always_prefetches(self):
        p = NextLinePredictor(4)
        assert p.on_fault(10) == [11, 12, 13, 14]
        assert p.on_fault(500) == [501, 502, 503, 504]

    def test_invalid_length_rejected(self):
        with pytest.raises(ConfigError):
            NextLinePredictor(0)

    def test_negative_page_rejected(self):
        with pytest.raises(ConfigError):
            NextLinePredictor(4).on_fault(-1)


class TestStride:
    def test_needs_two_confirmations(self):
        p = StridePredictor(4)
        assert p.on_fault(10) == []  # no history
        assert p.on_fault(12) == []  # first delta seen
        assert p.on_fault(14) == [16, 18, 20, 22]  # confirmed stride 2

    def test_unit_stride(self):
        p = StridePredictor(2)
        p.on_fault(5)
        p.on_fault(6)
        assert p.on_fault(7) == [8, 9]

    def test_negative_stride(self):
        p = StridePredictor(2)
        p.on_fault(100)
        p.on_fault(98)
        assert p.on_fault(96) == [94, 92]

    def test_broken_stride_resets_confirmation(self):
        p = StridePredictor(4)
        p.on_fault(10)
        p.on_fault(12)
        p.on_fault(14)
        assert p.on_fault(500) == []  # pattern broken
        assert p.on_fault(502) == []  # new delta, unconfirmed

    def test_interleaved_streams_defeat_it(self):
        """The ablation's key point: alternating streams never show a
        stable global delta."""
        p = StridePredictor(4)
        for a, b in zip(range(0, 50), range(1000, 1050)):
            assert p.on_fault(a) == []
            assert p.on_fault(b) == []
        assert p.stream_hits == 0

    def test_huge_jumps_ignored(self):
        p = StridePredictor(4, max_stride=64)
        p.on_fault(0)
        p.on_fault(10_000)
        p.on_fault(20_000)
        assert p.stream_hits == 0

    def test_no_negative_pages_in_burst(self):
        p = StridePredictor(4)
        p.on_fault(6)
        p.on_fault(4)
        burst = p.on_fault(2)
        assert all(page >= 0 for page in burst)

    def test_reset(self):
        p = StridePredictor(4)
        p.on_fault(10)
        p.on_fault(12)
        p.reset()
        assert p.on_fault(14) == []


class TestMarkov:
    def test_learns_repeating_chain(self):
        p = MarkovPredictor(2)
        chain = [5, 900, 33, 5, 900, 33]
        bursts = [p.on_fault(page) for page in chain]
        # Second time around, each page predicts its recorded successor.
        assert 900 in bursts[3]
        assert 33 in bursts[4]

    def test_no_prediction_without_history(self):
        p = MarkovPredictor(4)
        assert p.on_fault(1) == []
        assert p.on_fault(2) == []  # transition learned, none known for 2

    def test_most_recent_successor_first(self):
        # Learned transitions: 5->10 then later 5->20; the more recent
        # one must be predicted first.
        p = MarkovPredictor(1)
        for page in (5, 10, 99, 5, 20, 99):
            p.on_fault(page)
        burst = p.on_fault(5)
        assert burst == [20]

    def test_table_bounded(self):
        p = MarkovPredictor(2, table_size=4)
        for page in range(100):
            p.on_fault(page)
        assert len(p._table) <= 4

    def test_successor_list_bounded(self):
        p = MarkovPredictor(8, successors_per_page=2)
        for successor in (10, 20, 30, 40):
            p.on_fault(1)
            p.on_fault(successor)
        burst = p.on_fault(1)
        assert len(burst) <= 2

    def test_reset(self):
        p = MarkovPredictor(2)
        for page in (5, 9, 5, 9):
            p.on_fault(page)
        p.reset()
        assert p.on_fault(5) == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"load_length": 0},
            {"load_length": 2, "table_size": 0},
            {"load_length": 2, "successors_per_page": 0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            MarkovPredictor(**kwargs)


class TestDfpIntegration:
    """All three drop into the DFP engine unchanged."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: NextLinePredictor(4),
            lambda: StridePredictor(4),
            lambda: MarkovPredictor(4),
        ],
    )
    def test_pluggable_into_engine(self, factory):
        from repro.core.dfp import DfpConfig, DfpEngine

        engine = DfpEngine(DfpConfig(), predictor=factory())
        for page in (10, 11, 12, 13):
            burst = engine.on_fault(page)
            assert isinstance(burst, list)
