"""Unit tests for the SIP compiler pass (Section 4.4)."""

import pytest

from repro.core.config import SimConfig
from repro.core.instrumentation import build_sip_plan
from repro.core.profiler import InstructionProfile, WorkloadProfile
from repro.errors import InstrumentationError


def profile_with(ratios):
    """Build a synthetic profile: {instr: (class1, class2, class3)}."""
    profile = WorkloadProfile(
        workload="synthetic", input_set="train", footprint_pages=100, epc_pages=50
    )
    for instr, (c1, c2, c3) in ratios.items():
        profile.instructions[instr] = InstructionProfile(
            instr, f"site{instr}", class1=c1, class2=c2, class3=c3
        )
        profile.total_accesses += c1 + c2 + c3
    return profile


class TestThresholdDecision:
    def test_above_threshold_instrumented(self):
        plan = build_sip_plan(profile_with({0: (90, 0, 10)}), threshold=0.05)
        assert plan.is_instrumented(0)

    def test_below_threshold_skipped(self):
        plan = build_sip_plan(profile_with({0: (97, 0, 3)}), threshold=0.05)
        assert not plan.is_instrumented(0)

    def test_exactly_at_threshold_instrumented(self):
        plan = build_sip_plan(profile_with({0: (95, 0, 5)}), threshold=0.05)
        assert plan.is_instrumented(0)

    def test_class2_counts_against_ratio(self):
        """Class 2 accesses are left to DFP: a stream-heavy site stays
        uninstrumented even with some Class 3."""
        plan = build_sip_plan(profile_with({0: (0, 96, 4)}), threshold=0.05)
        assert not plan.is_instrumented(0)

    def test_unexecuted_site_never_instrumented(self):
        plan = build_sip_plan(profile_with({0: (0, 0, 0)}), threshold=0.0)
        assert not plan.is_instrumented(0)

    def test_mixed_population(self):
        plan = build_sip_plan(
            profile_with({0: (99, 0, 1), 1: (50, 0, 50), 2: (0, 100, 0)}),
            threshold=0.05,
        )
        assert plan.instrumented == frozenset({1})
        assert plan.instrumentation_points == 1

    @pytest.mark.parametrize("threshold", [-0.1, 1.5])
    def test_invalid_threshold_rejected(self, threshold):
        with pytest.raises(InstrumentationError):
            build_sip_plan(profile_with({0: (1, 0, 0)}), threshold=threshold)

    def test_zero_threshold_instruments_everything_executed(self):
        plan = build_sip_plan(
            profile_with({0: (100, 0, 0), 1: (0, 0, 1)}), threshold=0.0
        )
        assert plan.instrumented == frozenset({0, 1})


class TestPlanArtifacts:
    def test_evidence_retained(self):
        plan = build_sip_plan(profile_with({0: (90, 0, 10)}), threshold=0.05)
        assert plan.evidence[0].class3 == 10

    def test_describe_mentions_sites(self):
        plan = build_sip_plan(profile_with({3: (50, 0, 50)}), threshold=0.05)
        text = plan.describe()
        assert "1 instrumentation point" in text
        assert "site3" in text

    def test_threshold_recorded(self):
        plan = build_sip_plan(profile_with({0: (1, 0, 0)}), threshold=0.07)
        assert plan.threshold == pytest.approx(0.07)


class TestLbmTable2Scenario:
    """Integration: the lbm model must yield 0 points (Table 2)."""

    def test_lbm_zero_points(self):
        from repro.sim.engine import prepare_sip_plan
        from repro.workloads.registry import build_workload

        config = SimConfig.scaled(32)
        lbm = build_workload("lbm", scale=32)
        plan = prepare_sip_plan(lbm, config)
        assert plan.instrumentation_points == 0
