"""Property-based tests: classifier invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import AccessClass, StreamClassifier

pages_lists = st.lists(
    st.integers(min_value=0, max_value=5_000), min_size=1, max_size=300
)


@given(pages_lists)
@settings(max_examples=150)
def test_every_access_gets_exactly_one_class(pages):
    c = StreamClassifier(window=16)
    counts = c.classify_trace(list(pages))
    assert sum(counts.values()) == len(pages)


@given(pages_lists)
@settings(max_examples=150)
def test_immediate_repeat_is_class1(pages):
    """Touching the same page twice in a row is always Class 1."""
    c = StreamClassifier(window=16)
    prev = None
    for page in pages:
        cls = c.classify(page)
        if prev is not None and page == prev:
            assert cls is AccessClass.CLASS1
        prev = page


@given(pages_lists)
@settings(max_examples=150)
def test_deterministic(pages):
    a = StreamClassifier(window=16)
    b = StreamClassifier(window=16)
    for page in pages:
        assert a.classify(page) is b.classify(page)


@given(st.integers(min_value=1, max_value=64), pages_lists)
@settings(max_examples=100)
def test_larger_window_never_decreases_class1(window, pages):
    """Monotonicity: growing the recency window can only move accesses
    *into* Class 1 (the window is the EPC-residency proxy)."""
    small = StreamClassifier(window=window)
    large = StreamClassifier(window=window * 2)
    small_counts = small.classify_trace(list(pages))
    large_counts = large.classify_trace(list(pages))
    assert large_counts[AccessClass.CLASS1] >= small_counts[AccessClass.CLASS1]
