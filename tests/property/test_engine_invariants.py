"""Property-based tests: whole-engine invariants on random workloads.

For any random trace and any scheme:

* the time breakdown reconstructs the clock exactly;
* accesses = hits + faults;
* the EPC never over-commits;
* the run is deterministic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SimConfig
from repro.sim.engine import simulate

from tests.conftest import ScriptedWorkload

events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # instruction
        st.integers(min_value=0, max_value=200),  # page
        st.integers(min_value=1, max_value=100_000),  # compute
    ),
    min_size=1,
    max_size=150,
)

schemes = st.sampled_from(["baseline", "dfp", "dfp-stop"])


def make_workload(event_list):
    instructions = {i: f"instr{i}" for i in range(4)}
    return ScriptedWorkload(
        [tuple(e) for e in event_list],
        footprint_pages=201,
        instructions=instructions,
    )


def make_config():
    return SimConfig(
        epc_pages=32,
        stream_list_length=8,
        load_length=4,
        scan_period_cycles=300_000,
        valve_slack=8,
    )


@given(events, schemes)
@settings(max_examples=150, deadline=None)
def test_time_accounting_exact(event_list, scheme):
    result = simulate(make_workload(event_list), make_config(), scheme)
    assert result.stats.time.total == result.total_cycles


@given(events, schemes)
@settings(max_examples=150, deadline=None)
def test_hits_plus_faults_equals_accesses(event_list, scheme):
    stats = simulate(make_workload(event_list), make_config(), scheme).stats
    assert stats.epc_hits + stats.faults == stats.accesses


@given(events, schemes)
@settings(max_examples=100, deadline=None)
def test_total_time_at_least_compute(event_list, scheme):
    result = simulate(make_workload(event_list), make_config(), scheme)
    compute = sum(c for _i, _p, c in event_list)
    assert result.total_cycles >= compute


@given(events, schemes)
@settings(max_examples=75, deadline=None)
def test_deterministic_replay(event_list, scheme):
    a = simulate(make_workload(event_list), make_config(), scheme)
    b = simulate(make_workload(event_list), make_config(), scheme)
    assert a.total_cycles == b.total_cycles
    assert a.stats.faults == b.stats.faults
    assert a.stats.preloads_completed == b.stats.preloads_completed


@given(events)
@settings(max_examples=100, deadline=None)
def test_dfp_never_changes_correctness_only_timing(event_list):
    """Preloading must not change *what* is accessed: the access count
    and per-access success are identical; only times differ."""
    base = simulate(make_workload(event_list), make_config(), "baseline")
    dfp = simulate(make_workload(event_list), make_config(), "dfp")
    assert base.stats.accesses == dfp.stats.accesses
    # Every touched page ends the run accounted for: hits + faults.
    assert dfp.stats.epc_hits + dfp.stats.faults == dfp.stats.accesses


@given(events)
@settings(max_examples=75, deadline=None)
def test_preload_conservation_through_engine(event_list):
    stats = simulate(make_workload(event_list), make_config(), "dfp").stats
    assert stats.preloads_completed <= stats.preloads_enqueued
    assert (
        stats.preloads_enqueued
        - stats.preloads_completed
        - stats.preloads_aborted
    ) >= 0
