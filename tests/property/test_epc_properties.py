"""Property-based tests: EPC + CLOCK evictor invariants.

A random sequence of inserts/evicts/touches, driven the way the driver
drives them, must never violate the physical constraints: residency
bounded by capacity, the evictor ring consistent with the EPC, victims
always resident.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enclave.epc import Epc
from repro.enclave.eviction import ClockEvictor

CAPACITY = 8

# An operation stream: pages to touch, in driver fashion (touch loads
# the page if absent, evicting a CLOCK victim when full).
touches = st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=200)


@given(touches)
@settings(max_examples=200)
def test_residency_never_exceeds_capacity(pages):
    epc = Epc(CAPACITY)
    evictor = ClockEvictor(epc)
    for page in pages:
        if not epc.is_resident(page):
            if epc.is_full:
                victim = evictor.select_victim()
                epc.evict(victim)
                evictor.note_evict(victim)
            epc.insert(page)
            evictor.note_insert(page)
        epc.mark_accessed(page)
        assert epc.resident_count <= CAPACITY


@given(touches)
@settings(max_examples=200)
def test_clock_victim_is_always_resident(pages):
    epc = Epc(CAPACITY)
    evictor = ClockEvictor(epc)
    for page in pages:
        if not epc.is_resident(page):
            if epc.is_full:
                victim = evictor.select_victim()
                assert epc.is_resident(victim)
                epc.evict(victim)
                evictor.note_evict(victim)
            epc.insert(page)
            evictor.note_insert(page)
        epc.mark_accessed(page)


@given(touches)
@settings(max_examples=200)
def test_insert_evict_counters_balance(pages):
    epc = Epc(CAPACITY)
    evictor = ClockEvictor(epc)
    for page in pages:
        if not epc.is_resident(page):
            if epc.is_full:
                victim = evictor.select_victim()
                epc.evict(victim)
                evictor.note_evict(victim)
            epc.insert(page)
            evictor.note_insert(page)
    assert epc.total_inserts - epc.total_evictions == epc.resident_count


@given(touches)
@settings(max_examples=100)
def test_most_recent_touch_is_always_resident(pages):
    """The page just loaded for a touch can never be its own victim."""
    epc = Epc(CAPACITY)
    evictor = ClockEvictor(epc)
    for page in pages:
        if not epc.is_resident(page):
            if epc.is_full:
                victim = evictor.select_victim()
                epc.evict(victim)
                evictor.note_evict(victim)
            epc.insert(page)
            evictor.note_insert(page)
        epc.mark_accessed(page)
        assert epc.is_resident(page)
