"""Property-based tests: multiple-stream predictor invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predictor import MultiStreamPredictor

fault_streams = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=300
)
lengths = st.integers(min_value=1, max_value=16)
load_lengths = st.integers(min_value=1, max_value=16)


@given(fault_streams, lengths, load_lengths)
@settings(max_examples=150)
def test_stream_list_bounded(pages, length, load_length):
    p = MultiStreamPredictor(length, load_length)
    for page in pages:
        p.on_fault(page)
    assert len(p.streams) <= length


@given(fault_streams, lengths, load_lengths)
@settings(max_examples=150)
def test_burst_size_and_contents(pages, length, load_length):
    """Every burst has exactly load_length pages, all non-negative,
    strictly ahead of the faulting page, consecutive."""
    p = MultiStreamPredictor(length, load_length)
    for page in pages:
        burst = p.on_fault(page)
        if burst:
            assert len(burst) <= load_length
            assert all(q > page for q in burst)
            assert burst == list(range(page + 1, page + 1 + len(burst)))


@given(fault_streams, lengths, load_lengths)
@settings(max_examples=150)
def test_hits_plus_misses_equals_faults(pages, length, load_length):
    p = MultiStreamPredictor(length, load_length)
    for page in pages:
        p.on_fault(page)
    assert p.stream_hits + p.stream_misses == len(pages)


@given(st.integers(min_value=0, max_value=1000), st.integers(min_value=2, max_value=50))
@settings(max_examples=50)
def test_pure_sequence_hits_after_warmup(start, count):
    """A strictly sequential fault stream misses exactly once."""
    p = MultiStreamPredictor(8, 4)
    for page in range(start, start + count):
        p.on_fault(page)
    assert p.stream_misses == 1
    assert p.stream_hits == count - 1


@given(fault_streams)
@settings(max_examples=100)
def test_deterministic(pages):
    a = MultiStreamPredictor(8, 4)
    b = MultiStreamPredictor(8, 4)
    for page in pages:
        assert a.on_fault(page) == b.on_fault(page)
