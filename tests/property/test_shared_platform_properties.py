"""Property-based tests: shared-platform invariants with two enclaves."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SimConfig
from repro.sim.fleet import FleetScenario, TenantSpec, simulate_fleet

from tests.conftest import ScriptedWorkload

EPC = 24

events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=1, max_value=80_000),
    ),
    min_size=1,
    max_size=60,
)

scheme_pairs = st.tuples(
    st.sampled_from(["baseline", "dfp-stop"]),
    st.sampled_from(["baseline", "dfp-stop"]),
)


def make_pair(events_a, events_b):
    instructions = {0: "i0", 1: "i1"}
    a = ScriptedWorkload(
        [tuple(e) for e in events_a],
        name="a",
        footprint_pages=61,
        instructions=instructions,
    )
    b = ScriptedWorkload(
        [tuple(e) for e in events_b],
        name="b",
        footprint_pages=61,
        instructions=instructions,
    )
    return a, b


def config():
    return SimConfig(epc_pages=EPC, scan_period_cycles=400_000, valve_slack=8)


def run_shared(workloads, cfg, schemes):
    scenario = FleetScenario(
        name="property-shared",
        tenants=tuple(
            TenantSpec(workload=w, scheme=s)
            for w, s in zip(workloads, schemes)
        ),
        config=cfg,
    )
    return simulate_fleet(scenario).results


@given(events, events, scheme_pairs)
@settings(max_examples=80, deadline=None)
def test_per_enclave_accounting_exact(events_a, events_b, schemes):
    a, b = make_pair(events_a, events_b)
    results = run_shared([a, b], config(), list(schemes))
    for result in results:
        assert result.stats.time.total == result.total_cycles
        assert (
            result.stats.epc_hits + result.stats.faults
            == result.stats.accesses
        )


@given(events, events, scheme_pairs)
@settings(max_examples=80, deadline=None)
def test_shared_runs_deterministic(events_a, events_b, schemes):
    a, b = make_pair(events_a, events_b)
    first = run_shared([a, b], config(), list(schemes))
    a2, b2 = make_pair(events_a, events_b)
    second = run_shared([a2, b2], config(), list(schemes))
    assert [r.total_cycles for r in first] == [r.total_cycles for r in second]


@given(events, events)
@settings(max_examples=60, deadline=None)
def test_contention_never_speeds_anyone_up(events_a, events_b):
    """Sharing the EPC with a competitor can never make a baseline
    run *faster* than running alone."""
    from repro.sim.engine import simulate

    a, b = make_pair(events_a, events_b)
    solo_a = simulate(a, config(), "baseline")
    a2, b2 = make_pair(events_a, events_b)
    shared = run_shared([a2, b2], config(), ["baseline", "baseline"])
    assert shared[0].total_cycles >= solo_a.total_cycles
