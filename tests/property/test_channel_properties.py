"""Property-based tests: load-channel timing invariants.

A random interleaving of enqueues, demand loads, aborts and advances
must preserve: monotone application order, the per-load duration, and
conservation of preload counts (enqueued = completed + aborted +
still-pending).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enclave.loader import LoadChannel, LoadKind

LOAD = 44_000

# Operations: ("preload", [pages]) | ("demand", page) | ("advance", dt)
#             | ("abort_all",)
ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("preload"),
            st.lists(
                st.integers(min_value=0, max_value=500), min_size=1, max_size=6
            ),
        ),
        st.tuples(st.just("demand"), st.integers(min_value=0, max_value=500)),
        st.tuples(st.just("advance"), st.integers(min_value=0, max_value=200_000)),
        st.tuples(st.just("abort_all")),
    ),
    min_size=1,
    max_size=60,
)


class Tracker:
    def __init__(self):
        self.applied = []

    def __call__(self, page, kind, finish):
        self.applied.append((page, kind, finish))
        return False


def run_ops(op_list):
    tracker = Tracker()
    chan = LoadChannel(LOAD, tracker)
    now = 0
    queued = set()
    for op in op_list:
        if op[0] == "preload":
            pages = [
                p
                for p in dict.fromkeys(op[1])
                if not chan.is_queued(p) and chan.current_page != p
            ]
            if pages:
                chan.enqueue_preloads(pages, now)
                queued.update(pages)
        elif op[0] == "demand":
            now = chan.load_sync(op[1], LoadKind.DEMAND, now)
        elif op[0] == "advance":
            now += op[1]
            chan.advance_to(now)
        else:
            chan.abort_all(now)
    return chan, tracker, now


@given(ops)
@settings(max_examples=200)
def test_applications_time_ordered(op_list):
    _chan, tracker, _now = run_ops(op_list)
    finishes = [f for _p, _k, f in tracker.applied]
    assert finishes == sorted(finishes)


@given(ops)
@settings(max_examples=200)
def test_preload_conservation(op_list):
    chan, _tracker, now = run_ops(op_list)
    pending = len(chan.queued_pages) + (
        1 if chan.current_page is not None else 0
    )
    in_flight_is_preload = chan.current_page is not None
    # enqueued = completed + aborted + still queued (+ maybe in flight)
    accounted = chan.preloads_completed + chan.preloads_aborted + len(
        chan.queued_pages
    )
    if in_flight_is_preload:
        accounted += 1
    assert chan.preloads_enqueued == accounted


@given(ops)
@settings(max_examples=200)
def test_demand_loads_take_exactly_load_cycles_on_channel(op_list):
    """Every applied load finishes exactly LOAD cycles after the
    channel began it — loads are never shortened or stretched."""
    _chan, tracker, _now = run_ops(op_list)
    # Reconstruct: consecutive finishes must be >= LOAD apart whenever
    # the channel was continuously busy; at minimum every finish is at
    # least LOAD (nothing finishes instantly).
    for _page, _kind, finish in tracker.applied:
        assert finish >= LOAD


@given(ops)
@settings(max_examples=200)
def test_no_page_applied_twice_while_tracked(op_list):
    """A page is loaded at most once per residency period: we never
    enqueue a duplicate of a queued/in-flight page, so consecutive
    applications of the same page must be separated in time."""
    _chan, tracker, _now = run_ops(op_list)
    last_finish = {}
    for page, _kind, finish in tracker.applied:
        if page in last_finish:
            assert finish > last_finish[page]
        last_finish[page] = finish
