"""Baseline files: accept the past, fail the future, flag the stale."""

import json
from pathlib import Path

import pytest

from repro.errors import LintError
from repro.lint import (
    BASELINE_SCHEMA,
    Finding,
    apply_baseline,
    load_baseline,
    run_lint,
    write_baseline,
)

DEEP_FIXTURES = Path(__file__).parent / "fixtures" / "deep"


def _finding(message="m", path="src/a.py", code="RL101", line=3):
    return Finding(path=path, line=line, col=0, code=code, message=message)


class TestApplyBaseline:
    def test_matching_findings_are_suppressed(self):
        entries = [{"path": "src/a.py", "code": "RL101", "message": "m"}]
        result = apply_baseline([_finding()], entries)
        assert result.findings == [] and result.suppressed == 1
        assert result.stale == []

    def test_matching_ignores_line_numbers(self):
        entries = [{"path": "src/a.py", "code": "RL101", "message": "m"}]
        result = apply_baseline([_finding(line=400)], entries)
        assert result.findings == []

    def test_multiset_semantics_absorb_only_the_budget(self):
        entries = [{"path": "src/a.py", "code": "RL101", "message": "m"}]
        result = apply_baseline([_finding(), _finding(line=9)], entries)
        # One entry, two identical findings: the second one fails.
        assert len(result.findings) == 1 and result.suppressed == 1

    def test_fixed_finding_leaves_a_stale_entry(self):
        entries = [
            {"path": "src/a.py", "code": "RL101", "message": "m"},
            {"path": "src/gone.py", "code": "RL102", "message": "fixed"},
        ]
        result = apply_baseline([_finding()], entries)
        assert [e["path"] for e in result.stale] == ["src/gone.py"]


class TestBaselineFile:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, [_finding()])
        entries = load_baseline(target)
        assert entries[0]["path"] == "src/a.py"
        assert entries[0]["justification"].startswith("TODO")
        document = json.loads(target.read_text(encoding="utf-8"))
        assert document["schema"] == BASELINE_SCHEMA

    def test_missing_schema_is_rejected(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text(json.dumps({"findings": []}), encoding="utf-8")
        with pytest.raises(LintError):
            load_baseline(target)

    def test_invalid_json_is_rejected(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text("{", encoding="utf-8")
        with pytest.raises(LintError):
            load_baseline(target)

    def test_incomplete_entry_is_rejected(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text(
            json.dumps(
                {"schema": BASELINE_SCHEMA, "findings": [{"path": "x"}]}
            ),
            encoding="utf-8",
        )
        with pytest.raises(LintError):
            load_baseline(target)


class TestBaselineLifecycle:
    """The full loop: enters baseline → silenced → resurfaces on removal."""

    def test_enter_silence_resurface(self, tmp_path):
        package = str(DEEP_FIXTURES / "rl101")
        # 1. The violation is found.
        before = run_lint([package], select=["RL101"])
        assert before.findings

        # 2. Baselined: the same run is silent (and accounted for).
        target = tmp_path / "baseline.json"
        write_baseline(target, before.findings)
        baselined = run_lint(
            [package], select=["RL101"], baseline=load_baseline(target)
        )
        assert baselined.findings == []
        assert baselined.baselined == len(before.findings)
        assert baselined.stale_baseline == []

        # 3. Entry removed: the finding resurfaces.
        entries = load_baseline(target)[1:]
        resurfaced = run_lint([package], select=["RL101"], baseline=entries)
        assert len(resurfaced.findings) == 1
        assert resurfaced.findings[0].code == "RL101"

    def test_stale_entries_are_reported_by_run_lint(self, tmp_path):
        package = str(DEEP_FIXTURES / "rl101")
        before = run_lint([package], select=["RL101"])
        entries = [
            {
                "path": Path(f.path).as_posix(),
                "code": f.code,
                "message": f.message,
            }
            for f in before.findings
        ] + [{"path": "src/fixed.py", "code": "RL103", "message": "gone"}]
        report = run_lint([package], select=["RL101"], baseline=entries)
        assert report.findings == []
        assert [e["path"] for e in report.stale_baseline] == ["src/fixed.py"]
