"""RL011 fixture: bulk RunStats retirement outside the engine."""

__all__ = ["bulk_retire", "bulk_sip_credit"]


def bulk_retire(stats, count):
    stats.accesses += count
    stats.epc_hits += count


def bulk_sip_credit(stats, hits):
    stats.preload_hits += hits
