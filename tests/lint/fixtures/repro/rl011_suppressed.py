"""RL011 fixture: the same shapes, silenced or out of scope."""

__all__ = ["sanctioned_shim", "per_event_bookkeeping"]


def sanctioned_shim(stats, count):
    stats.accesses += count  # repro-lint: disable=RL011  test shim


def per_event_bookkeeping(stats, total, count):
    # Per-event increments, bare names and non-counter attributes are
    # not bulk retirement.
    stats.accesses += 1
    stats.sip_checks += 1
    total += count
    stats.window_width = count
    return total
