"""RL006 fixture: prints waived by pragmas (and non-print calls)."""

import sys

__all__ = ["announce", "report"]


def announce(message):
    print(message)  # repro-lint: disable=RL006 one-off calibration banner


def report(findings, write=print):  # a reference, not a call — clean
    write(len(findings), file=sys.stderr)
