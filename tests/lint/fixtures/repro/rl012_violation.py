"""RL012 fixture: fleet time-series emission outside simulate_fleet."""

__all__ = ["sneaky_tick", "sneaky_rebalance"]


def sneaky_tick(telemetry, now):
    telemetry.series_tick(now)


def sneaky_rebalance(telemetry, now, before, after):
    telemetry.series_rebalance(now, before, after)
