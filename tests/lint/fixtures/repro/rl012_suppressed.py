"""RL012 fixture: the same shapes, silenced or out of scope."""

__all__ = ["sanctioned_shim", "unrelated_attributes_are_fine"]


def sanctioned_shim(telemetry, now):
    telemetry.series_tick(now)  # repro-lint: disable=RL012  test shim


def unrelated_attributes_are_fine(telemetry, block):
    # Reads of the exported block and non-series methods are not
    # emission.
    windows = len(block["window_end"])
    telemetry.block()
    return windows
