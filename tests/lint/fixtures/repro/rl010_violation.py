"""RL010 fixture: paging-ledger emission outside the driver."""

__all__ = ["sneaky_hit", "sneaky_fault"]


def sneaky_hit(profiler, page, now):
    profiler.ledger_hit(page, now)


def sneaky_fault(profiler, page, now):
    profiler.ledger_fault(page, now, "miss")
