"""RL006 fixture: library code that writes to stdout directly."""

__all__ = ["load_pages", "debug_dump"]


def load_pages(pages):
    print(f"loading {len(pages)} pages")
    return list(pages)


def debug_dump(stats):
    print(stats)
