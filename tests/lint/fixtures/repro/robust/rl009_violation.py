"""RL009 fixture: hand-rolled execution-span dicts in the execution layer."""

__all__ = ["narrate_attempt", "narrate_retry"]


def narrate_attempt(job, attempt, events):
    events.append({"kind": "attempt", "job": job, "attempt": attempt})


def narrate_retry(job, delay, events):
    events.append(dict(kind="retry_backoff", job=job, delay_s=delay))
