"""RL009 fixture: the same shapes, silenced or out of scope."""

__all__ = ["narrate_attempt", "unrelated_dicts_are_fine"]


def narrate_attempt(job, attempt, events):
    events.append(
        {"kind": "attempt", "job": job}  # repro-lint: disable=RL009  legacy shim
    )


def unrelated_dicts_are_fine(job):
    # No "kind" marker key, or no job/attempt context: not a span.
    summary = {"job": job, "state": "done"}
    style = {"kind": "bar-chart", "color": "blue"}
    return summary, style
