"""RL010 fixture: the same shapes, silenced or out of scope."""

__all__ = ["sanctioned_shim", "unrelated_attributes_are_fine"]


def sanctioned_shim(profiler, page, now):
    profiler.ledger_hit(page, now)  # repro-lint: disable=RL010  test shim


def unrelated_attributes_are_fine(profiler, ledger):
    # Reads of ledger state and non-ledger methods are not emission.
    total = ledger.faults + ledger.accesses
    profiler.profile()
    return total
