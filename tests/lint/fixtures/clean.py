"""A module every rule should stay silent on."""

from random import Random

from repro import units

__all__ = ["footprint_pages", "jitter"]


def footprint_pages(nbytes):
    return units.pages_of(nbytes)


def jitter(seed, spread_cycles):
    rng = Random(seed)
    return rng.randrange(spread_cycles)
