"""RL102 fixture package: pickle safety of shipped values."""

__all__ = []
