"""RL102 violation: a closure reaches the job list via a helper.

Per-file RL007 only polices *which* module spawns processes; it cannot
see that the value inside ``specs`` came from a lambda factory in
``builders.py`` and will explode in ``pickle.dumps`` inside a worker.
"""

from repro.sim.parallel import run_jobs

from .builders import make_callback

__all__ = ["submit"]


def submit(policy, result):
    specs = [make_callback(result)]
    return run_jobs(specs, policy=policy)
