"""RL102 suppressed: same violation, pragma-silenced in place."""

from repro.sim.parallel import run_jobs

from .builders import make_callback

__all__ = ["submit"]


def submit(policy, result):
    specs = [make_callback(result)]
    return run_jobs(specs, policy=policy)  # repro-lint: disable=RL102 fixture
