"""Helper module: the unpicklable value is built one module away."""

__all__ = ["make_callback", "make_spec"]


def make_callback(result):
    """Returns a lambda — fails to pickle across a process boundary."""
    return lambda: result


def make_spec(name):
    """Returns plain data — safe to ship."""
    return {"workload": name, "scale": 16}
