"""RL102 clean cases: plain-data specs ship; parent-side args may close.

``on_result`` runs in the submitting process and never crosses the
boundary, so handing it a nested function is sanctioned — the rule
checks only the *shipped* argument positions.
"""

from repro.sim.parallel import run_jobs

from .builders import make_spec

__all__ = ["submit", "submit_with_handler"]


def submit(policy):
    specs = [make_spec("mcf"), make_spec("bfs")]
    return run_jobs(specs, policy=policy)


def submit_with_handler(policy):
    collected = []

    def handler(result):
        collected.append(result)

    return run_jobs([make_spec("mcf")], policy=policy, on_result=handler)
