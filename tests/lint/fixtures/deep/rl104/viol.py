"""RL104 violations: set iteration order leaks into emitted records.

The iterable looks like any other call result at the loop header; only
following ``touched_pages()`` into ``listing.py`` shows it is a set.
"""

from .listing import touched_pages

__all__ = ["emit", "snapshot"]


def emit(trace):
    events = []
    for page in touched_pages(trace):
        events.append(page)
    return events


def snapshot(trace):
    records = [page for page in touched_pages(trace)]
    return records
