"""RL104 clean cases: sorted() pins the order before anything leaks."""

from .listing import touched_pages

__all__ = ["emit", "tally"]


def emit(trace):
    events = []
    for page in sorted(touched_pages(trace)):
        events.append(page)
    return events


def tally(trace):
    # Order-insensitive reductions of a set are fine.
    return sum(touched_pages(trace)), len(touched_pages(trace))
