"""Helper module: the unordered collection is built one module away."""

__all__ = ["touched_pages"]


def touched_pages(trace):
    """A set — iteration order depends on the process's hash seed."""
    return {entry for entry in trace}
