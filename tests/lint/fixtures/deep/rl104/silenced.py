"""RL104 suppressed: same violation, pragma-silenced in place."""

from .listing import touched_pages

__all__ = ["emit"]


def emit(trace):
    events = []
    for page in touched_pages(trace):  # repro-lint: disable=RL104 fixture
        events.append(page)
    return events
