"""RL104 fixture package: unordered iteration into ordered output."""

__all__ = []
