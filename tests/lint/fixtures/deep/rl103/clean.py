"""RL103 clean cases: timestamps stay in the digest-exempt block."""

from repro.obs.manifest import build_manifest

from .timers import moment

__all__ = ["record", "record_spans"]


def record(result):
    return build_manifest(result)


def record_spans(result):
    # The exec_telemetry block is excluded from the integrity digest by
    # design; wall-clock inside it is sanctioned.
    return build_manifest(result, exec_telemetry={"elapsed": moment()})
