"""RL103 violations: wall-clock reaches a manifest through a helper.

No per-file rule can flag this: the call site never mentions ``time``;
the taint arrives through ``timers.moment()`` in another module.
"""

from repro.obs.manifest import build_manifest

from .timers import moment

__all__ = ["record", "stash"]


def record(result):
    return build_manifest(result, started=moment())


def stash(manifest, result):
    manifest["wall_time"] = moment()
    return manifest
