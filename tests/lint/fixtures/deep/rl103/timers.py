"""Helper module: the wall-clock read lives one module away."""

import time

__all__ = ["moment"]


def moment():
    """Looks like a plain number to any per-file rule."""
    return time.perf_counter()
