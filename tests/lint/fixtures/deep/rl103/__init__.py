"""RL103 fixture package: wall-clock taint into manifests."""

__all__ = []
