"""RL103 suppressed: same violation, pragma-silenced in place."""

from repro.obs.manifest import build_manifest

from .timers import moment

__all__ = ["record"]


def record(result):
    return build_manifest(result, started=moment())  # repro-lint: disable=RL103 fixture
