"""RL101 suppressed: same violation, pragma-silenced in place."""

import random

from .clocks import stamp

__all__ = ["fresh_rng"]


def fresh_rng():
    return random.Random(stamp())  # repro-lint: disable=RL101 fixture demo
