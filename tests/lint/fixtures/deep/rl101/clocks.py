"""Helper module: the wall-clock source lives one module away."""

import time

__all__ = ["stamp"]


def stamp():
    """A timestamp — looks innocent from the caller's file."""
    return int(time.time())
