"""RL101 clean cases: seeds that trace to a parameter or constant."""

import random

__all__ = ["seeded_rng", "fixed_rng", "derived_rng", "spanned_rng"]


def seeded_rng(seed):
    return random.Random(seed)


def fixed_rng():
    return random.Random(20200101)


def _mix(seed, salt):
    return seed * 31 + salt


def derived_rng(seed):
    return random.Random(_mix(seed, 7))


def spanned_rng(config):
    # A seed-named config field is an explicit seed, wherever it lives.
    return random.Random(config.base_seed)
