"""RL101 violations: the tainted seed is minted in another module.

Per-file RL002 cannot see this — ``random.Random(x)`` with an argument
is locally fine; only following ``stamp()`` into ``clocks.py`` reveals
the wall-clock origin.
"""

import random

from .clocks import stamp

__all__ = ["fresh_rng", "mystery_rng"]


def fresh_rng():
    return random.Random(stamp())


def mystery_rng(config):
    return random.Random(config.run_id)
