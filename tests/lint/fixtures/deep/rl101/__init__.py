"""RL101 fixture package: cross-module seed provenance."""

__all__ = []
