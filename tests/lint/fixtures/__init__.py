# Marker making this directory a package so RL005 treats its modules
# as public API surface; the files here are lint-rule fixtures and are
# never imported.
