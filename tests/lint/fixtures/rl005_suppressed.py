"""RL005 fixture: missing __all__, waived by a file-wide pragma."""

# repro-lint: disable=RL005 fixture exercises the stand-alone pragma


def helper():
    return 1
