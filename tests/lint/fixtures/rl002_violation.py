"""RL002 fixture: every unseeded-randomness shape the rule knows."""

import random
from random import Random, randint

__all__ = ["draw", "make_rng", "pick", "reseed", "hw_rng"]


def draw():
    return random.random()


def make_rng():
    return random.Random()


def pick():
    return Random(), randint(0, 9)


def reseed():
    random.seed()


def hw_rng():
    return random.SystemRandom()
