"""RL007 fixture: rolling its own process pool instead of run_jobs."""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Pool

__all__ = ["fan_out"]


def fan_out(jobs, fn, items):
    queue = multiprocessing.Queue()
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return queue, list(pool.map(fn, items))


def fan_out_futures(jobs, fn, items):
    import concurrent.futures

    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, items))


def fan_out_pool(jobs, fn, items):
    with Pool(jobs) as pool:
        return pool.map(fn, items)
