"""RL001 fixture: raw page arithmetic in every shape the rule knows."""

__all__ = ["footprint_bytes", "page_of", "EPC_BYTES", "EPC_EXPR", "tail"]


def footprint_bytes(npages):
    return npages * 4096


def page_of(address):
    return address >> 12


EPC_BYTES = 100663296
EPC_EXPR = 128 * 1024 * 1024


def tail(nbytes):
    return nbytes // 4096
