"""RL007 fixture: the same shapes, silenced by inline pragmas."""

import multiprocessing  # repro-lint: disable=RL007  measured, sanctioned here
from concurrent.futures import ProcessPoolExecutor  # repro-lint: disable=RL007  ditto

__all__ = ["fan_out", "run_jobs_is_fine"]


def fan_out(jobs, fn, items):
    with ProcessPoolExecutor(max_workers=jobs) as pool:  # noqa: the import was pragma'd
        return list(pool.map(fn, items))


def run_jobs_is_fine(specs):
    # Going through the sanctioned runner never trips the rule.
    from repro.robust import ExecutionPolicy
    from repro.sim.parallel import run_jobs

    policy = ExecutionPolicy(jobs=multiprocessing.cpu_count())
    return run_jobs(specs, policy=policy)
