"""RL003 fixture: frozen-dataclass mutation outside __post_init__."""

from dataclasses import dataclass

__all__ = ["Config", "tamper"]


@dataclass(frozen=True)
class Config:
    epc_pages: int = 8

    def grow(self):
        object.__setattr__(self, "epc_pages", self.epc_pages * 2)


def tamper(config):
    object.__setattr__(config, "epc_pages", 0)
