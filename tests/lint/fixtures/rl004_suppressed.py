"""RL004 fixture: float mixing silenced by pragmas, plus clean ints."""

__all__ = ["report", "advance"]


def report(total_cycles):
    return total_cycles / 1e6  # repro-lint: disable=RL004 fixture exercises pragma


def advance(aex_cycles):
    # Integral arithmetic on cycle counters is fine.
    return aex_cycles + 10_000
