"""RL001 fixture: the same arithmetic, silenced by inline pragmas."""

__all__ = ["footprint_bytes", "page_of", "EPC_BYTES"]


def footprint_bytes(npages):
    return npages * 4096  # repro-lint: disable=RL001 fixture exercises pragma


def page_of(address):
    return address >> 12  # repro-lint: disable=RL001 fixture exercises pragma


EPC_BYTES = 96 * 1024 * 1024  # repro-lint: disable=RL001 fixture exercises pragma
