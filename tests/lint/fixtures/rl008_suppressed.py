"""RL008 fixture: the same shapes, silenced or sanctioned."""

import time

__all__ = ["wait_a_bit", "robust_sleep_is_fine"]


def wait_a_bit():
    time.sleep(0.1)  # repro-lint: disable=RL008  measured, sanctioned here


def robust_sleep_is_fine(seconds):
    # Going through the resilience layer never trips the rule.
    from repro.robust import sleep

    sleep(seconds)


def other_sleeps_are_fine(pool):
    # Only the time module's sleep is a wall-clock wait.
    pool.sleep(5)
