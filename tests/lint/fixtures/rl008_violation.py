"""RL008 fixture: bare wall-clock sleeps outside repro.robust."""

import time
from time import sleep

__all__ = ["wait_a_bit"]


def wait_a_bit():
    time.sleep(0.1)
    sleep(0.1)
