"""RL002 fixture: unseeded randomness, silenced by pragmas.

Also demonstrates the *seeded* patterns the rule must stay quiet on.
"""

import random
from random import Random

__all__ = ["draw", "seeded_ok"]


def draw():
    return random.random()  # repro-lint: disable=RL002 fixture exercises pragma


def seeded_ok(seed):
    rng = Random(seed)
    other = random.Random(f"{seed}/salt")
    return rng.random() + other.random()
