"""RL005 fixture: a public package module with no __all__."""


def helper():
    return 1
