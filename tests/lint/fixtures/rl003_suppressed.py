"""RL003 fixture: mutation silenced by a pragma, plus the legal form."""

from dataclasses import dataclass

__all__ = ["Config", "tamper"]


@dataclass(frozen=True)
class Config:
    epc_pages: int = 8

    def __post_init__(self):
        # Legal: __post_init__ is the one place a frozen dataclass may
        # normalize its own fields.
        object.__setattr__(self, "epc_pages", max(1, self.epc_pages))


def tamper(config):
    object.__setattr__(config, "epc_pages", 0)  # repro-lint: disable=RL003 fixture exercises pragma
