"""RL004 fixture: float literals mixed into page/cycle accounting."""

__all__ = ["drift", "compare", "scale", "PreloadCounter"]

PreloadCounter = 0.5


def drift(total_cycles):
    total_cycles += 1.5
    return total_cycles


def compare(resident_pages):
    return resident_pages > 2.0


def scale(aex_cycles):
    return aex_cycles * 0.9
