"""The RL100-series: each deep rule against its fixture package.

Every rule has three fixture faces: ``viol.py`` (cross-module
violation the per-file pass provably misses), ``clean.py`` (the
sanctioned way to do the same thing) and ``silenced.py`` (the same
violation, pragma-suppressed in place).
"""

from pathlib import Path

import pytest

from repro.lint import lint_file, run_lint
from repro.lint.graph import ASTCache

DEEP_FIXTURES = Path(__file__).parent / "fixtures" / "deep"

CASES = {
    "RL101": "rl101",
    "RL102": "rl102",
    "RL103": "rl103",
    "RL104": "rl104",
}


def _deep(package: str, code: str, **kwargs):
    return run_lint([str(DEEP_FIXTURES / package)], select=[code], **kwargs)


@pytest.mark.parametrize("code,package", sorted(CASES.items()))
class TestEachDeepRule:
    def test_violation_is_caught(self, code, package):
        report = _deep(package, code)
        assert report.findings, f"{code} missed its fixture violation"
        assert {f.code for f in report.findings} == {code}
        assert all(Path(f.path).name == "viol.py" for f in report.findings)

    def test_clean_and_silenced_files_stay_quiet(self, code, package):
        report = _deep(package, code)
        flagged = {Path(f.path).name for f in report.findings}
        assert "clean.py" not in flagged
        assert "silenced.py" not in flagged

    def test_per_file_pass_misses_the_cross_module_bug(self, code, package):
        # The acceptance criterion: RL001–RL009 see nothing wrong with
        # the very file the deep rule (correctly) flags.
        assert lint_file(DEEP_FIXTURES / package / "viol.py") == []


class TestSelectionAndSuppression:
    def test_selecting_an_rl1xx_code_enables_the_deep_pass(self):
        # No deep=True — the code alone turns the analysis on.
        report = run_lint(
            [str(DEEP_FIXTURES / "rl101")], select=["RL101"]
        )
        assert report.deep and report.findings

    def test_ignore_drops_a_deep_code(self):
        report = run_lint(
            [str(DEEP_FIXTURES / "rl101")], deep=True,
            select=["RL101"], ignore=["RL101"],
        )
        assert report.findings == []

    def test_unknown_code_raises(self):
        from repro.errors import LintError

        with pytest.raises(LintError):
            run_lint([str(DEEP_FIXTURES / "rl101")], select=["RL999"])

    def test_deep_flag_runs_all_four_rules(self):
        report = run_lint([str(DEEP_FIXTURES)], deep=True, select=["RL101", "RL102", "RL103", "RL104"])
        assert {f.code for f in report.findings} == set(CASES)


class TestSharedCache:
    def test_per_file_and_deep_pass_share_one_parse(self):
        cache = ASTCache()
        package = DEEP_FIXTURES / "rl101"
        files = sorted(package.glob("*.py"))
        report = run_lint([str(package)], deep=True, cache=cache)
        # Per-file rules plus graph construction: one parse per file.
        assert cache.parse_count == len(files)
        assert report.parsed == len(files)
        assert report.files == len(files)
        assert report.elapsed_s > 0


class TestTaintPrecision:
    """Spot-checks that the engine's judgment calls hold."""

    def test_rl102_parent_side_callback_is_exempt(self):
        report = _deep("rl102", "RL102")
        # clean.py hands a nested function to on_result — sanctioned.
        assert all(Path(f.path).name != "clean.py" for f in report.findings)

    def test_rl103_exec_telemetry_kwarg_is_exempt(self):
        report = _deep("rl103", "RL103")
        assert all(Path(f.path).name != "clean.py" for f in report.findings)

    def test_rl104_sorted_absorbs_the_hazard(self):
        report = _deep("rl104", "RL104")
        assert all(Path(f.path).name != "clean.py" for f in report.findings)

    def test_rl101_flags_both_failure_modes(self):
        report = _deep("rl101", "RL101")
        messages = " ".join(f.message for f in report.findings)
        assert "non-deterministic source" in messages  # wall-clock seed
        assert "cannot be traced" in messages  # opaque seed
