"""Per-rule contract: each rule fires on its violation fixture and
stays silent once the fixture's ``disable`` pragma is in place."""

from pathlib import Path

import pytest

from repro.lint import lint_file

FIXTURES = Path(__file__).parent / "fixtures"


def findings_for(name, code):
    """Lint one fixture with a single rule selected."""
    return lint_file(FIXTURES / name, select=[code])


class TestRL001RawPageArithmetic:
    def test_fires_on_every_shape(self):
        found = findings_for("rl001_violation.py", "RL001")
        assert len(found) == 5
        messages = " | ".join(f.message for f in found)
        assert "4096" in messages
        assert "12-bit page shift" in messages
        assert "96 MiB" in messages
        assert "128 MiB" in messages

    def test_silent_under_pragma(self):
        assert findings_for("rl001_suppressed.py", "RL001") == []

    def test_units_module_is_exempt(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        units = pkg / "units.py"
        units.write_text('__all__ = ["PAGE_SIZE"]\nPAGE_SIZE = 4 * 1024\nX = 2 * 4096\n')
        assert lint_file(units, select=["RL001"]) == []

    def test_findings_carry_location(self):
        finding = findings_for("rl001_violation.py", "RL001")[0]
        assert finding.code == "RL001"
        assert finding.path.endswith("rl001_violation.py")
        assert finding.line == 7  # the `npages * 4096` line
        assert str(finding).startswith(finding.path)


class TestRL002UnseededRandomness:
    def test_fires_on_every_shape(self):
        found = findings_for("rl002_violation.py", "RL002")
        # random.random(), random.Random(), Random(), randint(),
        # random.seed(), random.SystemRandom()
        assert len(found) == 6

    def test_silent_under_pragma_and_on_seeded_uses(self):
        assert findings_for("rl002_suppressed.py", "RL002") == []


class TestRL003FrozenConfigMutation:
    def test_fires_outside_post_init(self):
        found = findings_for("rl003_violation.py", "RL003")
        assert len(found) == 2
        assert all("__post_init__" in f.message for f in found)

    def test_silent_under_pragma_and_in_post_init(self):
        assert findings_for("rl003_suppressed.py", "RL003") == []


class TestRL004FloatPageArithmetic:
    def test_fires_on_every_shape(self):
        found = findings_for("rl004_violation.py", "RL004")
        # module assign, augmented assign, comparison, binop
        assert len(found) == 4
        idents = " | ".join(f.message for f in found)
        assert "PreloadCounter" in idents
        assert "total_cycles" in idents
        assert "resident_pages" in idents
        assert "aex_cycles" in idents

    def test_silent_under_pragma_and_on_int_arithmetic(self):
        assert findings_for("rl004_suppressed.py", "RL004") == []


class TestRL005MissingDunderAll:
    def test_fires_on_public_module_without_all(self):
        found = findings_for("rl005_violation.py", "RL005")
        assert len(found) == 1
        assert found[0].line == 1

    def test_silent_under_file_wide_pragma(self):
        assert findings_for("rl005_suppressed.py", "RL005") == []

    def test_scripts_outside_packages_are_exempt(self, tmp_path):
        script = tmp_path / "calibrate.py"
        script.write_text("x = 1\n")
        assert lint_file(script, select=["RL005"]) == []

    def test_private_and_test_modules_are_exempt(self, tmp_path):
        (tmp_path / "__init__.py").write_text("")
        for name in ("_private.py", "test_thing.py", "conftest.py"):
            mod = tmp_path / name
            mod.write_text("x = 1\n")
            assert lint_file(mod, select=["RL005"]) == []


class TestRL006DirectPrint:
    def test_fires_on_each_print_call(self):
        found = findings_for("repro/rl006_violation.py", "RL006")
        assert len(found) == 2
        assert all("print()" in f.message for f in found)

    def test_silent_under_pragma_and_on_references(self):
        assert findings_for("repro/rl006_suppressed.py", "RL006") == []

    @pytest.mark.parametrize(
        "relpath", ["repro/cli.py", "repro/analysis/report.py"]
    )
    def test_sanctioned_writers_are_exempt(self, tmp_path, relpath):
        mod = tmp_path / relpath
        mod.parent.mkdir(parents=True, exist_ok=True)
        mod.write_text('__all__ = []\nprint("ok")\n')
        assert lint_file(mod, select=["RL006"]) == []

    def test_code_outside_the_package_is_exempt(self, tmp_path):
        script = tmp_path / "tools" / "calibrate.py"
        script.parent.mkdir()
        script.write_text('print("calibrating")\n')
        assert lint_file(script, select=["RL006"]) == []


class TestRL007StrayMultiprocessing:
    def test_fires_on_imports_and_attribute_use(self):
        found = findings_for("rl007_violation.py", "RL007")
        # import multiprocessing, from concurrent.futures import
        # ProcessPoolExecutor, from multiprocessing import Pool, and the
        # concurrent.futures.ProcessPoolExecutor attribute reference.
        assert len(found) == 4
        messages = " | ".join(f.message for f in found)
        assert "repro.sim.parallel" in messages

    def test_silent_under_pragma_and_on_run_jobs(self):
        assert findings_for("rl007_suppressed.py", "RL007") == []

    def test_sanctioned_runner_module_is_exempt(self, tmp_path):
        mod = tmp_path / "repro" / "sim" / "parallel.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            "__all__ = []\nfrom concurrent.futures import ProcessPoolExecutor\n"
        )
        assert lint_file(mod, select=["RL007"]) == []


class TestRL008BareSleep:
    def test_fires_on_imports_and_calls(self):
        found = findings_for("rl008_violation.py", "RL008")
        # from time import sleep, time.sleep(), sleep()
        assert len(found) == 3
        messages = " | ".join(f.message for f in found)
        assert "repro.robust" in messages

    def test_silent_under_pragma_and_on_robust_sleep(self):
        assert findings_for("rl008_suppressed.py", "RL008") == []

    def test_sanctioned_resilience_package_is_exempt(self, tmp_path):
        mod = tmp_path / "repro" / "robust" / "faults.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("__all__ = []\nimport time\ntime.sleep(0.01)\n")
        assert lint_file(mod, select=["RL008"]) == []


class TestRL009AdHocExecSpan:
    def test_fires_on_dict_literal_and_dict_call(self):
        found = findings_for("repro/robust/rl009_violation.py", "RL009")
        # {"kind": ..., "job": ..., "attempt": ...} and dict(kind=, job=)
        assert len(found) == 2
        messages = " | ".join(f.message for f in found)
        assert "exec_telemetry" in messages

    def test_silent_under_pragma_and_on_unrelated_dicts(self):
        assert findings_for("repro/robust/rl009_suppressed.py", "RL009") == []

    def test_job_runner_module_is_in_scope(self, tmp_path):
        mod = tmp_path / "repro" / "sim" / "parallel.py"
        mod.parent.mkdir(parents=True)
        mod.write_text('__all__ = []\nspan = {"kind": "attempt", "job": 0}\n')
        assert len(lint_file(mod, select=["RL009"])) == 1

    def test_code_outside_the_execution_layer_is_exempt(self, tmp_path):
        mod = tmp_path / "repro" / "obs" / "exec_telemetry.py"
        mod.parent.mkdir(parents=True)
        mod.write_text('__all__ = []\nspan = {"kind": "attempt", "job": 0}\n')
        assert lint_file(mod, select=["RL009"]) == []


class TestRL010StrayLedgerEmission:
    def test_fires_on_each_ledger_call(self):
        found = findings_for("repro/rl010_violation.py", "RL010")
        # ledger_hit() and ledger_fault()
        assert len(found) == 2
        messages = " | ".join(f.message for f in found)
        assert "repro.enclave.driver" in messages

    def test_silent_under_pragma_and_on_non_ledger_attributes(self):
        assert findings_for("repro/rl010_suppressed.py", "RL010") == []

    @pytest.mark.parametrize(
        "relpath", ["repro/obs/paging.py", "repro/enclave/driver.py"]
    )
    def test_sanctioned_emitters_are_exempt(self, tmp_path, relpath):
        mod = tmp_path / relpath
        mod.parent.mkdir(parents=True, exist_ok=True)
        mod.write_text("__all__ = []\nself._profiler.ledger_hit(page, now)\n")
        assert lint_file(mod, select=["RL010"]) == []

    def test_code_outside_the_package_is_exempt(self, tmp_path):
        mod = tmp_path / "tools" / "poke.py"
        mod.parent.mkdir()
        mod.write_text("profiler.ledger_hit(0, 0)\n")
        assert lint_file(mod, select=["RL010"]) == []


class TestRL011StrayBulkRetirement:
    def test_fires_on_each_bulk_increment(self):
        found = findings_for("repro/rl011_violation.py", "RL011")
        # accesses += count, epc_hits += count, preload_hits += hits
        assert len(found) == 3
        messages = " | ".join(f.message for f in found)
        assert "repro.sim.engine" in messages
        assert "horizon" in messages

    def test_silent_under_pragma_and_on_per_event_increments(self):
        assert findings_for("repro/rl011_suppressed.py", "RL011") == []

    @pytest.mark.parametrize(
        "relpath", ["repro/sim/engine.py", "repro/enclave/driver.py"]
    )
    def test_sanctioned_modules_are_exempt(self, tmp_path, relpath):
        mod = tmp_path / relpath
        mod.parent.mkdir(parents=True, exist_ok=True)
        mod.write_text("__all__ = []\nstats.accesses += count\n")
        assert lint_file(mod, select=["RL011"]) == []

    def test_other_library_modules_are_in_scope(self, tmp_path):
        mod = tmp_path / "repro" / "sim" / "sweep.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("__all__ = []\nstats.epc_hits += run_length\n")
        assert len(lint_file(mod, select=["RL011"])) == 1

    def test_code_outside_the_package_is_exempt(self, tmp_path):
        mod = tmp_path / "tools" / "poke.py"
        mod.parent.mkdir()
        mod.write_text("stats.accesses += 12\n")
        assert lint_file(mod, select=["RL011"]) == []


class TestRL012StraySeriesEmission:
    def test_fires_on_each_series_call(self):
        found = findings_for("repro/rl012_violation.py", "RL012")
        # series_tick() and series_rebalance()
        assert len(found) == 2
        messages = " | ".join(f.message for f in found)
        assert "simulate_fleet" in messages

    def test_silent_under_pragma_and_on_non_series_attributes(self):
        assert findings_for("repro/rl012_suppressed.py", "RL012") == []

    @pytest.mark.parametrize(
        "relpath", ["repro/sim/fleet.py", "repro/obs/fleet_telemetry.py"]
    )
    def test_sanctioned_emitters_are_exempt(self, tmp_path, relpath):
        mod = tmp_path / relpath
        mod.parent.mkdir(parents=True, exist_ok=True)
        mod.write_text("__all__ = []\ntelemetry.series_tick(now)\n")
        assert lint_file(mod, select=["RL012"]) == []

    def test_other_library_modules_are_in_scope(self, tmp_path):
        mod = tmp_path / "repro" / "sim" / "sweep.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("__all__ = []\ntelemetry.series_tick(now)\n")
        assert len(lint_file(mod, select=["RL012"])) == 1

    def test_code_outside_the_package_is_exempt(self, tmp_path):
        mod = tmp_path / "tools" / "poke.py"
        mod.parent.mkdir()
        mod.write_text("telemetry.series_tick(0)\n")
        assert lint_file(mod, select=["RL012"]) == []


@pytest.mark.parametrize(
    "code",
    [
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
        "RL008", "RL009", "RL010", "RL011", "RL012",
    ],
)
def test_clean_fixture_is_silent_under_every_rule(code):
    assert findings_for("clean.py", code) == []
