"""The ``python -m repro lint`` command: exit codes and formats."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def test_clean_path_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert main(["lint", str(tmp_path)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_findings_exit_nonzero_and_print_locations(capsys):
    rc = main(["lint", str(FIXTURES / "rl001_violation.py"), "--select", "RL001"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "rl001_violation.py:7" in out
    assert "RL001" in out


def test_json_format(capsys):
    rc = main(["lint", str(FIXTURES / "rl005_violation.py"), "--select", "RL005",
               "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["count"] == 1
    assert payload["findings"][0]["code"] == "RL005"


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RL001", "RL002", "RL003", "RL004", "RL005"):
        assert code in out


def test_unknown_rule_reports_error(capsys):
    rc = main(["lint", "--select", "RL999", str(FIXTURES / "clean.py")])
    assert rc == 2
    assert "unknown rule" in capsys.readouterr().err
