"""SARIF 2.1.0 export: structure, schema fields, stability."""

import json
from pathlib import Path

from repro.lint import Finding, deep_rule_catalog, rule_catalog
from repro.lint.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    render_sarif,
    sarif_document,
)


def _findings():
    return [
        Finding(
            path="src/repro/sim/engine.py",
            line=10,
            col=4,
            code="RL103",
            message="wall-clock tainted value flows into build_manifest()",
        ),
        Finding(
            path="src/repro/broken.py",
            line=1,
            col=0,
            code="RL000",
            message="file does not parse: invalid syntax",
        ),
    ]


def _catalog():
    return rule_catalog() + deep_rule_catalog()


class TestSarifDocument:
    def test_envelope_is_sarif_2_1_0(self):
        doc = sarif_document(_findings(), catalog=_catalog(), tool_version="1.0.0")
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA_URI
        assert len(doc["runs"]) == 1

    def test_driver_carries_the_full_rule_catalog(self):
        doc = sarif_document([], catalog=_catalog(), tool_version="1.0.0")
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert driver["version"] == "1.0.0"
        ids = [rule["id"] for rule in driver["rules"]]
        # Per-file and deep rules alike, even with zero findings.
        assert "RL001" in ids and "RL104" in ids
        assert all(rule["shortDescription"]["text"] for rule in driver["rules"])

    def test_results_link_rule_location_and_level(self):
        doc = sarif_document(_findings(), catalog=_catalog(), tool_version="1.0.0")
        run = doc["runs"][0]
        results = run["results"]
        assert len(results) == 2
        by_rule = {r["ruleId"]: r for r in results}
        taint = by_rule["RL103"]
        rules = run["tool"]["driver"]["rules"]
        assert rules[taint["ruleIndex"]]["id"] == "RL103"
        location = taint["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/sim/engine.py"
        assert location["artifactLocation"]["uriBaseId"] == "SRCROOT"
        # SARIF regions are 1-based; Finding columns are 0-based.
        assert location["region"] == {"startLine": 10, "startColumn": 5}
        assert taint["level"] == "warning"
        assert by_rule["RL000"]["level"] == "error"

    def test_srcroot_base_is_declared(self):
        doc = sarif_document([], catalog=_catalog(), tool_version="1.0.0")
        bases = doc["runs"][0]["originalUriBaseIds"]
        assert bases["SRCROOT"]["uri"].startswith("file:///")


class TestRenderSarif:
    def test_render_is_valid_json_and_deterministic(self):
        one = render_sarif(_findings(), catalog=_catalog(), tool_version="1.0.0")
        two = render_sarif(_findings(), catalog=_catalog(), tool_version="1.0.0")
        assert one == two
        assert json.loads(one)["version"] == "2.1.0"

    def test_golden_result_shape(self):
        # The exact serialized form of one finding — the contract the
        # upload-sarif consumer sees.
        doc = json.loads(
            render_sarif(_findings()[:1], catalog=_catalog(), tool_version="1.0.0")
        )
        result = doc["runs"][0]["results"][0]
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert rules[result.pop("ruleIndex")]["id"] == "RL103"
        assert result == {
            "level": "warning",
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": "src/repro/sim/engine.py",
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": 10, "startColumn": 5},
                    }
                }
            ],
            "message": {
                "text": "wall-clock tainted value flows into build_manifest()"
            },
            "ruleId": "RL103",
        }

    def test_cli_writes_the_file(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        target = tmp_path / "out.sarif"
        fixture = (
            Path(__file__).parent / "fixtures" / "deep" / "rl101"
        )
        code = main(
            [
                "lint",
                "--select",
                "RL101",
                "--sarif",
                str(target),
                str(fixture),
            ]
        )
        assert code == 1  # the fixture violation fails the run
        document = json.loads(target.read_text(encoding="utf-8"))
        assert document["version"] == "2.1.0"
        assert {r["ruleId"] for r in document["runs"][0]["results"]} == {"RL101"}
