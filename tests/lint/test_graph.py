"""The whole-program substrate: AST cache, module naming, resolution."""

from pathlib import Path

import pytest

from repro.errors import LintError
from repro.lint.graph import ASTCache, ProgramGraph, module_name_for


def _tree(tmp_path: Path, files: dict) -> Path:
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return tmp_path


class TestASTCache:
    def test_parses_each_file_exactly_once(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("x = 1\n", encoding="utf-8")
        cache = ASTCache()
        first = cache.load(target)
        second = cache.load(target)
        assert cache.parse_count == 1
        assert first[1] is second[1]  # the same tree object, not a re-parse

    def test_syntax_error_is_cached_not_raised(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n", encoding="utf-8")
        cache = ASTCache()
        source, tree, error = cache.load(target)
        assert tree is None and isinstance(error, SyntaxError)
        cache.load(target)
        assert cache.parse_count == 1

    def test_missing_file_raises_lint_error(self, tmp_path):
        with pytest.raises(LintError):
            ASTCache().load(tmp_path / "absent.py")


class TestModuleNaming:
    def test_package_layout_drives_the_name(self, tmp_path):
        _tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/sub/__init__.py": "",
                "pkg/sub/mod.py": "",
            },
        )
        assert module_name_for(tmp_path / "pkg/sub/mod.py") == "pkg.sub.mod"
        assert module_name_for(tmp_path / "pkg/sub/__init__.py") == "pkg.sub"

    def test_loose_script_maps_to_its_stem(self, tmp_path):
        target = tmp_path / "script.py"
        target.write_text("", encoding="utf-8")
        assert module_name_for(target) == "script"


class TestProgramGraph:
    def _graph(self, tmp_path) -> ProgramGraph:
        root = _tree(
            tmp_path,
            {
                "pkg/__init__.py": "from pkg.core import helper\n",
                "pkg/core.py": (
                    "import time\n"
                    "def helper(x):\n"
                    "    return x\n"
                    "class Box:\n"
                    "    def get(self):\n"
                    "        return 1\n"
                ),
                "pkg/uses.py": (
                    "import time as clock\n"
                    "from pkg.core import helper as h\n"
                    "from . import core\n"
                    "def caller(v):\n"
                    "    return h(core.helper(v))\n"
                ),
            },
        )
        return ProgramGraph.build(sorted(root.rglob("*.py")))

    def test_import_bindings_resolve_aliases(self, tmp_path):
        graph = self._graph(tmp_path)
        uses = graph.modules["pkg.uses"]
        assert uses.imports["clock"] == "time"
        assert uses.imports["h"] == "pkg.core.helper"
        assert uses.imports["core"] == "pkg.core"

    def test_resolve_function_across_modules(self, tmp_path):
        graph = self._graph(tmp_path)
        uses = graph.modules["pkg.uses"]
        import ast

        call = ast.parse("h(1)").body[0].value
        qual = graph.resolve_call(uses, call)
        assert qual == "pkg.core.helper"
        resolved = graph.resolve_function(qual)
        assert resolved is not None
        owner, func = resolved
        assert owner.name == "pkg.core" and func.name == "helper"

    def test_dealias_follows_package_reexports(self, tmp_path):
        graph = self._graph(tmp_path)
        # pkg/__init__.py re-exports helper; a reference through the
        # package lands on the defining module.
        resolved = graph.resolve_function("pkg.helper")
        assert resolved is not None
        assert resolved[0].name == "pkg.core"

    def test_methods_are_registered_with_class_prefix(self, tmp_path):
        graph = self._graph(tmp_path)
        assert "Box.get" in graph.modules["pkg.core"].functions

    def test_import_and_call_edges(self, tmp_path):
        graph = self._graph(tmp_path)
        assert "pkg.core" in graph.import_edges()["pkg.uses"]
        assert graph.call_edges()["pkg.uses.caller"] == {"pkg.core.helper"}

    def test_unparsable_file_is_skipped_not_fatal(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text("def (:\n", encoding="utf-8")
        graph = ProgramGraph.build([target])
        assert graph.modules == {}

    def test_shared_cache_is_not_reparsed(self, tmp_path):
        root = _tree(tmp_path, {"solo.py": "x = 1\n"})
        cache = ASTCache()
        cache.load(root / "solo.py")
        ProgramGraph.build([root / "solo.py"], cache=cache)
        assert cache.parse_count == 1
