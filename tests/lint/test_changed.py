"""``--changed``: lint findings restricted to files touched vs. a ref."""

import subprocess
from pathlib import Path

import pytest

from repro.errors import LintError
from repro.lint import changed_files, run_lint

# A self-contained RL104 violation (set iteration feeding an event
# list) so the changed-mode tests need no cross-file imports.
VIOLATION = """\
__all__ = ["emit"]


def emit():
    events = []
    for item in {1, 2, 3}:
        events.append(item)
    return events
"""


def _git(repo: Path, *args: str) -> str:
    return subprocess.run(
        [
            "git",
            "-c", "user.email=lint@test",
            "-c", "user.name=lint-test",
            *args,
        ],
        cwd=repo,
        capture_output=True,
        text=True,
        check=True,
    ).stdout


@pytest.fixture
def repo(tmp_path):
    _git(tmp_path, "init", "-q", "-b", "main")
    (tmp_path / "committed.py").write_text(VIOLATION, encoding="utf-8")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    return tmp_path


class TestChangedFiles:
    def test_untracked_and_modified_files_are_changed(self, repo):
        (repo / "fresh.py").write_text(VIOLATION, encoding="utf-8")
        (repo / "committed.py").write_text(VIOLATION + "\n", encoding="utf-8")
        names = {p.name for p in changed_files("HEAD", cwd=repo)}
        assert names == {"fresh.py", "committed.py"}

    def test_clean_tree_has_no_changes(self, repo):
        assert changed_files("HEAD", cwd=repo) == set()

    def test_outside_a_repo_raises_lint_error(self, tmp_path):
        lonely = tmp_path / "no-repo"
        lonely.mkdir()
        with pytest.raises(LintError):
            changed_files("HEAD", cwd=lonely)

    def test_unknown_ref_raises_lint_error(self, repo):
        with pytest.raises(LintError):
            changed_files("no-such-ref", cwd=repo)


class TestChangedMode:
    def test_findings_are_filtered_to_changed_files(self, repo, monkeypatch):
        monkeypatch.chdir(repo)
        (repo / "fresh.py").write_text(VIOLATION, encoding="utf-8")

        # Without the filter: both the committed and the fresh file.
        full = run_lint(["."], select=["RL104"])
        assert {Path(f.path).name for f in full.findings} == {
            "committed.py",
            "fresh.py",
        }

        # With it: only the file touched since the ref.
        changed = run_lint(["."], select=["RL104"], changed_ref="HEAD")
        assert {Path(f.path).name for f in changed.findings} == {"fresh.py"}
        assert changed.changed_only == 1

    def test_deep_rules_still_see_the_whole_program(self, repo, monkeypatch):
        # The cross-module case: helper (committed, unchanged) mints the
        # set; caller (fresh) iterates it.  The deep pass must load the
        # helper to find the bug in the changed file.
        monkeypatch.chdir(repo)
        (repo / "__init__.py").write_text("", encoding="utf-8")
        (repo / "maker.py").write_text(
            '__all__ = ["pages"]\n\n\n'
            "def pages(trace):\n"
            "    return {t for t in trace}\n",
            encoding="utf-8",
        )
        _git(repo, "add", ".")
        _git(repo, "commit", "-q", "-m", "helper")
        (repo / "caller.py").write_text(
            '__all__ = ["emit"]\n\n'
            "from .maker import pages\n\n\n"
            "def emit(trace):\n"
            "    events = []\n"
            "    for page in pages(trace):\n"
            "        events.append(page)\n"
            "    return events\n",
            encoding="utf-8",
        )
        report = run_lint(["."], select=["RL104"], changed_ref="HEAD")
        flagged = {Path(f.path).name for f in report.findings}
        assert "caller.py" in flagged  # needs maker.py in the graph
        assert "committed.py" not in flagged  # filtered: unchanged
