"""Runner semantics: discovery, pragmas, output formats, self-check."""

import json
from pathlib import Path

import pytest

from repro.errors import LintError
from repro.lint import (
    RULES,
    iter_python_files,
    lint_file,
    lint_paths,
    render_json,
    render_text,
    rule_catalog,
)

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


class TestDiscovery:
    def test_directory_walk_skips_fixture_dirs(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        hidden = tmp_path / "fixtures"
        hidden.mkdir()
        (hidden / "bad.py").write_text("x = n * 4096\n")
        files = list(iter_python_files([tmp_path]))
        assert [f.name for f in files] == ["mod.py"]

    def test_explicit_fixture_path_is_still_linted(self):
        found = lint_file(FIXTURES / "rl001_violation.py", select=["RL001"])
        assert found

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(LintError):
            list(iter_python_files([tmp_path / "nope"]))

    def test_unknown_rule_code_raises(self):
        with pytest.raises(LintError):
            lint_file(FIXTURES / "clean.py", select=["RL999"])


class TestPragmas:
    def test_inline_pragma_is_line_scoped(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "a = n * 4096  # repro-lint: disable=RL001 first site is vetted\n"
            "b = n * 4096\n"
        )
        found = lint_file(mod, select=["RL001"])
        assert [f.line for f in found] == [2]

    def test_standalone_pragma_is_file_wide(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "# repro-lint: disable=RL001\n"
            "a = n * 4096\n"
            "b = n >> 12\n"
        )
        assert lint_file(mod, select=["RL001"]) == []

    def test_disable_all(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("import random\na = random.random() * 4096  # repro-lint: disable=all\n")
        assert lint_file(mod) == []

    def test_pragma_lists_multiple_codes(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "import random\n"
            "a = random.random() * 4096  # repro-lint: disable=RL001, RL002 vetted\n"
        )
        assert lint_file(mod, select=["RL001", "RL002"]) == []

    def test_pragma_for_other_code_does_not_suppress(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("a = n * 4096  # repro-lint: disable=RL002\n")
        assert len(lint_file(mod, select=["RL001"])) == 1


class TestOutput:
    def test_syntax_error_becomes_rl000_finding(self, tmp_path):
        mod = tmp_path / "broken.py"
        mod.write_text("def oops(:\n")
        found = lint_file(mod)
        assert [f.code for f in found] == ["RL000"]

    def test_render_text_has_summary_line(self):
        found = lint_file(FIXTURES / "rl001_violation.py", select=["RL001"])
        text = render_text(found)
        assert text.endswith("5 findings")

    def test_render_json_round_trips(self):
        found = lint_file(FIXTURES / "rl001_violation.py", select=["RL001"])
        payload = json.loads(render_json(found))
        assert payload["count"] == len(found)
        assert payload["findings"][0]["code"] == "RL001"

    def test_rule_catalog_lists_all_registered_rules(self):
        codes = [entry["code"] for entry in rule_catalog()]
        assert codes == sorted(RULES)
        assert codes == [
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
            "RL008", "RL009", "RL010", "RL011", "RL012",
        ]

    def test_deep_rule_catalog_lists_the_rl100_series(self):
        from repro.lint import DEEP_RULES, deep_rule_catalog

        codes = [entry["code"] for entry in deep_rule_catalog()]
        assert codes == sorted(DEEP_RULES)
        assert codes == ["RL101", "RL102", "RL103", "RL104"]


def test_repo_tree_is_lint_clean():
    """The acceptance gate: the shipped tree has zero findings."""
    findings = lint_paths(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
    )
    assert findings == [], render_text(findings)
