"""Keep pytest (and its doctest collector) out of the lint fixtures.

The fixture files contain deliberate rule violations; they exist to be
*parsed* by the linter, never imported.
"""

collect_ignore_glob = ["fixtures/*", "fixtures/*/*", "fixtures/*/*/*"]
