"""Simulation engine tests: accounting, schemes, determinism."""

import pytest

from repro.core.config import SimConfig
from repro.sim.engine import prepare_sip_plan, simulate, simulate_native
from repro.workloads.base import SyntheticWorkload
from repro.workloads.synthetic import sequential, uniform_random

from tests.conftest import ScriptedWorkload


@pytest.fixture
def config():
    return SimConfig(epc_pages=64, scan_period_cycles=500_000, valve_slack=16)


@pytest.fixture
def seq_workload():
    return SyntheticWorkload(
        "seq", 256, {0: "scan"}, [sequential(0, 0, 256, compute=5_000, passes=2)]
    )


@pytest.fixture
def rand_workload():
    return SyntheticWorkload(
        "rand",
        512,
        {0: "probe"},
        [uniform_random([0], 0, 512, 2_000, compute=5_000)],
    )


class TestAccountingInvariant:
    @pytest.mark.parametrize("scheme", ["baseline", "dfp", "dfp-stop", "sip", "hybrid"])
    def test_buckets_reconstruct_total(self, config, seq_workload, scheme):
        result = simulate(seq_workload, config, scheme)
        assert result.stats.time.total == result.total_cycles

    def test_compute_bucket_matches_trace(self, config):
        events = [(0, 0, 1_000), (0, 1, 2_000), (0, 0, 3_000)]
        wl = ScriptedWorkload(events)
        result = simulate(wl, config)
        assert result.stats.time.compute == 6_000

    def test_access_count_matches_trace_length(self, config, seq_workload):
        result = simulate(seq_workload, config)
        assert result.stats.accesses == 512


class TestBaselineBehaviour:
    def test_working_set_within_epc_faults_once_per_page(self, config):
        wl = SyntheticWorkload(
            "small", 32, {0: "scan"}, [sequential(0, 0, 32, compute=100, passes=5)]
        )
        result = simulate(wl, config)
        assert result.stats.faults == 32  # warm-up only

    def test_working_set_beyond_epc_faults_every_pass(self, config, seq_workload):
        result = simulate(seq_workload, config)
        # 256 pages over a 64-frame EPC: no reuse survives a pass.
        assert result.stats.faults == 512

    def test_fault_cost_dominates_when_memory_bound(self, config, seq_workload):
        result = simulate(seq_workload, config)
        assert result.fault_overhead_fraction > 0.5


class TestSchemes:
    def test_dfp_reduces_time_on_sequential(self, config, seq_workload):
        base = simulate(seq_workload, config, "baseline")
        dfp = simulate(seq_workload, config, "dfp-stop")
        assert dfp.total_cycles < base.total_cycles

    def test_sip_requires_or_builds_plan(self, config, rand_workload):
        result = simulate(rand_workload, config, "sip")
        assert result.sip_points > 0
        assert result.stats.sip_checks > 0

    def test_explicit_plan_used(self, config, rand_workload):
        plan = prepare_sip_plan(rand_workload, config)
        result = simulate(rand_workload, config, "sip", sip_plan=plan)
        assert result.sip_points == plan.instrumentation_points

    def test_sip_on_random_beats_baseline(self, config, rand_workload):
        base = simulate(rand_workload, config, "baseline")
        sip = simulate(rand_workload, config, "sip")
        assert sip.total_cycles < base.total_cycles
        assert sip.stats.faults < base.stats.faults

    def test_max_accesses_truncates(self, config, seq_workload):
        result = simulate(seq_workload, config, max_accesses=10)
        assert result.stats.accesses == 10

    def test_record_events(self, config):
        wl = ScriptedWorkload([(0, 0, 100), (0, 1, 100)])
        result = simulate(wl, config, record_events=True)
        assert result.events
        assert simulate(wl, config).events is None


class TestDeterminism:
    @pytest.mark.parametrize("scheme", ["baseline", "dfp-stop", "sip", "hybrid"])
    def test_same_seed_same_result(self, config, rand_workload, scheme):
        a = simulate(rand_workload, config, scheme, seed=7)
        b = simulate(rand_workload, config, scheme, seed=7)
        assert a.total_cycles == b.total_cycles
        assert a.stats.faults == b.stats.faults

    def test_different_seed_different_result(self, config, rand_workload):
        a = simulate(rand_workload, config, seed=1)
        b = simulate(rand_workload, config, seed=2)
        assert a.total_cycles != b.total_cycles


class TestNative:
    def test_native_faults_once_per_page(self, config, seq_workload):
        result = simulate_native(seq_workload, config)
        assert result.stats.faults == 256
        assert result.scheme == "native"

    def test_native_fault_cost_is_regular(self, config):
        wl = ScriptedWorkload([(0, 0, 1_000)])
        result = simulate_native(wl, config)
        assert result.total_cycles == 1_000 + config.cost.regular_fault_cycles

    def test_enclave_much_slower_than_native_when_thrashing(
        self, config, seq_workload
    ):
        """The motivation observation (Sections 1-2): an order of
        magnitude or more for memory-bound sequential code."""
        native = simulate_native(seq_workload, config)
        enclave = simulate(seq_workload, config, "baseline")
        assert enclave.total_cycles > 5 * native.total_cycles
