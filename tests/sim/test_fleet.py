"""Fleet simulator tests: determinism, QoS accounting, churn edges."""

import json

import pytest

from repro.core.config import SimConfig
from repro.errors import ConfigError
from repro.sim.fleet import (
    EPC_POLICIES,
    FleetScenario,
    SCENARIO_NAMES,
    TenantSpec,
    build_scenario,
    simulate_fleet,
)
from repro.workloads.base import SyntheticWorkload
from repro.workloads.requests import RequestProfile
from repro.workloads.synthetic import sequential, uniform_random

from tests.conftest import ScriptedWorkload


def small_config(**overrides):
    defaults = dict(epc_pages=64, scan_period_cycles=200_000, valve_slack=16)
    defaults.update(overrides)
    return SimConfig(**defaults)


def stream(name, pages=40, passes=3, compute=3_000):
    return SyntheticWorkload(
        name, pages, {0: "s"},
        [sequential(0, 0, pages, compute=compute, passes=passes)],
    )


def scatter(name, pages=48, count=150, compute=3_000):
    return SyntheticWorkload(
        name, pages, {0: "r"},
        [uniform_random([0], 0, pages, count, compute=compute)],
    )


def canonical(manifest):
    return json.dumps(manifest, indent=2, sort_keys=True)


class TestDeterminism:
    def test_same_scenario_and_seed_is_byte_identical(self):
        """The acceptance bar: two runs of the same named scenario at
        the same seed produce byte-identical aggregate manifests,
        fleet block included."""
        a = simulate_fleet(build_scenario("smoke", seed=7))
        b = simulate_fleet(build_scenario("smoke", seed=7))
        assert canonical(a.manifest()) == canonical(b.manifest())

    def test_different_seed_changes_the_run(self):
        a = simulate_fleet(build_scenario("smoke", seed=0))
        b = simulate_fleet(build_scenario("smoke", seed=1))
        assert canonical(a.manifest()) != canonical(b.manifest())

    @pytest.mark.parametrize("policy", EPC_POLICIES)
    def test_every_policy_is_deterministic(self, policy):
        a = simulate_fleet(build_scenario("smoke", seed=2, policy=policy))
        b = simulate_fleet(build_scenario("smoke", seed=2, policy=policy))
        assert canonical(a.fleet_block()) == canonical(b.fleet_block())

    def test_named_scenarios_cover_the_registry(self):
        assert SCENARIO_NAMES == ("churn-50", "smoke", "steady-8")
        with pytest.raises(ConfigError):
            build_scenario("no-such-scenario")


class TestHeapTieBreak:
    """Simultaneous events must resolve by tenant index, explicitly."""

    def _twins(self):
        # Identical traces: every event of tenant 0 and tenant 1 is
        # scheduled for the same virtual instant — maximal tie stress.
        events = [(0, page, 4_000) for page in range(30)] * 2
        instructions = {0: "i"}
        return (
            ScriptedWorkload(events, name="twin-a", footprint_pages=30,
                             instructions=instructions),
            ScriptedWorkload(events, name="twin-b", footprint_pages=30,
                             instructions=instructions),
        )

    def test_lower_index_wins_every_tie(self):
        """With byte-identical twin tenants, tenant 0 reaches the
        exclusive load channel first at every tied fault, so its waits
        can never exceed its twin's."""
        a, b = self._twins()
        scenario = FleetScenario(
            name="ties",
            tenants=(TenantSpec(workload=a), TenantSpec(workload=b)),
            config=small_config(epc_pages=24),
        )
        results = simulate_fleet(scenario).results
        assert results[0].stats.time.fault_wait <= results[1].stats.time.fault_wait
        assert results[0].total_cycles <= results[1].total_cycles

    def test_tied_ordering_is_pinned(self):
        """Regression pin: the tie-broken interleaving is stable —
        repeated runs agree on every per-tenant counter."""
        a, b = self._twins()
        scenario = FleetScenario(
            name="ties",
            tenants=(TenantSpec(workload=a), TenantSpec(workload=b)),
            config=small_config(epc_pages=24),
        )
        first = simulate_fleet(scenario).results
        a2, b2 = self._twins()
        second = simulate_fleet(
            FleetScenario(
                name="ties",
                tenants=(TenantSpec(workload=a2), TenantSpec(workload=b2)),
                config=small_config(epc_pages=24),
            )
        ).results
        assert [r.stats.as_dict() for r in first] == [
            r.stats.as_dict() for r in second
        ]


class TestQoS:
    def _run(self, **scenario_kwargs):
        scenario = FleetScenario(
            name="qos",
            tenants=(
                TenantSpec(workload=stream("s0")),
                TenantSpec(
                    workload=scatter("r1"),
                    requests=RequestProfile(
                        kind="poisson", mean_gap_cycles=50_000,
                        events_per_request=16,
                    ),
                ),
            ),
            config=small_config(epc_pages=48),
            **scenario_kwargs,
        )
        return simulate_fleet(scenario)

    def test_wait_histogram_reconciles_with_time_breakdown(self):
        """The QoS percentiles come from ``fault.wait_hist``; its exact
        sum must equal the ``fault_wait`` bucket of the same tenant's
        :class:`TimeBreakdown` — the histogram observes every charged
        wait and nothing else."""
        fleet = self._run()
        for record, result in zip(fleet.tenants, fleet.results):
            assert record.admitted
            # Exact reconciliation: histogram sum == TimeBreakdown bucket.
            assert (
                record.qos["channel_wait_cycles"]
                == result.stats.time.fault_wait
            )
            p99 = record.qos["channel_wait_p99"]
            if record.qos["channel_wait_samples"] == 0:
                assert p99 == 0.0
            else:
                # A single observation can never exceed the total.
                assert 0.0 <= p99 <= result.stats.time.fault_wait + 1

    def test_time_identity_includes_idle(self):
        """Per-tenant buckets (idle included) sum exactly to the
        tenant's clock — the solo-run identity survives churn."""
        fleet = self._run()
        for result in fleet.results:
            assert result.stats.time.total == result.total_cycles

    def test_open_loop_tenant_records_requests(self):
        fleet = self._run()
        record = fleet.tenants[1]
        assert record.requests_served > 1
        requests = record.qos["requests"]
        assert requests["served"] == record.requests_served
        assert requests["lag_p99"] >= requests["lag_p50"] >= 0.0

    def test_fault_latency_is_wait_plus_constants(self):
        fleet = self._run()
        cost = fleet.config.cost
        fixed = cost.aex_cycles + cost.eresume_cycles
        for record in fleet.tenants:
            assert record.qos["fault_latency_p50"] == pytest.approx(
                fixed + record.qos["channel_wait_p50"]
            )
            assert record.qos["fault_latency_p99"] == pytest.approx(
                fixed + record.qos["channel_wait_p99"]
            )


class TestChurn:
    def test_admission_queue_fifo_under_cap(self):
        """With one slot, tenants serialize: each admission waits for
        the previous departure, in arrival order."""
        scenario = FleetScenario(
            name="serialized",
            tenants=(
                TenantSpec(workload=stream("s0", passes=1)),
                TenantSpec(workload=stream("s1", passes=1), arrival=1_000),
                TenantSpec(workload=stream("s2", passes=1), arrival=2_000),
            ),
            config=small_config(),
            max_admitted=1,
        )
        fleet = simulate_fleet(scenario)
        records = fleet.tenants
        assert all(r.admitted and r.completed for r in records)
        # FIFO: each tenant is admitted exactly when its predecessor
        # departs (arrival order == admission order).
        assert records[1].admitted_at == records[0].departed_at
        assert records[2].admitted_at == records[1].departed_at
        # Admission wait is charged to idle, keeping accounting exact.
        assert fleet.results[1].stats.time.idle >= records[1].admitted_at
        assert fleet.results[1].stats.time.total == fleet.results[1].total_cycles

    def test_arrival_when_epc_is_full_still_works(self):
        """A tenant spinning up against a full EPC evicts its way in
        through the shared frame pool."""
        hog = stream("hog", pages=64, passes=2)  # fills the whole EPC
        late = scatter("late", pages=32, count=60)
        scenario = FleetScenario(
            name="full-epc",
            tenants=(
                TenantSpec(workload=hog),
                TenantSpec(workload=late, arrival=500_000),
            ),
            config=small_config(epc_pages=64),
            spinup_pages=16,
        )
        fleet = simulate_fleet(scenario)
        assert all(r.admitted and r.completed for r in fleet.tenants)
        late_result = fleet.results[1]
        assert late_result.stats.accesses == 60
        assert late_result.stats.time.total == late_result.total_cycles

    def test_last_tenant_departing_drains_the_queue(self):
        """The final departure admits everyone still waiting — nobody
        is stranded when the loop runs out of events."""
        scenario = FleetScenario(
            name="drain",
            tenants=tuple(
                TenantSpec(workload=stream(f"s{i}", passes=1)) for i in range(5)
            ),
            config=small_config(),
            max_admitted=2,
        )
        fleet = simulate_fleet(scenario)
        assert all(r.admitted and r.completed for r in fleet.tenants)
        summary = fleet.fleet_block()["summary"]
        assert summary["admitted"] == 5
        assert summary["never_admitted"] == 0

    def test_duration_cutoff_leaves_tenants_unadmitted(self):
        """A tenant whose arrival lies past the duration never runs
        and reports a zero result — not an error."""
        scenario = FleetScenario(
            name="cutoff",
            tenants=(
                TenantSpec(workload=stream("s0", passes=1)),
                TenantSpec(workload=stream("s1", passes=1), arrival=10**9),
            ),
            config=small_config(),
            duration=50_000_000,
        )
        fleet = simulate_fleet(scenario)
        records = fleet.tenants
        assert records[0].admitted
        assert not records[1].admitted
        assert fleet.results[1].total_cycles == 0
        assert fleet.results[1].stats.accesses == 0
        assert fleet.fleet_block()["summary"]["never_admitted"] == 1

    def test_duration_cutoff_flushes_truncated_tenants_idle(self):
        """Regression: a tenant admitted just before the cutoff — whose
        first event therefore never runs — carries unflushed pending
        idle into finalization.  It must be reported as truncated, not
        crash the time-accounting identity check."""
        scenario = FleetScenario(
            name="cutoff-midwait",
            tenants=(
                TenantSpec(workload=stream("s0", passes=1)),
                TenantSpec(workload=stream("s1", passes=1), arrival=49_999_000),
            ),
            config=small_config(),
            duration=50_000_000,
        )
        fleet = simulate_fleet(scenario)
        record = fleet.tenants[1]
        assert record.admitted and not record.completed
        assert record.departed_at is None
        result = fleet.results[1]
        assert result.stats.time.total == result.total_cycles
        assert result.stats.time.idle >= 49_999_000

    def test_duration_cutoff_flushes_open_loop_request_wait(self):
        """Regression: an open-loop tenant idling toward its next
        request arrival at the cutoff has accrued gap idle that was
        never charged; truncation must flush it."""
        scenario = FleetScenario(
            name="cutoff-openloop",
            tenants=(
                TenantSpec(
                    workload=scatter("r0"),
                    requests=RequestProfile(
                        kind="poisson", mean_gap_cycles=400_000,
                        events_per_request=4,
                    ),
                ),
            ),
            config=small_config(),
            duration=2_000_000,
        )
        fleet = simulate_fleet(scenario)
        result = fleet.results[0]
        assert result.stats.time.total == result.total_cycles

    def test_empty_trace_tenant_departs_cleanly(self):
        """A tenant with zero trace events is admitted, departs on the
        spot, and its pre-start time is all idle."""
        empty = ScriptedWorkload(
            [], name="empty", footprint_pages=4, instructions={0: "i"}
        )
        scenario = FleetScenario(
            name="empty-trace",
            tenants=(
                TenantSpec(workload=stream("s0", passes=1)),
                TenantSpec(workload=empty, arrival=5_000),
            ),
            config=small_config(),
        )
        fleet = simulate_fleet(scenario)
        record = fleet.tenants[1]
        assert record.admitted and record.completed
        result = fleet.results[1]
        assert result.stats.accesses == 0
        assert result.stats.time.total == result.total_cycles

    def test_duplicate_tenant_names_rejected(self):
        scenario = FleetScenario(
            name="dupes",
            tenants=(
                TenantSpec(workload=stream("s0"), name="same"),
                TenantSpec(workload=stream("s1"), name="same"),
            ),
            config=small_config(),
        )
        with pytest.raises(ConfigError):
            simulate_fleet(scenario)


class TestPolicies:
    def test_partitioning_isolates_the_victim_tenant(self):
        """A thrashing neighbour evicts a small tenant's pages under
        the shared CLOCK; a static partition shields them."""
        small = SyntheticWorkload(
            "small", 12, {0: "h"},
            [sequential(0, 0, 12, compute=2_000, passes=20)],
        )
        thrasher = scatter("thrasher", pages=96, count=600, compute=2_000)
        def run(policy):
            scenario = FleetScenario(
                name="isolation",
                tenants=(
                    TenantSpec(workload=small),
                    TenantSpec(workload=thrasher),
                ),
                policy=policy,
                config=small_config(epc_pages=48),
            )
            return simulate_fleet(scenario)
        shared = run("shared-clock")
        partitioned = run("static-partition")
        assert (
            partitioned.results[0].stats.faults
            <= shared.results[0].stats.faults
        )

    def test_adaptive_quota_requires_rebalance_period(self):
        """adaptive-quota without a rebalance period would silently be
        a static partition; the scenario must refuse to build."""
        with pytest.raises(ConfigError, match="rebalance_period_cycles"):
            FleetScenario(
                name="bad-adaptive",
                tenants=(TenantSpec(workload=stream("s0")),),
                policy="adaptive-quota",
                config=small_config(),
            )

    def test_adaptive_rebalances_and_reports_quotas(self):
        fleet = simulate_fleet(
            build_scenario("smoke", seed=1, policy="adaptive-quota")
        )
        assert fleet.rebalances > 0
        block = fleet.fleet_block()
        assert block["summary"]["rebalances"] == fleet.rebalances
        for tenant in block["tenants"]:
            if tenant["admitted"]:
                assert "quota_pages" in tenant

    def test_three_policies_share_one_scenario_identity(self):
        blocks = [
            simulate_fleet(build_scenario("smoke", seed=5, policy=p)).fleet_block()
            for p in EPC_POLICIES
        ]
        names = {b["scenario"]["name"] for b in blocks}
        assert names == {"smoke"}
        assert [b["scenario"]["policy"] for b in blocks] == list(EPC_POLICIES)
