"""Determinism of the parallel experiment runner.

The contract under test: ``jobs=N`` is an execution strategy, not a
different experiment.  A parallel sweep must produce results — down to
the byte-identical run manifests of the PR-2 machinery — that the
serial sweep would have produced, with or without the runtime
sanitizer attached.
"""

import json

import pytest

from repro.core.config import SimConfig
from repro.errors import ConfigError, ParallelExecutionError
from repro.obs.manifest import build_manifest
from repro.robust import ExecutionPolicy
from repro.sim.parallel import JobSpec, WorkloadSpec, run_job, run_jobs
from repro.sim.sweep import compare_schemes, sweep_config

#: Small but real: ~6k-page footprint at scale 64, a few ms per run.
SPEC = WorkloadSpec("microbenchmark", 64)

#: A 5-point, 2-scheme sweep — the acceptance-criteria shape.
VALUES = (1, 2, 4, 6, 8)
SCHEMES = ("baseline", "dfp-stop")


def sweep_configs(sanitize=False):
    base = SimConfig.scaled(64)
    if sanitize:
        base = base.replace(sanitize=True)
    return [base.replace(load_length=v) for v in VALUES]


def manifest_bytes(point):
    """The canonical byte serialization of one sweep point's runs."""
    return {
        scheme: json.dumps(
            build_manifest(result), sort_keys=True, indent=2
        ).encode()
        for scheme, result in point.results.items()
    }


class TestWorkloadSpec:
    def test_builds_the_registry_workload(self):
        workload = SPEC.build()
        assert workload.name == "microbenchmark"

    def test_is_picklable(self):
        import pickle

        spec = JobSpec(workload=SPEC, config=SimConfig.scaled(64), scheme="dfp")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_describe_names_the_coordinates(self):
        spec = JobSpec(workload=SPEC, config=SimConfig.scaled(64), scheme="dfp")
        text = spec.describe()
        assert "microbenchmark" in text
        assert "dfp" in text


class TestRunJobs:
    def test_results_come_back_in_submission_order(self):
        config = SimConfig.scaled(64)
        specs = [
            JobSpec(workload=SPEC, config=config, scheme=name)
            for name in ("dfp-stop", "baseline", "dfp")
        ]
        results = run_jobs(specs, policy=ExecutionPolicy(jobs=2))
        assert [r.scheme for r in results] == ["dfp-stop", "baseline", "dfp"]

    def test_parallel_equals_serial_per_job(self):
        config = SimConfig.scaled(64)
        specs = [
            JobSpec(workload=SPEC, config=config, scheme=name)
            for name in SCHEMES
        ]
        assert run_jobs(specs, policy=ExecutionPolicy(jobs=2)) == [
            run_job(s) for s in specs
        ]

    def test_on_result_fires_once_per_job(self):
        config = SimConfig.scaled(64)
        specs = [
            JobSpec(workload=SPEC, config=config, scheme="baseline"),
            JobSpec(workload=SPEC, config=config, scheme="dfp"),
        ]
        seen = []
        run_jobs(
            specs,
            policy=ExecutionPolicy(jobs=2),
            on_result=lambda i, s: seen.append(i),
        )
        assert sorted(seen) == [0, 1]

    def test_worker_failure_is_typed_and_names_the_job(self):
        config = SimConfig.scaled(64)
        bad = JobSpec(
            workload=WorkloadSpec("no-such-workload", 64),
            config=config,
            scheme="baseline",
        )
        with pytest.raises(ParallelExecutionError) as excinfo:
            run_jobs(
                [JobSpec(workload=SPEC, config=config, scheme="baseline"), bad],
                policy=ExecutionPolicy(jobs=2),
            )
        assert "no-such-workload" in str(excinfo.value)
        assert "no-such-workload" in excinfo.value.job
        assert excinfo.value.attempts == 1

    def test_zero_jobs_rejected(self):
        with pytest.raises(ConfigError), pytest.warns(DeprecationWarning):
            run_jobs([], jobs=0)


class TestLegacyJobsKwarg:
    """The PR-3 ``jobs=`` spelling: still honoured, but deprecated."""

    def test_run_jobs_jobs_kwarg_warns_and_still_works(self):
        config = SimConfig.scaled(64)
        specs = [JobSpec(workload=SPEC, config=config, scheme="baseline")]
        with pytest.warns(DeprecationWarning, match="policy=ExecutionPolicy"):
            results = run_jobs(specs, jobs=2)
        assert results == [run_job(specs[0])]

    def test_compare_schemes_jobs_kwarg_warns(self):
        config = SimConfig.scaled(64)
        with pytest.warns(DeprecationWarning, match="compare_schemes"):
            results = compare_schemes(SPEC, config, list(SCHEMES), jobs=2)
        assert set(results) == set(SCHEMES)

    def test_sweep_config_jobs_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="sweep_config"):
            points = sweep_config(
                SPEC, sweep_configs()[:2], SCHEMES, values=[1, 2], jobs=2
            )
        assert len(points) == 2

    def test_policy_and_jobs_together_rejected(self):
        with pytest.raises(ConfigError, match="not both"):
            run_jobs([], policy=ExecutionPolicy(), jobs=2)


class TestSweepDeterminism:
    def test_parallel_sweep_manifests_byte_identical_to_serial(self):
        serial = sweep_config(
            SPEC, sweep_configs(), SCHEMES, values=list(VALUES)
        )
        parallel = sweep_config(
            SPEC,
            sweep_configs(),
            SCHEMES,
            values=list(VALUES),
            policy=ExecutionPolicy(jobs=4),
        )
        assert [p.value for p in serial] == [p.value for p in parallel]
        for a, b in zip(serial, parallel):
            assert manifest_bytes(a) == manifest_bytes(b)

    def test_parallel_sweep_manifests_byte_identical_under_sanitizer(self):
        serial = sweep_config(
            SPEC, sweep_configs(sanitize=True), SCHEMES, values=list(VALUES)
        )
        parallel = sweep_config(
            SPEC,
            sweep_configs(sanitize=True),
            SCHEMES,
            values=list(VALUES),
            policy=ExecutionPolicy(jobs=4),
        )
        for a, b in zip(serial, parallel):
            assert manifest_bytes(a) == manifest_bytes(b)

    def test_parallel_compare_equals_serial(self):
        config = SimConfig.scaled(64)
        serial = compare_schemes(SPEC, config, list(SCHEMES))
        parallel = compare_schemes(
            SPEC, config, list(SCHEMES), policy=ExecutionPolicy(jobs=2)
        )
        for scheme in SCHEMES:
            assert serial[scheme] == parallel[scheme]

    def test_parallel_sweep_requires_a_workload_spec(self):
        with pytest.raises(ConfigError, match="WorkloadSpec"):
            sweep_config(
                lambda: SPEC.build(),
                sweep_configs(),
                SCHEMES,
                policy=ExecutionPolicy(jobs=2),
            )

    def test_parallel_compare_requires_a_workload_spec(self):
        with pytest.raises(ConfigError, match="WorkloadSpec"):
            compare_schemes(
                SPEC.build(),
                SimConfig.scaled(64),
                SCHEMES,
                policy=ExecutionPolicy(jobs=2),
            )

    def test_progress_ticks_cover_every_point(self):
        ticks = []
        sweep_config(
            SPEC,
            sweep_configs(),
            SCHEMES,
            values=list(VALUES),
            policy=ExecutionPolicy(jobs=4),
            progress=ticks.append,
        )
        assert len(ticks) == len(VALUES)
        assert sorted(t.completed for t in ticks) == [1, 2, 3, 4, 5]
        assert {t.label for t in ticks} == set(VALUES)
        assert ticks[-1].completed == len(VALUES)
        assert all(t.eta_s >= 0.0 for t in ticks)
