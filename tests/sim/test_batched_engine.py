"""Differential suite for the batched event-horizon engine.

The batched engine's contract is byte-identity: for any trace, scheme
and config, replaying through ``engine="batched"`` must produce the
same :class:`RunResult` — stats, time breakdown, manifest digest — as
the per-event scalar walk.  The grid here sweeps workload shapes,
schemes, seeds, ``LOADLENGTH`` and EPC sizes, then pins the edge cases
the bulk path must hand back to the scalar step: faults, aborted
preloads, valve stops, SIP notifications and horizon crossings.
"""

import pytest

from repro.core.config import SimConfig
from repro.errors import ConfigError, SimulationError
from repro.obs.manifest import build_manifest, manifest_digest
from repro.sim.engine import ENGINE_CHOICES, prepare_sip_plan, simulate
from repro.sim.fleet import FleetScenario, TenantSpec, simulate_fleet
from repro.sim.results import RunResult
from repro.sim.tracecache import materialize
from repro.workloads.base import SyntheticWorkload
from repro.workloads.synthetic import (
    interleaved_streams,
    sequential,
    uniform_random,
    zipf_random,
)

from tests.conftest import ScriptedWorkload


def make_config(**overrides):
    base = dict(
        epc_pages=64,
        stream_list_length=12,
        load_length=4,
        scan_period_cycles=400_000,
        valve_slack=32,
    )
    base.update(overrides)
    return SimConfig(**base)


def seq_workload():
    return SyntheticWorkload(
        "seq", 256, {0: "scan"}, [sequential(0, 0, 256, compute=5_000, passes=3)]
    )


def rand_workload():
    return SyntheticWorkload(
        "rand",
        512,
        {0: "probe"},
        [uniform_random([0], 0, 512, 2_500, compute=5_000)],
    )


def zipf_workload():
    return SyntheticWorkload(
        "zipf",
        384,
        {0: "hot"},
        [zipf_random([0], 0, 384, 2_500, compute=4_000, alpha=1.1)],
    )


def streams_workload():
    return SyntheticWorkload(
        "streams",
        512,
        {0: "a", 1: "b", 2: "c", 3: "noise"},
        [
            interleaved_streams(
                [0, 1, 2],
                [(0, 160), (160, 320), (320, 480)],
                compute=4_000,
                jitter=500,
                noise_instr=3,
                noise_rate=0.05,
                noise_region=(480, 512),
            )
        ],
    )


WORKLOADS = {
    "seq": seq_workload,
    "rand": rand_workload,
    "zipf": zipf_workload,
    "streams": streams_workload,
}


def run_pair(workload, config, scheme, *, seed=0, sip_plan=None, max_accesses=None):
    """Run the same materialized trace through both engines."""
    trace = materialize(workload, seed=seed, input_set="ref")
    kwargs = dict(
        seed=seed, sip_plan=sip_plan, max_accesses=max_accesses, trace=trace
    )
    scalar = simulate(workload, config, scheme, engine="scalar", **kwargs)
    batched = simulate(workload, config, scheme, engine="batched", **kwargs)
    return scalar, batched


def assert_identical(scalar: RunResult, batched: RunResult):
    assert scalar.engine == "scalar"
    assert batched.engine == "batched"
    # Field-level equality (RunResult excludes `engine` from compare)...
    assert scalar == batched
    assert scalar.total_cycles == batched.total_cycles
    assert scalar.stats.as_dict() == batched.stats.as_dict()
    assert scalar.stats.time.as_dict() == batched.stats.time.as_dict()
    # ... and byte-level: the published manifests digest identically.
    assert manifest_digest(build_manifest(scalar)) == manifest_digest(
        build_manifest(batched)
    )


class TestDifferentialGrid:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    @pytest.mark.parametrize(
        "scheme", ["baseline", "dfp", "dfp-stop", "sip", "hybrid"]
    )
    def test_every_scheme_on_every_workload(self, name, scheme):
        workload = WORKLOADS[name]()
        config = make_config()
        plan = (
            prepare_sip_plan(workload, config)
            if scheme in ("sip", "hybrid")
            else None
        )
        assert_identical(*run_pair(workload, config, scheme, sip_plan=plan))

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_seeds_vary_the_trace_not_the_identity(self, seed):
        workload = rand_workload()
        assert_identical(
            *run_pair(workload, make_config(), "dfp-stop", seed=seed)
        )

    @pytest.mark.parametrize("load_length", [1, 4, 16])
    def test_loadlength_sweep(self, load_length):
        workload = seq_workload()
        config = make_config(load_length=load_length)
        assert_identical(*run_pair(workload, config, "dfp"))

    @pytest.mark.parametrize("epc_pages", [32, 64, 200])
    def test_epc_size_sweep(self, epc_pages):
        workload = streams_workload()
        config = make_config(epc_pages=epc_pages)
        assert_identical(*run_pair(workload, config, "dfp-stop"))

    def test_max_accesses_truncates_both_engines_alike(self):
        workload = seq_workload()
        scalar, batched = run_pair(
            workload, make_config(), "baseline", max_accesses=100
        )
        assert scalar.stats.accesses == 100
        assert_identical(scalar, batched)


class TestEdgeCoverage:
    """The cases where the bulk path must yield to the scalar step."""

    def test_fault_heavy_run_is_identical(self):
        # 256 pages thrashing a 64-frame EPC: a fault per touch on the
        # steady passes, so nearly every event leaves the bulk path.
        scalar, batched = run_pair(seq_workload(), make_config(), "baseline")
        assert scalar.stats.faults >= 256
        assert_identical(scalar, batched)

    def test_abort_and_eviction_paths_are_identical(self):
        # Random probing under DFP mispredicts: queued preloads get
        # aborted and unused preloads get evicted — both transitions
        # happen at horizon wakeups the batched engine must honour.
        scalar, batched = run_pair(rand_workload(), make_config(), "dfp")
        assert scalar.stats.preloads_aborted > 0
        assert scalar.stats.evictions > 0
        assert_identical(scalar, batched)

    def test_valve_stops_are_identical(self):
        config = make_config(valve_slack=4)
        scalar, batched = run_pair(rand_workload(), config, "dfp-stop")
        assert scalar.stats.valve_stops > 0
        assert_identical(scalar, batched)

    def test_sip_checks_retire_inside_runs(self):
        # Nearly every event of the hot zipf loop is instrumented, so
        # the batched engine retires resident BIT_MAP_CHECKs in bulk;
        # the check/hit counters and the sip_check time bucket must
        # still land byte-equal.
        workload = zipf_workload()
        config = make_config()
        plan = prepare_sip_plan(workload, config)
        scalar, batched = run_pair(workload, config, "sip", sip_plan=plan)
        assert scalar.stats.sip_checks > 0
        assert scalar.stats.sip_check_hits > 0
        assert_identical(scalar, batched)

    def test_tiny_scan_period_forces_many_horizon_crossings(self):
        config = make_config(scan_period_cycles=20_000)
        scalar, batched = run_pair(seq_workload(), config, "dfp-stop")
        assert scalar.stats.scans > 10
        assert_identical(scalar, batched)

    def test_single_event_trace(self):
        workload = ScriptedWorkload([(0, 0, 1_000)])
        assert_identical(*run_pair(workload, make_config(), "baseline"))

    def test_run_length_governor_transitions_stay_identical(self, monkeypatch):
        # Force the governor through both transitions on one trace: a
        # thrashing prefix (probe fails -> scalar bursts, span doubles)
        # followed by a resident loop (probe passes -> span resets).
        import repro.sim.engine as engine_mod

        monkeypatch.setattr(engine_mod, "_PROBE_ITERS", 8)
        monkeypatch.setattr(engine_mod, "_SCALAR_SPAN", 16)
        monkeypatch.setattr(engine_mod, "_SPAN_CAP", 64)
        thrash = [(0, p % 128, 800) for p in range(0, 4 * 128, 1)]
        resident = [(0, p % 24, 800) for p in range(600)]
        workload = ScriptedWorkload(thrash + resident, footprint_pages=128)
        config = make_config(epc_pages=48)
        assert_identical(*run_pair(workload, config, "baseline"))
        assert_identical(*run_pair(workload, config, "dfp"))

    def test_low_yield_trace_is_identical_under_governor(self):
        # Uniform probing over 8x the EPC: runs are a few events long,
        # so the real-constant governor spends most of the trace in
        # scalar bursts — the differential contract must hold across
        # every burst boundary.
        workload = SyntheticWorkload(
            "churn",
            512,
            {0: "probe"},
            [uniform_random([0], 0, 512, 3_000, compute=3_000)],
        )
        assert_identical(
            *run_pair(workload, make_config(epc_pages=64), "dfp-stop")
        )

    def test_duplicate_pages_in_one_run_count_preload_hits_once(self):
        # Touch the same preloaded page repeatedly inside one resident
        # run: the dedup in the bulk preload-hit count must match the
        # scalar engine's first-touch-only credit.
        events = [(0, p, 400) for p in range(8)]
        events += [(0, 3, 400), (0, 3, 400), (0, 4, 400)] * 6
        workload = ScriptedWorkload(events, footprint_pages=64)
        scalar, batched = run_pair(workload, make_config(), "dfp")
        assert_identical(scalar, batched)


class TestEngineSelection:
    def test_choices_constant(self):
        assert ENGINE_CHOICES == ("auto", "scalar", "batched")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            simulate(seq_workload(), make_config(), engine="vectorized")

    def test_auto_picks_batched_for_materialized_trace(self):
        workload = seq_workload()
        trace = materialize(workload, seed=0, input_set="ref")
        result = simulate(workload, make_config(), trace=trace)
        assert result.engine == "batched"

    def test_auto_keeps_scalar_for_generator_traces(self):
        result = simulate(seq_workload(), make_config())
        assert result.engine == "scalar"

    def test_auto_keeps_scalar_when_observed(self):
        workload = seq_workload()
        trace = materialize(workload, seed=0, input_set="ref")
        result = simulate(
            workload, make_config(), trace=trace, record_events=True
        )
        assert result.engine == "scalar"

    def test_forced_batched_rejects_observers(self):
        with pytest.raises(ConfigError, match="record_events"):
            simulate(
                seq_workload(),
                make_config(),
                record_events=True,
                engine="batched",
            )

    def test_forced_batched_materializes_generators(self):
        workload = seq_workload()
        batched = simulate(workload, make_config(), engine="batched")
        scalar = simulate(workload, make_config(), engine="scalar")
        assert batched.engine == "batched"
        assert scalar == batched

    def test_negative_pages_fall_back_to_the_scalar_error(self):
        workload = ScriptedWorkload([(0, 2, 100), (0, -5, 100)])
        with pytest.raises(SimulationError, match="outside ELRANGE") as scalar:
            simulate(workload, make_config(), engine="scalar")
        with pytest.raises(SimulationError, match="outside ELRANGE") as batched:
            simulate(workload, make_config(), engine="batched")
        assert str(scalar.value) == str(batched.value)


class TestSharedPlatform:
    """Multi-enclave runs lean on ``SharedPlatform.owner_of`` for every
    eviction attribution; the bisect rewrite must keep them exact."""

    def _workloads(self):
        return [
            SyntheticWorkload(
                "a", 96, {0: "s"}, [sequential(0, 0, 96, compute=4_000, passes=2)]
            ),
            SyntheticWorkload(
                "b",
                128,
                {0: "r"},
                [uniform_random([0], 0, 128, 600, compute=5_000)],
            ),
            SyntheticWorkload(
                "c", 64, {0: "s"}, [sequential(0, 0, 64, compute=3_000, passes=3)]
            ),
        ]

    def _run(self, config, schemes):
        scenario = FleetScenario(
            name="batched-shared",
            tenants=tuple(
                TenantSpec(workload=w, scheme=s)
                for w, s in zip(self._workloads(), schemes)
            ),
            config=config,
        )
        return simulate_fleet(scenario).results

    def test_shared_run_is_deterministic(self):
        config = make_config(epc_pages=96)
        first = self._run(config, ["dfp", "baseline", "dfp-stop"])
        second = self._run(config, ["dfp", "baseline", "dfp-stop"])
        assert [r.total_cycles for r in first] == [
            r.total_cycles for r in second
        ]
        assert [r.stats.as_dict() for r in first] == [
            r.stats.as_dict() for r in second
        ]

    def test_cross_enclave_pressure_keeps_invariants(self):
        config = make_config(epc_pages=96)
        results = self._run(config, ["dfp", "dfp", "dfp"])
        assert sum(r.stats.evictions for r in results) > 0
        for result in results:
            assert result.stats.epc_hits + result.stats.faults == (
                result.stats.accesses
            )
            assert result.stats.time.total == result.total_cycles
