"""RunResult comparison helpers."""

import pytest

from repro.core.config import SimConfig
from repro.enclave.stats import RunStats, TimeBreakdown
from repro.errors import SimulationError
from repro.sim.results import RunResult, improvement_pct, normalized_time


def result(cycles, workload="w", input_set="ref", scheme="baseline"):
    stats = RunStats(time=TimeBreakdown(compute=cycles))
    return RunResult(
        workload=workload,
        scheme=scheme,
        input_set=input_set,
        seed=0,
        total_cycles=cycles,
        stats=stats,
        config=SimConfig(epc_pages=16),
    )


class TestNormalizedTime:
    def test_identity(self):
        base = result(1000)
        assert normalized_time(base, base) == pytest.approx(1.0)

    def test_faster_run_below_one(self):
        assert normalized_time(result(800), result(1000)) == pytest.approx(0.8)

    def test_improvement_pct(self):
        assert improvement_pct(result(800), result(1000)) == pytest.approx(20.0)

    def test_slower_run_negative_improvement(self):
        assert improvement_pct(result(1300), result(1000)) == pytest.approx(-30.0)

    def test_cross_workload_comparison_rejected(self):
        with pytest.raises(SimulationError):
            normalized_time(result(1, workload="a"), result(1, workload="b"))

    def test_cross_input_set_comparison_rejected(self):
        with pytest.raises(SimulationError):
            normalized_time(result(1, input_set="ref"), result(1, input_set="train"))

    def test_empty_baseline_rejected(self):
        with pytest.raises(SimulationError):
            normalized_time(result(1), result(0))


class TestResultProperties:
    def test_seconds_at_platform_clock(self):
        assert result(3_500_000_000).seconds == pytest.approx(1.0)

    def test_overhead_fraction(self):
        stats = RunStats(time=TimeBreakdown(compute=60, fault_wait=40))
        r = RunResult(
            workload="w",
            scheme="baseline",
            input_set="ref",
            seed=0,
            total_cycles=100,
            stats=stats,
            config=SimConfig(epc_pages=16),
        )
        assert r.fault_overhead_fraction == pytest.approx(0.4)

    def test_describe_is_readable(self):
        text = result(1000).describe()
        assert "w" in text and "baseline" in text and "cycles" in text
