"""Sweep and scheme-comparison drivers."""

import pytest

from repro.core.config import SimConfig
from repro.errors import ConfigError
from repro.sim.sweep import SweepProgress, compare_schemes, sweep_config
from repro.workloads.base import SyntheticWorkload
from repro.workloads.synthetic import sequential


def make_workload():
    # Compute above the channel rate (load + EWB = 56k): pages land
    # before their touch, so faults occur once per LOADLENGTH+1 pages
    # and the sweep genuinely varies with the parameter.
    return SyntheticWorkload(
        "seq", 128, {0: "scan"}, [sequential(0, 0, 128, compute=60_000)]
    )


@pytest.fixture
def config():
    return SimConfig(epc_pages=32, scan_period_cycles=500_000, valve_slack=16)


class TestCompareSchemes:
    def test_runs_every_scheme(self, config):
        results = compare_schemes(
            make_workload(), config, ["baseline", "dfp", "dfp-stop"]
        )
        assert set(results) == {"baseline", "dfp", "dfp-stop"}
        for name, result in results.items():
            assert result.scheme == name

    def test_sip_plan_compiled_once_and_shared(self, config):
        results = compare_schemes(make_workload(), config, ["sip", "hybrid"])
        assert results["sip"].sip_points == results["hybrid"].sip_points

    def test_baseline_not_affected_by_sip_plan(self, config):
        a = compare_schemes(make_workload(), config, ["baseline"])["baseline"]
        b = compare_schemes(make_workload(), config, ["baseline", "sip"])["baseline"]
        assert a.total_cycles == b.total_cycles


class TestSweepConfig:
    def test_labels_attach_to_points(self, config):
        configs = [config.replace(load_length=n) for n in (2, 4)]
        points = sweep_config(
            make_workload, configs, ["baseline"], values=[2, 4]
        )
        assert [p.value for p in points] == [2, 4]

    def test_default_labels_are_indices(self, config):
        points = sweep_config(make_workload, [config], ["baseline"])
        assert points[0].value == 0

    def test_label_count_mismatch_rejected(self, config):
        with pytest.raises(ConfigError):
            sweep_config(make_workload, [config], ["baseline"], values=[1, 2])

    def test_sweep_varies_results(self, config):
        """LOADLENGTH genuinely changes DFP behaviour on a stream: a
        longer burst means fewer burst-boundary faults."""
        configs = [config.replace(load_length=n) for n in (1, 8)]
        points = sweep_config(
            make_workload, configs, ["dfp-stop"], values=[1, 8]
        )
        short = points[0].results["dfp-stop"]
        long = points[1].results["dfp-stop"]
        assert long.stats.faults < short.stats.faults
        assert long.total_cycles < short.total_cycles

    def test_repr_mentions_value(self, config):
        points = sweep_config(make_workload, [config], ["baseline"], values=["x"])
        assert "x" in repr(points[0])

    def test_non_sip_sweep_never_touches_the_profiler(self, config, monkeypatch):
        """The needs_sip check is hoisted into sweep_config: a DFP-only
        sweep (Fig. 6 style) must not run a single profiling pass."""
        import repro.sim.sweep as sweep_mod

        def boom(*_args, **_kwargs):
            raise AssertionError("profiler invoked for a non-SIP sweep")

        monkeypatch.setattr(sweep_mod, "profile_workload", boom)
        configs = [config.replace(load_length=n) for n in (2, 4)]
        points = sweep_config(
            make_workload, configs, ["baseline", "dfp-stop"], values=[2, 4]
        )
        assert len(points) == 2

    def test_sip_sweep_profiles_once_across_points(self, config, monkeypatch):
        """A non-SIP-parameter sweep shares one profiling run (and one
        plan) across every point instead of recompiling per point."""
        import repro.sim.sweep as sweep_mod

        calls = []
        real = sweep_mod.profile_workload

        def counting(workload, cfg, **kwargs):
            calls.append(workload.name)
            return real(workload, cfg, **kwargs)

        monkeypatch.setattr(sweep_mod, "profile_workload", counting)
        configs = [config.replace(load_length=n) for n in (2, 4, 8)]
        points = sweep_config(
            make_workload, configs, ["sip"], values=[2, 4, 8]
        )
        assert len(calls) == 1
        plans = {p.results["sip"].sip_points for p in points}
        assert len(plans) == 1

    def test_threshold_sweep_shares_the_profile(self, config, monkeypatch):
        """A Figure 9 threshold sweep re-decides instrumentation per
        threshold but profiles exactly once."""
        import repro.sim.sweep as sweep_mod

        calls = []
        real = sweep_mod.profile_workload

        def counting(workload, cfg, **kwargs):
            calls.append(workload.name)
            return real(workload, cfg, **kwargs)

        monkeypatch.setattr(sweep_mod, "profile_workload", counting)
        configs = [config.replace(sip_threshold=t) for t in (0.01, 0.05, 0.5)]
        sweep_config(make_workload, configs, ["sip"], values=[0.01, 0.05, 0.5])
        assert len(calls) == 1


class TestSweepProgress:
    def test_callback_receives_one_tick_per_point(self, config):
        ticks = []
        configs = [config.replace(load_length=n) for n in (2, 4)]
        sweep_config(
            make_workload,
            configs,
            ["baseline"],
            values=[2, 4],
            progress=ticks.append,
        )
        assert [(t.completed, t.total, t.label) for t in ticks] == [
            (1, 2, 2),
            (2, 2, 4),
        ]
        assert all(t.elapsed_s >= 0 for t in ticks)
        assert ticks[-1].eta_s == 0.0
        assert ticks[0].fraction == 0.5

    def test_render_is_one_line(self):
        tick = SweepProgress(
            completed=1, total=4, label="load_length=2", elapsed_s=1.5, eta_s=4.5
        )
        line = tick.render()
        assert "\n" not in line
        assert "[1/4]" in line
        assert "load_length=2" in line
        assert "25%" in line

    def test_first_tick_eta_guards_zero_duration(self):
        """A first point faster than the clock's resolution must not
        extrapolate a hard 0.0 ETA for the rest of the sweep."""
        tick = SweepProgress.tick(completed=1, total=5, label=0, elapsed_s=0.0)
        assert tick.eta_s > 0.0
        assert tick.eta_s < 1.0  # the clamp is an epsilon, not a guess

    def test_tick_eta_zero_only_when_done(self):
        done = SweepProgress.tick(completed=5, total=5, label=4, elapsed_s=0.0)
        assert done.eta_s == 0.0

    def test_tick_with_nothing_completed_has_no_estimate(self):
        tick = SweepProgress.tick(completed=0, total=5, label=None, elapsed_s=0.1)
        assert tick.eta_s == float("inf")

    def test_tick_extrapolates_linearly(self):
        tick = SweepProgress.tick(completed=2, total=6, label=1, elapsed_s=3.0)
        assert tick.eta_s == pytest.approx(6.0)

    def test_render_omits_health_segment_when_all_is_well(self):
        tick = SweepProgress(
            completed=1, total=4, label="load_length=2", elapsed_s=1.5, eta_s=4.5
        )
        assert "health" not in tick.render()

    def test_render_shows_health_segment_once_something_went_wrong(self):
        tick = SweepProgress(
            completed=1, total=4, label="load_length=2", elapsed_s=1.5,
            eta_s=4.5, retries=2, timeouts=1, faults=3,
        )
        line = tick.render()
        assert "[health: 2 retries, 1 timeout(s), 3 fault(s)]" in line

    def test_ticks_carry_cumulative_health_under_faults(self):
        from repro.robust import (
            ExecutionPolicy,
            FaultKind,
            FaultPlan,
            RetryPolicy,
        )
        from repro.sim.parallel import WorkloadSpec

        base = SimConfig.scaled(64)
        configs = [base.replace(load_length=n) for n in (1, 4)]
        ticks = []
        sweep_config(
            WorkloadSpec("microbenchmark", 64),
            configs,
            ["dfp-stop"],
            values=[1, 4],
            policy=ExecutionPolicy(
                retry=RetryPolicy(max_attempts=2, base_delay=0.01),
                fault_plan=FaultPlan.script({(0, 1): FaultKind.CRASH}),
            ),
            progress=ticks.append,
        )
        assert [(t.retries, t.faults) for t in ticks] == [(1, 1), (1, 1)]
        assert "health" in ticks[-1].render()

    def test_progress_does_not_change_results(self, config):
        configs = [config.replace(load_length=4)]
        quiet = sweep_config(make_workload, configs, ["dfp-stop"], values=[4])
        noisy = sweep_config(
            make_workload,
            configs,
            ["dfp-stop"],
            values=[4],
            progress=lambda tick: None,
        )
        assert (
            quiet[0].results["dfp-stop"].total_cycles
            == noisy[0].results["dfp-stop"].total_cycles
        )
