"""Multi-enclave simulation tests (Section 5.6 contention).

The shared-EPC runs are expressed through the typed fleet API
(:class:`TenantSpec` / :class:`FleetScenario`); the deprecated
``simulate_shared`` shim keeps the old signature and is covered by
:class:`TestLegacyShim`.
"""

import pytest

from repro.core.config import SimConfig
from repro.errors import ConfigError, SimulationError
from repro.sim.engine import simulate
from repro.sim.fleet import FleetScenario, TenantSpec, simulate_fleet
from repro.sim.multi import simulate_shared
from repro.workloads.base import SyntheticWorkload
from repro.workloads.synthetic import sequential, uniform_random


@pytest.fixture
def config():
    return SimConfig(epc_pages=128, scan_period_cycles=500_000, valve_slack=16)


def seq_workload(name="seq-a"):
    return SyntheticWorkload(
        name, 256, {0: "scan"}, [sequential(0, 0, 256, compute=5_000, passes=2)]
    )


def rand_workload(name="rand-b"):
    return SyntheticWorkload(
        name,
        512,
        {0: "probe"},
        [uniform_random([0], 0, 512, 1_500, compute=5_000)],
    )


def run_shared(workloads, config, schemes, *, seed=0):
    """Shared-EPC run through the typed fleet API (no churn)."""
    scenario = FleetScenario(
        name="test-shared",
        tenants=tuple(
            TenantSpec(workload=w, scheme=s) for w, s in zip(workloads, schemes)
        ),
        config=config,
        seed=seed,
    )
    return simulate_fleet(scenario).results


class TestValidation:
    def test_empty_rejected(self, config):
        with pytest.raises(ConfigError):
            FleetScenario(name="empty", tenants=(), config=config)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError):
            TenantSpec(workload=seq_workload(), scheme="warp-drive")

    def test_unknown_policy_rejected(self, config):
        with pytest.raises(ConfigError):
            FleetScenario(
                name="bad",
                tenants=(TenantSpec(workload=seq_workload()),),
                policy="round-robin",
                config=config,
            )


class TestAccounting:
    def test_one_result_per_workload_in_order(self, config):
        results = run_shared(
            [seq_workload("a"), rand_workload("b")],
            config,
            ["baseline", "baseline"],
        )
        assert [r.workload for r in results] == ["a", "b"]

    def test_time_accounting_exact_per_enclave(self, config):
        results = run_shared(
            [seq_workload(), rand_workload()],
            config,
            ["dfp-stop", "baseline"],
        )
        for result in results:
            assert result.stats.time.total == result.total_cycles

    def test_single_app_shared_equals_solo(self, config):
        """One workload through the shared path must reproduce the
        single-enclave engine exactly."""
        wl = seq_workload()
        solo = simulate(wl, config, "baseline")
        shared = run_shared([wl], config, ["baseline"])[0]
        assert shared.total_cycles == solo.total_cycles
        assert shared.stats.faults == solo.stats.faults

    def test_deterministic(self, config):
        workloads = [seq_workload(), rand_workload()]
        a = run_shared(workloads, config, ["dfp-stop", "baseline"])
        b = run_shared(workloads, config, ["dfp-stop", "baseline"])
        assert [r.total_cycles for r in a] == [r.total_cycles for r in b]

    def test_deterministic_down_to_per_enclave_stats(self, config):
        """Two identical shared runs agree on *every* counter of every
        enclave, not just the headline cycle totals."""
        schemes = ["dfp-stop", "sip"]
        a = run_shared([seq_workload(), rand_workload()], config, schemes)
        b = run_shared([seq_workload(), rand_workload()], config, schemes)
        for first, second in zip(a, b):
            assert first.stats.as_dict() == second.stats.as_dict()
            assert first == second

    def test_sanitized_shared_run_matches_unsanitized(self, config):
        """The runtime sanitizer is passive for the multi-enclave path
        too: same workloads, same schemes, same per-enclave stats."""
        schemes = ["dfp-stop", "baseline"]
        plain = run_shared([seq_workload(), rand_workload()], config, schemes)
        sanitized = run_shared(
            [seq_workload(), rand_workload()],
            config.replace(sanitize=True),
            schemes,
        )
        for a, b in zip(plain, sanitized):
            assert a.stats.as_dict() == b.stats.as_dict()
            assert a.total_cycles == b.total_cycles


class TestContention:
    def test_sharing_slows_everyone_down(self, config):
        """Two working sets that individually fit but jointly exceed
        the EPC thrash each other (Section 5.6)."""
        a = SyntheticWorkload(
            "a", 96, {0: "x"}, [sequential(0, 0, 96, compute=5_000, passes=6)]
        )
        b = SyntheticWorkload(
            "b", 96, {0: "x"}, [sequential(0, 0, 96, compute=5_000, passes=6)]
        )
        solo = simulate(a, config, "baseline")
        shared = run_shared([a, b], config, ["baseline", "baseline"])
        assert shared[0].total_cycles > solo.total_cycles
        assert shared[0].stats.faults > solo.stats.faults

    def test_dfp_still_helps_its_own_enclave(self, config):
        """Per-enclave preloading keeps working under sharing."""
        workloads = [seq_workload(), rand_workload()]
        base = run_shared(workloads, config, ["baseline", "baseline"])
        dfp = run_shared(workloads, config, ["dfp-stop", "baseline"])
        assert dfp[0].total_cycles < base[0].total_cycles
        assert dfp[0].stats.preloads_completed > 0

    def test_preloading_can_hurt_the_neighbour(self, config):
        """The streaming enclave's bursts occupy the exclusive channel;
        the co-runner's demand faults wait behind them."""
        workloads = [seq_workload(), rand_workload()]
        base = run_shared(workloads, config, ["baseline", "baseline"])
        dfp = run_shared(workloads, config, ["dfp-stop", "baseline"])
        assert (
            dfp[1].stats.time.fault_wait > base[1].stats.time.fault_wait
        )

    def test_sip_plans_isolated_per_enclave(self, config):
        workloads = [seq_workload(), rand_workload()]
        results = run_shared(workloads, config, ["sip", "sip"])
        # The pure stream gets no instrumentation; the scatter does.
        assert results[0].sip_points == 0
        assert results[1].sip_points > 0


class TestLegacyShim:
    """``simulate_shared`` still works, warns, and matches the fleet."""

    def test_warns_and_matches_typed_api(self, config):
        workloads = [seq_workload(), rand_workload()]
        schemes = ["dfp-stop", "baseline"]
        with pytest.deprecated_call():
            legacy = simulate_shared(workloads, config, schemes)
        typed = run_shared(workloads, config, schemes)
        for old, new in zip(legacy, typed):
            assert old.stats.as_dict() == new.stats.as_dict()
            assert old == new

    def test_legacy_validation_preserved(self, config):
        with pytest.deprecated_call():
            with pytest.raises(SimulationError):
                simulate_shared([], config, [])
        with pytest.deprecated_call():
            with pytest.raises(SimulationError):
                simulate_shared([seq_workload()], config, ["baseline", "dfp"])
