"""Trace materialization cache: exact replay and bounded memory."""

import pytest

from repro.core.config import SimConfig
from repro.errors import ConfigError
from repro.sim.engine import simulate
from repro.sim.tracecache import (
    MaterializedTrace,
    TraceCache,
    materialize,
    shared_trace_cache,
    trace_key,
)
from repro.workloads.registry import WORKLOAD_NAMES, build_workload

SCALE = 64


class TestMaterializedTrace:
    def test_replay_equals_generator_walk(self):
        workload = build_workload("microbenchmark", scale=SCALE)
        trace = materialize(workload, seed=0, input_set="ref")
        assert list(trace) == list(workload.trace(seed=0, input_set="ref"))
        assert len(trace) == len(trace.pages)

    def test_nbytes_counts_all_columns(self):
        workload = build_workload("microbenchmark", scale=SCALE)
        trace = materialize(workload, seed=0, input_set="ref")
        assert trace.nbytes == 3 * trace.instructions.itemsize * len(trace)


class TestTraceCache:
    def test_hit_returns_same_object(self):
        cache = TraceCache()
        workload = build_workload("microbenchmark", scale=SCALE)
        first = cache.get(workload, seed=0, input_set="ref")
        second = cache.get(workload, seed=0, input_set="ref")
        assert first is second
        assert cache.hits == 1
        assert cache.misses == 1

    def test_key_includes_scale_via_footprint(self):
        cache = TraceCache()
        small = build_workload("microbenchmark", scale=128)
        large = build_workload("microbenchmark", scale=SCALE)
        assert trace_key(small, 0, "ref") != trace_key(large, 0, "ref")
        a = cache.get(small, seed=0, input_set="ref")
        b = cache.get(large, seed=0, input_set="ref")
        assert len(cache) == 2
        assert len(a) != len(b)

    def test_key_includes_seed_and_input_set(self):
        cache = TraceCache()
        workload = build_workload("microbenchmark", scale=SCALE)
        cache.get(workload, seed=0, input_set="ref")
        cache.get(workload, seed=1, input_set="ref")
        cache.get(workload, seed=0, input_set="train")
        assert cache.misses == 3

    def test_lru_evicts_under_byte_budget(self):
        workload = build_workload("microbenchmark", scale=SCALE)
        one_trace = materialize(workload, seed=0, input_set="ref")
        # Room for roughly two of these traces, not three.
        cache = TraceCache(max_bytes=int(one_trace.nbytes * 2.5))
        cache.get(workload, seed=0, input_set="ref")
        cache.get(workload, seed=1, input_set="ref")
        assert cache.evictions == 0
        cache.get(workload, seed=2, input_set="ref")
        assert cache.evictions == 1
        assert cache.current_bytes <= cache.max_bytes
        # The least recently used entry (seed=0) is the one that left.
        assert trace_key(workload, 0, "ref") not in cache
        assert trace_key(workload, 2, "ref") in cache

    def test_recency_refresh_protects_hot_entries(self):
        workload = build_workload("microbenchmark", scale=SCALE)
        one_trace = materialize(workload, seed=0, input_set="ref")
        cache = TraceCache(max_bytes=int(one_trace.nbytes * 2.5))
        cache.get(workload, seed=0, input_set="ref")
        cache.get(workload, seed=1, input_set="ref")
        cache.get(workload, seed=0, input_set="ref")  # refresh seed=0
        cache.get(workload, seed=2, input_set="ref")  # evicts seed=1
        assert trace_key(workload, 0, "ref") in cache
        assert trace_key(workload, 1, "ref") not in cache

    def test_oversized_trace_served_but_not_stored(self):
        cache = TraceCache(max_bytes=16)
        workload = build_workload("microbenchmark", scale=SCALE)
        trace = cache.get(workload, seed=0, input_set="ref")
        assert isinstance(trace, MaterializedTrace)
        assert len(trace) > 0
        assert len(cache) == 0
        assert cache.current_bytes == 0

    def test_stats_snapshot_is_json_ready(self):
        import json

        cache = TraceCache()
        cache.get(build_workload("microbenchmark", scale=SCALE), seed=0)
        snapshot = cache.stats()
        json.dumps(snapshot)
        assert snapshot["entries"] == 1
        assert snapshot["misses"] == 1

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigError):
            TraceCache(max_bytes=0)

    def test_shared_cache_is_a_singleton(self):
        assert shared_trace_cache() is shared_trace_cache()


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_cached_and_uncached_simulations_agree(name):
    """Replaying a materialized trace is invisible to the simulation:
    every registered workload yields an equal RunResult either way."""
    config = SimConfig.scaled(SCALE)
    workload = build_workload(name, scale=SCALE)
    trace = TraceCache().get(workload, seed=0, input_set="ref")
    cached = simulate(
        workload, config, "dfp-stop", seed=0, max_accesses=2_000, trace=trace
    )
    uncached = simulate(workload, config, "dfp-stop", seed=0, max_accesses=2_000)
    assert cached == uncached
