"""Unit tests for the cost model and simulation configuration."""

import pytest

from repro.core.config import DEFAULT_EPC_PAGES, CostModel, SimConfig
from repro.errors import ConfigError


class TestCostModel:
    def test_paper_fault_total(self):
        """Section 2: AEX + load + ERESUME lands in the 60k-64k band."""
        cost = CostModel()
        assert 60_000 <= cost.fault_cycles <= 64_000

    def test_world_switch_is_aex_plus_eresume(self):
        cost = CostModel()
        assert cost.world_switch_cycles == cost.aex_cycles + cost.eresume_cycles

    def test_defaults_match_paper_constants(self):
        cost = CostModel()
        assert cost.aex_cycles == 10_000
        assert cost.page_load_cycles == 44_000
        assert cost.eresume_cycles == 10_000
        assert cost.regular_fault_cycles == 2_000

    def test_enclave_fault_much_slower_than_regular(self):
        """The 30x gap that motivates the whole paper."""
        cost = CostModel()
        assert cost.fault_cycles >= 30 * cost.regular_fault_cycles

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(aex_cycles=-1)

    def test_zero_load_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(page_load_cycles=0)


class TestSimConfig:
    def test_default_epc_is_full_scale(self):
        assert SimConfig().epc_pages == DEFAULT_EPC_PAGES == 24_576

    def test_paper_default_parameters(self):
        """Section 5.1: stream list length 30, LOADLENGTH 4; Section
        5.2: SIP threshold 5%; Section 4.2: valve ratio 1/2."""
        config = SimConfig()
        assert config.stream_list_length == 30
        assert config.load_length == 4
        assert config.sip_threshold == pytest.approx(0.05)
        assert config.valve_ratio == pytest.approx(0.5)
        assert config.valve_slack == 200_000

    def test_replace_returns_modified_copy(self):
        config = SimConfig()
        other = config.replace(load_length=8)
        assert other.load_length == 8
        assert config.load_length == 4

    @pytest.mark.parametrize(
        "field,value",
        [
            ("epc_pages", 0),
            ("stream_list_length", 0),
            ("load_length", -1),
            ("scan_period_cycles", 0),
            ("valve_slack", -5),
            ("sip_threshold", 1.5),
            ("valve_ratio", 0.0),
            ("valve_ratio", 1.5),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            SimConfig(**{field: value})


class TestScaledConfig:
    def test_scale_one_keeps_paper_valve_ratio(self):
        assert SimConfig.scaled(1).valve_ratio == pytest.approx(0.5)

    def test_scaled_epc_shrinks_linearly(self):
        assert SimConfig.scaled(16).epc_pages == DEFAULT_EPC_PAGES // 16

    def test_scaled_costs_unchanged(self):
        """Cycle costs are architectural; scaling must not touch them."""
        assert SimConfig.scaled(16).cost == SimConfig().cost

    def test_scaled_predictor_parameters_unchanged(self):
        scaled = SimConfig.scaled(16)
        assert scaled.stream_list_length == 30
        assert scaled.load_length == 4

    def test_scaled_accepts_overrides(self):
        scaled = SimConfig.scaled(16, load_length=8)
        assert scaled.load_length == 8

    def test_invalid_factor_rejected(self):
        with pytest.raises(ConfigError):
            SimConfig.scaled(0)

    def test_valve_slack_shrinks_superlinearly(self):
        """Scaled runs are shorter in events, so the absolute preload
        slack must shrink faster than the linear footprint factor."""
        s4, s16 = SimConfig.scaled(4), SimConfig.scaled(16)
        assert s16.valve_slack < s4.valve_slack < SimConfig().valve_slack
