"""Metric types and the registry (repro.obs.metrics)."""

import pytest

from repro.errors import ObsError
from repro.obs.metrics import (
    DEFAULT_CYCLE_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("faults")
        c.inc()
        c.inc(41)
        assert c.value == 42
        assert c.dump() == 42
        assert c.kind == "counter"

    def test_negative_increment_rejected(self):
        c = Counter("faults")
        with pytest.raises(ObsError):
            c.inc(-1)
        assert c.value == 0


class TestGauge:
    def test_set_style(self):
        g = Gauge("resident")
        assert g.value == 0
        g.set(7)
        assert g.value == 7
        assert g.dump() == 7
        assert g.callback is None

    def test_callback_gauge_samples_at_read_time(self):
        box = {"n": 1}
        g = Gauge("resident", fn=lambda: box["n"])
        assert g.value == 1
        box["n"] = 5
        assert g.dump() == 5

    def test_callback_gauge_cannot_be_set(self):
        g = Gauge("resident", fn=lambda: 0)
        with pytest.raises(ObsError):
            g.set(3)


class TestHistogram:
    def test_bucketing_is_le_and_non_cumulative(self):
        h = Histogram("wait", buckets=(10, 100, 1000))
        for value in (5, 10, 11, 100, 999, 1000):
            h.observe(value)
        assert h.counts == [2, 2, 2]
        assert h.overflow == 0
        h.observe(1001)
        assert h.overflow == 1
        assert h.count == 7
        assert h.sum == 5 + 10 + 11 + 100 + 999 + 1000 + 1001

    def test_dump_shape(self):
        h = Histogram("wait", buckets=(10, 20))
        h.observe(15)
        dump = h.dump()
        assert dump["type"] == "histogram"
        assert dump["count"] == 1
        assert dump["sum"] == 15
        assert dump["buckets"] == [
            {"le": 10, "count": 0},
            {"le": 20, "count": 1},
        ]
        assert dump["overflow"] == 0

    def test_default_buckets_are_the_cycle_ladder(self):
        h = Histogram("wait")
        assert h.bounds == DEFAULT_CYCLE_BUCKETS

    def test_bad_buckets_rejected(self):
        with pytest.raises(ObsError):
            Histogram("wait", buckets=())
        with pytest.raises(ObsError):
            Histogram("wait", buckets=(10, 10))
        with pytest.raises(ObsError):
            Histogram("wait", buckets=(20, 10))


class TestHistogramQuantile:
    """Deterministic percentile estimation over histogram dumps — the
    basis of the fleet QoS tables."""

    def _hist(self, values, buckets=(10, 100, 1000)):
        h = Histogram("wait", buckets=buckets)
        for value in values:
            h.observe(value)
        return h

    def test_quantile_outside_unit_interval_rejected(self):
        dump = self._hist([5]).dump()
        with pytest.raises(ObsError):
            histogram_quantile(dump, -0.01)
        with pytest.raises(ObsError):
            histogram_quantile(dump, 1.01)

    def test_empty_histogram_yields_zero(self):
        dump = self._hist([]).dump()
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram_quantile(dump, q) == 0.0

    def test_linear_interpolation_within_a_bucket(self):
        # Four observations, all in the (10, 100] bucket: the median
        # sits halfway through the bucket's uniform spread.
        dump = self._hist([20, 30, 40, 50]).dump()
        assert histogram_quantile(dump, 0.5) == pytest.approx(
            10 + (100 - 10) * (2 / 4)
        )
        # q=1.0 reaches the bucket's upper bound exactly.
        assert histogram_quantile(dump, 1.0) == pytest.approx(100.0)

    def test_first_bucket_interpolates_from_zero(self):
        dump = self._hist([1, 2]).dump()
        assert histogram_quantile(dump, 0.5) == pytest.approx(10 * 0.5)

    def test_overflow_clamps_to_last_bound(self):
        dump = self._hist([5, 5000, 6000]).dump()
        # p99 lands in the unbounded overflow bucket: clamp to 1000.
        assert histogram_quantile(dump, 0.99) == 1000.0

    def test_quantiles_are_monotone(self):
        dump = self._hist([3, 15, 40, 250, 800, 2500]).dump()
        values = [histogram_quantile(dump, q / 20) for q in range(21)]
        assert values == sorted(values)

    def test_method_delegates_to_free_function(self):
        h = self._hist([20, 30, 40, 50])
        assert h.quantile(0.9) == histogram_quantile(h.dump(), 0.9)


class TestRegistry:
    def test_registration_is_idempotent_per_kind(self):
        reg = MetricsRegistry()
        a = reg.counter("faults")
        b = reg.counter("faults")
        assert a is b
        assert len(reg) == 1
        assert "faults" in reg
        assert reg.get("faults") is a
        assert reg.get("nope") is None

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObsError):
            reg.gauge("x")
        with pytest.raises(ObsError):
            reg.histogram("x")

    def test_callback_gauge_registered_twice_raises(self):
        reg = MetricsRegistry()
        reg.gauge("res", fn=lambda: 1)
        with pytest.raises(ObsError):
            reg.gauge("res", fn=lambda: 2)

    def test_as_dict_is_sorted_and_samples_callbacks(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(3)
        box = {"n": 9}
        reg.gauge("a.res", fn=lambda: box["n"])
        reg.histogram("c.wait", buckets=(10,)).observe(4)
        dump = reg.as_dict()
        assert list(dump) == ["a.res", "b.count", "c.wait"]
        assert dump["a.res"] == 9
        assert dump["b.count"] == 3
        assert dump["c.wait"]["count"] == 1
        box["n"] = 10
        assert reg.as_dict()["a.res"] == 10
        assert reg.names() == ["a.res", "b.count", "c.wait"]


class TestNullRegistry:
    def test_disabled_registry_hands_out_noops(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("faults")
        c.inc(5)
        assert c.value == 0
        g = reg.gauge("res", fn=lambda: 99)
        g.set(3)
        h = reg.histogram("wait")
        h.observe(123)
        assert h.count == 0
        assert len(reg) == 0
        assert reg.as_dict() == {}

    def test_shared_null_registry_is_disabled(self):
        assert NULL_REGISTRY.enabled is False
        before = NULL_REGISTRY.counter("anything")
        before.inc()
        assert len(NULL_REGISTRY) == 0
