"""Paging-decision profiler: passivity, reconciliation, determinism.

The ISSUE's acceptance criteria live here: a profiled run's result —
and its manifest bytes — must be identical to a blind run's, every
preload must land in exactly one outcome bucket, and the ledger totals
must reconcile against the driver's own ``RunStats`` counters.
"""

import json

import pytest

from repro.core.config import SimConfig
from repro.errors import ObsError
from repro.obs.manifest import build_manifest, manifest_digest, write_manifest
from repro.obs.paging import (
    PAGING_PROFILE_SCHEMA,
    PagingProfiler,
    load_paging_profile,
    validate_paging_profile,
    write_paging_profile,
)
from repro.sim.engine import simulate
from repro.workloads.base import SyntheticWorkload
from repro.workloads.synthetic import sequential, uniform_random


@pytest.fixture
def config():
    return SimConfig(
        epc_pages=64,
        scan_period_cycles=200_000,
        valve_slack=16,
        sanitize=True,
    )


@pytest.fixture
def workload():
    return SyntheticWorkload(
        "mixed",
        256,
        {0: "scan", 1: "probe"},
        [
            sequential(0, 0, 192, compute=5_000, passes=2),
            uniform_random([1], 0, 256, 400, compute=5_000),
        ],
    )


@pytest.fixture
def profiled(workload, config):
    profiler = PagingProfiler()
    result = simulate(workload, config, "dfp-stop", profiler=profiler)
    return result, profiler.profile()


class TestPassivity:
    def test_result_identical_to_blind_run(self, workload, config, profiled):
        blind = simulate(workload, config, "dfp-stop")
        result, _profile = profiled
        assert result == blind

    def test_manifest_bytes_identical_to_blind_run(
        self, tmp_path, workload, config, profiled
    ):
        blind = simulate(workload, config, "dfp-stop")
        result, _profile = profiled
        pa = write_manifest(tmp_path / "blind.json", build_manifest(blind))
        pb = write_manifest(tmp_path / "observed.json", build_manifest(result))
        assert pa.read_bytes() == pb.read_bytes()

    def test_embedded_block_does_not_move_the_digest(
        self, workload, config, profiled
    ):
        blind = simulate(workload, config, "dfp-stop")
        result, profile = profiled
        with_block = build_manifest(result, paging_profile=profile)
        assert with_block["paging_profile"]["schema"] == PAGING_PROFILE_SCHEMA
        assert manifest_digest(with_block) == manifest_digest(
            build_manifest(blind)
        )


class TestReconciliation:
    def test_totals_match_run_stats(self, profiled):
        result, profile = profiled
        stats = result.stats
        totals = profile["totals"]
        assert totals["accesses"] == stats.accesses
        assert totals["faults"] == stats.faults
        assert totals["epc_hits"] == stats.epc_hits
        assert totals["scans"] == stats.scans
        assert totals["scan_credited_pages"] == stats.preloads_accessed

    def test_channel_counters_match_run_stats(self, profiled):
        result, profile = profiled
        stats = result.stats
        preloads = profile["totals"]["preloads"]
        assert preloads["enqueued"] == stats.preloads_enqueued
        assert preloads["completed"] == stats.preloads_completed
        assert preloads["redundant"] == stats.preloads_redundant

    def test_fault_causes_partition_the_faults(self, profiled):
        result, profile = profiled
        causes = profile["totals"]["fault_causes"]
        assert sum(causes.values()) == result.stats.faults
        # Under dfp-stop the predictor is live from the first fault, so
        # first touches are predictor misses, never cold.
        assert causes["cold"] == 0
        assert causes["predictor_miss"] > 0
        assert causes["refault"] > 0
        assert causes["late"] > 0

    def test_baseline_faults_are_cold_or_refaults(self, workload, config):
        profiler = PagingProfiler()
        result = simulate(workload, config, "baseline", profiler=profiler)
        causes = profiler.profile()["totals"]["fault_causes"]
        assert causes["cold"] > 0
        assert causes["refault"] > 0
        assert causes["predictor_miss"] == 0
        assert causes["late"] == 0
        assert sum(causes.values()) == result.stats.faults

    def test_every_preload_lands_in_exactly_one_bucket(self, profiled):
        _result, profile = profiled
        p = profile["totals"]["preloads"]
        assert p["completed"] == (
            p["useful"] + p["late_inflight"]
            + p["wasted_evicted"] + p["wasted_leftover"]
        )
        assert p["enqueued"] == (
            p["completed"] + p["redundant"] + p["late_queued"]
            + p["aborted_collateral"] + p["pending_at_exit"]
        )

    def test_timely_preloads_bracket_the_preload_hits(self, profiled):
        result, profile = profiled
        p = profile["totals"]["preloads"]
        timely = p["useful"] + p["late_inflight"]
        # stats.preload_hits can re-count a page whose A bit a CLOCK
        # sweep cleared, so the ledger's first-touch count is a floor.
        assert 0 < timely <= result.stats.preload_hits
        assert p["wasted_evicted"] <= result.stats.preloads_evicted_unused

    def test_validator_accepts_and_summarizes(self, profiled):
        result, profile = profiled
        summary = validate_paging_profile(profile)
        assert summary["faults"] == result.stats.faults
        assert summary["accesses"] == result.stats.accesses
        assert summary["phases"] == len(profile["phases"])


class TestDeterminism:
    def test_profiled_runs_export_identical_bytes(
        self, tmp_path, workload, config
    ):
        paths = []
        for name in ("a", "b"):
            profiler = PagingProfiler()
            simulate(workload, config, "dfp-stop", profiler=profiler)
            paths.append(
                write_paging_profile(tmp_path / f"{name}.json", profiler.profile())
            )
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_roundtrips_through_disk(self, tmp_path, profiled):
        _result, profile = profiled
        path = write_paging_profile(tmp_path / "p.json", profile)
        assert load_paging_profile(path) == json.loads(json.dumps(profile))


class TestPhasesAndHeatmap:
    def test_phases_cover_the_run(self, profiled):
        _result, profile = profiled
        phases = profile["phases"]
        assert 0 < len(phases) <= 32
        assert sum(p["accesses"] for p in phases) == profile["totals"]["accesses"]
        assert all(p["label"] in ("resident", "steady", "bursty") for p in phases)
        assert [p["phase"] for p in phases] == list(range(len(phases)))
        for phase in phases:
            assert phase["start_cycle"] <= phase["end_cycle"]

    def test_small_windows_coarsen_to_the_phase_cap(self, workload, config):
        profiler = PagingProfiler(window_accesses=16)
        simulate(workload, config, "dfp-stop", profiler=profiler)
        profile = profiler.profile()
        assert 0 < len(profile["phases"]) <= 32
        validate_paging_profile(profile)

    def test_heatmap_counts_every_access(self, profiled):
        _result, profile = profiled
        heatmap = profile["heatmap"]
        assert heatmap["page_buckets"] <= 32
        assert heatmap["columns"] == len(heatmap["counts"]) <= 64
        total = sum(sum(column) for column in heatmap["counts"])
        assert total == profile["totals"]["accesses"]

    def test_quiet_sequential_run_is_mostly_low_fault_phases(self, config):
        workload = SyntheticWorkload(
            "seq", 48, {0: "scan"},
            [sequential(0, 0, 48, compute=5_000, passes=8)],
        )
        profiler = PagingProfiler(window_accesses=64)
        simulate(workload, config, "baseline", profiler=profiler)
        profile = profiler.profile()
        # The working set fits in the EPC: after the cold sweep the
        # fault rate collapses, so a resident band must appear.
        assert any(p["label"] == "resident" for p in profile["phases"])


class TestEvictionAttribution:
    def test_eviction_totals_are_consistent(self, profiled):
        result, profile = profiled
        evictions = profile["totals"]["evictions"]
        assert evictions["total"] == result.stats.evictions > 0
        assert evictions["premature_refaulted"] == (
            profile["totals"]["fault_causes"]["refault"]
        )
        assert evictions["victims_preloaded_untouched"] == (
            profile["totals"]["preloads"]["wasted_evicted"]
        )
        assert evictions["second_chances"] >= 0

    def test_closed_intervals_carry_the_evicting_decision(self, profiled):
        _result, profile = profiled
        evicted = [
            interval
            for page in profile["pages"]
            for interval in page["intervals"]
            if "evicted_for_page" in interval
        ]
        assert evicted, "mixed workload must evict an exported page"
        for interval in evicted:
            assert interval["evicted_for_kind"] in ("demand", "preload", "sip")
            assert interval["second_chances"] >= 0
            assert interval["end"] >= interval["start"]

    def test_exported_pages_are_ranked_and_bounded(self, profiled):
        _result, profile = profiled
        pages = profile["pages"]
        assert 0 < len(pages) <= 24
        fault_counts = [page["faults"] for page in pages]
        assert fault_counts == sorted(fault_counts, reverse=True)
        for page in pages:
            assert len(page["intervals"]) <= 64
            assert page["intervals_truncated"] >= 0


class TestLifecycle:
    def test_window_must_be_positive(self):
        with pytest.raises(ObsError):
            PagingProfiler(window_accesses=0)

    def test_profiler_observes_exactly_one_run(self, workload, config):
        profiler = PagingProfiler()
        simulate(workload, config, "dfp-stop", profiler=profiler)
        with pytest.raises(ObsError):
            simulate(workload, config, "dfp-stop", profiler=profiler)

    def test_profile_before_finish_is_an_error(self):
        profiler = PagingProfiler()
        profiler.ledger_bind(0, 8)
        with pytest.raises(ObsError):
            profiler.profile()


class TestValidatorErrors:
    def test_rejects_non_objects_and_wrong_schema(self):
        with pytest.raises(ObsError):
            validate_paging_profile([])
        with pytest.raises(ObsError):
            validate_paging_profile({"schema": "other/9"})

    def test_rejects_missing_sections(self, profiled):
        _result, profile = profiled
        broken = dict(profile)
        del broken["heatmap"]
        with pytest.raises(ObsError):
            validate_paging_profile(broken)

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda t: t["fault_causes"].__setitem__("cold", 10**9),
             "partition the fault count"),
            (lambda t: t["preloads"].__setitem__("useful", 10**9),
             "useful/late/wasted"),
            (lambda t: t["preloads"].__setitem__("enqueued", 10**9),
             "do not reconcile"),
            (lambda t: t["evictions"].__setitem__("premature_refaulted", 10**9),
             "refault cause"),
        ],
    )
    def test_rejects_broken_identities(self, profiled, mutate, message):
        _result, profile = profiled
        broken = json.loads(json.dumps(profile))
        mutate(broken["totals"])
        with pytest.raises(ObsError, match=message):
            validate_paging_profile(broken)

    def test_rejects_heatmap_and_phase_drift(self, profiled):
        _result, profile = profiled
        broken = json.loads(json.dumps(profile))
        broken["heatmap"]["counts"][0][0] += 1
        with pytest.raises(ObsError, match="heatmap"):
            validate_paging_profile(broken)
        broken = json.loads(json.dumps(profile))
        broken["phases"][0]["label"] = "mystery"
        with pytest.raises(ObsError):
            validate_paging_profile(broken)

    def test_load_errors(self, tmp_path):
        with pytest.raises(ObsError):
            load_paging_profile(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ObsError):
            load_paging_profile(bad)
