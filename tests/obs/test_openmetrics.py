"""OpenMetrics exporter: mapping rules, determinism, spec conformance."""

from repro.core.config import SimConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import render_openmetrics
from repro.sim.engine import simulate
from repro.workloads.base import SyntheticWorkload
from repro.workloads.synthetic import sequential


def run_dump():
    config = SimConfig(epc_pages=64, sanitize=True)
    workload = SyntheticWorkload(
        "seq", 96, {0: "scan"}, [sequential(0, 0, 96, compute=5_000, passes=2)]
    )
    metrics = MetricsRegistry()
    simulate(workload, config, "dfp-stop", metrics=metrics)
    return metrics.as_dict()


class TestFormat:
    def test_ends_with_eof_terminator(self):
        text = render_openmetrics({})
        assert text == "# EOF\n"

    def test_scalars_export_as_gauges(self):
        text = render_openmetrics({"run.faults": 7, "run.rate": 0.5})
        assert "# TYPE repro_run_faults gauge\nrepro_run_faults 7\n" in text
        assert "repro_run_rate 0.5" in text

    def test_names_are_sanitized_and_prefixed(self):
        text = render_openmetrics({"a.b-c/d": 1, "9lives": 2})
        assert "repro_a_b_c_d 1" in text
        assert "repro__9lives 2" in text

    def test_custom_prefix(self):
        text = render_openmetrics({"x": 1}, prefix="sgx_")
        assert "sgx_x 1" in text

    def test_bools_export_as_integers(self):
        text = render_openmetrics({"flag": True})
        assert "repro_flag 1" in text

    def test_non_numeric_values_are_skipped(self):
        text = render_openmetrics({"label": "dfp-stop", "n": 3})
        assert "label" not in text
        assert "repro_n 3" in text

    def test_output_is_sorted_and_deterministic(self):
        dump = {"b": 2, "a": 1, "c": 3}
        text = render_openmetrics(dump)
        assert text.index("repro_a") < text.index("repro_b") < text.index("repro_c")
        assert text == render_openmetrics(dict(reversed(list(dump.items()))))


class TestHistograms:
    def test_buckets_are_cumulative_with_inf_total(self):
        dump = {
            "wait": {
                "type": "histogram",
                "count": 10,
                "sum": 1234,
                "buckets": [
                    {"le": 100, "count": 3},
                    {"le": 1000, "count": 4},
                ],
            }
        }
        text = render_openmetrics(dump)
        assert "# TYPE repro_wait histogram" in text
        assert 'repro_wait_bucket{le="100"} 3' in text
        assert 'repro_wait_bucket{le="1000"} 7' in text
        # +Inf equals the observation count — overflow included (10 > 7).
        assert 'repro_wait_bucket{le="+Inf"} 10' in text
        assert "repro_wait_sum 1234" in text
        assert "repro_wait_count 10" in text

    def test_real_registry_dump_renders(self):
        dump = run_dump()
        text = render_openmetrics(dump)
        assert text.endswith("# EOF\n")
        assert "# TYPE repro_fault_wait_hist histogram" in text
        # Every histogram's +Inf bucket equals its count line.
        for name, value in dump.items():
            if isinstance(value, dict) and value.get("type") == "histogram":
                metric = "repro_" + name.replace(".", "_")
                assert f'{metric}_bucket{{le="+Inf"}} {value["count"]}' in text
                assert f'{metric}_count {value["count"]}' in text
