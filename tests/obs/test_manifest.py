"""Run manifests: roundtrip, reconciliation, and obs-passivity.

The reconciliation test is the ISSUE's acceptance criterion: a
sanitized DFP run observed with metrics and a trace must produce a
manifest whose counters agree with ``RunStats`` and whose histogram
sums agree with the ``TimeBreakdown`` buckets — mechanically, not by
eyeballing.
"""

import json

import pytest

from repro.core.config import SimConfig
from repro.errors import ObsError
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    git_sha,
    load_manifest,
    write_manifest,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import RingBufferSink
from repro.sim.engine import simulate
from repro.workloads.base import SyntheticWorkload
from repro.workloads.synthetic import sequential, uniform_random


@pytest.fixture
def config():
    return SimConfig(
        epc_pages=64,
        scan_period_cycles=200_000,
        valve_slack=16,
        sanitize=True,
    )


@pytest.fixture
def workload():
    return SyntheticWorkload(
        "mixed",
        256,
        {0: "scan", 1: "probe"},
        [
            sequential(0, 0, 192, compute=5_000, passes=2),
            uniform_random([1], 0, 256, 400, compute=5_000),
        ],
    )


def observed_run(workload, config, **kwargs):
    metrics = MetricsRegistry()
    capture = RingBufferSink(1 << 16)
    result = simulate(
        workload,
        config,
        "dfp-stop",
        metrics=metrics,
        tracer=capture,
        **kwargs,
    )
    return result, metrics, capture


class TestRoundtrip:
    def test_write_then_load(self, tmp_path, workload, config):
        result, _metrics, _capture = observed_run(workload, config)
        manifest = build_manifest(result, workload=workload, extra={"fig": "08"})
        path = write_manifest(tmp_path / "run.json", manifest)
        loaded = load_manifest(path)
        assert loaded == json.loads(json.dumps(manifest))
        assert loaded["schema"] == MANIFEST_SCHEMA
        assert loaded["run"]["scheme"] == "dfp-stop"
        assert loaded["run"]["total_cycles"] == result.total_cycles
        assert loaded["workload"]["footprint_pages"] == 256
        assert loaded["extra"] == {"fig": "08"}
        assert loaded["config"]["epc_pages"] == 64

    def test_manifest_is_deterministic(self, tmp_path, workload, config):
        a, _m, _c = observed_run(workload, config)
        b, _m, _c = observed_run(workload, config)
        pa = write_manifest(tmp_path / "a.json", build_manifest(a))
        pb = write_manifest(tmp_path / "b.json", build_manifest(b))
        assert pa.read_bytes() == pb.read_bytes()

    def test_provenance_fields_present(self, workload, config):
        result, _m, _c = observed_run(workload, config)
        generator = build_manifest(result)["generator"]
        assert generator["repro_version"]
        assert generator["git_sha"] == git_sha()
        assert git_sha() != ""


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ObsError):
            load_manifest(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ObsError):
            load_manifest(bad)

    def test_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/9"}))
        with pytest.raises(ObsError):
            load_manifest(bad)

    def test_missing_section(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": MANIFEST_SCHEMA, "run": {}}))
        with pytest.raises(ObsError):
            load_manifest(bad)

    def test_non_object_document(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(ObsError):
            load_manifest(bad)


class TestReconciliation:
    """Acceptance: manifest counters reconcile with RunStats exactly."""

    def test_metrics_reconcile_with_stats(self, workload, config):
        result, _metrics, capture = observed_run(workload, config)
        manifest = build_manifest(result, workload=workload)
        stats = manifest["stats"]
        time = manifest["time_breakdown"]
        metrics = manifest["metrics"]

        # Callback gauges mirror their RunStats sources one to one.
        for gauge, stat in (
            ("app.accesses", "accesses"),
            ("app.epc_hits", "epc_hits"),
            ("fault.count", "faults"),
            ("fault.absorbed_by_inflight", "faults_absorbed_by_inflight"),
            ("preload.hits", "preload_hits"),
            ("preload.enqueued", "preloads_enqueued"),
            ("preload.completed", "preloads_completed"),
            ("preload.aborted", "preloads_aborted"),
            ("preload.accessed", "preloads_accessed"),
            ("preload.redundant", "preloads_redundant"),
            ("preload.evicted_unused", "preloads_evicted_unused"),
            ("epc.evictions", "evictions"),
            ("sip.checks", "sip_checks"),
            ("sip.check_hits", "sip_check_hits"),
            ("sip.loads", "sip_loads"),
            ("valve.stops", "valve_stops"),
            ("scan.count", "scans"),
        ):
            assert metrics[gauge] == stats[stat], gauge

        # Time gauges mirror the breakdown; buckets sum to the clock.
        for gauge, bucket in (
            ("time.compute_cycles", "compute"),
            ("time.aex_cycles", "aex"),
            ("time.eresume_cycles", "eresume"),
            ("time.fault_wait_cycles", "fault_wait"),
            ("time.sip_check_cycles", "sip_check"),
            ("time.sip_wait_cycles", "sip_wait"),
            ("time.total_cycles", "total"),
            ("time.overhead_cycles", "overhead"),
        ):
            assert metrics[gauge] == time[bucket], gauge
        assert metrics["time.total_cycles"] == result.total_cycles

        # Histogram sums reconcile with their time buckets exactly,
        # and their counts bracket the fault count (faults whose page
        # landed during the AEX itself never waited on the channel).
        fault_hist = metrics["fault.wait_hist"]
        assert fault_hist["sum"] == time["fault_wait"]
        assert fault_hist["count"] <= stats["faults"]
        assert (
            fault_hist["count"]
            >= stats["faults"] - stats["faults_absorbed_by_inflight"]
        )
        bucket_total = sum(b["count"] for b in fault_hist["buckets"])
        assert bucket_total + fault_hist["overflow"] == fault_hist["count"]
        sip_hist = metrics["sip.wait_hist"]
        assert sip_hist["sum"] == time["sip_wait"]

        # DFP layer: engine counters and abort attribution.
        assert metrics["dfp.preload_counter"] == stats["preloads_completed"]
        assert metrics["dfp.valve_trips"] == stats["valve_stops"]
        assert (
            metrics["abort.in_stream_pages"] + metrics["abort.valve_pages"]
            == stats["preloads_aborted"]
        )
        assert metrics["scan.credited_pages"] <= stats["preloads_accessed"]
        assert metrics["epc.capacity_pages"] == 64
        assert metrics["trace.events_dropped"] == 0
        assert len(capture.events) > 0

    def test_a_run_actually_exercised_the_machinery(self, workload, config):
        result, _m, _c = observed_run(workload, config)
        assert result.stats.faults > 0
        assert result.stats.preloads_completed > 0
        assert result.metrics["fault.wait_hist"]["count"] > 0


class TestObservabilityIsPassive:
    """Enabling metrics/tracing changes no simulation outcome."""

    def test_observed_run_is_bit_identical_to_blind_run(self, workload, config):
        blind = simulate(workload, config, "dfp-stop")
        observed, _metrics, _capture = observed_run(workload, config)
        assert observed == blind  # frozen dataclass equality
        assert observed.stats.as_dict() == blind.stats.as_dict()
        assert observed.stats.time.as_dict() == blind.stats.time.as_dict()
        assert blind.metrics is None
        assert observed.metrics is not None

    def test_event_capacity_does_not_change_outcome(self, workload, config):
        tight = simulate(
            workload, config, "dfp-stop", record_events=True, event_capacity=8
        )
        blind = simulate(workload, config, "dfp-stop")
        assert tight == blind
        assert len(tight.events) == 8
