"""merge_metric_dumps edge cases: empty fleets, identity, bucket shapes.

Complements ``test_exec_telemetry.py``'s happy-path merge tests with
the boundary behaviour the fleet path can actually hit: zero workers,
one worker, and workers whose histogram geometry drifted apart.
"""

import pytest

from repro.core.config import SimConfig
from repro.errors import ObsError
from repro.obs.exec_telemetry import merge_metric_dumps
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import simulate
from repro.workloads.base import SyntheticWorkload
from repro.workloads.synthetic import sequential


def histogram(count, total, bucket_counts, bounds=None):
    bounds = bounds if bounds is not None else tuple(range(1, len(bucket_counts) + 1))
    return {
        "type": "histogram",
        "count": count,
        "sum": total,
        "buckets": [
            {"le": le, "count": n} for le, n in zip(bounds, bucket_counts)
        ],
        "overflow": 0,
    }


def registry_dump(seed):
    config = SimConfig(epc_pages=64, sanitize=True)
    workload = SyntheticWorkload(
        "seq", 96, {0: "scan"}, [sequential(0, 0, 96, compute=5_000, passes=2)]
    )
    metrics = MetricsRegistry()
    simulate(workload, config, "dfp-stop", seed=seed, metrics=metrics)
    return metrics.as_dict()


class TestEmptyFleets:
    def test_no_workers_merge_to_an_empty_dump(self):
        assert merge_metric_dumps([]) == {}

    def test_workers_with_empty_dumps_merge_to_an_empty_dump(self):
        assert merge_metric_dumps([{}, {}, {}]) == {}

    def test_empty_dumps_beside_real_ones_are_neutral(self):
        merged = merge_metric_dumps([{}, {"n": 2}, {}])
        assert merged == {"n": 2}


class TestSingleWorkerIdentity:
    def test_one_dump_merges_to_itself(self):
        dump = {"n": 3, "lat": histogram(2, 10, (1, 1))}
        assert merge_metric_dumps([dump]) == dump

    def test_one_real_registry_dump_merges_to_itself(self):
        dump = registry_dump(seed=0)
        assert merge_metric_dumps([dump]) == dump

    def test_identity_merge_still_copies_histograms(self):
        dump = {"lat": histogram(2, 10, (1, 1))}
        merged = merge_metric_dumps([dump])
        merged["lat"]["buckets"][0]["count"] += 99
        assert dump["lat"]["buckets"][0]["count"] == 1

    def test_fleet_merge_of_real_dumps_sums_pointwise(self):
        # The docstring's contract, checked on real registry dumps:
        # the fleet fold sums every scalar and every histogram bucket.
        dumps = [registry_dump(seed=0), registry_dump(seed=1)]
        merged = merge_metric_dumps(dumps)
        assert set(merged) == set(dumps[0]) | set(dumps[1])
        for name, value in merged.items():
            parts = [d[name] for d in dumps if name in d]
            if isinstance(value, dict) and value.get("type") == "histogram":
                assert value["count"] == sum(p["count"] for p in parts)
                assert value["sum"] == sum(p["sum"] for p in parts)
                for bucket, *sources in zip(
                    value["buckets"], *[p["buckets"] for p in parts]
                ):
                    assert bucket["count"] == sum(s["count"] for s in sources)
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                assert value == sum(parts)


class TestBucketShapeConflicts:
    def test_different_bucket_counts_are_an_error(self):
        with pytest.raises(ObsError, match="bucket bounds"):
            merge_metric_dumps(
                [
                    {"m": histogram(1, 1, (1, 0))},
                    {"m": histogram(1, 1, (1, 0, 0))},
                ]
            )

    def test_empty_versus_populated_bucket_lists_are_an_error(self):
        with pytest.raises(ObsError, match="bucket bounds"):
            merge_metric_dumps(
                [
                    {"m": histogram(1, 1, ())},
                    {"m": histogram(1, 1, (1,))},
                ]
            )

    def test_reordered_bounds_are_an_error(self):
        with pytest.raises(ObsError, match="bucket bounds"):
            merge_metric_dumps(
                [
                    {"m": histogram(1, 1, (1, 0), bounds=(1, 10))},
                    {"m": histogram(1, 1, (1, 0), bounds=(10, 1))},
                ]
            )

    def test_error_reports_the_offending_metric_name(self):
        with pytest.raises(ObsError, match="'fault.wait_hist'"):
            merge_metric_dumps(
                [
                    {"fault.wait_hist": histogram(1, 1, (1,))},
                    {"fault.wait_hist": 2},
                ]
            )
