"""Unit contract of :mod:`repro.obs.exec_telemetry`.

The collector, the worker payload merge and the fleet manifest are the
load-bearing pieces of PR 5's observability-under-resilience story, so
each invariant gets a direct test: deterministic merges, exactly-once
worker delivery, span bookkeeping that survives the serial hang path,
and a schema validator that rejects every malformed block it could
meet.
"""

import json

import pytest

from repro.core.config import SimConfig
from repro.errors import ObsError
from repro.obs.exec_telemetry import (
    EXEC_TELEMETRY_SCHEMA,
    ExecTelemetry,
    SpanKind,
    TelemetryConfig,
    WorkerTelemetry,
    build_fleet_manifest,
    merge_metric_dumps,
    render_exec_report,
    validate_exec_telemetry,
)
from repro.robust import ExecutionPolicy
from repro.sim.parallel import JobSpec, WorkloadSpec, run_job

SPEC = WorkloadSpec("microbenchmark", 64)


def job_result(load_length=1, scheme="baseline"):
    config = SimConfig.scaled(64).replace(load_length=load_length)
    return run_job(JobSpec(workload=SPEC, config=config, scheme=scheme))


def histogram(count, total, bucket_counts, bounds=(1, 10)):
    return {
        "type": "histogram",
        "count": count,
        "sum": total,
        "buckets": [
            {"le": le, "count": n} for le, n in zip(bounds, bucket_counts)
        ],
        "overflow": 0,
    }


class TestTelemetryConfig:
    def test_default_observes_nothing(self):
        assert TelemetryConfig().enabled is False

    @pytest.mark.parametrize(
        "kwargs", [{"metrics": True}, {"trace": True}]
    )
    def test_enabled_when_anything_requested(self, kwargs):
        assert TelemetryConfig(**kwargs).enabled is True

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ObsError, match="trace_capacity"):
            TelemetryConfig(trace=True, trace_capacity=0)


class TestMergeMetricDumps:
    def test_scalars_sum_and_keys_sort(self):
        merged = merge_metric_dumps(
            [{"b.count": 2, "a.count": 1}, {"b.count": 3}]
        )
        assert merged == {"a.count": 1, "b.count": 5}
        assert list(merged) == ["a.count", "b.count"]

    def test_histograms_merge_bucket_wise(self):
        merged = merge_metric_dumps(
            [
                {"lat": histogram(3, 12, (2, 1))},
                {"lat": histogram(1, 8, (0, 1))},
            ]
        )
        assert merged["lat"]["count"] == 4
        assert merged["lat"]["sum"] == 20
        assert [b["count"] for b in merged["lat"]["buckets"]] == [2, 2]

    def test_merge_does_not_mutate_the_inputs(self):
        first = {"lat": histogram(3, 12, (2, 1))}
        merge_metric_dumps([first, {"lat": histogram(1, 8, (0, 1))}])
        assert first["lat"]["count"] == 3
        assert first["lat"]["buckets"][0]["count"] == 2

    def test_shape_mismatch_is_an_error(self):
        with pytest.raises(ObsError, match="mismatched shapes"):
            merge_metric_dumps([{"m": 1}, {"m": histogram(1, 1, (1, 0))}])

    def test_bucket_bound_mismatch_is_an_error(self):
        with pytest.raises(ObsError, match="bucket bounds"):
            merge_metric_dumps(
                [
                    {"m": histogram(1, 1, (1, 0), bounds=(1, 10))},
                    {"m": histogram(1, 1, (1, 0), bounds=(1, 100))},
                ]
            )

    def test_equal_non_numeric_values_pass_through(self):
        merged = merge_metric_dumps(
            [{"run.scheme": "dfp"}, {"run.scheme": "dfp"}]
        )
        assert merged == {"run.scheme": "dfp"}

    def test_conflicting_non_numeric_values_are_an_error(self):
        with pytest.raises(ObsError, match="non-numeric"):
            merge_metric_dumps([{"run.scheme": "dfp"}, {"run.scheme": "sip"}])


class TestSpanCollection:
    def test_queue_wait_then_attempt_span(self):
        telemetry = ExecTelemetry()
        telemetry.job_enqueued(0, 1)
        telemetry.attempt_started(0, 1, lane=2)
        telemetry.attempt_finished(0, 1, "ok")
        kinds = [span.kind for span in telemetry.spans]
        assert kinds == [SpanKind.QUEUE_WAIT, SpanKind.ATTEMPT]
        attempt = telemetry.spans[1]
        assert attempt.lane == 2
        assert attempt.outcome == "ok"
        assert attempt.duration_s >= 0.0

    def test_finish_after_abandon_is_a_no_op(self):
        # The serial hang path abandons the attempt, then flows through
        # the common failure narration; that second call must not emit
        # a degenerate duplicate span.
        telemetry = ExecTelemetry()
        telemetry.attempt_started(0, 1, lane=0)
        telemetry.attempt_abandoned(0, 1, detail="exceeded 1.0s deadline")
        before = len(telemetry.spans)
        telemetry.attempt_finished(0, 1, "failed")
        assert len(telemetry.spans) == before
        assert telemetry.total_timeouts == 1
        kinds = [span.kind for span in telemetry.spans]
        assert kinds == [SpanKind.ATTEMPT, SpanKind.TIMEOUT_ABANDON]

    def test_backoff_span_covers_the_scheduled_delay(self):
        telemetry = ExecTelemetry()
        telemetry.backoff(3, 1, 0.25)
        span = telemetry.spans[-1]
        assert span.kind is SpanKind.RETRY_BACKOFF
        assert span.duration_s == pytest.approx(0.25)

    def test_fault_narration_dedupes_per_coordinate(self):
        from repro.robust import FaultKind

        telemetry = ExecTelemetry()
        telemetry.fault_injected(4, 1, FaultKind.SUBMIT_ERROR)
        telemetry.fault_injected(4, 1, FaultKind.SUBMIT_ERROR)  # re-dispatch
        assert telemetry.total_faults == 1
        assert telemetry.submit_errors == 1

    def test_health_counts_is_the_progress_trio(self):
        telemetry = ExecTelemetry()
        for attempt in (1, 2):
            telemetry.attempt_started(0, attempt, lane=0)
        telemetry.attempt_abandoned(0, 2)
        assert telemetry.health_counts() == (1, 1, 0)

    def test_resume_hit_marks_the_job_source(self):
        telemetry = ExecTelemetry()
        telemetry.resume_hit(2)
        block = telemetry.as_dict()
        assert block["jobs"]["per_job"][2]["source"] == "checkpoint"
        assert block["totals"]["resume_hits"] == 1


class TestWorkerDelivery:
    def test_first_delivery_wins_and_duplicates_are_counted(self):
        telemetry = ExecTelemetry()
        first = WorkerTelemetry(metrics={"m": 1})
        telemetry.deliver_worker(0, first)
        telemetry.deliver_worker(0, WorkerTelemetry(metrics={"m": 99}))
        assert telemetry.worker_for(0) is first
        assert telemetry.deliveries_for(0) == 2
        assert telemetry.merged_metrics() == {"m": 1}

    def test_merged_metrics_folds_in_job_order(self):
        telemetry = ExecTelemetry()
        telemetry.deliver_worker(1, WorkerTelemetry(metrics={"m": 10}))
        telemetry.deliver_worker(0, WorkerTelemetry(metrics={"m": 1}))
        assert telemetry.merged_metrics() == {"m": 11}

    def test_dropped_counts_surface_in_totals(self):
        telemetry = ExecTelemetry()
        telemetry.deliver_worker(
            0, WorkerTelemetry(events=({"kind": "load"},), dropped=7)
        )
        assert telemetry.total_dropped == 7
        assert telemetry.as_dict()["totals"]["trace_dropped"] == 7


class TestAsDictAndValidate:
    def make_block(self):
        telemetry = ExecTelemetry()
        telemetry.begin(ExecutionPolicy(jobs=2), total_jobs=2)
        for job in (0, 1):
            telemetry.attempt_started(job, 1, lane=job)
            telemetry.attempt_finished(job, 1, "ok")
        return telemetry.as_dict()

    def test_emitted_block_validates(self):
        counts = validate_exec_telemetry(self.make_block())
        assert counts == {
            "jobs": 2, "attempts": 2, "retries": 0, "timeouts": 0, "faults": 0,
        }

    def test_block_is_wall_clock_free_by_default(self):
        assert "timing" not in self.make_block()

    def test_policy_summary_is_embedded(self):
        block = self.make_block()
        assert block["policy"]["jobs"] == 2
        assert block["policy"]["checkpointing"] is False

    def test_wrong_schema_is_rejected(self):
        block = self.make_block()
        block["schema"] = "repro.exec-telemetry/0"
        with pytest.raises(ObsError, match="schema"):
            validate_exec_telemetry(block)

    def test_totals_disagreement_is_rejected(self):
        block = self.make_block()
        block["totals"]["attempts"] = 99
        with pytest.raises(ObsError, match="disagrees"):
            validate_exec_telemetry(block)

    def test_job_count_disagreement_is_rejected(self):
        block = self.make_block()
        block["jobs"]["total"] = 3
        with pytest.raises(ObsError, match="claims"):
            validate_exec_telemetry(block)


class TestRenderExecReport:
    def test_renders_table_totals_and_policy(self):
        telemetry = ExecTelemetry()
        telemetry.begin(ExecutionPolicy(jobs=2), total_jobs=1)
        telemetry.attempt_started(0, 1, lane=0)
        telemetry.attempt_finished(0, 1, "failed")
        telemetry.attempt_started(0, 2, lane=0)
        telemetry.attempt_finished(0, 2, "ok")
        text = render_exec_report(telemetry.as_dict())
        assert "execution telemetry (fleet)" in text
        assert "totals: 2 attempts, 1 retries" in text
        assert "policy:" in text
        assert "wall-clock attribution: not recorded" in text


class TestBuildFleetManifest:
    def test_aggregates_runs_and_embeds_the_exec_block(self):
        telemetry = ExecTelemetry()
        results = []
        for job, value in enumerate((1, 4)):
            telemetry.attempt_started(job, 1, lane=0)
            telemetry.attempt_finished(job, 1, "ok")
            results.append(job_result(load_length=value))
        manifest = build_fleet_manifest(
            results, telemetry=telemetry, labels=[1, 4]
        )
        assert manifest["run"]["runs"] == 2
        exec_block = manifest["exec_telemetry"]
        assert validate_exec_telemetry(exec_block)["jobs"] == 2
        total = sum(r.stats.accesses for r in results)
        assert manifest["stats"]["accesses"] == total
        # A parameter sweep has no single config; the section is
        # omitted rather than lying about one point's values.
        assert "config" not in manifest

    def test_shared_config_is_kept(self):
        results = [
            job_result(scheme="baseline"), job_result(scheme="dfp-stop")
        ]
        manifest = build_fleet_manifest(results)
        assert "config" in manifest
        assert manifest["run"]["scheme"] == "baseline+dfp-stop"

    def test_fleet_manifest_is_deterministic(self):
        def build():
            return json.dumps(
                build_fleet_manifest([job_result(), job_result(load_length=4)]),
                sort_keys=True,
            )

        assert build() == build()

    def test_zero_results_is_an_error(self):
        with pytest.raises(ObsError, match="zero results"):
            build_fleet_manifest([])


def test_schema_constant_matches_the_emitted_block():
    assert ExecTelemetry().as_dict()["schema"] == EXEC_TELEMETRY_SCHEMA
