"""Fleet time-series telemetry: passivity, reconciliation, SLO layer.

The two contracts the sampler lives by, straight from the acceptance
criteria:

* **passivity** — attaching :class:`FleetTelemetry` changes nothing
  the fleet computes: the ``repro.fleet-manifest/1`` block (and the
  whole manifest minus the digest-excluded timeseries section) stays
  byte-identical to a blind run, under every frame policy;
* **reconciliation** — per-window deltas sum exactly to the
  end-of-run QoS aggregates for every built-in scenario and policy
  (``validate_fleet_timeseries`` with the fleet block attached).
"""

import json

import pytest

from repro.errors import ObsError
from repro.obs.fleet_telemetry import (
    FLEET_SLO_SCHEMA,
    FLEET_TIMESERIES_SCHEMA,
    FleetTelemetry,
    SloSpec,
    detect_thrash,
    evaluate_slo,
    validate_fleet_timeseries,
)
from repro.obs.manifest import manifest_digest
from repro.sim.fleet import EPC_POLICIES, SCENARIO_NAMES, build_scenario, simulate_fleet


def canonical(document):
    return json.dumps(document, indent=2, sort_keys=True)


def observed_run(scenario_name="smoke", seed=7, policy=None, **telemetry_kwargs):
    scenario = build_scenario(scenario_name, seed=seed, policy=policy)
    telemetry = FleetTelemetry(**telemetry_kwargs)
    return simulate_fleet(scenario, telemetry=telemetry)


def synthetic_block(
    *,
    faults=((0, 4), (10, 2)),
    accesses=((20, 20), (20, 20)),
    wait_p99=((0.0, 900.0), (100.0, 100.0)),
    quota=((8, 8), (8, 8)),
    resident=((8, 2), (8, 8)),
    window=1_000,
):
    """A hand-built two-tenant block that passes the validator.

    Each per-tenant argument is one tuple per tenant, one value per
    window; the fleet section is derived so the cross-foot holds.
    """
    n = len(faults[0])
    tenants = []
    for idx, name in enumerate(("alpha", "beta")):
        tenants.append(
            {
                "index": idx,
                "name": name,
                "scheme": "baseline",
                "workload": name,
                "arrival": 0,
                "queued_at": 0,
                "admitted_at": 0,
                "started_at": 0,
                "departed_at": n * window,
                "truncated": False,
                "accesses": list(accesses[idx]),
                "faults": list(faults[idx]),
                "preloads_completed": [0] * n,
                "wait_cycles": [f * 100 for f in faults[idx]],
                "wait_count": list(faults[idx]),
                "fault_wait_p99": list(wait_p99[idx]),
                "resident": list(resident[idx]),
                "quota": list(quota[idx]),
            }
        )
    fleet_faults = [sum(t["faults"][i] for t in tenants) for i in range(n)]
    fleet_accesses = [sum(t["accesses"][i] for t in tenants) for i in range(n)]
    fleet_wait = [sum(t["wait_cycles"][i] for t in tenants) for i in range(n)]
    return {
        "schema": FLEET_TIMESERIES_SCHEMA,
        "window_cycles": window,
        "coarsen_passes": 0,
        "end_cycles": n * window,
        "window_start": [i * window for i in range(n)],
        "window_end": [(i + 1) * window for i in range(n)],
        "fleet": {
            "accesses": fleet_accesses,
            "faults": fleet_faults,
            "preloads_completed": [0] * n,
            "channel_wait_cycles": fleet_wait,
            "fault_wait_p99": [max(t["fault_wait_p99"][i] for t in tenants) for i in range(n)],
            "channel_loads": fleet_faults,
            "channel_busy_cycles": fleet_wait,
            "channel_utilization": [0.5] * n,
            "epc_resident": [sum(t["resident"][i] for t in tenants) for i in range(n)],
            "queue_depth": [0] * n,
            "active_tenants": [2] * n,
            "truncated_tenants": [0] * n,
        },
        "tenants": tenants,
        "rebalances": [],
        "totals": {
            "accesses": sum(fleet_accesses),
            "faults": sum(fleet_faults),
            "preloads_completed": 0,
            "channel_wait_cycles": sum(fleet_wait),
        },
    }


class TestPassivity:
    """Observation must not perturb the run: the acceptance bar."""

    @pytest.mark.parametrize("policy", sorted(EPC_POLICIES))
    def test_fleet_block_byte_identical_with_and_without_sampler(self, policy):
        blind = simulate_fleet(build_scenario("smoke", seed=7, policy=policy))
        observed = observed_run(policy=policy)
        assert canonical(blind.fleet_block()) == canonical(observed.fleet_block())

    @pytest.mark.parametrize("policy", sorted(EPC_POLICIES))
    def test_manifest_minus_timeseries_is_byte_identical(self, policy):
        blind = simulate_fleet(build_scenario("smoke", seed=7, policy=policy))
        observed = observed_run(policy=policy)
        stripped = dict(observed.manifest())
        block = stripped.pop("fleet_timeseries")
        assert block is not None
        assert canonical(blind.manifest()) == canonical(stripped)

    def test_digest_ignores_the_timeseries_block(self):
        blind = simulate_fleet(build_scenario("smoke", seed=7))
        observed = observed_run()
        assert manifest_digest(observed.manifest()) == manifest_digest(
            blind.manifest()
        )

    def test_blind_run_has_no_timeseries(self):
        blind = simulate_fleet(build_scenario("smoke", seed=7))
        assert blind.timeseries is None
        assert "fleet_timeseries" not in blind.manifest()


class TestDeterminism:
    def test_same_seed_same_timeseries_bytes(self):
        a = observed_run(seed=11)
        b = observed_run(seed=11)
        assert canonical(a.timeseries) == canonical(b.timeseries)

    def test_different_seed_changes_the_series(self):
        a = observed_run(seed=0)
        b = observed_run(seed=1)
        assert canonical(a.timeseries) != canonical(b.timeseries)


class TestReconciliation:
    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    @pytest.mark.parametrize("policy", sorted(EPC_POLICIES))
    def test_every_scenario_and_policy_reconciles_exactly(self, scenario, policy):
        """Per-window totals equal the QoS aggregates — the tentpole's
        accounting identity, for every built-in scenario and policy."""
        result = observed_run(scenario, seed=0, policy=policy)
        counts = validate_fleet_timeseries(
            result.timeseries, fleet_block=result.fleet_block()
        )
        assert counts["windows"] >= 1
        assert counts["tenants"] == len(result.fleet_block()["tenants"])

    def test_rebalance_records_match_the_summary_count(self):
        result = observed_run(policy="adaptive-quota")
        block = result.fleet_block()
        assert len(result.timeseries["rebalances"]) == block["summary"]["rebalances"]
        first = result.timeseries["rebalances"][0]
        assert set(first) == {"cycle", "quotas_before", "quotas_after"}
        assert first["quotas_before"] and first["quotas_after"]

    def test_loaded_manifest_validates_the_embedded_block(self, tmp_path):
        from repro.obs.manifest import load_manifest, write_manifest

        result = observed_run()
        path = write_manifest(tmp_path / "m.json", result.manifest())
        document = load_manifest(path)
        assert document["fleet_timeseries"]["schema"] == FLEET_TIMESERIES_SCHEMA


class TestWindowing:
    def test_window_cycles_defaults_to_the_scan_period(self):
        scenario = build_scenario("smoke", seed=0)
        result = observed_run()
        assert (
            result.timeseries["window_cycles"]
            == scenario.config.scan_period_cycles
        )

    def test_custom_window_width_is_honored(self):
        result = observed_run(window_cycles=1_000_000)
        ts = result.timeseries
        assert ts["window_cycles"] == 1_000_000
        assert ts["window_start"][0] == 0
        validate_fleet_timeseries(ts, fleet_block=result.fleet_block())

    def test_tiny_windows_coarsen_but_still_reconcile(self):
        """A window far below the run length forces pairwise merges;
        merging must preserve every reconciliation identity."""
        result = observed_run(window_cycles=50_000)
        ts = result.timeseries
        assert ts["coarsen_passes"] >= 1
        assert len(ts["window_end"]) <= 128
        validate_fleet_timeseries(ts, fleet_block=result.fleet_block())

    def test_invalid_window_width_rejected(self):
        with pytest.raises(ObsError):
            FleetTelemetry(window_cycles=0)


class TestValidatorErrors:
    def test_rejects_wrong_schema(self):
        with pytest.raises(ObsError, match="schema"):
            validate_fleet_timeseries({"schema": "nope/1"})

    def test_rejects_non_contiguous_windows(self):
        block = synthetic_block()
        block["window_start"][1] += 1
        with pytest.raises(ObsError, match="contiguous"):
            validate_fleet_timeseries(block)

    def test_rejects_cross_foot_violation(self):
        block = synthetic_block()
        block["fleet"]["faults"][0] += 1
        with pytest.raises(ObsError, match="cross-foot"):
            validate_fleet_timeseries(block)

    def test_rejects_totals_drift(self):
        block = synthetic_block()
        block["totals"]["faults"] += 1
        with pytest.raises(ObsError, match="totals"):
            validate_fleet_timeseries(block)

    def test_rejects_qos_mismatch_against_fleet_block(self):
        result = observed_run()
        fleet_block = json.loads(canonical(result.fleet_block()))
        fleet_block["summary"]["faults"] += 1
        with pytest.raises(ObsError):
            validate_fleet_timeseries(result.timeseries, fleet_block=fleet_block)


class TestSloSpec:
    def test_parse_full_spec(self):
        spec = SloSpec.parse("wait_p99=80000,fault_rate=0.2,residency=0.5")
        assert spec.max_fault_wait_p99 == 80000.0
        assert spec.max_fault_rate == 0.2
        assert spec.min_residency_ratio == 0.5
        assert spec.enabled

    def test_parse_partial_spec(self):
        spec = SloSpec.parse("fault_rate=0.1")
        assert spec.max_fault_wait_p99 is None
        assert spec.max_fault_rate == 0.1

    @pytest.mark.parametrize(
        "text", ["", "bogus=1", "fault_rate=2.0", "residency=0", "wait_p99=-5"]
    )
    def test_parse_rejects_bad_specs(self, text):
        with pytest.raises(ObsError):
            SloSpec.parse(text)

    def test_disabled_spec_refuses_evaluation(self):
        with pytest.raises(ObsError, match="objectives"):
            evaluate_slo(synthetic_block(), SloSpec())


class TestSloEvaluation:
    def test_breach_intervals_merge_consecutive_windows(self):
        block = synthetic_block(
            faults=((10, 10), (0, 0)),
            accesses=((20, 20), (20, 20)),
        )
        doc = evaluate_slo(block, SloSpec(max_fault_rate=0.25))
        assert doc["schema"] == FLEET_SLO_SCHEMA
        assert len(doc["breaches"]) == 1
        breach = doc["breaches"][0]
        assert breach["tenant"] == "alpha"
        assert breach["windows"] == 2
        assert breach["violated"] == ["fault_rate"]
        assert breach["worst"]["fault_rate"] == 0.5

    def test_wait_p99_objective_skips_fault_free_windows(self):
        block = synthetic_block(wait_p99=((0.0, 900.0), (100.0, 100.0)),
                                faults=((0, 4), (1, 1)))
        doc = evaluate_slo(block, SloSpec(max_fault_wait_p99=500.0))
        breaches = [b for b in doc["breaches"] if b["tenant"] == "alpha"]
        assert len(breaches) == 1
        assert breaches[0]["start_window"] == 1

    def test_residency_objective_flags_starved_quota(self):
        block = synthetic_block(resident=((8, 2), (8, 8)))
        doc = evaluate_slo(block, SloSpec(min_residency_ratio=0.5))
        assert [b["tenant"] for b in doc["breaches"]] == ["alpha"]
        assert doc["breaches"][0]["worst"]["residency_ratio"] == 0.25

    def test_clean_run_reports_no_breaches(self):
        block = synthetic_block(faults=((0, 0), (0, 0)),
                                wait_p99=((0.0, 0.0), (0.0, 0.0)))
        doc = evaluate_slo(block, SloSpec(max_fault_rate=0.9))
        assert doc["breaches"] == []


class TestThrashDetection:
    def test_spike_above_mean_is_flagged(self):
        block = synthetic_block(
            faults=((1, 1, 1, 40), (1, 1, 1, 1)),
            accesses=((20, 20, 20, 60), (20, 20, 20, 20)),
            wait_p99=((0.0,) * 4, (0.0,) * 4),
            quota=((8,) * 4, (8,) * 4),
            resident=((8,) * 4, (8,) * 4),
        )
        intervals = detect_thrash(block, factor=2.0, min_faults=8)
        assert len(intervals) == 1
        assert intervals[0]["tenant"] == "alpha"
        assert intervals[0]["start_window"] == 3
        assert intervals[0]["peak_rate_vs_mean"] > 2.0

    def test_quiet_tenants_never_flag(self):
        block = synthetic_block(faults=((1, 2), (0, 1)))
        assert detect_thrash(block, min_faults=8) == []

    def test_bad_parameters_rejected(self):
        block = synthetic_block()
        with pytest.raises(ObsError):
            detect_thrash(block, factor=1.0)
        with pytest.raises(ObsError):
            detect_thrash(block, min_faults=0)


class TestExports:
    def test_chrome_trace_validates_and_carries_fleet_tracks(self):
        from repro.obs.chrome import fleet_chrome_trace, validate_chrome_trace

        result = observed_run(policy="adaptive-quota")
        document = fleet_chrome_trace(result.timeseries)
        counts = validate_chrome_trace(document)
        assert counts["counter"] > 0
        assert counts["complete"] > 0  # lifecycle spans
        assert counts["instant"] == len(result.timeseries["rebalances"])
        names = {e["name"] for e in document["traceEvents"]}
        assert {"fleet-faults", "epc-resident", "queue-depth", "run"} <= names

    def test_chrome_trace_rejects_non_timeseries_input(self):
        from repro.obs.chrome import fleet_chrome_trace

        with pytest.raises(ObsError, match="schema"):
            fleet_chrome_trace({"schema": "bogus"})

    def test_write_fleet_chrome_trace_round_trips(self, tmp_path):
        from repro.obs.chrome import validate_chrome_trace, write_fleet_chrome_trace

        result = observed_run()
        path = tmp_path / "fleet.trace.json"
        count = write_fleet_chrome_trace(path, result.timeseries)
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == count
        validate_chrome_trace(document)

    def test_openmetrics_is_labeled_deterministic_and_terminated(self):
        from repro.obs.openmetrics import render_fleet_openmetrics

        result = observed_run()
        text = render_fleet_openmetrics(result.timeseries)
        assert text == render_fleet_openmetrics(result.timeseries)
        assert text.endswith("# EOF\n")
        assert 'repro_tenant_faults{tenant="' in text
        assert 'window="' in text

    def test_openmetrics_escapes_label_values(self):
        from repro.obs.openmetrics import _escape_label

        assert _escape_label('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_openmetrics_rejects_non_timeseries_input(self):
        from repro.obs.openmetrics import render_fleet_openmetrics

        with pytest.raises(ValueError):
            render_fleet_openmetrics({"schema": "bogus"})
