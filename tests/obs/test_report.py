"""Manifest diffing (repro.obs.diff) and the observability CLI surface."""

import json

import pytest

from repro.cli import main
from repro.obs.diff import diff_manifests, render_diff
from repro.obs.manifest import MANIFEST_SCHEMA, load_manifest


def canned_manifest(
    scheme,
    *,
    workload="mcf",
    input_set="ref",
    compute=1_000,
    fault_wait=500,
    faults=10,
):
    """A minimal, self-consistent manifest for diff tests."""
    time = {
        "compute": compute,
        "aex": 70,
        "eresume": 70,
        "fault_wait": fault_wait,
        "sip_check": 0,
        "sip_wait": 0,
    }
    time["total"] = sum(time.values())
    time["overhead"] = time["total"] - compute
    return {
        "schema": MANIFEST_SCHEMA,
        "generator": {"repro_version": "1.0.0", "git_sha": "deadbeef"},
        "run": {
            "workload": workload,
            "scheme": scheme,
            "input_set": input_set,
            "seed": 0,
            "total_cycles": time["total"],
            "seconds": 0.0,
            "sip_points": 0,
        },
        "config": {"epc_pages": 64},
        "stats": {"faults": faults, "accesses": 100, "time": dict(time)},
        "time_breakdown": time,
        "metrics": {},
    }


class TestDiffManifests:
    def test_attributes_the_delta_per_bucket(self):
        a = canned_manifest("baseline", fault_wait=900, faults=18)
        b = canned_manifest("dfp-stop", fault_wait=500, faults=10)
        diff = diff_manifests(a, b)
        assert diff["comparable"] is True
        assert diff["total"]["delta"] == -400
        assert diff["total"]["ratio"] == pytest.approx(
            b["time_breakdown"]["total"] / a["time_breakdown"]["total"]
        )
        rows = {row["bucket"]: row for row in diff["time"]}
        assert rows["fault_wait"]["delta"] == -400
        assert rows["fault_wait"]["share"] == pytest.approx(1.0)
        assert rows["compute"]["delta"] == 0
        assert diff["stats"] == [
            {"counter": "faults", "a": 18, "b": 10, "delta": -8}
        ]

    def test_zero_delta_yields_no_shares_and_no_moved_counters(self):
        a = canned_manifest("baseline")
        diff = diff_manifests(a, canned_manifest("baseline"))
        assert diff["total"]["delta"] == 0
        assert all(row["share"] is None for row in diff["time"])
        assert diff["stats"] == []

    def test_cross_workload_flagged_not_comparable(self):
        a = canned_manifest("baseline")
        b = canned_manifest("baseline", workload="lbm")
        assert diff_manifests(a, b)["comparable"] is False

    def test_render_diff_report(self):
        a = canned_manifest("baseline", fault_wait=900, faults=18)
        b = canned_manifest("dfp-stop", fault_wait=500, faults=10)
        text = render_diff(diff_manifests(a, b))
        assert "A: mcf/baseline[ref, seed 0]" in text
        assert "cycle attribution (B - A)" in text
        assert "counters that moved" in text
        assert "faults" in text
        assert "warning" not in text

    def test_render_diff_warns_on_cross_experiment(self):
        a = canned_manifest("baseline")
        b = canned_manifest("baseline", workload="lbm")
        assert "warning" in render_diff(diff_manifests(a, b))

    def test_render_diff_without_moved_counters(self):
        a = canned_manifest("baseline")
        text = render_diff(diff_manifests(a, canned_manifest("baseline")))
        assert "no counters moved" in text


SCALE = ["--scale", "64"]


class TestCliRunObservability:
    def test_metrics_flag_prints_registry(self, capsys):
        assert main(
            ["run", "lbm", "--scheme", "dfp-stop", "--metrics", *SCALE]
        ) == 0
        out = capsys.readouterr().out
        assert "metrics" in out
        assert "fault.count" in out
        assert "dfp.preload_counter" in out

    def test_trace_flag_writes_valid_chrome_trace(self, tmp_path, capsys):
        from repro.obs.chrome import validate_chrome_trace

        trace = tmp_path / "trace.json"
        assert main(
            ["run", "lbm", "--scheme", "dfp-stop", "--trace", str(trace), *SCALE]
        ) == 0
        assert "trace:" in capsys.readouterr().out
        counts = validate_chrome_trace(json.loads(trace.read_text()))
        assert counts["tracks"] == 3
        assert counts["events"] > 4

    def test_trace_capacity_reports_drops(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(
            ["run", "lbm", "--trace", str(trace), "--trace-capacity", "4", *SCALE]
        ) == 0
        assert "dropped" in capsys.readouterr().out

    def test_manifest_flag_writes_loadable_manifest(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        assert main(
            ["run", "lbm", "--scheme", "dfp-stop", "--manifest", str(path), *SCALE]
        ) == 0
        assert "manifest" in capsys.readouterr().out
        manifest = load_manifest(path)
        assert manifest["run"]["workload"] == "lbm"
        assert manifest["metrics"]  # --manifest implies metric collection
        assert manifest["workload"]["name"] == "lbm"


class TestCliReport:
    @pytest.fixture
    def two_manifests(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(["run", "lbm", "--manifest", str(a), *SCALE]) == 0
        assert main(
            ["run", "lbm", "--scheme", "dfp-stop", "--manifest", str(b), *SCALE]
        ) == 0
        return a, b

    def test_report_text(self, two_manifests, capsys):
        a, b = two_manifests
        capsys.readouterr()
        assert main(["report", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "cycle attribution (B - A)" in out
        assert "baseline" in out and "dfp-stop" in out

    def test_report_json(self, two_manifests, capsys):
        a, b = two_manifests
        capsys.readouterr()
        assert main(["report", str(a), str(b), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["comparable"] is True
        assert {row["bucket"] for row in payload["time"]} >= {"compute", "fault_wait"}

    def test_report_on_missing_manifest_is_a_clean_error(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "a.json"), str(tmp_path / "b.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestCliSweepProgress:
    def test_progress_ticks_on_stderr(self, capsys):
        assert main(
            [
                "sweep", "lbm", "--param", "load_length",
                "--values", "2,4", "--progress", *SCALE,
            ]
        ) == 0
        captured = capsys.readouterr()
        assert "[1/2]" in captured.err
        assert "[2/2]" in captured.err
        assert "elapsed" in captured.err
        assert "sweep" in captured.out or "lbm" in captured.out

    def test_no_progress_by_default(self, capsys):
        assert main(
            ["sweep", "lbm", "--param", "load_length", "--values", "2", *SCALE]
        ) == 0
        assert capsys.readouterr().err == ""
