"""Trace sinks, the driver's bounded recorder, and the Chrome export."""

import io
import json
from pathlib import Path

import pytest

from repro.core.config import SimConfig
from repro.enclave.driver import SgxDriver
from repro.enclave.enclave import Enclave
from repro.enclave.events import EventKind, TimelineEvent
from repro.errors import ObsError
from repro.obs.chrome import (
    THREAD_NAMES,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import (
    DEFAULT_EVENT_CAPACITY,
    JsonlSink,
    RingBufferSink,
    Tracer,
    event_to_dict,
)

GOLDEN = Path(__file__).parent / "golden_chrome_trace.json"

#: A small fixed timeline exercising every record shape the exporter
#: produces: complete events on all three tracks, instants, pages.
GOLDEN_EVENTS = [
    TimelineEvent(EventKind.AEX, 0, 7_000),
    TimelineEvent(EventKind.DEMAND_LOAD, 7_000, 51_000, 5),
    TimelineEvent(EventKind.ERESUME, 51_000, 58_000),
    TimelineEvent(EventKind.PRELOAD, 58_000, 102_000, 6),
    TimelineEvent(EventKind.ABORT, 110_000, 110_000, 9),
    TimelineEvent(EventKind.SCAN, 200_000, 200_000),
]


def events_of(n):
    return [TimelineEvent(EventKind.AEX, i, i + 1) for i in range(n)]


class TestRingBufferSink:
    def test_keeps_most_recent_and_counts_drops(self):
        ring = RingBufferSink(capacity=3)
        for event in events_of(5):
            ring.emit(event)
        assert len(ring) == 3
        assert ring.dropped == 2
        assert [e.start for e in ring.events] == [2, 3, 4]
        assert [e.start for e in ring] == [2, 3, 4]

    def test_no_drops_below_capacity(self):
        ring = RingBufferSink(capacity=10)
        for event in events_of(4):
            ring.emit(event)
        assert ring.dropped == 0
        assert len(ring.events) == 4

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ObsError):
            RingBufferSink(capacity=0)
        with pytest.raises(ObsError):
            RingBufferSink(capacity=-1)


class TestJsonlSink:
    def test_streams_one_object_per_line(self):
        out = io.StringIO()
        sink = JsonlSink(out)
        sink.emit(TimelineEvent(EventKind.AEX, 0, 7_000))
        sink.emit(TimelineEvent(EventKind.DEMAND_LOAD, 7_000, 51_000, 5))
        sink.close()  # does not own the buffer
        lines = out.getvalue().splitlines()
        assert sink.emitted == 2
        assert json.loads(lines[0]) == {"kind": "aex", "start": 0, "end": 7000}
        assert json.loads(lines[1])["page"] == 5

    def test_owns_and_closes_path_target(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit(TimelineEvent(EventKind.SCAN, 10, 10))
        sink.close()
        sink.close()  # idempotent
        [line] = path.read_text().splitlines()
        assert json.loads(line)["kind"] == "scan"


class TestTracer:
    def test_fans_out_to_every_sink(self):
        a, b = RingBufferSink(8), RingBufferSink(8)
        tracer = Tracer([a])
        tracer.add_sink(b)
        for event in events_of(3):
            tracer.emit(event)
        assert len(a) == len(b) == 3
        assert tracer.ring() is a
        assert len(tracer.sinks) == 2

    def test_ring_helper_with_no_ring(self):
        assert Tracer([JsonlSink(io.StringIO())]).ring() is None


class TestEventToDict:
    def test_page_omitted_when_absent(self):
        assert "page" not in event_to_dict(TimelineEvent(EventKind.AEX, 0, 1))
        assert event_to_dict(TimelineEvent(EventKind.PRELOAD, 0, 1, 3))["page"] == 3


class TestDriverBoundedRecording:
    """Satellite 1: record_events now rides a bounded ring buffer."""

    def make(self, **kwargs):
        config = SimConfig(epc_pages=16, scan_period_cycles=10**9)
        return SgxDriver(config, Enclave("t", elrange_pages=256), **kwargs)

    def test_default_capacity_is_bounded(self):
        driver = self.make(record_events=True)
        assert driver._ring.capacity == DEFAULT_EVENT_CAPACITY

    def test_capacity_bounds_memory_and_counts_drops(self):
        driver = self.make(record_events=True, event_capacity=4)
        t = 0
        for page in range(3):  # 3 faults x 3 events each = 9 emitted
            t = driver.access(page, t)
        assert len(driver.events) == 4
        assert driver.events_dropped == 5
        # The most recent events win: the buffer ends with the last
        # fault's AEX -> DEMAND_LOAD -> ERESUME.
        kinds = [e.kind for e in driver.events]
        assert kinds[-3:] == [
            EventKind.AEX,
            EventKind.DEMAND_LOAD,
            EventKind.ERESUME,
        ]

    def test_recording_off_means_no_events_and_no_drops(self):
        driver = self.make(record_events=False)
        driver.access(1, 0)
        assert driver.events == []
        assert driver.events_dropped == 0

    def test_external_tracer_receives_events_without_recording(self):
        sink = RingBufferSink(64)
        driver = self.make(record_events=False, tracer=sink)
        driver.access(1, 0)
        assert driver.events == []
        kinds = [e.kind for e in sink.events]
        assert kinds == [EventKind.AEX, EventKind.DEMAND_LOAD, EventKind.ERESUME]


class TestChromeTrace:
    def test_metadata_names_all_three_tracks(self):
        doc = chrome_trace([])
        meta = [r for r in doc["traceEvents"] if r["ph"] == "M"]
        assert len(meta) == 4  # process_name + 3 thread_name records
        names = {
            r["tid"]: r["args"]["name"]
            for r in meta
            if r["name"] == "thread_name"
        }
        assert names == THREAD_NAMES

    def test_durations_become_complete_events_and_zero_width_instants(self):
        doc = chrome_trace(GOLDEN_EVENTS)
        records = [r for r in doc["traceEvents"] if r["ph"] != "M"]
        by_name = {r["name"]: r for r in records}
        aex = by_name["aex"]
        assert aex["ph"] == "X"
        assert aex["ts"] == 0
        assert aex["dur"] == 2.0  # 7000 cycles at 3.5 GHz
        assert aex["args"] == {"start_cycles": 0, "end_cycles": 7000}
        abort = by_name["abort"]
        assert abort["ph"] == "i"
        assert abort["s"] == "t"
        assert abort["args"]["page"] == 9
        assert by_name["demand_load"]["tid"] == 2
        assert by_name["scan"]["tid"] == 3

    def test_raw_cycles_survive_rounding(self):
        doc = chrome_trace([TimelineEvent(EventKind.AEX, 1, 8)], ghz=3.5)
        record = [r for r in doc["traceEvents"] if r["ph"] != "M"][0]
        assert record["args"]["start_cycles"] == 1
        assert record["args"]["end_cycles"] == 8

    def test_bad_clock_rejected(self):
        with pytest.raises(ObsError):
            chrome_trace([], ghz=0)

    def test_golden_file(self, tmp_path):
        """The exporter's exact output is pinned byte for byte."""
        out = tmp_path / "trace.json"
        records = write_chrome_trace(out, GOLDEN_EVENTS)
        assert records == 10  # 4 metadata + 6 events
        assert out.read_text(encoding="utf-8") == GOLDEN.read_text(encoding="utf-8")

    def test_golden_file_validates(self):
        counts = validate_chrome_trace(json.loads(GOLDEN.read_text()))
        assert counts == {
            "events": 10,
            "tracks": 3,
            "complete": 4,
            "instant": 2,
            "counter": 0,
            "metadata": 4,
        }


class TestValidateChromeTrace:
    def test_rejects_non_object_documents(self):
        with pytest.raises(ObsError):
            validate_chrome_trace([])
        with pytest.raises(ObsError):
            validate_chrome_trace({"noTraceEvents": 1})

    def test_rejects_missing_required_keys(self):
        with pytest.raises(ObsError):
            validate_chrome_trace({"traceEvents": [{"name": "x", "ph": "i"}]})

    def test_rejects_unknown_phase_and_bad_duration(self):
        base = {"name": "x", "pid": 1, "tid": 1, "ts": 0}
        with pytest.raises(ObsError):
            validate_chrome_trace({"traceEvents": [{**base, "ph": "Z"}]})
        with pytest.raises(ObsError):
            validate_chrome_trace({"traceEvents": [{**base, "ph": "X"}]})
