"""Unit tests for the workload abstraction."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.base import Access, SyntheticWorkload
from repro.workloads.synthetic import sequential


def make(footprint=64, phases=None, instructions=None):
    if phases is None:
        phases = [sequential(0, 0, footprint, compute=100)]
    if instructions is None:
        instructions = {0: "scan"}
    return SyntheticWorkload("t", footprint, instructions, phases)


class TestConstruction:
    def test_empty_name_rejected(self):
        with pytest.raises(WorkloadError):
            SyntheticWorkload("", 10, {0: "x"}, [sequential(0, 0, 1, compute=1)])

    def test_zero_footprint_rejected(self):
        with pytest.raises(WorkloadError):
            SyntheticWorkload("t", 0, {0: "x"}, [sequential(0, 0, 1, compute=1)])

    def test_no_phases_rejected(self):
        with pytest.raises(WorkloadError):
            SyntheticWorkload("t", 10, {0: "x"}, [])

    def test_elrange_exceeds_footprint(self):
        """The enclave reserves guard pages past the live data so DFP
        can preload beyond the last array page."""
        wl = make(footprint=100)
        assert wl.elrange_pages > wl.footprint_pages


class TestTraceValidation:
    def test_out_of_footprint_page_rejected(self):
        wl = make(footprint=10, phases=[sequential(0, 0, 20, compute=1)])
        with pytest.raises(WorkloadError):
            list(wl.trace())

    def test_undeclared_instruction_rejected(self):
        wl = make(phases=[sequential(7, 0, 4, compute=1)])
        with pytest.raises(WorkloadError):
            list(wl.trace())

    def test_unknown_input_set_rejected(self):
        with pytest.raises(WorkloadError):
            list(make().trace(input_set="huge"))

    def test_phases_run_in_order(self):
        wl = make(
            footprint=20,
            instructions={0: "a", 1: "b"},
            phases=[
                sequential(0, 0, 2, compute=1),
                sequential(1, 10, 2, compute=1),
            ],
        )
        assert [i for i, _p, _c in wl.trace()] == [0, 0, 1, 1]


class TestAccessesWrapper:
    def test_yields_access_objects(self):
        wl = make(footprint=4)
        accesses = list(wl.accesses())
        assert all(isinstance(a, Access) for a in accesses)
        assert accesses[0].page == 0
        assert accesses[0].instruction == 0

    def test_matches_trace(self):
        wl = make(footprint=4)
        raw = list(wl.trace())
        objs = [(a.instruction, a.page, a.compute_cycles) for a in wl.accesses()]
        assert raw == objs


class TestRepr:
    def test_repr_mentions_name_and_footprint(self):
        text = repr(make(footprint=64))
        assert "t" in text and "64" in text
