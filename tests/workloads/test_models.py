"""Tests of the benchmark models: geometry, determinism, pattern class.

These validate the *structural* claims each model makes (footprint
ratio, Table 1 category, instruction population); the behavioural
reproduction numbers live in the benchmarks tree.
"""

import pytest

from repro.core.config import SimConfig
from repro.workloads.registry import (
    CPP_BENCHMARKS,
    LARGE_IRREGULAR,
    LARGE_REGULAR,
    SMALL_WORKING_SET,
    WORKLOAD_NAMES,
    build_workload,
)
from repro.errors import WorkloadError

SCALE = 64  # tiny models: fast structural checks
CONFIG = SimConfig.scaled(SCALE)


class TestRegistry:
    def test_all_names_buildable(self):
        for name in WORKLOAD_NAMES:
            wl = build_workload(name, scale=SCALE)
            assert wl.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload("quake3", scale=SCALE)

    def test_groups_are_disjoint_and_known(self):
        groups = set(LARGE_REGULAR) | set(LARGE_IRREGULAR) | set(SMALL_WORKING_SET)
        assert groups <= set(WORKLOAD_NAMES)
        assert not set(LARGE_REGULAR) & set(LARGE_IRREGULAR)
        assert not set(LARGE_REGULAR) & set(SMALL_WORKING_SET)

    def test_cpp_benchmarks_exclude_fortran(self):
        """Section 5.2: bwaves, roms, wrf (Fortran) and omnetpp are
        unsupported by the SIP toolchain."""
        for name in ("bwaves", "roms", "wrf", "omnetpp"):
            assert name not in CPP_BENCHMARKS


class TestFootprints:
    @pytest.mark.parametrize("name", LARGE_REGULAR + LARGE_IRREGULAR)
    def test_large_working_sets_exceed_epc(self, name):
        wl = build_workload(name, scale=SCALE)
        assert wl.footprint_pages > CONFIG.epc_pages

    @pytest.mark.parametrize("name", SMALL_WORKING_SET)
    def test_small_working_sets_fit_epc(self, name):
        wl = build_workload(name, scale=SCALE)
        assert wl.footprint_pages <= CONFIG.epc_pages

    def test_microbenchmark_is_gigabyte_scaled(self):
        """1 GB over a 96 MB EPC: >10x the EPC at any scale."""
        wl = build_workload("microbenchmark", scale=SCALE)
        assert wl.footprint_pages >= 10 * CONFIG.epc_pages

    def test_scale_shrinks_footprints(self):
        small = build_workload("lbm", scale=64).footprint_pages
        large = build_workload("lbm", scale=16).footprint_pages
        assert large == pytest.approx(4 * small, rel=0.05)


class TestTraces:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_trace_valid_and_deterministic(self, name):
        wl = build_workload(name, scale=SCALE)
        first = list(wl.trace(seed=3))
        second = list(wl.trace(seed=3))
        assert first, f"{name} produced an empty trace"
        assert first == second

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_train_differs_from_ref(self, name):
        wl = build_workload(name, scale=SCALE)
        train = list(wl.trace(input_set="train"))
        ref = list(wl.trace(input_set="ref"))
        assert len(train) < len(ref)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_compute_cycles_positive(self, name):
        wl = build_workload(name, scale=SCALE)
        for _i, _p, cycles in wl.trace():
            assert cycles > 0

    def test_seed_changes_random_workloads(self):
        wl = build_workload("deepsjeng", scale=SCALE)
        assert list(wl.trace(seed=0)) != list(wl.trace(seed=1))


class TestInstructionPopulations:
    def test_mcf_declares_paper_site_count(self):
        """Table 2: mcf has ~99 candidate sites; the pool must exist
        regardless of what the pass selects."""
        wl = build_workload("mcf", scale=SCALE)
        sites = [n for n in wl.instructions.values() if "arc_cost" in n]
        assert len(sites) == 99

    def test_mser_declares_54_sites(self):
        wl = build_workload("MSER", scale=SCALE)
        sites = [n for n in wl.instructions.values() if "union_find" in n]
        assert len(sites) == 54

    def test_microbenchmark_single_instruction(self):
        wl = build_workload("microbenchmark", scale=SCALE)
        assert len(wl.instructions) == 1

    def test_instruction_names_are_descriptive(self):
        wl = build_workload("lbm", scale=SCALE)
        assert all(name for name in wl.instructions.values())
