"""Unit tests for the synthetic pattern generators."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import synthetic as syn


def run(phase, seed=0, input_set="ref"):
    return list(phase(seed, input_set))


class TestSequential:
    def test_covers_range_in_order(self):
        events = run(syn.sequential(0, 10, 5, compute=100))
        assert [p for _i, p, _c in events] == [10, 11, 12, 13, 14]

    def test_passes_repeat(self):
        events = run(syn.sequential(0, 0, 4, compute=100, passes=3))
        assert len(events) == 12

    def test_compute_jitter_bounded(self):
        events = run(syn.sequential(0, 0, 100, compute=1000, jitter=100))
        assert all(900 <= c <= 1100 for _i, _p, c in events)

    def test_train_input_shorter(self):
        factory = syn.sequential(0, 0, 10, compute=100, passes=10)
        assert len(run(factory, input_set="train")) < len(run(factory))

    def test_invalid_region_rejected(self):
        with pytest.raises(WorkloadError):
            syn.sequential(0, -1, 5, compute=100)

    def test_invalid_passes_rejected(self):
        with pytest.raises(WorkloadError):
            syn.sequential(0, 0, 5, compute=100, passes=0)


class TestInterleavedStreams:
    def test_round_robin_order(self):
        phase = syn.interleaved_streams(
            [0, 1], [(0, 4), (100, 104)], compute=10, block=1
        )
        pages = [p for _i, p, _c in run(phase)]
        assert pages[:4] == [0, 100, 1, 101]

    def test_shorter_region_wraps(self):
        phase = syn.interleaved_streams(
            [0, 1], [(0, 2), (100, 104)], compute=10, block=1
        )
        pages = [p for i, p, _c in run(phase) if i == 0]
        assert pages == [0, 1, 0, 1]

    def test_noise_interspersed(self):
        phase = syn.interleaved_streams(
            [0],
            [(0, 200)],
            compute=10,
            noise_instr=9,
            noise_rate=0.5,
            noise_region=(500, 600),
        )
        events = run(phase)
        noise = [p for i, p, _c in events if i == 9]
        assert noise
        assert all(500 <= p < 600 for p in noise)

    def test_strides_skip_pages(self):
        phase = syn.interleaved_streams(
            [0], [(0, 8)], compute=10, strides=(2,)
        )
        pages = [p for _i, p, _c in run(phase)]
        assert pages == [0, 2, 4, 6, 0, 2, 4, 6]

    def test_rounds_multiply_length(self):
        one = run(syn.interleaved_streams([0], [(0, 8)], compute=10, rounds=1))
        three = run(syn.interleaved_streams([0], [(0, 8)], compute=10, rounds=3))
        assert len(three) == 3 * len(one)

    def test_mismatched_instrs_rejected(self):
        with pytest.raises(WorkloadError):
            syn.interleaved_streams([0], [(0, 4), (4, 8)], compute=10)

    def test_noise_without_region_rejected(self):
        with pytest.raises(WorkloadError):
            syn.interleaved_streams(
                [0], [(0, 4)], compute=10, noise_rate=0.1, noise_instr=1
            )


class TestUniformRandom:
    def test_stays_in_region(self):
        phase = syn.uniform_random([0], 100, 200, 500, compute=10)
        assert all(100 <= p < 200 for _i, p, _c in run(phase))

    def test_exact_count(self):
        phase = syn.uniform_random([0], 0, 100, 123, compute=10)
        assert len(run(phase)) == 123

    def test_runs_are_consecutive(self):
        phase = syn.uniform_random([0], 0, 10_000, 300, compute=10, run_length=(3, 3))
        pages = [p for _i, p, _c in run(phase)]
        for i in range(0, 297, 3):
            a, b, c = pages[i : i + 3]
            # runs may wrap at the region edge
            assert (b - a) % 10_000 == 1 and (c - b) % 10_000 == 1

    def test_multi_run_prob_zero_means_singletons(self):
        phase = syn.uniform_random(
            [0], 0, 10_000, 400, compute=10, run_length=(2, 4), multi_run_prob=0.0
        )
        pages = [p for _i, p, _c in run(phase)]
        consecutive = sum(1 for a, b in zip(pages, pages[1:]) if b - a == 1)
        assert consecutive <= 4  # only chance adjacency

    def test_instr_pool_round_robin(self):
        phase = syn.uniform_random([7, 8, 9], 0, 100, 9, compute=10)
        instrs = [i for i, _p, _c in run(phase)]
        assert set(instrs) == {7, 8, 9}

    def test_determinism(self):
        phase = syn.uniform_random([0], 0, 1000, 100, compute=10)
        assert run(phase, seed=5) == run(phase, seed=5)
        assert run(phase, seed=5) != run(phase, seed=6)


class TestZipfRandom:
    def test_skew_concentrates_touches(self):
        phase = syn.zipf_random(
            [0], 0, 1000, 5000, alpha=1.2, compute=10, shuffle_ranks=False
        )
        pages = [p for _i, p, _c in run(phase)]
        top = sum(1 for p in pages if p < 100)
        assert top > len(pages) * 0.5  # head gets most touches

    def test_shuffle_decorrelates_inputs(self):
        """Train and ref inputs share the skew but not the hot pages."""
        phase = syn.zipf_random([0], 0, 1000, 2000, alpha=1.2, compute=10)
        ref_hot = {p for _i, p, _c in run(phase, input_set="ref")}
        train_hot = {p for _i, p, _c in run(phase, input_set="train")}
        assert ref_hot != train_hot

    def test_invalid_alpha_rejected(self):
        with pytest.raises(WorkloadError):
            syn.zipf_random([0], 0, 100, 10, alpha=0, compute=10)

    def test_stays_in_region(self):
        phase = syn.zipf_random([0], 50, 150, 500, compute=10)
        assert all(50 <= p < 150 for _i, p, _c in run(phase))


class TestHotLoop:
    def test_cycles_over_pages(self):
        phase = syn.hot_loop(0, [5, 6], 6, compute=10)
        assert [p for _i, p, _c in run(phase)] == [5, 6, 5, 6, 5, 6]

    def test_empty_pages_rejected(self):
        with pytest.raises(WorkloadError):
            syn.hot_loop(0, [], 5, compute=10)


class TestCombinators:
    def test_concat_runs_in_order(self):
        phase = syn.concat(
            syn.sequential(0, 0, 2, compute=10),
            syn.sequential(1, 10, 2, compute=10),
        )
        pages = [p for _i, p, _c in run(phase)]
        assert pages == [0, 1, 10, 11]

    def test_interleave_phases_mixes(self):
        phase = syn.interleave_phases(
            [syn.sequential(0, 0, 4, compute=10), syn.sequential(1, 10, 4, compute=10)],
            chunk=1,
        )
        instrs = [i for i, _p, _c in run(phase)]
        assert instrs == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_interleave_weighted_chunks(self):
        phase = syn.interleave_phases(
            [syn.sequential(0, 0, 6, compute=10), syn.sequential(1, 10, 2, compute=10)],
            chunk=[3, 1],
        )
        instrs = [i for i, _p, _c in run(phase)]
        assert instrs == [0, 0, 0, 1, 0, 0, 0, 1]

    def test_interleave_drains_uneven_phases(self):
        phase = syn.interleave_phases(
            [syn.sequential(0, 0, 10, compute=10), syn.sequential(1, 10, 2, compute=10)],
            chunk=1,
        )
        events = run(phase)
        assert len(events) == 12

    def test_chunk_count_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            syn.interleave_phases(
                [syn.sequential(0, 0, 2, compute=10)], chunk=[1, 2]
            )
