"""Structural tests of the vision and microbenchmark models."""

import pytest

from repro import units
from repro.workloads.micro import MICRO_BUFFER_BYTES, make_microbenchmark
from repro.workloads.vision import make_mixed_blood, make_mser, make_sift


class TestMicrobenchmark:
    def test_buffer_is_one_gigabyte(self):
        assert MICRO_BUFFER_BYTES == units.GIB

    def test_full_scale_footprint(self):
        assert make_microbenchmark(1).footprint_pages == 262_144

    def test_purely_sequential_trace(self):
        wl = make_microbenchmark(64)
        pages = [p for _i, p, _c in wl.trace()]
        passes = len(pages) // wl.footprint_pages
        assert passes == 2
        # Each pass is strictly ascending.
        fp = wl.footprint_pages
        for k in range(passes):
            segment = pages[k * fp : (k + 1) * fp]
            assert segment == list(range(fp))


class TestSift:
    def test_pyramid_levels_shrink(self):
        wl = make_sift(32)
        level_names = [n for n in wl.instructions.values() if "level" in n]
        assert len(level_names) >= 3  # a real pyramid

    def test_pyramid_pages_nest(self):
        """Level k+1 touches a subset of level k's pages (the image
        pyramid shrinks in place)."""
        wl = make_sift(32)
        by_level = {}
        for instr, page, _c in wl.trace():
            name = wl.instructions[instr]
            if "level" in name:
                by_level.setdefault(name, set()).add(page)
        levels = sorted(by_level)
        for a, b in zip(levels, levels[1:]):
            assert by_level[b] <= by_level[a]

    def test_descriptor_phase_is_resident_hot(self):
        wl = make_sift(32)
        descriptor_pages = {
            page
            for instr, page, _c in wl.trace()
            if "descriptor" in wl.instructions[instr]
        }
        assert len(descriptor_pages) <= 64


class TestMser:
    def test_has_sort_then_union_find(self):
        wl = make_mser(32)
        instrs = [wl.instructions[i] for i, _p, _c in wl.trace()]
        first_union = instrs.index(
            next(n for n in instrs if "union_find" in n)
        )
        # The sort sweep strictly precedes the union-find phase.
        assert all("sort" in n for n in instrs[:first_union])

    def test_union_find_pool_size_matches_table2(self):
        wl = make_mser(32)
        pool = {n for n in wl.instructions.values() if "union_find" in n}
        assert len(pool) == 54


class TestMixedBlood:
    def test_scan_phase_precedes_detection(self):
        """Section 5.4: 'we sequentially scan an image and then invoke
        MSER' — the phases must be ordered, not interleaved."""
        wl = make_mixed_blood(32)
        kinds = [
            "scan" if "scan" in wl.instructions[i] else "mser"
            for i, _p, _c in wl.trace()
        ]
        last_scan = max(i for i, k in enumerate(kinds) if k == "scan")
        first_mser = min(i for i, k in enumerate(kinds) if k == "mser")
        assert last_scan < first_mser

    def test_comparable_phase_volumes(self):
        """The phases are 'similar' in volume (Section 5.4)."""
        wl = make_mixed_blood(32)
        counts = {"scan": 0, "mser": 0}
        for i, _p, _c in wl.trace():
            key = "scan" if "scan" in wl.instructions[i] else "mser"
            counts[key] += 1
        ratio = counts["scan"] / counts["mser"]
        assert 0.3 < ratio < 3.0
