"""CLI smoke/behaviour tests (fast: tiny scale, short workloads)."""

import pytest

from repro.cli import main

SCALE = ["--scale", "64"]


class TestList:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("lbm", "deepsjeng", "SIFT", "microbenchmark"):
            assert name in out


class TestRun:
    def test_run_baseline(self, capsys):
        assert main(["run", "leela", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "leela" in out and "baseline" in out
        assert "time breakdown" in out

    def test_run_dfp(self, capsys):
        assert main(["run", "lbm", "--scheme", "dfp-stop", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "dfp-stop" in out

    def test_unknown_workload_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "doom", *SCALE])


class TestCompare:
    def test_compare_normalizes_to_baseline(self, capsys):
        assert main(
            ["compare", "lbm", "--schemes", "baseline,dfp-stop", *SCALE]
        ) == 0
        out = capsys.readouterr().out
        assert "vs baseline" in out
        assert "1.000" in out  # baseline row


class TestResilienceFlags:
    """The shared --jobs/--retries/--timeout/--checkpoint/--resume flags."""

    def test_run_with_retries_routes_through_the_runner(self, capsys):
        assert main(["run", "leela", "--retries", "2", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "time breakdown" in out

    def test_run_rejects_metrics_with_resilience(self, capsys):
        assert main(["run", "leela", "--jobs", "2", "--metrics", *SCALE]) == 2
        err = capsys.readouterr().err
        assert "blind" in err

    def test_run_rejects_manifest_with_resilience(self, tmp_path, capsys):
        # A resilient run is blind, so its manifest would lack the
        # metrics section a serial --manifest run records — the two
        # would spuriously diff under 'repro report'.  Rejected like
        # --metrics/--trace rather than silently divergent.
        manifest = str(tmp_path / "m.json")
        assert main(
            ["run", "leela", "--jobs", "2", "--manifest", manifest, *SCALE]
        ) == 2
        err = capsys.readouterr().err
        assert "blind" in err
        assert not (tmp_path / "m.json").exists()

    def test_resume_without_checkpoint_rejected(self, capsys):
        assert main(["run", "leela", "--resume", *SCALE]) == 2
        assert "checkpoint" in capsys.readouterr().err

    def test_compare_accepts_execution_flags(self, capsys):
        assert main(
            [
                "compare", "lbm", "--schemes", "baseline,dfp-stop",
                "--jobs", "2", "--retries", "1", "--timeout", "120", *SCALE,
            ]
        ) == 0
        assert "vs baseline" in capsys.readouterr().out

    def test_sweep_checkpoint_and_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        args = [
            "sweep", "leela", "--param", "load_length", "--values", "1,4",
            "--checkpoint", ckpt, *SCALE,
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert len(list((tmp_path / "ckpt").glob("*.manifest.json"))) == 2
        # The resumed invocation serves both points from the records
        # and renders the identical table.
        assert main([*args, "--resume"]) == 0
        assert capsys.readouterr().out == first


class TestProfile:
    def test_profile_prints_plan(self, capsys):
        assert main(["profile", "MSER", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "instrumentation point" in out
        assert "union_find" in out

    def test_profile_custom_threshold(self, capsys):
        assert main(["profile", "MSER", "--threshold", "0.9", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "0 instrumentation point(s)" in out


class TestClassify:
    def test_classify_selected(self, capsys):
        assert main(["classify", "lbm", "leela", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "regular" in out
        assert "small working set" in out


class TestSweep:
    def test_sweep_load_length(self, capsys):
        assert main(
            [
                "sweep",
                "leela",
                "--param",
                "load_length",
                "--values",
                "1,4",
                *SCALE,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "load_length sweep" in out

    def test_sweep_float_param(self, capsys):
        assert main(
            [
                "sweep",
                "leela",
                "--param",
                "valve_ratio",
                "--values",
                "0.5,0.8",
                *SCALE,
            ]
        ) == 0
