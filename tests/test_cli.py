"""CLI smoke/behaviour tests (fast: tiny scale, short workloads)."""

import pytest

from repro.cli import main

SCALE = ["--scale", "64"]


class TestList:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("lbm", "deepsjeng", "SIFT", "microbenchmark"):
            assert name in out


class TestRun:
    def test_run_baseline(self, capsys):
        assert main(["run", "leela", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "leela" in out and "baseline" in out
        assert "time breakdown" in out

    def test_run_dfp(self, capsys):
        assert main(["run", "lbm", "--scheme", "dfp-stop", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "dfp-stop" in out

    def test_unknown_workload_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "doom", *SCALE])

    def test_run_engine_batched(self, capsys):
        assert main(["run", "leela", "--engine", "batched", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "time breakdown" in out

    def test_run_engine_batched_rejects_observation(self, capsys):
        assert main(
            ["run", "leela", "--engine", "batched", "--metrics", *SCALE]
        ) == 2
        err = capsys.readouterr().err
        assert "observed simulation" in err

    def test_run_engine_rejects_resilience(self, capsys):
        assert main(
            ["run", "leela", "--engine", "scalar", "--jobs", "2", *SCALE]
        ) == 2
        err = capsys.readouterr().err
        assert "--engine" in err


class TestCompare:
    def test_compare_normalizes_to_baseline(self, capsys):
        assert main(
            ["compare", "lbm", "--schemes", "baseline,dfp-stop", *SCALE]
        ) == 0
        out = capsys.readouterr().out
        assert "vs baseline" in out
        assert "1.000" in out  # baseline row


class TestResilienceFlags:
    """The shared --jobs/--retries/--timeout/--checkpoint/--resume flags."""

    def test_run_with_retries_routes_through_the_runner(self, capsys):
        assert main(["run", "leela", "--retries", "2", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "time breakdown" in out

    def test_run_metrics_compose_with_resilience(self, capsys):
        # PR 5: resilient jobs ship their metric dumps back with the
        # result envelope, so --metrics works under any policy.
        assert main(["run", "leela", "--jobs", "2", "--metrics", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "metrics" in out
        assert "app.accesses" in out

    def test_run_manifest_composes_with_resilience(self, tmp_path, capsys):
        # An observed resilient run's manifest records the same metrics
        # section a serial observed run records, plus the execution-
        # telemetry block — 'repro report' renders both.
        import json

        manifest = tmp_path / "m.json"
        assert main(
            ["run", "leela", "--jobs", "2", "--retries", "1",
             "--manifest", str(manifest), *SCALE]
        ) == 0
        document = json.loads(manifest.read_text())
        assert document["metrics"]
        assert document["exec_telemetry"]["schema"] == "repro.exec-telemetry/1"

    def test_run_resilient_manifest_matches_serial_observed(
        self, tmp_path, capsys
    ):
        # Passivity across the process boundary: the run-defining
        # manifest sections of an observed resilient run are byte-
        # identical to a serial observed run's (the exec_telemetry
        # block is extra and digest-excluded).
        import json

        serial = tmp_path / "serial.json"
        resilient = tmp_path / "resilient.json"
        assert main(["run", "leela", "--manifest", str(serial), *SCALE]) == 0
        assert main(
            ["run", "leela", "--jobs", "2", "--retries", "1",
             "--manifest", str(resilient), *SCALE]
        ) == 0
        a = json.loads(serial.read_text())
        b = json.loads(resilient.read_text())
        b.pop("exec_telemetry")
        assert a == b

    def test_run_rejects_resume_with_observation(self, tmp_path, capsys):
        # The one genuinely unsupported combination: checkpoint-
        # restored jobs never re-execute, so they ship no telemetry
        # and the merged dump would silently cover a partial fleet.
        ckpt = str(tmp_path / "ckpt")
        assert main(
            ["run", "leela", "--checkpoint", ckpt, "--resume",
             "--metrics", *SCALE]
        ) == 2
        assert "--resume" in capsys.readouterr().err

    def test_sweep_rejects_resume_with_observation(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        manifest = str(tmp_path / "fleet.json")
        assert main(
            ["sweep", "leela", "--param", "load_length", "--values", "1,4",
             "--checkpoint", ckpt, "--resume", "--manifest", manifest, *SCALE]
        ) == 2
        assert "--resume" in capsys.readouterr().err
        assert not (tmp_path / "fleet.json").exists()

    def test_compare_rejects_resume_with_observation(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        assert main(
            ["compare", "lbm", "--schemes", "baseline,dfp-stop",
             "--checkpoint", ckpt, "--resume", "--metrics", *SCALE]
        ) == 2
        assert "--resume" in capsys.readouterr().err

    def test_resume_without_checkpoint_rejected(self, capsys):
        assert main(["run", "leela", "--resume", *SCALE]) == 2
        assert "checkpoint" in capsys.readouterr().err

    def test_compare_accepts_execution_flags(self, capsys):
        assert main(
            [
                "compare", "lbm", "--schemes", "baseline,dfp-stop",
                "--jobs", "2", "--retries", "1", "--timeout", "120", *SCALE,
            ]
        ) == 0
        assert "vs baseline" in capsys.readouterr().out

    def test_sweep_checkpoint_and_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        args = [
            "sweep", "leela", "--param", "load_length", "--values", "1,4",
            "--checkpoint", ckpt, *SCALE,
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert len(list((tmp_path / "ckpt").glob("*.manifest.json"))) == 2
        # The resumed invocation serves both points from the records
        # and renders the identical table.
        assert main([*args, "--resume"]) == 0
        assert capsys.readouterr().out == first


class TestProfile:
    def test_profile_prints_plan(self, capsys):
        assert main(["profile", "MSER", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "instrumentation point" in out
        assert "union_find" in out

    def test_profile_custom_threshold(self, capsys):
        assert main(["profile", "MSER", "--threshold", "0.9", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "0 instrumentation point(s)" in out

    def test_profile_schemes_renders_profiles_and_diff(self, capsys):
        assert main(
            ["profile", "lbm", "--schemes", "dfp-stop,sip", *SCALE]
        ) == 0
        out = capsys.readouterr().out
        assert "paging profile — lbm / dfp-stop" in out
        assert "paging profile — lbm / sip" in out
        assert "effectiveness diff — dfp-stop vs sip" in out
        assert "preload ledger" in out
        assert "fault attribution" in out

    def test_profile_schemes_writes_validated_artifacts(self, tmp_path, capsys):
        import json

        artifacts = tmp_path / "artifacts"
        assert main(
            ["profile", "lbm", "--schemes", "dfp-stop,sip",
             "--artifacts", str(artifacts), *SCALE]
        ) == 0
        from repro.obs import load_paging_profile, validate_chrome_trace

        profiles = sorted(artifacts.glob("*.paging-profile.json"))
        assert [p.name for p in profiles] == [
            "lbm-dfp-stop.paging-profile.json",
            "lbm-sip.paging-profile.json",
        ]
        for path in profiles:
            load_paging_profile(path)  # validates the block
        traces = sorted(artifacts.glob("*.trace.json"))
        assert len(traces) == 2
        for path in traces:
            counts = validate_chrome_trace(json.loads(path.read_text()))
            assert counts["tracks"] >= 4  # app/channel/scan + residency
        assert sorted(p.name for p in artifacts.glob("*.heatmap.txt")) == [
            "lbm-dfp-stop.heatmap.txt",
            "lbm-sip.heatmap.txt",
        ]

    def test_profile_schemes_json_format(self, capsys):
        import json

        assert main(
            ["profile", "lbm", "--schemes", "dfp-stop,sip",
             "--format", "json", *SCALE]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert set(document["profiles"]) == {"dfp-stop", "sip"}
        assert "sip" in document["diffs"]

    def test_profile_schemes_rejects_unknown_scheme(self, capsys):
        assert main(
            ["profile", "lbm", "--schemes", "dfp-stop,warp", *SCALE]
        ) == 2
        assert "warp" in capsys.readouterr().err


class TestPagingProfileRun:
    """--paging-profile on repro run, and its report rendering."""

    def test_run_writes_profile_and_embeds_manifest_block(
        self, tmp_path, capsys
    ):
        import json

        profile = tmp_path / "run.paging-profile.json"
        manifest = tmp_path / "run.manifest.json"
        assert main(
            ["run", "lbm", "--scheme", "dfp-stop",
             "--paging-profile", str(profile),
             "--manifest", str(manifest), *SCALE]
        ) == 0
        out = capsys.readouterr().out
        assert "paging profile" in out
        assert "precision" in out
        from repro.obs import load_manifest, load_paging_profile

        block = load_paging_profile(profile)
        document = load_manifest(manifest)
        assert document["paging_profile"] == json.loads(
            json.dumps(block)
        )

    def test_profiled_manifest_bytes_match_blind_run(self, tmp_path, capsys):
        # Passivity through the CLI: everything but the embedded block
        # is byte-identical, and the digest ignores the block.
        import json

        blind = tmp_path / "blind.json"
        observed = tmp_path / "observed.json"
        assert main(["run", "lbm", "--manifest", str(blind), *SCALE]) == 0
        assert main(
            ["run", "lbm", "--manifest", str(observed),
             "--paging-profile", str(tmp_path / "p.json"), *SCALE]
        ) == 0
        a = json.loads(blind.read_text())
        b = json.loads(observed.read_text())
        b.pop("paging_profile")
        assert a == b

    def test_run_rejects_profiling_with_resilience(self, tmp_path, capsys):
        assert main(
            ["run", "lbm", "--jobs", "2",
             "--paging-profile", str(tmp_path / "p.json"), *SCALE]
        ) == 2
        assert "--paging-profile" in capsys.readouterr().err
        assert not (tmp_path / "p.json").exists()

    def test_report_diffs_two_profiled_manifests(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main(
            ["run", "lbm", "--scheme", "dfp-stop", "--manifest", str(a),
             "--paging-profile", str(tmp_path / "pa.json"), *SCALE]
        ) == 0
        assert main(
            ["run", "lbm", "--scheme", "sip", "--manifest", str(b),
             "--paging-profile", str(tmp_path / "pb.json"), *SCALE]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "effectiveness diff — dfp-stop vs sip" in out

    def test_report_renders_single_profiled_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        assert main(
            ["run", "lbm", "--manifest", str(manifest),
             "--paging-profile", str(tmp_path / "p.json"), *SCALE]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "paging profile" in out
        assert "phase(s)" in out


class TestOpenMetrics:
    def test_run_metrics_openmetrics_format(self, capsys):
        assert main(
            ["run", "leela", "--metrics",
             "--metrics-format", "openmetrics", *SCALE]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_app_accesses gauge" in out
        assert out.rstrip().endswith("# EOF")

    def test_fleet_metrics_openmetrics_format(self, capsys):
        assert main(
            ["compare", "lbm", "--schemes", "baseline,dfp-stop",
             "--jobs", "2", "--metrics",
             "--metrics-format", "openmetrics", *SCALE]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_app_accesses gauge" in out
        assert "# EOF" in out


class TestTraceDropWarning:
    def test_overflowing_ring_buffer_warns_on_stderr(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main(
            ["run", "lbm", "--scheme", "dfp-stop",
             "--trace", str(trace), "--trace-capacity", "64", *SCALE]
        ) == 0
        err = capsys.readouterr().err
        assert "dropped" in err
        assert "--trace-capacity" in err

    def test_no_warning_when_nothing_dropped(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main(["run", "leela", "--trace", str(trace), *SCALE]) == 0
        assert "dropped" not in capsys.readouterr().err


class TestClassify:
    def test_classify_selected(self, capsys):
        assert main(["classify", "lbm", "leela", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "regular" in out
        assert "small working set" in out


class TestSweep:
    def test_sweep_load_length(self, capsys):
        assert main(
            [
                "sweep",
                "leela",
                "--param",
                "load_length",
                "--values",
                "1,4",
                *SCALE,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "load_length sweep" in out

    def test_sweep_float_param(self, capsys):
        assert main(
            [
                "sweep",
                "leela",
                "--param",
                "valve_ratio",
                "--values",
                "0.5,0.8",
                *SCALE,
            ]
        ) == 0


class TestFleetObservation:
    """--metrics/--trace/--manifest on compare/sweep (PR 5)."""

    def test_compare_metrics_merged_across_schemes(self, capsys):
        assert main(
            ["compare", "lbm", "--schemes", "baseline,dfp-stop",
             "--jobs", "2", "--metrics", *SCALE]
        ) == 0
        out = capsys.readouterr().out
        assert "vs baseline" in out
        assert "metrics (merged across jobs)" in out

    def test_sweep_writes_fleet_manifest_and_exec_trace(self, tmp_path, capsys):
        import json

        manifest = tmp_path / "fleet.json"
        trace = tmp_path / "exec.trace.json"
        assert main(
            ["sweep", "leela", "--param", "load_length", "--values", "1,4",
             "--jobs", "2", "--retries", "1", "--metrics",
             "--trace", str(trace), "--manifest", str(manifest), *SCALE]
        ) == 0
        from repro.obs import load_manifest, validate_chrome_trace

        document = load_manifest(manifest)  # validates both schemas
        assert document["run"]["runs"] == 2
        assert document["exec_telemetry"]["jobs"]["total"] == 2
        counts = validate_chrome_trace(json.loads(trace.read_text()))
        assert counts["tracks"] >= 5  # app/channel/scan + runner + worker(s)

    def test_report_renders_single_fleet_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "fleet.json"
        assert main(
            ["sweep", "leela", "--param", "load_length", "--values", "1,4",
             "--jobs", "2", "--manifest", str(manifest), *SCALE]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "execution telemetry (fleet)" in out
        assert "totals:" in out

    def test_sweep_fleet_manifest_deterministic(self, tmp_path, capsys):
        args = lambda name: [
            "sweep", "leela", "--param", "load_length", "--values", "1,4",
            "--jobs", "2", "--retries", "1", "--metrics",
            "--manifest", str(tmp_path / name), *SCALE,
        ]
        assert main(args("a.json")) == 0
        assert main(args("b.json")) == 0
        assert (tmp_path / "a.json").read_bytes() == (
            tmp_path / "b.json"
        ).read_bytes()


class TestFleet:
    def test_list_scenarios(self, capsys):
        assert main(["fleet", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("smoke", "steady-8", "churn-50"):
            assert name in out

    def test_smoke_scenario_renders_qos_table(self, capsys):
        assert main(["fleet", "smoke", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "fleet scenario 'smoke'" in out
        assert "fault p99" in out
        assert "admitted" in out

    def test_policy_comparison_table(self, capsys):
        assert main(
            ["fleet", "smoke",
             "--policies", "shared-clock,static-partition,adaptive-quota"]
        ) == 0
        out = capsys.readouterr().out
        assert "under 3 EPC policies" in out
        for policy in ("shared-clock", "static-partition", "adaptive-quota"):
            assert policy in out

    def test_manifest_roundtrips_through_report(self, tmp_path, capsys):
        manifest = tmp_path / "fleet.json"
        assert main(
            ["fleet", "smoke", "--manifest", str(manifest)]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "fleet scenario 'smoke'" in out

    def test_json_format_emits_the_manifest(self, capsys):
        import json

        assert main(["fleet", "smoke", "--format", "json"]) == 0
        manifest = json.loads(capsys.readouterr().out)
        fleet = manifest["extra"]["fleet"]
        assert fleet["schema"] == "repro.fleet-manifest/1"
        assert fleet["scenario"]["name"] == "smoke"

    def test_fleet_runs_are_byte_identical(self, tmp_path, capsys):
        for name in ("a.json", "b.json"):
            assert main(
                ["fleet", "smoke", "--seed", "9",
                 "--manifest", str(tmp_path / name)]
            ) == 0
        capsys.readouterr()
        assert (tmp_path / "a.json").read_bytes() == (
            tmp_path / "b.json"
        ).read_bytes()

    def test_scenario_name_required(self, capsys):
        assert main(["fleet"]) == 2
        assert "scenario" in capsys.readouterr().err

    def test_unknown_scenario_rejected(self, capsys):
        assert main(["fleet", "warehouse-9000"]) == 2
        assert "warehouse-9000" in capsys.readouterr().err

    def test_policy_and_policies_conflict(self, capsys):
        assert main(
            ["fleet", "smoke", "--policy", "shared-clock",
             "--policies", "shared-clock,adaptive-quota"]
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_policies_with_manifest_rejected(self, capsys):
        assert main(
            ["fleet", "smoke", "--policies", "shared-clock,adaptive-quota",
             "--manifest", "out.json"]
        ) == 2
        assert "--manifest" in capsys.readouterr().err

    def test_timeseries_renders_sparklines_and_thrash(self, capsys):
        assert main(["fleet", "smoke", "--timeseries"]) == 0
        out = capsys.readouterr().out
        assert "fleet timeseries:" in out
        assert "faults/window" in out
        assert "thrash windows" in out

    def test_slo_implies_timeseries_and_renders_breaches(self, capsys):
        assert main(
            ["fleet", "smoke", "--slo", "fault_rate=0.01,wait_p99=1000"]
        ) == 0
        out = capsys.readouterr().out
        assert "fleet timeseries:" in out
        assert "SLO [" in out

    def test_bad_slo_spec_rejected(self, capsys):
        assert main(["fleet", "smoke", "--slo", "bogus=1"]) == 2
        assert "SLO" in capsys.readouterr().err

    def test_trace_and_openmetrics_artifacts(self, tmp_path, capsys):
        import json

        trace = tmp_path / "fleet.trace.json"
        metrics = tmp_path / "fleet.om"
        assert main(
            ["fleet", "smoke", "--trace", str(trace),
             "--openmetrics", str(metrics)]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote chrome trace" in out
        assert "wrote openmetrics" in out
        document = json.loads(trace.read_text())
        assert any(e["ph"] == "C" for e in document["traceEvents"])
        text = metrics.read_text()
        assert text.endswith("# EOF\n")
        assert "repro_tenant_faults{" in text

    def test_timeseries_manifest_matches_blind_manifest(self, tmp_path, capsys):
        import json

        blind = tmp_path / "blind.json"
        observed = tmp_path / "observed.json"
        assert main(["fleet", "smoke", "--manifest", str(blind)]) == 0
        assert main(
            ["fleet", "smoke", "--timeseries", "--manifest", str(observed)]
        ) == 0
        capsys.readouterr()
        a = json.loads(blind.read_text())
        b = json.loads(observed.read_text())
        block = b.pop("fleet_timeseries")
        assert block["schema"] == "repro.fleet-timeseries/1"
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_report_renders_embedded_timeseries(self, tmp_path, capsys):
        manifest = tmp_path / "fleet.json"
        assert main(
            ["fleet", "smoke", "--timeseries", "--manifest", str(manifest)]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "fleet timeseries:" in out
        assert "thrash windows" in out

    def test_observation_flags_conflict_with_policies(self, capsys):
        assert main(
            ["fleet", "smoke", "--policies", "shared-clock,adaptive-quota",
             "--timeseries"]
        ) == 2
        assert "--timeseries" in capsys.readouterr().err

    def test_window_cycles_implies_timeseries(self, capsys):
        assert main(["fleet", "smoke", "--window-cycles", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "fleet timeseries:" in out
