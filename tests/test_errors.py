"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.ConfigError,
        errors.EpcError,
        errors.ChannelError,
        errors.WorkloadError,
        errors.InstrumentationError,
        errors.SimulationError,
    ],
)
def test_all_errors_derive_from_base(exc):
    assert issubclass(exc, errors.ReproError)
    assert issubclass(exc, Exception)


def test_catching_base_catches_specific():
    with pytest.raises(errors.ReproError):
        raise errors.EpcError("boom")
