"""The exception hierarchy: everything derives from ReproError."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.ConfigError,
        errors.EpcError,
        errors.ChannelError,
        errors.WorkloadError,
        errors.InstrumentationError,
        errors.SimulationError,
        errors.ParallelExecutionError,
        errors.JobTimeoutError,
        errors.JobRetriesExhaustedError,
        errors.ResultIntegrityError,
        errors.CheckpointError,
    ],
)
def test_all_errors_derive_from_base(exc):
    assert issubclass(exc, errors.ReproError)
    assert issubclass(exc, Exception)


def test_catching_base_catches_specific():
    with pytest.raises(errors.ReproError):
        raise errors.EpcError("boom")


@pytest.mark.parametrize(
    "exc",
    [
        errors.JobTimeoutError,
        errors.JobRetriesExhaustedError,
        errors.ResultIntegrityError,
    ],
)
def test_job_failures_are_parallel_execution_errors(exc):
    # Pre-resilience callers catching ParallelExecutionError keep
    # working: every per-job failure mode stays inside the family.
    assert issubclass(exc, errors.ParallelExecutionError)


def test_parallel_errors_carry_job_and_attempts():
    err = errors.JobRetriesExhaustedError(
        "gave up", job="lbm/dfp", attempts=3
    )
    assert err.job == "lbm/dfp"
    assert err.attempts == 3
    # The attempt count defaults to one for single-shot failures.
    assert errors.ParallelExecutionError("boom").attempts == 1
