"""Unit tests for :mod:`repro.units`."""

import pytest

from repro import units
from repro.errors import ReproError


class TestPagesOf:
    def test_zero_bytes_is_zero_pages(self):
        assert units.pages_of(0) == 0

    def test_one_byte_needs_one_page(self):
        assert units.pages_of(1) == 1

    def test_exact_page(self):
        assert units.pages_of(units.PAGE_SIZE) == 1

    def test_one_over_page_rounds_up(self):
        assert units.pages_of(units.PAGE_SIZE + 1) == 2

    def test_one_gib(self):
        assert units.pages_of(units.GIB) == 262_144

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.pages_of(-1)


class TestBytesOf:
    def test_round_trip(self):
        assert units.bytes_of(units.pages_of(units.MIB)) == units.MIB

    def test_zero(self):
        assert units.bytes_of(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.bytes_of(-3)


class TestPageNumber:
    def test_bottom_bits_cleared(self):
        assert units.page_number(0xABC) == 0
        assert units.page_number(units.PAGE_SIZE) == 1
        assert units.page_number(units.PAGE_SIZE * 7 + 123) == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.page_number(-1)


class TestEpcConstants:
    def test_usable_epc_is_96_mb(self):
        """Section 1: ~96 MB usable of the 128 MB reserved."""
        assert units.EPC_USABLE_BYTES == 96 * units.MIB
        assert units.pages_of(units.EPC_USABLE_BYTES) == 24_576

    def test_reserved_epc_is_128_mb(self):
        assert units.EPC_TOTAL_BYTES == 128 * units.MIB


class TestCyclesToSeconds:
    def test_platform_frequency(self):
        """3.5 GHz: 3.5e9 cycles is one second."""
        assert units.cycles_to_seconds(3_500_000_000) == pytest.approx(1.0)

    def test_fault_cost_in_microseconds(self):
        """An enclave fault (~64k cycles) is ~18 microseconds."""
        assert units.cycles_to_seconds(64_000) == pytest.approx(18.3e-6, rel=0.01)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            units.cycles_to_seconds(1000, ghz=0)
