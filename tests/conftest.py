"""Shared fixtures for the test suite.

Tests run against deliberately tiny configurations: a 64-frame EPC and
short traces keep each test in the low milliseconds while exercising
the same code paths (faults, eviction, preload bursts, valve, SIP) the
full-scale experiments use.
"""

from __future__ import annotations

from typing import Iterator, List, Mapping

import pytest

from repro.core.config import CostModel, SimConfig
from repro.workloads.base import SyntheticWorkload, TraceEvent, Workload


@pytest.fixture
def tiny_config() -> SimConfig:
    """A 64-frame EPC with fast scans, paper cost constants."""
    return SimConfig(
        epc_pages=64,
        stream_list_length=8,
        load_length=4,
        scan_period_cycles=200_000,
        valve_slack=16,
        valve_ratio=0.8,
    )


@pytest.fixture
def bench_config() -> SimConfig:
    """The scaled config the benches use (factor 16)."""
    return SimConfig.scaled(16)


class ScriptedWorkload(Workload):
    """A workload that replays an explicit list of events (tests only)."""

    def __init__(
        self,
        events: List[TraceEvent],
        *,
        name: str = "scripted",
        footprint_pages: int | None = None,
        instructions: Mapping[int, str] | None = None,
    ) -> None:
        pages = [page for _i, page, _c in events]
        footprint = footprint_pages or (max(pages) + 1 if pages else 1)
        super().__init__(name, footprint)
        self._events = list(events)
        if instructions is None:
            instructions = {i: f"instr{i}" for i, _p, _c in events}
        self._instructions = dict(instructions)

    @property
    def instructions(self) -> Mapping[int, str]:
        return self._instructions

    def trace(self, *, seed: int = 0, input_set: str = "ref") -> Iterator[TraceEvent]:
        self._check_input_set(input_set)
        return iter(self._events)


@pytest.fixture
def scripted_workload_factory():
    """Factory building :class:`ScriptedWorkload` from event lists."""
    return ScriptedWorkload


def make_sequential_events(
    npages: int, *, instr: int = 0, compute: int = 5_000, passes: int = 1
) -> List[TraceEvent]:
    """Events for a simple sequential scan (helper for tests)."""
    return [
        (instr, page, compute) for _ in range(passes) for page in range(npages)
    ]


@pytest.fixture
def tiny_seq_workload() -> SyntheticWorkload:
    """A 128-page sequential scan over a 64-frame EPC (always faults)."""
    from repro.workloads.synthetic import sequential

    return SyntheticWorkload(
        "tiny-seq",
        128,
        {0: "scan"},
        [sequential(0, 0, 128, compute=5_000, passes=2, salt=1)],
    )
