"""perf_bench headline selection: the faster leg wins, both legs ship."""

import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parents[2] / "tools"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

import perf_bench  # noqa: E402


def legs(scalar_rps, batched_rps):
    return {
        "scalar": {"runs_per_sec": scalar_rps},
        "batched": {"runs_per_sec": batched_rps},
    }


class TestPickHeadline:
    def test_batched_wins_when_faster(self):
        assert perf_bench.pick_headline(legs(5.0, 6.0)) == "batched"

    def test_scalar_wins_when_batched_regresses(self):
        """The fix: a batched_speedup below 1 must not headline the
        batched leg — --compare would gate the wrong engine."""
        assert perf_bench.pick_headline(legs(8.5, 8.0)) == "scalar"

    def test_tie_goes_to_batched(self):
        # engine="auto" runs the batched engine, so it wins ties.
        assert perf_bench.pick_headline(legs(5.0, 5.0)) == "batched"


class TestCompareReports:
    def test_headline_rows_gate_the_faster_leg(self):
        old = {
            "engine": {
                "dfp": {
                    "runs_per_sec": 5.4,
                    "scalar": {"runs_per_sec": 5.4},
                    "batched": {"runs_per_sec": 5.2},
                    "batched_speedup": 0.96,
                }
            }
        }
        new = {
            "engine": {
                "dfp": {
                    "runs_per_sec": 2.0,  # regressed headline
                    "scalar": {"runs_per_sec": 2.0},
                    "batched": {"runs_per_sec": 1.9},
                    "batched_speedup": 0.95,
                }
            }
        }
        rows = perf_bench.compare_reports(old, new, tolerance=0.5)
        regressed = {label for label, _, _, flag in rows if flag}
        assert "engine.dfp.runs_per_sec" in regressed
