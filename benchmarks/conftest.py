"""Shared infrastructure for the reproduction benchmarks.

Every module in this tree regenerates one table or figure of the
paper's evaluation.  Conventions:

* experiments run at ``SCALE = 16`` (EPC 1,536 pages ≈ 6 MB) with the
  paper's cycle costs; all reported quantities are *normalized*, so
  the scaled system preserves the paper's relative shapes (DESIGN.md
  §6);
* each test drives its experiment inside ``benchmark.pedantic(...)``
  (so ``pytest benchmarks/ --benchmark-only`` both runs and times it),
  prints the paper-style rows/series, asserts the qualitative shape,
  and appends the rendered output to ``benchmarks/reports/``;
* baseline runs are cached per (workload, scheme, config) across the
  session — the baselines of Figure 7 are the baselines of Figure 8.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Optional, Tuple

import pytest

from repro.core.config import SimConfig
from repro.core.instrumentation import SipPlan
from repro.obs.paging import PagingProfiler, validate_paging_profile
from repro.sim.engine import prepare_sip_plan, simulate
from repro.sim.results import RunResult
from repro.workloads.base import Workload
from repro.workloads.registry import build_workload

#: Scale factor for every experiment in this tree.
SCALE = 16

#: Where rendered figure/table text is written.
REPORT_DIR = pathlib.Path(__file__).parent / "reports"

_RUN_CACHE: Dict[Tuple, RunResult] = {}
_PLAN_CACHE: Dict[Tuple, SipPlan] = {}
_WORKLOAD_CACHE: Dict[Tuple[str, int], Workload] = {}
_PROFILE_CACHE: Dict[Tuple, Dict[str, object]] = {}


def bench_config(**overrides) -> SimConfig:
    """The standard scaled configuration, optionally overridden."""
    config = SimConfig.scaled(SCALE)
    if overrides:
        config = config.replace(**overrides)
    return config


def get_workload(name: str, scale: int = SCALE) -> Workload:
    key = (name, scale)
    if key not in _WORKLOAD_CACHE:
        _WORKLOAD_CACHE[key] = build_workload(name, scale=scale)
    return _WORKLOAD_CACHE[key]


def get_sip_plan(
    name: str, config: Optional[SimConfig] = None, threshold: Optional[float] = None
) -> SipPlan:
    config = config or bench_config()
    key = (name, config.epc_pages, threshold if threshold is not None else config.sip_threshold)
    if key not in _PLAN_CACHE:
        _PLAN_CACHE[key] = prepare_sip_plan(
            get_workload(name), config, threshold=threshold
        )
    return _PLAN_CACHE[key]


def run(
    name: str,
    scheme: str,
    config: Optional[SimConfig] = None,
    *,
    seed: int = 0,
    threshold: Optional[float] = None,
) -> RunResult:
    """Run (or fetch the cached run of) one workload under one scheme."""
    config = config or bench_config()
    key = (name, scheme, seed, threshold, config)
    if key not in _RUN_CACHE:
        plan = None
        if scheme in ("sip", "hybrid"):
            plan = get_sip_plan(name, config, threshold)
        _RUN_CACHE[key] = simulate(
            get_workload(name), config, scheme, seed=seed, sip_plan=plan
        )
    return _RUN_CACHE[key]


def paging_profile(
    name: str,
    scheme: str,
    config: Optional[SimConfig] = None,
    *,
    seed: int = 0,
    threshold: Optional[float] = None,
) -> Dict[str, object]:
    """The validated paging profile of one (cached) run.

    Re-runs the simulation with a :class:`PagingProfiler` attached and
    asserts the observed result equals the blind cached run — every
    figure that reports effectiveness numbers doubles as a passivity
    check — then returns the ``repro.paging-profile/1`` block.
    """
    config = config or bench_config()
    key = (name, scheme, seed, threshold, config)
    if key not in _PROFILE_CACHE:
        plan = None
        if scheme in ("sip", "hybrid"):
            plan = get_sip_plan(name, config, threshold)
        profiler = PagingProfiler()
        observed = simulate(
            get_workload(name), config, scheme,
            seed=seed, sip_plan=plan, profiler=profiler,
        )
        blind = run(name, scheme, config, seed=seed, threshold=threshold)
        assert observed == blind, f"profiler perturbed {name}/{scheme}"
        block = profiler.profile()
        validate_paging_profile(block)
        _PROFILE_CACHE[key] = block
    return _PROFILE_CACHE[key]


def report(experiment: str, text: str) -> None:
    """Print a rendered figure/table and persist it for EXPERIMENTS.md."""
    print()
    print(text)
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{experiment}.txt"
    path.write_text(text + "\n")


def report_manifests(
    experiment: str,
    runs: Dict[str, RunResult],
    *,
    extra: Optional[Dict[str, object]] = None,
) -> pathlib.Path:
    """Persist the runs behind one figure as a manifest collection.

    Writes ``reports/{experiment}.manifest.json`` holding one run
    manifest (:mod:`repro.obs.manifest`) per labelled run, so every
    reported number can be re-derived or diffed (``repro report``
    accepts the per-run files written by ``repro run --manifest``; the
    collection here carries the same schema per entry).
    """
    from repro.obs.manifest import build_manifest

    REPORT_DIR.mkdir(exist_ok=True)
    document = {
        "experiment": experiment,
        "runs": {
            label: build_manifest(result, extra=extra)
            for label, result in sorted(runs.items())
        },
    }
    path = REPORT_DIR / f"{experiment}.manifest.json"
    path.write_text(
        json.dumps(document, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return path


@pytest.fixture(scope="session", autouse=True)
def _report_dir():
    REPORT_DIR.mkdir(exist_ok=True)
    yield
