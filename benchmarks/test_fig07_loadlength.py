"""Figure 7: normalized execution time vs ``LOADLENGTH``.

The paper preloads 1, 2, 4, 8 or 16 pages per stream hit across its
seven large-footprint benchmarks and finds that beyond 4 pages some
irregular benchmarks (mcf, deepsjeng) lose substantially — a longer
speculative burst occupies the exclusive load channel longer and
pollutes the EPC harder when the prediction is wrong.  LOADLENGTH=4
becomes the default.

Shape asserted here: the regular benchmarks tolerate (or enjoy) long
bursts, while for mcf and deepsjeng LOADLENGTH 16 is clearly worse
than LOADLENGTH 4, and 4 is never far from the per-benchmark best.
"""

from repro.analysis.report import render_series
from repro.sim.results import normalized_time

from benchmarks.conftest import bench_config, report, run

LOADLENGTHS = (1, 2, 4, 8, 16)
#: The paper's seven large-memory-footprint benchmarks.
BENCHMARKS = ("bwaves", "lbm", "wrf", "roms", "mcf", "deepsjeng", "omnetpp")


def test_fig07_loadlength(benchmark):
    def experiment():
        grid = {}
        for name in BENCHMARKS:
            base = run(name, "baseline")
            for load_length in LOADLENGTHS:
                config = bench_config(load_length=load_length)
                # Figure 7 studies raw DFP behaviour (the valve is the
                # later Figure 8 refinement); the per-burst in-stream
                # abort is always active.
                result = run(name, "dfp", config)
                grid[(name, load_length)] = normalized_time(result, base)
        return grid

    grid = benchmark.pedantic(experiment, rounds=1, iterations=1)

    series = {
        name: [(ll, grid[(name, ll)]) for ll in LOADLENGTHS]
        for name in BENCHMARKS
    }
    text = render_series(
        series,
        title=(
            "Figure 7: normalized execution time vs pages preloaded per burst\n"
            "baseline = no preloading; paper: substantial loss beyond 4 for\n"
            "mcf and deepsjeng; 4 chosen as the default"
        ),
    )
    report("fig07_loadlength", text)

    for name in ("mcf", "deepsjeng"):
        assert grid[(name, 16)] > grid[(name, 4)], name
        assert grid[(name, 16)] > 1.05, name
    # Irregular overhead grows monotonically with the burst length —
    # a longer speculative burst means a longer channel occupation and
    # more EPC pollution per misprediction.
    for name in ("roms", "deepsjeng", "omnetpp"):
        assert grid[(name, 16)] > grid[(name, 8)] > grid[(name, 4)], name
    # For the regular benchmarks the default is essentially optimal
    # (they are channel-bound: burst length barely matters).
    for name in ("bwaves", "lbm", "wrf"):
        best = min(grid[(name, ll)] for ll in LOADLENGTHS)
        assert grid[(name, 4)] <= best + 0.02, name
        assert grid[(name, 4)] < 1.0, name
