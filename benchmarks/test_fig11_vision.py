"""Figure 11: the two real-world vision applications.

Section 5.3: SIFT (sequential-heavy, medical-imaging feature
extraction) is the DFP candidate and gains 9.5%; MSER (irregular
union-find blob detection) is the SIP candidate and gains 3.0%.
Profiles come from one sample image (train input); measurements use
different images (ref input).
"""

from repro.analysis.report import ascii_bar_chart, format_table
from repro.sim.results import improvement_pct, normalized_time

from benchmarks.conftest import get_sip_plan, report, run


def test_fig11_vision(benchmark):
    def experiment():
        sift_base = run("SIFT", "baseline")
        sift = run("SIFT", "dfp-stop")
        mser_base = run("MSER", "baseline")
        mser = run("MSER", "sip")
        return sift_base, sift, mser_base, mser

    sift_base, sift, mser_base, mser = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    sift_gain = improvement_pct(sift, sift_base)
    mser_gain = improvement_pct(mser, mser_base)

    table = format_table(
        ["application", "scheme", "improvement", "paper"],
        [
            ["SIFT", "DFP", f"{sift_gain:+.1f}%", "+9.5%"],
            ["MSER", "SIP", f"{mser_gain:+.1f}%", "+3.0%"],
        ],
        title="Figure 11: real-world vision applications (SD-VBS)",
    )
    chart = ascii_bar_chart(
        {
            "SIFT (DFP)": normalized_time(sift, sift_base),
            "MSER (SIP)": normalized_time(mser, mser_base),
        },
        title="normalized execution time (1.0 = no preloading)",
        reference=1.0,
    )
    report("fig11_vision", table + "\n\n" + chart)

    # SIFT: sequential-heavy, DFP's candidate, the larger gain.
    assert sift_gain > 5
    # MSER: irregular, SIP's candidate, positive but smaller.
    assert mser_gain > 1
    assert sift_gain > mser_gain
    # The profiling story behind the assignment (Section 5.3): SIFT
    # shows no SIP-instrumentable sites, MSER shows many.
    assert get_sip_plan("SIFT").instrumentation_points == 0
    assert get_sip_plan("MSER").instrumentation_points >= 45
