"""Figure 10: performance improvement achieved by SIP.

Methodology reproduced exactly (Section 5.2): the SIP plan is compiled
from a profiling run on the *train* input; performance is collected on
the *ref* input.  Fortran benchmarks (bwaves, roms, wrf) and omnetpp
are excluded — the paper's instrumentation tool does not support them.

Paper numbers: deepsjeng +9.0%, mcf.2006 +4.9%; lbm and the
microbenchmark have no irregular accesses (0 instrumentation points,
no change); mcf is a wash — the benefit of converting its Class 3
faults is offset by the BIT_MAP_CHECK cost on its Class 1 majority.
"""

from repro.analysis.report import format_table
from repro.sim.results import improvement_pct

from benchmarks.conftest import (
    get_sip_plan,
    paging_profile,
    report,
    report_manifests,
    run,
)

BENCHMARKS = ("deepsjeng", "mcf.2006", "mcf", "xz", "lbm", "microbenchmark")

PAPER = {
    "deepsjeng": "+9.0%",
    "mcf.2006": "+4.9%",
    "mcf": "~0 (wash)",
    "xz": "(small gain)",
    "lbm": "0 (no points)",
    "microbenchmark": "0 (no points)",
}


def test_fig10_sip(benchmark):
    def experiment():
        rows = {}
        for name in BENCHMARKS:
            base = run(name, "baseline")
            sip = run(name, "sip")
            plan = get_sip_plan(name)
            rows[name] = (
                improvement_pct(sip, base),
                plan.instrumentation_points,
                base.stats.faults,
                sip.stats.faults,
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # Refault share of the remaining faults, from the paging ledger
    # (the profiled re-run doubles as a passivity check in conftest).
    profiles = {name: paging_profile(name, "sip") for name in BENCHMARKS}
    table = format_table(
        ["benchmark", "SIP", "points", "faults before", "faults after",
         "refault rate", "paper"],
        [
            [
                name,
                f"{rows[name][0]:+.1f}%",
                rows[name][1],
                f"{rows[name][2]:,}",
                f"{rows[name][3]:,}",
                f"{profiles[name]['effectiveness']['refault_rate']:.3f}",
                PAPER[name],
            ]
            for name in BENCHMARKS
        ],
        title=(
            "Figure 10: SIP improvement over no preloading\n"
            "(profiled on train input, measured on ref input)"
        ),
    )
    report("fig10_sip", table)
    report_manifests(
        "fig10_sip",
        {
            f"{name}/{scheme}": run(name, scheme)  # cached — no re-simulation
            for name in BENCHMARKS
            for scheme in ("baseline", "sip")
        },
    )

    gains = {name: rows[name][0] for name in BENCHMARKS}
    # deepsjeng is SIP's best case; mcf.2006 clearly positive.
    assert gains["deepsjeng"] > 5
    assert gains["deepsjeng"] == max(gains[n] for n in ("deepsjeng", "mcf.2006", "mcf"))
    assert gains["mcf.2006"] > 2
    # mcf is a wash: conversions vs check overhead cancel out.
    assert -4 < gains["mcf"] < 4
    # No instrumentation points -> bit-identical runs.
    for name in ("lbm", "microbenchmark"):
        assert rows[name][1] == 0, name
        assert abs(gains[name]) < 0.01, name
    # The paper: deepsjeng/mcf.2006 fault counts drop by >70% after SIP.
    for name in ("deepsjeng", "mcf.2006"):
        before, after = rows[name][2], rows[name][3]
        assert after < 0.3 * before, name
    # The ledger reconciles with the figure's own fault column, and
    # SIP issues no speculative preloads (its loads are synchronous),
    # so the profile reports zero completed preloads everywhere.
    for name in BENCHMARKS:
        totals = profiles[name]["totals"]
        assert totals["faults"] == rows[name][3], name
        assert totals["preloads"]["completed"] == 0, name
