"""Figure 3: representative page-access patterns.

The paper instruments bwaves, deepsjeng and lbm, plots page number
against access index, and observes: bwaves (a) and lbm (c) evidently
sequential, deepsjeng (b) near random.  This bench regenerates the
underlying (index, page) series from the workload models, runs the
offline characterization, and renders a coarse ASCII scatter per
benchmark.
"""

from repro.analysis.patterns import characterize_trace
from repro.analysis.report import format_table

from benchmarks.conftest import bench_config, get_workload, report

BENCHMARKS = ("bwaves", "deepsjeng", "lbm")
SAMPLES = 12_000


def _series(name):
    pages = []
    for _i, page, _c in get_workload(name).trace(input_set="train"):
        pages.append(page)
        if len(pages) >= SAMPLES:
            break
    return pages


def _ascii_scatter(pages, *, rows=12, cols=64):
    """Coarse character scatter of page (y) vs access index (x)."""
    max_page = max(pages) + 1
    grid = [[" "] * cols for _ in range(rows)]
    for index, page in enumerate(pages):
        x = index * cols // len(pages)
        y = rows - 1 - (page * rows // max_page)
        grid[y][x] = "*"
    frame = ["  +" + "-" * cols + "+"]
    body = [f"  |{''.join(row)}|" for row in grid]
    return "\n".join(frame + body + frame)


def test_fig03_patterns(benchmark):
    def experiment():
        return {name: _series(name) for name in BENCHMARKS}

    series = benchmark.pedantic(experiment, rounds=1, iterations=1)
    summaries = {name: characterize_trace(pages) for name, pages in series.items()}

    blocks = ["Figure 3: representative memory access patterns (page vs time)"]
    for name in BENCHMARKS:
        summary = summaries[name]
        verdict = "sequential" if summary.looks_sequential else "irregular"
        blocks.append("")
        blocks.append(f"{name} — {verdict}")
        blocks.append(_ascii_scatter(series[name]))
    blocks.append("")
    blocks.append(
        format_table(
            ["benchmark", "stream coverage", "max run", "verdict", "paper"],
            [
                [
                    name,
                    f"{summaries[name].stream_coverage:.2f}",
                    summaries[name].max_run_length,
                    "sequential" if summaries[name].looks_sequential else "irregular",
                    "sequential" if name in ("bwaves", "lbm") else "irregular",
                ]
                for name in BENCHMARKS
            ],
        )
    )
    report("fig03_patterns", "\n".join(blocks))

    # The paper's reading of the three plots:
    assert summaries["bwaves"].looks_sequential
    assert summaries["lbm"].looks_sequential
    assert not summaries["deepsjeng"].looks_sequential
    # And quantitatively far apart, not borderline.
    assert summaries["lbm"].stream_coverage > 2 * summaries["deepsjeng"].stream_coverage
