"""Related-work comparison: preloading vs user-level paging (Section 6).

The paper positions DFP/SIP against Eleos/CoSMIX-style user-level
paging: the latter avoids *all* world switches and even the hardware
load path, but (1) cannot keep the hardware's security guarantees,
(2) taxes every access with software translation, and (3) spends EPC
on its own runtime.  The paper also notes the approaches compose: its
preloading could be layered on their load path.

This bench measures the quantitative halves of that argument on three
representative workloads:

* a thrashing streamer (lbm) — user paging wins big on raw time, as
  Eleos reports, because its swap is ~4x cheaper than a fault;
* an irregular benchmark (deepsjeng) — both help; user paging more
  (every miss cheapens), SIP less but with hardware security intact;
* a hit-dominated benchmark (leela, small working set) — user paging
  is a net tax: whole-program translation checks with almost nothing
  to convert.
"""

from repro.analysis.report import format_table
from repro.core.userpaging import UserPagingModel, simulate_user_paging
from repro.sim.results import improvement_pct

from benchmarks.conftest import bench_config, get_workload, report, run

CASES = (
    ("lbm", "dfp-stop"),
    ("deepsjeng", "sip"),
    ("leela", "dfp-stop"),
)


def test_comparison_userpaging(benchmark):
    config = bench_config()
    model = UserPagingModel()

    def experiment():
        rows = {}
        for name, paper_scheme in CASES:
            base = run(name, "baseline")
            ours = run(name, paper_scheme)
            user = simulate_user_paging(get_workload(name), config, model)
            rows[name] = (base, ours, user, paper_scheme)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table_rows = []
    for name, (base, ours, user, paper_scheme) in rows.items():
        table_rows.append(
            [
                name,
                f"{improvement_pct(ours, base):+.1f}% ({paper_scheme})",
                f"{improvement_pct(user, base):+.1f}%",
                "hardware (EWB/ELDU)",
                "software (enclave runtime)",
            ]
        )
    table = format_table(
        ["benchmark", "this paper", "user-level paging", "security: ours",
         "security: theirs"],
        table_rows,
        title=(
            "Preloading (this paper) vs Eleos/CoSMIX-style user-level\n"
            "paging.  User paging avoids the 64k fault entirely but\n"
            "re-implements the secure swap in software, instruments\n"
            "every access, and spends "
            f"{model.epc_overhead:.0%} of the EPC on its runtime."
        ),
    )
    report("comparison_userpaging", table)

    base, ours, user, _ = rows["lbm"]
    # Thrashing: user paging wins on raw time (the paper concedes
    # this), while preloading still wins a solid share with hardware
    # security intact.
    assert user.total_cycles < ours.total_cycles < base.total_cycles
    # Irregular: both approaches help.
    base, ours, user, _ = rows["deepsjeng"]
    assert ours.total_cycles < base.total_cycles
    assert user.total_cycles < base.total_cycles
    # Hit-dominated: user paging's per-access tax makes it *slower*
    # than vanilla SGX, while the paper's schemes are neutral.
    base, ours, user, _ = rows["leela"]
    assert user.total_cycles > base.total_cycles
    assert abs(improvement_pct(ours, base)) < 6
    # The tax is the per-access translation: it dominates user
    # paging's time on the resident working set.
    assert user.stats.time.sip_check > user.stats.time.sip_wait
