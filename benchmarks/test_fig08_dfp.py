"""Figure 8: performance improvement achieved by DFP and DFP-stop.

Paper observations reproduced here:

* every large regular-access benchmark improves; the microbenchmark
  gains most (+18.6%), lbm +13.3%, and regular benchmarks average
  +11.4%;
* irregular benchmarks (mcf, deepsjeng, roms, omnetpp) suffer
  overheads — deepsjeng 34% and roms 42% in the paper;
* the DFP-stop abort valve collapses those overheads to ~0 (deepsjeng
  0%, roms 0.1%), cutting the average irregular overhead from 38.52%
  to 2.82% in the paper.
"""

from repro.analysis.report import ascii_bar_chart, format_table
from repro.sim.results import improvement_pct

from benchmarks.conftest import paging_profile, report, report_manifests, run

REGULAR = ("microbenchmark", "bwaves", "lbm", "wrf")
IRREGULAR = ("roms", "mcf", "deepsjeng", "omnetpp", "xz")

PAPER_NUMBERS = {
    "microbenchmark": "+18.6%",
    "lbm": "+13.3%",
    "bwaves": "(regular avg 11.4%)",
    "wrf": "(regular avg 11.4%)",
    "deepsjeng": "-34%",
    "roms": "-42%",
    "mcf": "(overhead)",
    "omnetpp": "(overhead)",
    "xz": "(overhead)",
}


def test_fig08_dfp(benchmark):
    names = REGULAR + IRREGULAR

    def experiment():
        rows = {}
        for name in names:
            base = run(name, "baseline")
            dfp = improvement_pct(run(name, "dfp"), base)
            stop = improvement_pct(run(name, "dfp-stop"), base)
            rows[name] = (dfp, stop)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = format_table(
        ["benchmark", "DFP", "DFP-stop", "paper DFP"],
        [
            [name, f"{rows[name][0]:+.1f}%", f"{rows[name][1]:+.1f}%",
             PAPER_NUMBERS.get(name, "")]
            for name in names
        ],
        title="Figure 8: improvement over no preloading (positive = faster)",
    )
    chart = ascii_bar_chart(
        {name: 1 - rows[name][1] / 100 for name in names},
        title="normalized execution time under DFP-stop (1.0 = baseline)",
        reference=1.0,
    )
    regular_avg = sum(rows[n][0] for n in REGULAR) / len(REGULAR)
    irregular_overhead_dfp = -sum(min(rows[n][0], 0) for n in IRREGULAR) / len(
        IRREGULAR
    )
    irregular_overhead_stop = -sum(min(rows[n][1], 0) for n in IRREGULAR) / len(
        IRREGULAR
    )
    summary = format_table(
        ["aggregate", "measured", "paper"],
        [
            ["regular benchmarks, mean DFP improvement",
             f"{regular_avg:+.1f}%", "+11.4%"],
            ["irregular benchmarks, mean DFP overhead",
             f"{irregular_overhead_dfp:.1f}%", "38.52%"],
            ["irregular benchmarks, mean DFP-stop overhead",
             f"{irregular_overhead_stop:.1f}%", "2.82%"],
        ],
    )
    # Preload effectiveness under DFP-stop, from the paging ledger.
    # The profiled re-runs double as passivity checks (conftest
    # asserts each observed result equals the blind cached run).
    effectiveness = {name: paging_profile(name, "dfp-stop")["effectiveness"]
                     for name in names}
    ledger = format_table(
        ["benchmark", "precision", "recall", "late rate", "refault rate",
         "waste rate"],
        [
            [
                name,
                f"{effectiveness[name]['preload_precision']:.3f}",
                f"{effectiveness[name]['preload_recall']:.3f}",
                f"{effectiveness[name]['late_rate']:.3f}",
                f"{effectiveness[name]['refault_rate']:.3f}",
                f"{effectiveness[name]['waste_rate']:.3f}",
            ]
            for name in names
        ],
        title="DFP-stop preload effectiveness (paging-decision ledger)",
    )
    report("fig08_dfp", "\n\n".join([table, chart, summary, ledger]))
    report_manifests(
        "fig08_dfp",
        {
            f"{name}/{scheme}": run(name, scheme)  # cached — no re-simulation
            for name in names
            for scheme in ("baseline", "dfp", "dfp-stop")
        },
    )

    # --- shape assertions -------------------------------------------------
    # Regular benchmarks all gain; the microbenchmark gains most.
    for name in REGULAR:
        assert rows[name][0] > 5, name
    assert rows["microbenchmark"][0] == max(rows[n][0] for n in REGULAR)
    assert 8 <= regular_avg <= 16  # paper: 11.4%
    # lbm beats the other stencil codes, as in the paper.
    assert rows["lbm"][0] > rows["bwaves"][0]
    assert rows["lbm"][0] > rows["wrf"][0]
    # Irregular benchmarks suffer without the valve; roms worst.
    for name in ("roms", "deepsjeng", "omnetpp"):
        assert rows[name][0] < -10, name
    assert rows["roms"][0] == min(rows[n][0] for n in IRREGULAR)
    # The valve rescues them to ~0 (paper: 38.52% -> 2.82%).
    for name in IRREGULAR:
        assert rows[name][1] > -5, name
    assert irregular_overhead_stop < 5
    # The valve does not disturb the regular benchmarks.
    for name in REGULAR:
        assert abs(rows[name][0] - rows[name][1]) < 1, name
    # The ledger explains the split: DFP predicts the regular streams
    # (recall high, near-zero waste) and cannot predict the irregular
    # ones — under the valve their streams abort early, so little is
    # preloaded (recall collapses) and what was is largely wasted.
    for name in ("bwaves", "lbm", "wrf"):
        assert effectiveness[name]["preload_recall"] > 0.4, name
        assert effectiveness[name]["waste_rate"] < 0.05, name
    for name in ("roms", "mcf", "deepsjeng", "omnetpp"):
        assert effectiveness[name]["preload_recall"] < 0.1, name
        assert effectiveness[name]["waste_rate"] > 0.1, name
    # The purely sequential microbenchmark races its own preloads:
    # nearly every fault is absorbed mid-flight rather than avoided.
    assert effectiveness["microbenchmark"]["late_rate"] > 0.9
