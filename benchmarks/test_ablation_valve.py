"""Ablation: the abort-valve threshold (Section 4.2's empirical formula).

The valve stops the preload thread when
``AccPreloadCounter + slack < ratio * PreloadCounter``.  The paper
calls its constants "empirical ... obtained via curve fitting and
manual tuning"; this ablation maps the tradeoff the tuning navigates:

* a lax valve (low ratio / huge slack) never fires, leaving the full
  misprediction overhead on irregular workloads;
* an over-eager valve (ratio near 1 with no slack) can fire on healthy
  streams and forfeit the regular-workload gains;
* the shipped setting rescues the irregular benchmarks while leaving
  the regular ones untouched.
"""

from repro.analysis.report import render_series
from repro.sim.results import normalized_time

from benchmarks.conftest import bench_config, report, run

#: (label, valve_enabled, ratio, slack)
SETTINGS = (
    ("off", False, 0.5, 0),
    ("lax (r=0.2)", True, 0.2, 97),
    ("default", True, 0.8, 97),
    ("eager (r=0.98, s=0)", True, 0.98, 0),
)
BENCHMARKS = ("deepsjeng", "roms", "lbm", "microbenchmark")


def test_ablation_valve(benchmark):
    def experiment():
        grid = {}
        stops = {}
        for name in BENCHMARKS:
            base = run(name, "baseline")
            for label, enabled, ratio, slack in SETTINGS:
                config = bench_config(
                    valve_enabled=enabled, valve_ratio=ratio, valve_slack=slack
                )
                result = run(name, "dfp-stop" if enabled else "dfp", config)
                grid[(name, label)] = normalized_time(result, base)
                stops[(name, label)] = result.stats.valve_stops
        return grid, stops

    grid, stops = benchmark.pedantic(experiment, rounds=1, iterations=1)

    series = {
        label: [(name, grid[(name, label)]) for name in BENCHMARKS]
        for label, *_rest in SETTINGS
    }
    text = render_series(
        series,
        title=(
            "Ablation: abort-valve tuning (normalized time, lower is better)\n"
            "formula: Acc + slack < ratio * Preload; default ratio 0.8 at\n"
            "this scale (0.5 at full scale, the paper's constant)"
        ),
    )
    report("ablation_valve", text)

    # Irregular workloads: off is worst, default rescues.
    for name in ("deepsjeng", "roms"):
        assert grid[(name, "off")] > 1.10, name
        assert grid[(name, "default")] < 1.05, name
        assert stops[(name, "default")] == 1, name
    # A lax valve behaves like no valve on irregular workloads.
    assert grid[("roms", "lax (r=0.2)")] > 1.10
    # Regular workloads: the default valve never fires and costs
    # nothing relative to valve-off.
    for name in ("lbm", "microbenchmark"):
        assert stops[(name, "default")] == 0, name
        assert abs(grid[(name, "default")] - grid[(name, "off")]) < 0.01, name
    # The over-eager valve forfeits at least part of a regular
    # workload's benefit somewhere (it fires on a healthy stream).
    eager_fired = any(
        stops[(name, "eager (r=0.98, s=0)")] > 0
        for name in ("lbm", "microbenchmark")
    )
    eager_cost = any(
        grid[(name, "eager (r=0.98, s=0)")] > grid[(name, "default")] + 0.005
        for name in ("lbm", "microbenchmark")
    )
    assert eager_fired and eager_cost
