"""EPC sharing between enclaves (the Section 5.6 discussion, made real).

The paper notes that EPC sharing among processes keeps the total EPC
fixed, so each enclave "receives a smaller portion"; the schemes still
work per enclave ("each enclave can handle its preloading
independently"), but contention — like LLC or memory-bandwidth
sharing — becomes "a serious issue" whose fairness the paper leaves to
future work.  This bench quantifies all three statements by running
lbm (streaming) and deepsjeng (irregular) on one shared EPC:

1. sharing alone slows both down (frame contention);
2. each enclave's own scheme still helps it (lbm+DFP, deepsjeng+SIP);
3. the fairness problem is real: lbm's preload bursts occupy the
   exclusive load channel and *export* wait time to its co-runner.
"""

from repro.analysis.report import format_table
from repro.sim.fleet import FleetScenario, TenantSpec, simulate_fleet

from benchmarks.conftest import (
    bench_config,
    get_sip_plan,
    get_workload,
    report,
    report_manifests,
    run,
)

PAIR = ("lbm", "deepsjeng")


def run_shared(workloads, config, schemes, *, sip_plans=None):
    """Shared-EPC run through the typed fleet API (no churn)."""
    scenario = FleetScenario(
        name="bench-shared",
        tenants=tuple(
            TenantSpec(
                workload=w,
                scheme=s,
                sip_plan=sip_plans[i] if sip_plans is not None else None,
            )
            for i, (w, s) in enumerate(zip(workloads, schemes))
        ),
        config=config,
    )
    return simulate_fleet(scenario).results


def test_contention_shared_epc(benchmark):
    config = bench_config()

    def experiment():
        workloads = [get_workload(name) for name in PAIR]
        plans = [None, get_sip_plan("deepsjeng", config)]
        solo = {name: run(name, "baseline") for name in PAIR}
        shared_base = run_shared(
            workloads, config, ["baseline", "baseline"]
        )
        shared_schemes = run_shared(
            workloads, config, ["dfp-stop", "sip"], sip_plans=plans
        )
        return solo, shared_base, shared_schemes

    solo, shared_base, shared_schemes = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    def row(name, result, reference):
        slowdown = result.total_cycles / reference.total_cycles
        return [
            f"{name} [{result.scheme}]",
            f"{result.total_cycles / 1e6:,.0f}M",  # repro-lint: disable=RL004 display-only scaling to millions
            f"{slowdown:.2f}x",
            f"{result.stats.faults:,}",
            f"{result.stats.time.overhead / 1e6:,.0f}M",
        ]

    rows = []
    for i, name in enumerate(PAIR):
        rows.append(row(f"{name} solo", solo[name], solo[name]))
        rows.append(row(f"{name} shared", shared_base[i], solo[name]))
        rows.append(row(f"{name} shared", shared_schemes[i], solo[name]))
    table = format_table(
        ["run", "cycles", "vs solo", "faults", "non-compute"],
        rows,
        title=(
            "EPC contention: lbm + deepsjeng sharing one EPC\n"
            "(each enclave runs its own best scheme in the last rows).\n"
            "Note the fairness problem the paper defers: lbm's preload\n"
            "bursts occupy the exclusive load channel, so even though\n"
            "SIP removes most of deepsjeng's faults, every remaining\n"
            "load — demand or SIP — waits behind the streamer's queue."
        ),
    )
    report("contention_shared_epc", table)
    report_manifests(
        "contention_shared_epc",
        {
            **{f"{name}/solo-baseline": solo[name] for name in PAIR},
            **{
                f"{PAIR[i]}/shared-baseline": shared_base[i]
                for i in range(len(PAIR))
            },
            **{
                f"{PAIR[i]}/shared-own-scheme": shared_schemes[i]
                for i in range(len(PAIR))
            },
        },
    )

    # 1. Sharing alone hurts both.
    for i, name in enumerate(PAIR):
        assert shared_base[i].total_cycles > solo[name].total_cycles, name
    # 2. Each enclave's own scheme still helps it under sharing.
    assert shared_schemes[0].total_cycles < shared_base[0].total_cycles
    assert shared_schemes[1].stats.faults < 0.5 * shared_base[1].stats.faults
    # 3. Fairness: the streamer's preloads inflate the co-runner's
    #    channel wait relative to the no-preloading shared run.
    lbm_dfp_only = run_shared(
        [get_workload("lbm"), get_workload("deepsjeng")],
        config,
        ["dfp-stop", "baseline"],
    )
    assert (
        lbm_dfp_only[1].stats.time.fault_wait
        > shared_base[1].stats.time.fault_wait
    )
