"""Table 1: classification of the benchmarks.

The paper profiles every benchmark's memory behaviour (running under
Graphene-SGX with the vanilla driver) and buckets them:

* small working set — cactuBSSN, imagick, leela, nab, exchange2;
* large working set, irregular — roms, mcf, deepsjeng, omnetpp, xz;
* large working set, regular — bwaves, lbm, wrf, microbenchmark.

This bench regenerates the table from the workload models using the
offline characterization (footprint vs EPC + stream-coverage).
"""

from repro.analysis.patterns import PatternKind, classify_benchmark
from repro.analysis.report import format_table

from benchmarks.conftest import bench_config, get_workload, report

PAPER_TABLE = {
    "cactuBSSN": PatternKind.SMALL_WORKING_SET,
    "imagick": PatternKind.SMALL_WORKING_SET,
    "leela": PatternKind.SMALL_WORKING_SET,
    "nab": PatternKind.SMALL_WORKING_SET,
    "exchange2": PatternKind.SMALL_WORKING_SET,
    "roms": PatternKind.LARGE_IRREGULAR,
    "mcf": PatternKind.LARGE_IRREGULAR,
    "deepsjeng": PatternKind.LARGE_IRREGULAR,
    "omnetpp": PatternKind.LARGE_IRREGULAR,
    "xz": PatternKind.LARGE_IRREGULAR,
    "bwaves": PatternKind.LARGE_REGULAR,
    "lbm": PatternKind.LARGE_REGULAR,
    "wrf": PatternKind.LARGE_REGULAR,
    "microbenchmark": PatternKind.LARGE_REGULAR,
}


def test_table1_classification(benchmark):
    config = bench_config()

    def experiment():
        results = {}
        for name in PAPER_TABLE:
            kind, summary = classify_benchmark(get_workload(name), config)
            results[name] = (kind, summary)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    mismatches = []
    for name, expected in PAPER_TABLE.items():
        kind, summary = results[name]
        footprint_ratio = get_workload(name).footprint_pages / config.epc_pages
        rows.append(
            [
                name,
                f"{footprint_ratio:.2f}x EPC",
                f"{summary.stream_coverage:.2f}",
                kind.value,
                "OK" if kind is expected else f"paper: {expected.value}",
            ]
        )
        if kind is not expected:
            mismatches.append(name)
    table = format_table(
        ["benchmark", "footprint", "stream cov.", "classification", "vs paper"],
        rows,
        title="Table 1: classification of benchmarks",
    )
    report("table1_classification", table)

    assert not mismatches, f"misclassified: {mismatches}"
