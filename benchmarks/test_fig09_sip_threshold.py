"""Figure 9: SIP's irregular-access-ratio threshold sweep.

Every instruction whose profiled Class 3 ratio clears the threshold is
instrumented.  The paper sweeps the threshold on deepsjeng (train
input) and finds the sweet spot around 5%:

* too low (aggressive) — hit-dominated sites get instrumented and the
  ``BIT_MAP_CHECK`` cost on their Class 1 accesses outweighs the
  conversions;
* too high (conservative) — profitable sites above 5% are skipped and
  their faults stay full faults.

The paper verified the same optimum on mcf; this bench sweeps both.
"""

from repro.analysis.report import render_series
from repro.sim.engine import simulate

from benchmarks.conftest import bench_config, get_sip_plan, get_workload, report

THRESHOLDS = (0.0, 0.01, 0.03, 0.05, 0.10, 0.20, 0.40, 0.80)
BENCHMARKS = ("deepsjeng", "mcf")


def test_fig09_sip_threshold(benchmark):
    config = bench_config()

    def experiment():
        times = {}
        points = {}
        for name in BENCHMARKS:
            workload = get_workload(name)
            for threshold in THRESHOLDS:
                plan = get_sip_plan(name, config, threshold)
                # Figure 9 measures on the *train* input set.
                result = simulate(
                    workload, config, "sip", sip_plan=plan, input_set="train"
                )
                times[(name, threshold)] = result.total_cycles
                points[(name, threshold)] = plan.instrumentation_points
        return times, points

    times, points = benchmark.pedantic(experiment, rounds=1, iterations=1)

    series = {}
    for name in BENCHMARKS:
        base = times[(name, 0.80)]  # ~no instrumentation: the baseline
        series[name] = [
            (f"{t:.0%}", times[(name, t)] / base) for t in THRESHOLDS
        ]
        series[f"{name} sites"] = [
            (f"{t:.0%}", float(points[(name, t)])) for t in THRESHOLDS
        ]
    text = render_series(
        series,
        title=(
            "Figure 9: execution time (train input) vs SIP instrumentation\n"
            "threshold, normalized to the fully-conservative end;\n"
            "paper: best performance around 5% on deepsjeng, same on mcf"
        ),
    )
    report("fig09_sip_threshold", text)

    for name in BENCHMARKS:
        by_threshold = {t: times[(name, t)] for t in THRESHOLDS}
        best = min(by_threshold.values())
        # The paper's default threshold is at (or within 1% of) the
        # sweep optimum.
        assert by_threshold[0.05] <= best * 1.01, name
        # Fully conservative loses the conversions: worse than 5%.
        assert by_threshold[0.80] > by_threshold[0.05], name
    # Aggressive instrumentation is worse than the sweet spot on
    # deepsjeng: checks on the Class 1-dominated probe sites cost more
    # than their rare conversions save.  (On mcf the same penalty is
    # below our measurement resolution — the sites just under the
    # threshold sit almost exactly at breakeven, which is the paper's
    # own explanation of why mcf is a wash.)
    assert times[("deepsjeng", 0.0)] > times[("deepsjeng", 0.05)]
    # Lower thresholds instrument monotonically more sites.
    for name in BENCHMARKS:
        site_counts = [points[(name, t)] for t in THRESHOLDS]
        assert site_counts == sorted(site_counts, reverse=True), name
