"""Figure 4: baseline fault vs SIP notification, on one access.

The figure's caption gives the exact arithmetic this bench asserts:

* baseline: loading page2 costs
  ``t_AEX (10,000) + t_load (44,000) + t_ERESUME (10,000)``;
* SIP: it costs ``t_load + t_notification``, and the application never
  leaves the enclave;
* the benefit is therefore ``t_AEX + t_ERESUME − t_notification``.

(The remaining paper figures are non-experimental: Figure 1 is the
EPC-paging architecture diagram and Figure 5 is the instrumented
source listing — both are *implemented* by this library rather than
measured: `repro.enclave` and `repro.core.instrumentation`.)
"""

from repro.analysis.report import format_table
from repro.core.config import SimConfig
from repro.enclave.events import EventKind
from repro.sim.engine import simulate
from repro.core.instrumentation import SipPlan
from repro.core.schemes import make_scheme

from benchmarks.conftest import report
from tests.conftest import ScriptedWorkload

COMPUTE = 20_000


def _workload():
    # Warm page 1, then the instrumented access to cold page 2.
    return ScriptedWorkload(
        [(0, 1, COMPUTE), (1, 2, COMPUTE)], name="fig4", footprint_pages=64
    )


def test_fig04_sip_timeline(benchmark):
    config = SimConfig(epc_pages=16, scan_period_cycles=10**9)
    plan = SipPlan(workload="fig4", threshold=0.05, instrumented=frozenset({1}))

    def experiment():
        base = simulate(_workload(), config, "baseline", record_events=True)
        sip = simulate(
            _workload(),
            config,
            make_scheme("sip", config, sip_plan=plan),
            record_events=True,
        )
        return base, sip

    base, sip = benchmark.pedantic(experiment, rounds=1, iterations=1)
    cost = config.cost

    benefit = base.total_cycles - sip.total_cycles
    expected_benefit = (
        cost.world_switch_cycles
        - cost.notification_cycles
        - cost.bitmap_check_cycles
    )

    rows = [
        ["baseline: AEX + load + ERESUME",
         f"{cost.fault_cycles:,}", "10k + 44k + 10k"],
        ["SIP: check + load + notification",
         f"{cost.bitmap_check_cycles + cost.page_load_cycles + cost.notification_cycles:,}",
         "t_load + t_notification"],
        ["measured benefit", f"{benefit:,}",
         "~ t_AEX + t_ERESUME - t_notification"],
    ]
    timeline = [
        f"  {event}" for event in (sip.events or []) if event.page in (-1, 2)
    ]
    text = "\n".join(
        [
            format_table(
                ["path", "cycles", "figure 4 formula"],
                rows,
                title="Figure 4: memory access sequences, baseline vs SIP",
            ),
            "",
            "SIP timeline for page 2 (no AEX, no ERESUME):",
            *timeline,
        ]
    )
    report("fig04_sip_timeline", text)

    # The caption's arithmetic, exactly (modulo the bitmap check the
    # paper folds into the notification).
    assert benefit == expected_benefit
    assert benefit > 0
    # The SIP run never exits the enclave for page 2.
    kinds = [e.kind for e in (sip.events or [])]
    assert EventKind.SIP_LOAD in kinds
    assert kinds.count(EventKind.AEX) == 1  # only page 1's cold fault
