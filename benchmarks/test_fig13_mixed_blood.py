"""Figure 13: the synthesized ``mixed-blood`` application.

To validate that the hybrid genuinely collects *both* benefits when a
program has comparable Class 2 and Class 3 populations, Section 5.4
synthesizes mixed-blood: a sequential image scan followed by MSER blob
detection.  Paper numbers: SIP alone +1.6%, DFP alone +6.0%, the
hybrid +7.1% — the one workload where the hybrid beats both parts.
"""

from repro.analysis.report import ascii_bar_chart, format_table
from repro.sim.results import improvement_pct, normalized_time

from benchmarks.conftest import report, run

PAPER = {"sip": 1.6, "dfp-stop": 6.0, "hybrid": 7.1}


def test_fig13_mixed_blood(benchmark):
    def experiment():
        base = run("mixed-blood", "baseline")
        return base, {
            scheme: run("mixed-blood", scheme)
            for scheme in ("sip", "dfp-stop", "hybrid")
        }

    base, results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    gains = {
        scheme: improvement_pct(result, base) for scheme, result in results.items()
    }

    table = format_table(
        ["scheme", "improvement", "paper"],
        [
            ["SIP", f"{gains['sip']:+.1f}%", "+1.6%"],
            ["DFP", f"{gains['dfp-stop']:+.1f}%", "+6.0%"],
            ["SIP+DFP (hybrid)", f"{gains['hybrid']:+.1f}%", "+7.1%"],
        ],
        title="Figure 13: mixed-blood (sequential scan + MSER detection)",
    )
    chart = ascii_bar_chart(
        {
            "SIP": normalized_time(results["sip"], base),
            "DFP": normalized_time(results["dfp-stop"], base),
            "SIP+DFP": normalized_time(results["hybrid"], base),
        },
        title="normalized execution time (1.0 = no preloading)",
        reference=1.0,
    )
    report("fig13_mixed_blood", table + "\n\n" + chart)

    # The paper's ordering: SIP < DFP < hybrid, all positive.
    assert 0 < gains["sip"] < gains["dfp-stop"] < gains["hybrid"]
    # The hybrid collects both benefits: it must clearly beat the
    # better single scheme, not just match it (contrast Figure 12).
    assert gains["hybrid"] >= gains["dfp-stop"] + 1.0
