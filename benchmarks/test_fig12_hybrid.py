"""Figure 12: SIP vs DFP vs the hybrid scheme.

Section 5.4: because each C/C++ benchmark's accesses are dominated by
*either* Class 2 (DFP territory) *or* Class 3 (SIP territory) but
rarely both, the hybrid lands close to the better of the two schemes —
the experiment shows the schemes compose without hurting each other.
Worst case (mcf) the paper reports ~4.2% average overhead.
"""

from repro.analysis.report import render_series
from repro.sim.results import normalized_time

from benchmarks.conftest import report, run

BENCHMARKS = ("deepsjeng", "mcf.2006", "mcf", "xz", "lbm", "microbenchmark", "MSER", "SIFT")
SCHEMES = ("sip", "dfp-stop", "hybrid")


def test_fig12_hybrid(benchmark):
    def experiment():
        grid = {}
        for name in BENCHMARKS:
            base = run(name, "baseline")
            for scheme in SCHEMES:
                grid[(name, scheme)] = normalized_time(run(name, scheme), base)
        return grid

    grid = benchmark.pedantic(experiment, rounds=1, iterations=1)

    series = {
        scheme: [(name, grid[(name, scheme)]) for name in BENCHMARKS]
        for scheme in SCHEMES
    }
    text = render_series(
        series,
        title=(
            "Figure 12: normalized execution time of SIP, DFP and hybrid\n"
            "paper: hybrid close to the better of the two; the schemes\n"
            "compose without hurting each other"
        ),
    )
    report("fig12_hybrid", text)

    for name in BENCHMARKS:
        sip_t = grid[(name, "sip")]
        dfp_t = grid[(name, "dfp-stop")]
        hybrid_t = grid[(name, "hybrid")]
        best = min(sip_t, dfp_t)
        # Hybrid is never much worse than the better single scheme...
        assert hybrid_t <= best + 0.03, name
        # ...and never much worse than the baseline (paper's worst
        # case, mcf, averages ~4.2% overhead).
        assert hybrid_t <= 1.05, name
    # Per-benchmark winners match the paper's assignment.
    assert grid[("deepsjeng", "sip")] < grid[("deepsjeng", "dfp-stop")]
    assert grid[("lbm", "dfp-stop")] < grid[("lbm", "sip")]
    assert grid[("SIFT", "dfp-stop")] < grid[("SIFT", "sip")]
    assert grid[("MSER", "sip")] < 1.0
