"""Figure 6: DFP execution time vs ``stream_list`` length.

The paper sweeps the length of the LRU list recording fault streams
for lbm and bwaves: the two benchmarks prefer different lengths, but
their *combined* execution time is shortest around 30, which becomes
the default.  This bench reruns the sweep and checks that the default
sits in the sweet-spot region: too-short lists lose interleaved
streams, so the short end of the sweep must be worse than the
default; the default must be within a hair of the sweep's optimum.
"""

from repro.analysis.report import render_series

from benchmarks.conftest import bench_config, report, run

LENGTHS = (2, 5, 10, 20, 30, 45, 60)
BENCHMARKS = ("lbm", "bwaves")


def test_fig06_stream_list_length(benchmark):
    def experiment():
        times = {}
        for name in BENCHMARKS:
            for length in LENGTHS:
                config = bench_config(stream_list_length=length)
                times[(name, length)] = run(name, "dfp-stop", config).total_cycles
        return times

    times = benchmark.pedantic(experiment, rounds=1, iterations=1)

    series = {
        name: [
            (length, times[(name, length)] / 1e6) for length in LENGTHS
        ]
        for name in BENCHMARKS
    }
    combined = [
        (length, sum(times[(name, length)] for name in BENCHMARKS) / 1e6)
        for length in LENGTHS
    ]
    series["combined"] = combined
    text = render_series(
        series,
        title=(
            "Figure 6: DFP execution time (Mcycles) vs stream_list length\n"
            "paper: combined optimum around length 30 (the default)"
        ),
        value_format="{:.1f}",
    )
    report("fig06_streamlist_length", text)

    combined_by_length = dict(combined)
    best = min(combined_by_length.values())
    # The default (30) is in the sweet spot: within 2% of the best.
    assert combined_by_length[30] <= best * 1.02
    # A clearly-too-short list is measurably worse than the default.
    assert combined_by_length[2] > combined_by_length[30]
