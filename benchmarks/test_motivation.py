"""Motivation numbers (Sections 1–2).

The paper's motivating observations:

* an application inside an SGX enclave can be **>10×** slower than
  outside; the authors saw **~46×** on a simple sequential 1 GB scan;
* an enclave page fault costs **60,000–64,000 cycles** (AEX ~10k +
  ELDU ~44k + ERESUME ~10k), against **~2,000** for a regular fault.

This bench reruns both: the sequential scan natively and in-enclave,
and the per-fault cost breakdown straight from a measured run.
"""

from repro.analysis.report import format_table
from repro.core.config import SimConfig
from repro.sim.engine import simulate, simulate_native
from repro.workloads.base import SyntheticWorkload
from repro.workloads.synthetic import sequential

from benchmarks.conftest import SCALE, bench_config, report


def _intro_micro() -> SyntheticWorkload:
    """The *intro* scan: touch-and-move-on, almost no compute.

    The evaluation microbenchmark carries a little per-page work; the
    intro's 46x observation is for a bare scan, so this model uses a
    minimal per-page cost (~streaming stores for one page).
    """
    pages = max(512, (262_144 // SCALE))
    return SyntheticWorkload(
        "intro-scan-1GB",
        pages,
        {0: "memset loop"},
        [sequential(0, 0, pages, compute=800, jitter=100, passes=2)],
    )


def test_motivation_slowdown(benchmark):
    config = bench_config()
    workload = _intro_micro()

    def experiment():
        native = simulate_native(workload, config)
        enclave = simulate(workload, config, "baseline")
        return native, enclave

    native, enclave = benchmark.pedantic(experiment, rounds=1, iterations=1)
    slowdown = enclave.total_cycles / native.total_cycles

    cost = config.cost
    rows = [
        ["native run", f"{native.total_cycles:,}", "1.0x"],
        ["enclave run", f"{enclave.total_cycles:,}", f"{slowdown:.1f}x"],
        ["paper observation", "-", "~46x (>10x per [42])"],
    ]
    breakdown = [
        ["AEX", cost.aex_cycles, "~10,000"],
        ["ELDU/ELDB page load", cost.page_load_cycles, "~44,000"],
        ["ERESUME", cost.eresume_cycles, "~10,000"],
        ["enclave fault total", cost.fault_cycles, "60,000-64,000"],
        ["regular page fault", cost.regular_fault_cycles, "~2,000"],
    ]
    text = "\n\n".join(
        [
            format_table(
                ["run", "cycles", "slowdown"],
                rows,
                title="Motivation: sequential 1 GB scan, native vs enclave",
            ),
            format_table(
                ["event", "model cycles", "paper cycles"],
                breakdown,
                title="Enclave page fault cost breakdown (Section 2)",
            ),
        ]
    )
    report("motivation", text)

    # Shape: an order of magnitude or more, and the paper's breakdown.
    assert slowdown > 10
    assert 60_000 <= cost.fault_cycles <= 64_000
    assert cost.fault_cycles >= 30 * cost.regular_fault_cycles
    # Both runs touch the same pages; only the fault cost differs.
    assert native.stats.faults == workload.footprint_pages
    assert enclave.stats.faults == enclave.stats.accesses  # full thrash
