"""Ablation: the multiple-stream predictor vs classic alternatives.

DESIGN.md calls out the predictor as the central DFP design choice;
Section 4.1 justifies it by analogy to Linux read-ahead and contrasts
with next-line/stride hardware prefetchers.  This ablation swaps the
predictor while keeping the whole DFP machinery (bursts, aborts,
valve) fixed:

* **multi-stream** (the paper's design) tracks each interleaved array
  sweep separately — required for lbm/bwaves-style stencils;
* **stride** (single-context) sees the *interleaved* fault sequence,
  whose global delta alternates, and detects nothing on lbm;
* **next-line** preloads after every fault and floods the exclusive
  channel on irregular workloads.
"""

from repro.analysis.report import render_series
from repro.core.alt_predictors import NextLinePredictor, StridePredictor
from repro.core.dfp import DfpConfig
from repro.core.schemes import Scheme
from repro.sim.engine import simulate
from repro.sim.results import normalized_time

from benchmarks.conftest import bench_config, get_workload, report, run

BENCHMARKS = ("lbm", "microbenchmark", "deepsjeng")


def _scheme(config, factory):
    # Valve off: the ablation compares raw predictor quality; with the
    # valve on, every bad predictor just gets switched off and the
    # comparison collapses to ~baseline for all of them.
    base = DfpConfig.from_sim_config(config)
    dfp_config = DfpConfig(
        stream_list_length=base.stream_list_length,
        load_length=base.load_length,
        valve_enabled=False,
        valve_slack=base.valve_slack,
        valve_ratio=base.valve_ratio,
        track_backward=base.track_backward,
    )
    return Scheme(
        name="dfp",
        dfp_enabled=True,
        sip_enabled=False,
        dfp_config=dfp_config,
        predictor_factory=factory,
    )


def test_ablation_predictor(benchmark):
    config = bench_config()
    factories = {
        "multi-stream": None,  # the default predictor
        "stride": lambda: StridePredictor(config.load_length),
        "next-line": lambda: NextLinePredictor(config.load_length),
    }

    def experiment():
        grid = {}
        for name in BENCHMARKS:
            base = run(name, "baseline")
            for label, factory in factories.items():
                if factory is None:
                    result = run(name, "dfp")
                else:
                    result = simulate(
                        get_workload(name), config, _scheme(config, factory)
                    )
                grid[(name, label)] = normalized_time(result, base)
        return grid

    grid = benchmark.pedantic(experiment, rounds=1, iterations=1)

    series = {
        label: [(name, grid[(name, label)]) for name in BENCHMARKS]
        for label in factories
    }
    text = render_series(
        series,
        title=(
            "Ablation: predictor design (normalized time, lower is better)\n"
            "multi-stream = the paper's Algorithm 1"
        ),
    )
    report("ablation_predictor", text)

    # Multi-stream wins on the interleaved stencil: the single-context
    # stride detector cannot latch onto alternating arrays.
    assert grid[("lbm", "multi-stream")] < grid[("lbm", "stride")] - 0.02
    # On the single pure stream all three behave reasonably; the
    # paper's design is at least as good as either alternative.
    for label in ("stride", "next-line"):
        assert (
            grid[("microbenchmark", "multi-stream")]
            <= grid[("microbenchmark", label)] + 0.01
        )
    # Next-line must be the worst choice for the irregular benchmark:
    # it preloads after *every* random fault.
    assert grid[("deepsjeng", "next-line")] == max(
        grid[("deepsjeng", label)] for label in factories
    )
