"""Figure 2: the DFP time sequence on a didactic 4-page trace.

The figure compares loading pages 1–4 under the baseline (three full
faults for pages 2, 3, 4) against DFP, where the fault on page 2
triggers preloading of pages 3 and 4 so their faults disappear:

* baseline time = t_access + 3*(AEX + ERESUME) + 3 loads
* DFP time      = t_access + 1*(AEX + ERESUME) + loads overlapped

This bench replays exactly that scenario with event recording on and
renders both timelines.
"""

from repro.analysis.report import format_table
from repro.core.config import SimConfig
from repro.enclave.events import EventKind
from repro.sim.engine import simulate

from benchmarks.conftest import report
from tests.conftest import ScriptedWorkload

#: Per-page compute generous enough for preloads to land in time
#: (Figure 2 draws the preloaded pages arriving before their access).
COMPUTE = 120_000


def _workload():
    # Page 1 is pre-warmed by a first touch; pages 2, 3, 4 follow.
    events = [(0, 1, COMPUTE), (0, 2, COMPUTE), (0, 3, COMPUTE), (0, 4, COMPUTE)]
    return ScriptedWorkload(events, name="fig2", footprint_pages=64)


def _render_timeline(result):
    lines = [f"  total: {result.total_cycles:,} cycles"]
    for event in result.events or []:
        lines.append(f"  {event}")
    return "\n".join(lines)


def test_fig02_timeline(benchmark):
    config = SimConfig(epc_pages=16, scan_period_cycles=10**9)

    def experiment():
        base = simulate(_workload(), config, "baseline", record_events=True)
        dfp = simulate(_workload(), config, "dfp-stop", record_events=True)
        return base, dfp

    base, dfp = benchmark.pedantic(experiment, rounds=1, iterations=1)
    cost = config.cost

    # Analytic expectations straight from the figure's caption.
    base_expected = 4 * COMPUTE + 4 * cost.fault_cycles
    # DFP: page 1 and 2 fault cold; the fault on page 2 extends the
    # stream and preloads 3..6, so 3 and 4 are plain hits.
    dfp_expected = 4 * COMPUTE + 2 * cost.fault_cycles

    text = "\n".join(
        [
            "Figure 2: time sequence of loading pages to EPC",
            "",
            "Baseline (every page faults):",
            _render_timeline(base),
            "",
            "DFP (fault on page 2 preloads pages 3 and 4):",
            _render_timeline(dfp),
            "",
            format_table(
                ["run", "faults", "world switches", "cycles"],
                [
                    ["baseline", base.stats.faults, 2 * base.stats.faults,
                     f"{base.total_cycles:,}"],
                    ["DFP", dfp.stats.faults, 2 * dfp.stats.faults,
                     f"{dfp.total_cycles:,}"],
                ],
            ),
        ]
    )
    report("fig02_timeline", text)

    assert base.total_cycles == base_expected
    assert dfp.total_cycles == dfp_expected
    assert base.stats.faults == 4
    assert dfp.stats.faults == 2
    # Pages 3 and 4 were served by preloads, not faults.
    preloaded = {
        e.page for e in dfp.events if e.kind is EventKind.PRELOAD
    }
    assert {3, 4} <= preloaded
    # The saving is exactly two AEX+ERESUME pairs plus two loads
    # overlapped with compute.
    assert base.total_cycles - dfp.total_cycles == 2 * cost.fault_cycles
