"""Table 2: SIP instrumentation points and the TCB-size study.

Section 5.5: SIP's only enclave-resident additions are the 23-line
preloading-notification function plus one check+call site per
instrumented instruction.  DFP adds nothing to the TCB.  Paper counts:

==============  ======
mcf.2006        114
mcf             99
xz              46
deepsjeng       35
lbm             0
MSER            54
SIFT            0
microbenchmark  0
==============  ======
"""

from repro.analysis.report import format_table
from repro.enclave.enclave import NOTIFICATION_STUB_LOC, Enclave

from benchmarks.conftest import get_sip_plan, get_workload, report

PAPER_POINTS = {
    "mcf.2006": 114,
    "mcf": 99,
    "xz": 46,
    "deepsjeng": 35,
    "lbm": 0,
    "MSER": 54,
    "SIFT": 0,
    "microbenchmark": 0,
}

#: Allowed deviation: near-threshold sites drop in and out with PGO
#: sampling (the paper's own mcf-vs-mcf.2006 discussion shows how
#: sensitive the counts are to the access mix).
TOLERANCE = 6


def test_table2_instrumentation_points(benchmark):
    def experiment():
        return {name: get_sip_plan(name) for name in PAPER_POINTS}

    plans = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for name, paper in PAPER_POINTS.items():
        plan = plans[name]
        enclave = Enclave(
            name,
            elrange_pages=get_workload(name).elrange_pages,
            instrumentation_points=plan.instrumentation_points,
        )
        rows.append(
            [
                name,
                plan.instrumentation_points,
                paper,
                enclave.added_tcb_loc,
            ]
        )
    table = format_table(
        ["benchmark", "points (measured)", "points (paper)", "added TCB LoC"],
        rows,
        title=(
            "Table 2: SIP instrumentation points\n"
            f"(notification stub: {NOTIFICATION_STUB_LOC} lines of C; "
            "DFP adds zero TCB)"
        ),
    )
    report("table2_tcb", table)

    for name, paper in PAPER_POINTS.items():
        measured = plans[name].instrumentation_points
        if paper == 0:
            assert measured == 0, name
        else:
            assert abs(measured - paper) <= TOLERANCE, (
                f"{name}: {measured} vs paper {paper}"
            )
    # TCB accounting: zero sites -> zero added lines.
    zero = Enclave("x", elrange_pages=1, instrumentation_points=0)
    assert zero.added_tcb_loc == 0
