"""Exception hierarchy for the SGX preloading reproduction.

All library-specific failures derive from :class:`ReproError` so callers
can catch one base class.  Errors are raised eagerly — a misconfigured
simulation should fail at construction, not produce silently wrong
numbers at the end of a long run.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "ReproError",
    "ConfigError",
    "EpcError",
    "ChannelError",
    "WorkloadError",
    "InstrumentationError",
    "SimulationError",
    "SanitizerError",
    "ParallelExecutionError",
    "JobTimeoutError",
    "JobRetriesExhaustedError",
    "ResultIntegrityError",
    "CheckpointError",
    "LintError",
    "ObsError",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """A simulation or cost-model parameter is out of its valid range."""


class EpcError(ReproError):
    """Invalid EPC operation (double insert, evicting a non-resident page,
    inserting into a full EPC without a victim, ...)."""


class ChannelError(ReproError):
    """Invalid load-channel operation (issuing a load while one is in
    flight, completing a load that was never started, ...)."""


class WorkloadError(ReproError):
    """A workload is malformed (unknown name, empty trace, page outside
    the declared footprint, unknown input set, ...)."""


class InstrumentationError(ReproError):
    """The SIP compiler pass was asked to instrument an instruction it
    has no profile for, or was given an invalid threshold."""


class SimulationError(ReproError):
    """The simulation engine detected an internal inconsistency (time
    moving backwards, more resident pages than EPC frames, ...)."""


class SanitizerError(SimulationError):
    """The opt-in runtime sanitizer caught an invariant violation.

    Carries the tail of the event trace leading up to the violation in
    :attr:`trace` so the broken sequence can be diagnosed without
    re-running with full event recording.
    """

    def __init__(self, message: str, trace: Iterable[str] = ()) -> None:
        self.trace = tuple(trace)
        if self.trace:
            tail = "\n".join(f"    {entry}" for entry in self.trace)
            message = f"{message}\n  event trace (oldest first):\n{tail}"
        super().__init__(message)


class ParallelExecutionError(SimulationError):
    """A worker of the parallel experiment runner failed.

    Names the job that died (:attr:`job`) so a many-point sweep does
    not reduce a single bad configuration to an anonymous pool
    traceback, and carries how many attempts were made (:attr:`attempts`)
    so a retried job reads differently from a first-try failure.  The
    worker's original exception is chained as ``__cause__``.
    """

    def __init__(self, message: str, job: str = "", attempts: int = 1) -> None:
        #: Human-readable description of the failed job
        #: (``workload/scheme/seed/input_set``).
        self.job = job
        #: How many execution attempts the job was given before the
        #: runner gave up (1 when retries were not configured).
        self.attempts = attempts
        super().__init__(message)


class JobTimeoutError(ParallelExecutionError):
    """One attempt of a job exceeded the policy's per-job timeout.

    Raised per *attempt*: the runner records it, abandons the attempt,
    and retries while the :class:`repro.robust.RetryPolicy` allows;
    only when attempts are exhausted does it surface (chained under a
    :class:`JobRetriesExhaustedError`)."""


class JobRetriesExhaustedError(ParallelExecutionError):
    """A job failed on every attempt the retry policy allowed.

    The last attempt's failure (exception, timeout, or integrity
    mismatch) is chained as ``__cause__``; :attr:`attempts` records
    how many attempts were burned."""


class ResultIntegrityError(ParallelExecutionError):
    """A worker's result failed the replayed-manifest digest check.

    The runner recomputes the result's manifest digest on receipt and
    compares it against the digest the worker computed at the source;
    a mismatch means the result was corrupted in transit (or by an
    injected fault) and must not be accepted."""


class CheckpointError(ReproError):
    """A checkpoint record could not be written, read, or trusted
    (unreadable directory, malformed record, coordinates that do not
    match the job being resumed, ...)."""


class LintError(ReproError):
    """The static-analysis runner was misused (unknown rule code,
    unreadable path, ...).  Rule *findings* are data, not exceptions."""


class ObsError(ReproError):
    """The observability layer was misused (conflicting metric
    registration, invalid histogram buckets, malformed manifest or
    trace artifact, ...).  Observation itself never raises on a valid
    run — these errors are construction/IO-time, by design."""
