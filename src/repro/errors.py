"""Exception hierarchy for the SGX preloading reproduction.

All library-specific failures derive from :class:`ReproError` so callers
can catch one base class.  Errors are raised eagerly — a misconfigured
simulation should fail at construction, not produce silently wrong
numbers at the end of a long run.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "ReproError",
    "ConfigError",
    "EpcError",
    "ChannelError",
    "WorkloadError",
    "InstrumentationError",
    "SimulationError",
    "SanitizerError",
    "ParallelExecutionError",
    "LintError",
    "ObsError",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """A simulation or cost-model parameter is out of its valid range."""


class EpcError(ReproError):
    """Invalid EPC operation (double insert, evicting a non-resident page,
    inserting into a full EPC without a victim, ...)."""


class ChannelError(ReproError):
    """Invalid load-channel operation (issuing a load while one is in
    flight, completing a load that was never started, ...)."""


class WorkloadError(ReproError):
    """A workload is malformed (unknown name, empty trace, page outside
    the declared footprint, unknown input set, ...)."""


class InstrumentationError(ReproError):
    """The SIP compiler pass was asked to instrument an instruction it
    has no profile for, or was given an invalid threshold."""


class SimulationError(ReproError):
    """The simulation engine detected an internal inconsistency (time
    moving backwards, more resident pages than EPC frames, ...)."""


class SanitizerError(SimulationError):
    """The opt-in runtime sanitizer caught an invariant violation.

    Carries the tail of the event trace leading up to the violation in
    :attr:`trace` so the broken sequence can be diagnosed without
    re-running with full event recording.
    """

    def __init__(self, message: str, trace: Iterable[str] = ()) -> None:
        self.trace = tuple(trace)
        if self.trace:
            tail = "\n".join(f"    {entry}" for entry in self.trace)
            message = f"{message}\n  event trace (oldest first):\n{tail}"
        super().__init__(message)


class ParallelExecutionError(SimulationError):
    """A worker of the parallel experiment runner failed.

    Names the job that died (:attr:`job`) so a many-point sweep does
    not reduce a single bad configuration to an anonymous pool
    traceback.  The worker's original exception is chained as
    ``__cause__``.
    """

    def __init__(self, message: str, job: str = "") -> None:
        #: Human-readable description of the failed job
        #: (``workload/scheme/seed/input_set``).
        self.job = job
        super().__init__(message)


class LintError(ReproError):
    """The static-analysis runner was misused (unknown rule code,
    unreadable path, ...).  Rule *findings* are data, not exceptions."""


class ObsError(ReproError):
    """The observability layer was misused (conflicting metric
    registration, invalid histogram buckets, malformed manifest or
    trace artifact, ...).  Observation itself never raises on a valid
    run — these errors are construction/IO-time, by design."""
