"""Checkpoint/resume for sweeps: one manifest record per completed run.

A paper-scale sweep is minutes of wall-clock across dozens of points;
losing all of it to one late crash is exactly the failure mode the
resilience layer exists to remove.  The store here persists every
completed run as a ``repro.run-manifest/1`` record (the same schema
``repro run --manifest`` writes and ``repro report`` diffs) in a
*content-addressed* directory: the filename is the SHA-256 of the
job's full coordinates — workload recipe, scheme, seed, input set,
and the entire configuration snapshot.  Restarting the same sweep
finds the records of every point that already finished and skips
re-executing them; changing any coordinate changes the address, so a
stale record can never be served for a different experiment.

Because manifests are deliberately wall-clock-free and the simulator
is deterministic, a resumed sweep's manifest collection is
byte-identical to an uninterrupted run's — proved by
``tests/robust/test_checkpoint.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import CheckpointError
from repro.obs.manifest import MANIFEST_SCHEMA, load_manifest

__all__ = ["CheckpointStore", "checkpoint_key"]

#: Schema identifier for the coordinate payload a key digests.
_KEY_SCHEMA = "repro.job-key/1"


def checkpoint_key(coordinates: Dict[str, object]) -> str:
    """Content address for one job's coordinate payload.

    ``coordinates`` must be a JSON-serializable dict fully naming the
    run (the runner builds it from a
    :class:`~repro.sim.parallel.JobSpec`); the key is the SHA-256 of
    its canonical JSON form, so equal experiments share an address and
    any coordinate change moves it.
    """
    payload = dict(coordinates)
    payload["schema"] = _KEY_SCHEMA
    try:
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"job coordinates are not canonically serializable: {exc}"
        ) from exc
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CheckpointStore:
    """A directory of completed-run manifests, addressed by job key."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint directory {self.directory}: {exc}"
            ) from exc

    def path_for(self, key: str) -> Path:
        """Where the record for ``key`` lives."""
        return self.directory / f"{key}.manifest.json"

    def load(self, key: str) -> Optional[Dict[str, object]]:
        """The stored manifest for ``key``, or None if not checkpointed.

        A present-but-unreadable record raises
        :class:`~repro.errors.CheckpointError`: silently re-running a
        point whose record rotted would mask the rot.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            return load_manifest(path)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint record {path} is unreadable or malformed: {exc}"
            ) from exc

    def store(self, key: str, manifest: Dict[str, object]) -> Path:
        """Persist ``manifest`` under ``key``, atomically.

        Written to a temporary sibling and renamed into place, so a
        kill mid-write leaves either the old record or none — never a
        truncated one that would poison a resume.
        """
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise CheckpointError(
                f"refusing to checkpoint a record with schema "
                f"{manifest.get('schema')!r}; expected {MANIFEST_SCHEMA!r}"
            )
        path = self.path_for(key)
        tmp = path.with_suffix(".tmp")
        try:
            tmp.write_text(
                json.dumps(manifest, sort_keys=True, indent=2) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, path)
        except OSError as exc:
            raise CheckpointError(
                f"cannot write checkpoint record {path}: {exc}"
            ) from exc
        return path

    def keys(self) -> list:
        """All checkpointed job keys, sorted."""
        return sorted(
            p.name[: -len(".manifest.json")]
            for p in self.directory.glob("*.manifest.json")
        )

    def __len__(self) -> int:
        return len(self.keys())
