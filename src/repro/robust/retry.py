"""Retry policy: bounded attempts, exponential backoff, per-job timeout.

A failed job attempt (worker exception, timeout, integrity mismatch)
is retried up to :attr:`RetryPolicy.max_attempts` times, with an
exponentially growing delay between attempts.  The backoff is
deliberately jitter-free: retries change *when* a job runs, never
*what* it computes, and a deterministic schedule keeps the resilience
machinery as replayable as the simulations it protects.

Real-time waiting happens through :func:`repro.robust.faults.sleep`,
the tree's single sanctioned delay (lint rule RL008).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.robust.faults import sleep

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many chances a job gets, and how long to wait between them.

    The default — one attempt, no timeout — is exactly the pre-policy
    behaviour: fail fast, change nothing.
    """

    #: Total execution attempts per job (1 = no retries).
    max_attempts: int = 1
    #: Backoff before retry ``n`` (1-based) is ``base_delay * 2**(n-1)``
    #: seconds, capped at :attr:`max_delay`.
    base_delay: float = 0.01
    #: Per-attempt wall-clock budget in seconds; ``None`` disables
    #: timeout detection.  An attempt that exceeds it is abandoned and
    #: counted as a :class:`~repro.errors.JobTimeoutError`.
    timeout: Optional[float] = None
    #: Ceiling on a single backoff delay, in seconds.
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.base_delay < 0:
            raise ConfigError(
                f"base_delay must be non-negative, got {self.base_delay}"
            )
        if self.max_delay < 0:
            raise ConfigError(
                f"max_delay must be non-negative, got {self.max_delay}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(
                f"timeout must be positive when set, got {self.timeout}"
            )

    def delay_for(self, retry_number: int) -> float:
        """Backoff in seconds before 1-based retry ``retry_number``."""
        if retry_number < 1:
            raise ConfigError(
                f"retry_number is 1-based, got {retry_number}"
            )
        return min(self.base_delay * 2 ** (retry_number - 1), self.max_delay)

    def backoff(self, retry_number: int) -> None:
        """Sleep out the backoff before 1-based retry ``retry_number``."""
        sleep(self.delay_for(retry_number))

    @property
    def retries_enabled(self) -> bool:
        """Whether this policy ever grants a second attempt."""
        return self.max_attempts > 1
