"""ExecutionPolicy: one object configuring how experiments execute.

PR 3 gave the drivers ``jobs=``; this layer adds retry, timeout,
checkpoint/resume, progress, and fault injection — and rather than
growing every driver signature by six kwargs, all of it lives behind
one frozen :class:`ExecutionPolicy` accepted as ``policy=`` by
:func:`repro.sim.parallel.run_jobs`,
:func:`repro.sim.sweep.compare_schemes` and
:func:`repro.sim.sweep.sweep_config` (and built by the CLI's shared
``--jobs/--retries/--timeout/--checkpoint/--resume/--progress``
flags).  The legacy ``jobs=`` kwarg still works but emits a
:class:`DeprecationWarning` and maps onto a policy via
:func:`resolve_policy`.

The default policy is the pre-policy behaviour exactly: serial, one
attempt, no timeout, no checkpointing, no faults — so ``policy=None``
callers see nothing change, and a resilient ``jobs=4`` run with no
faults injected stays byte-identical to a serial run.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from repro.errors import ConfigError
from repro.robust.faults import FaultPlan
from repro.robust.retry import RetryPolicy

__all__ = ["ExecutionPolicy", "resolve_policy"]


@dataclass(frozen=True)
class ExecutionPolicy:
    """The single execution-configuration path for experiment runs."""

    #: Worker-process count; 1 runs serially in-process.
    jobs: int = 1
    #: Attempt budget and backoff schedule for failing jobs.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Per-job wall-clock budget in seconds.  Shorthand that overrides
    #: ``retry.timeout`` when set; see :attr:`effective_timeout`.
    timeout: Optional[float] = None
    #: Directory of completed-run checkpoint records
    #: (:class:`repro.robust.checkpoint.CheckpointStore`); None
    #: disables checkpointing.
    checkpoint_dir: Optional[Union[str, Path]] = None
    #: Skip jobs whose checkpoint record already exists.  Requires
    #: :attr:`checkpoint_dir`.
    resume: bool = False
    #: Progress callback; the sweep drivers deliver
    #: :class:`~repro.sim.sweep.SweepProgress` ticks through it.
    #: Excluded from comparison — observing progress is not part of
    #: the experiment's identity.
    progress: Optional[Callable[..., None]] = field(
        default=None, compare=False
    )
    #: Deterministic fault-injection schedule, for testing the
    #: machinery above without real flakiness.
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigError(f"jobs must be at least 1, got {self.jobs}")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(
                f"timeout must be positive when set, got {self.timeout}"
            )
        if self.resume and self.checkpoint_dir is None:
            raise ConfigError(
                "resume=True needs a checkpoint_dir to resume from"
            )

    @property
    def effective_timeout(self) -> Optional[float]:
        """The per-job timeout actually in force."""
        return self.timeout if self.timeout is not None else self.retry.timeout

    @property
    def max_attempts(self) -> int:
        """Attempt budget per job (from the retry policy)."""
        return self.retry.max_attempts

    @property
    def is_resilient(self) -> bool:
        """Whether any feature beyond plain serial execution is on.

        The sweep drivers use this to decide that execution must route
        through the job runner (which in turn requires picklable
        :class:`~repro.sim.parallel.WorkloadSpec` coordinates).
        """
        return (
            self.jobs > 1
            or self.retry.retries_enabled
            or self.effective_timeout is not None
            or self.checkpoint_dir is not None
            or self.fault_plan is not None
        )

    def summary(self) -> dict:
        """Deterministic policy fingerprint for telemetry manifests.

        Plain JSON-able values only (no paths, no callables): the
        checkpoint directory is summarized as a boolean because its
        absolute path would vary across machines and break manifest
        byte-identity.
        """
        return {
            "jobs": self.jobs,
            "max_attempts": self.max_attempts,
            "timeout_s": self.effective_timeout,
            "checkpointing": self.checkpoint_dir is not None,
            "resume": self.resume,
            "fault_plan": self.fault_plan is not None,
        }

    def with_progress(
        self, progress: Optional[Callable[..., None]]
    ) -> "ExecutionPolicy":
        """A copy carrying ``progress`` (frozen-dataclass idiom)."""
        import dataclasses

        return dataclasses.replace(self, progress=progress)


def resolve_policy(
    policy: Optional[ExecutionPolicy] = None,
    jobs: Optional[int] = None,
    *,
    caller: str = "run_jobs",
) -> ExecutionPolicy:
    """Normalize the ``policy=`` / legacy ``jobs=`` pair to one policy.

    ``jobs=`` is the PR-3 spelling: still honoured, but it warns and
    maps onto ``ExecutionPolicy(jobs=...)``.  Passing both is an error
    — two sources of truth for the worker count is how sweeps end up
    running a different experiment than the one reported.
    """
    if jobs is not None:
        if policy is not None:
            raise ConfigError(
                f"{caller}: pass either policy= or the deprecated jobs=, "
                "not both"
            )
        warnings.warn(
            f"{caller}(jobs=...) is deprecated; pass "
            "policy=ExecutionPolicy(jobs=...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return ExecutionPolicy(jobs=jobs)
    return policy if policy is not None else ExecutionPolicy()
