"""repro.robust — resilient experiment execution.

The paper's headline results come from long multi-point, multi-scheme
sweeps; PR 3 made them fast (process-pool fan-out), this layer makes
them survivable.  Four capabilities, all configured through one
:class:`~repro.robust.policy.ExecutionPolicy` object:

* **retry & timeout** (:mod:`repro.robust.retry`) — bounded attempts
  with deterministic exponential backoff and a per-job wall-clock
  budget;
* **checkpoint/resume** (:mod:`repro.robust.checkpoint`) — every
  completed run persisted as a ``repro.run-manifest/1`` record in a
  content-addressed directory, so an interrupted sweep restarts where
  it died and its final manifests stay byte-identical to an
  uninterrupted run;
* **fault injection** (:mod:`repro.robust.faults`) — a seed-driven,
  picklable :class:`~repro.robust.faults.FaultPlan` scripting worker
  crashes, hangs, result corruption, transient submission errors and
  hard pool breaks, so all of the above is testable without real
  flakiness;
* **the policy object** (:mod:`repro.robust.policy`) — the single
  execution-configuration path accepted by ``run_jobs``,
  ``compare_schemes`` and ``sweep_config`` (legacy ``jobs=`` maps
  onto it with a :class:`DeprecationWarning`).

This package is also the tree's one sanctioned home for real-time
delays: lint rule RL008 bans bare ``time.sleep`` everywhere else, so
every wall-clock wait (injected hang, retry backoff) stays auditable
in one place.
"""

from repro.robust.checkpoint import CheckpointStore, checkpoint_key
from repro.robust.faults import (
    FaultKind,
    FaultPlan,
    InjectedWorkerCrash,
    perform_worker_fault,
    sleep,
)
from repro.robust.policy import ExecutionPolicy, resolve_policy
from repro.robust.retry import RetryPolicy

__all__ = [
    "CheckpointStore",
    "checkpoint_key",
    "ExecutionPolicy",
    "FaultKind",
    "FaultPlan",
    "InjectedWorkerCrash",
    "RetryPolicy",
    "perform_worker_fault",
    "resolve_policy",
    "sleep",
]
