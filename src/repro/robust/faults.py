"""Deterministic fault injection for the experiment runner.

The retry/timeout/checkpoint machinery in :mod:`repro.sim.parallel`
exists to survive real flakiness — a worker segfaulting mid-sweep, a
hung NFS mount, a corrupted pickle — but real flakiness is the worst
possible test input: rare, irreproducible, and absent on CI exactly
when you need it.  A :class:`FaultPlan` replaces it with *scripted*
misbehaviour: a picklable, seed-driven plan that decides, for every
``(job_index, attempt)`` coordinate, whether to inject a fault and
which kind.  The same plan injects the same faults on every run, so a
test asserting "crash on attempt 1, succeed on attempt 2" is exactly
as deterministic as the simulations themselves.

Fault classes (mirroring the failure modes the runner must survive):

* :attr:`FaultKind.CRASH` — the worker raises
  :class:`InjectedWorkerCrash` mid-job, modelling an arbitrary
  in-worker exception; retryable.
* :attr:`FaultKind.HANG` — the worker stalls past the policy's
  per-job timeout (in a pool worker it really sleeps; on the serial
  path the runner converts it synchronously into a
  :class:`~repro.errors.JobTimeoutError` — sleeping the only process
  there is would turn a simulated hang into a real one).
* :attr:`FaultKind.CORRUPT` — the worker's :class:`RunResult` is
  tampered with *after* its integrity digest was computed, modelling
  corruption in transit; caught by the runner's replayed-manifest
  digest check.
* :attr:`FaultKind.SUBMIT_ERROR` — a transient ``OSError`` at pool
  submission time (fork failure, fd exhaustion); injected parent-side
  and absorbed by the submission retry loop.
* :attr:`FaultKind.POOL_BREAK` — the worker process dies hard
  (``os._exit``), breaking the whole pool; exercises the runner's
  graceful degradation to serial in-process execution.  On the serial
  path it downgrades to a :attr:`~FaultKind.CRASH` (killing the only
  process would end the experiment, not test it).

This module is part of ``repro.robust``, the one package allowed to
call ``time.sleep`` (lint rule RL008): every real-time delay in the
tree — injected hangs and retry backoff alike — must be auditable in
one place.
"""

from __future__ import annotations

import enum
import os
import random
import time
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple, Union

from repro.errors import ConfigError

__all__ = [
    "FaultKind",
    "FaultPlan",
    "InjectedWorkerCrash",
    "perform_worker_fault",
    "sleep",
]


def sleep(seconds: float) -> None:
    """The tree's single sanctioned real-time delay (rule RL008).

    Wall-clock waits are invisible to the virtual-cycle determinism
    contract but very visible to operators and CI; routing them all
    through here keeps every sleep greppable and bounded.
    """
    if seconds > 0:
        time.sleep(seconds)


class InjectedWorkerCrash(RuntimeError):
    """The stand-in for an arbitrary worker exception.

    Deliberately *not* a :class:`~repro.errors.ReproError`: a real
    crash would be some foreign exception the runner has never heard
    of, so the injected one must exercise the same generic handling.
    """


class FaultKind(enum.Enum):
    """One class of injected misbehaviour (see the module docstring)."""

    CRASH = "crash"
    HANG = "hang"
    CORRUPT = "corrupt"
    SUBMIT_ERROR = "submit-error"
    POOL_BREAK = "pool-break"

    @classmethod
    def coerce(cls, value: Union["FaultKind", str]) -> "FaultKind":
        """Accept a member or its string value; reject anything else."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            names = ", ".join(kind.value for kind in cls)
            raise ConfigError(
                f"unknown fault kind {value!r}; expected one of: {names}"
            ) from None


#: The order rate-driven draws are evaluated in — fixed, so a plan's
#: decisions are a pure function of (seed, job_index, attempt).
_RATE_ORDER: Tuple[Tuple[FaultKind, str], ...] = (
    (FaultKind.CRASH, "crash_rate"),
    (FaultKind.HANG, "hang_rate"),
    (FaultKind.CORRUPT, "corrupt_rate"),
    (FaultKind.SUBMIT_ERROR, "submit_error_rate"),
    (FaultKind.POOL_BREAK, "pool_break_rate"),
)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, picklable schedule of injected faults.

    Two ways to drive it, composable:

    * **scripted** — an explicit ``{(job_index, attempt): kind}``
      mapping (build with :meth:`script`); the test-suite workhorse,
      because "job 2 crashes once" is an assertable sentence;
    * **rate-driven** — per-kind probabilities drawn from a
      :class:`random.Random` seeded with the string
      ``"{seed}:{job_index}:{attempt}"``, so the decision for one
      coordinate is stable across runs, processes, and platforms
      (string seeding hashes with SHA-512, not ``PYTHONHASHSEED``).

    Scripted entries win over rate draws for their coordinate.
    Attempts are 1-based, matching the runner's attempt counter.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    submit_error_rate: float = 0.0
    pool_break_rate: float = 0.0
    #: How long an injected hang stalls a pool worker, in seconds.
    #: Must exceed the policy timeout to register as a hang.
    hang_s: float = 0.5
    #: Normalized scripted faults; prefer :meth:`script` over spelling
    #: this tuple-of-pairs form by hand.
    scripted: Tuple[Tuple[Tuple[int, int], FaultKind], ...] = ()

    def __post_init__(self) -> None:
        for _, field_name in _RATE_ORDER:
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(
                    f"{field_name} must be within [0, 1], got {rate}"
                )
        if self.hang_s <= 0:
            raise ConfigError(f"hang_s must be positive, got {self.hang_s}")
        normalized = tuple(
            ((int(job), int(attempt)), FaultKind.coerce(kind))
            for (job, attempt), kind in self.scripted
        )
        object.__setattr__(self, "scripted", normalized)

    @classmethod
    def script(
        cls,
        faults: Mapping[Tuple[int, int], Union[FaultKind, str]],
        **kwargs: object,
    ) -> "FaultPlan":
        """Build a plan from ``{(job_index, attempt): kind}``."""
        scripted = tuple(
            (coordinate, FaultKind.coerce(kind))
            for coordinate, kind in sorted(faults.items())
        )
        return cls(scripted=scripted, **kwargs)  # type: ignore[arg-type]

    @property
    def injects_anything(self) -> bool:
        """Whether this plan can ever fire (cheap short-circuit)."""
        return bool(self.scripted) or any(
            getattr(self, field_name) > 0.0 for _, field_name in _RATE_ORDER
        )

    def fault_for(self, job_index: int, attempt: int) -> Optional[FaultKind]:
        """The fault injected at ``(job_index, attempt)``, or None.

        Pure: same plan, same coordinate, same answer — in the parent
        and in every worker process.
        """
        for coordinate, kind in self.scripted:
            if coordinate == (job_index, attempt):
                return kind
        rng = random.Random(f"fault:{self.seed}:{job_index}:{attempt}")
        for kind, field_name in _RATE_ORDER:
            rate = getattr(self, field_name)
            if rate > 0.0 and rng.random() < rate:
                return kind
        return None


def perform_worker_fault(
    fault: Optional[FaultKind], *, in_worker: bool, hang_s: float = 0.5
) -> None:
    """Act out a worker-side fault at the start of a job attempt.

    ``in_worker`` distinguishes a pool worker process (where a hang
    really sleeps and a pool-break really exits) from the serial
    in-process path (where both would take the experiment down with
    them, so they are converted: hang is handled by the *runner* as a
    synchronous timeout before this is ever called, and pool-break
    downgrades to a crash).

    :attr:`FaultKind.CORRUPT` and :attr:`FaultKind.SUBMIT_ERROR` are
    not performed here — corruption is applied to the finished result
    and submission errors are injected parent-side.
    """
    if fault is FaultKind.CRASH:
        raise InjectedWorkerCrash("injected worker crash")
    if fault is FaultKind.POOL_BREAK:
        if in_worker:
            os._exit(3)
        raise InjectedWorkerCrash("injected pool break (serial: crash)")
    if fault is FaultKind.HANG and in_worker:
        # The plan's hang_s outlives the policy timeout; the parent
        # abandons this attempt and the worker frees up afterwards.
        sleep(hang_s)
