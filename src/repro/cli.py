"""Command-line interface: ``python -m repro <command>``.

Thin, scriptable access to the library's main flows:

* ``list`` — available workload models and their paper groupings;
* ``run`` — one workload under one scheme, with the cycle breakdown;
  ``--metrics`` dumps the observability registry, ``--trace`` writes a
  Chrome ``trace_event`` file (load it in Perfetto), ``--manifest``
  writes the run's self-describing JSON record;
* ``report`` — diff two run manifests: cycle attribution of the delta
  plus every counter that moved (:mod:`repro.obs.diff`); with a single
  manifest, render it — including the execution-telemetry fleet table
  when the record carries one;
* ``compare`` — several schemes on one workload, normalized;
* ``profile`` — the SIP profiling run and instrumentation plan; with
  ``--schemes``, the paging-decision profiler instead
  (:mod:`repro.obs.paging`): per-scheme preload effectiveness,
  fault-cause attribution, phase tables and heatmaps, plus a
  scheme-vs-scheme effectiveness diff, with ``--artifacts DIR``
  writing the ``repro.paging-profile/1`` JSON, residency Chrome
  traces and heatmap text files;
* ``classify`` — the Table 1 classification of the models;
* ``sweep`` — a one-parameter sweep (e.g. LOADLENGTH, Figure 7 style),
  with ``--progress`` ETA + fleet-health ticks on stderr;
* ``lint`` — the repo-specific static-analysis pass: per-file rules
  RL001–RL012, plus (with ``--deep``) the whole-program rules
  RL101–RL104 over a shared AST cache; ``--sarif`` exports SARIF
  2.1.0, ``--baseline`` absorbs known findings, ``--changed`` reports
  only files touched vs. a git ref (see :mod:`repro.lint`).

Flags are shared through three argparse *parent parsers* rather than
re-declared per command:

* the **simulation parent** — ``--scale`` (default 16: EPC and
  workload footprints shrink together, preserving normalized results,
  DESIGN.md §6), ``--seed``, ``--input-set``, and ``--sanitize`` (the
  runtime invariant sanitizer, :mod:`repro.enclave.sanitizer`);
* the **execution parent** (``run``/``compare``/``sweep``) —
  ``--jobs/--retries/--timeout/--checkpoint/--resume/--progress``,
  compiled by one helper into the
  :class:`~repro.robust.ExecutionPolicy` handed to the drivers.
  ``--jobs N`` fans simulations over N worker processes with results
  byte-identical to the serial run; ``--retries``/``--timeout`` bound
  flaky or wedged jobs; ``--checkpoint DIR`` persists each completed
  run as a manifest record and ``--resume`` skips the ones already
  there, so an interrupted sweep restarts where it died;
* the **observation parent** (``run``/``compare``/``sweep``) —
  ``--metrics/--trace/--trace-capacity/--manifest``.  Since PR 5 these
  compose with any execution policy: resilient jobs ship their metric
  and trace dumps back with the digest-checked result envelope, the
  parent merges them deterministically, and the execution layer itself
  is recorded (attempts, retries, timeouts, injected faults,
  checkpoint I/O) as the ``repro.exec-telemetry/1`` manifest block and
  per-worker Chrome tracks.  The one genuinely unsupported combination
  is ``--resume`` with any observation flag: checkpoint-restored runs
  never executed, so they have no telemetry to ship, and a partially
  observed record would silently diverge from a fully computed one.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.metrics import summarize_results
from repro.analysis.patterns import classify_benchmark
from repro.analysis.report import format_table, render_series
from repro.core.config import SimConfig
from repro.core.profiler import profile_workload
from repro.core.instrumentation import build_sip_plan
from repro.core.schemes import SCHEME_NAMES
from repro.errors import ConfigError, ReproError
from repro.robust import ExecutionPolicy, RetryPolicy
from repro.sim.engine import ENGINE_CHOICES, simulate
from repro.sim.fleet import EPC_POLICIES as FLEET_POLICIES
from repro.sim.parallel import JobSpec, WorkloadSpec, run_jobs
from repro.sim.sweep import compare_schemes, sweep_config
from repro.workloads.registry import (
    LARGE_IRREGULAR,
    LARGE_REGULAR,
    SMALL_WORKING_SET,
    WORKLOAD_NAMES,
    build_workload,
)

__all__ = ["main", "build_parser"]

#: Config fields the sweep command may vary.
SWEEPABLE = (
    "load_length",
    "stream_list_length",
    "sip_threshold",
    "valve_slack",
    "valve_ratio",
    "epc_pages",
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Regaining Lost Seconds: Efficient Page "
            "Preloading for SGX Enclaves' (Middleware '20)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared flag groups, declared once as argparse parent parsers.
    sim_parent = argparse.ArgumentParser(add_help=False)
    sim_parent.add_argument("--scale", type=int, default=16,
                            help="EPC/footprint scale factor (default 16)")
    sim_parent.add_argument("--seed", type=int, default=0)
    sim_parent.add_argument("--input-set", choices=("train", "ref"),
                            default="ref")
    sim_parent.add_argument("--sanitize", action="store_true",
                            help="run under the runtime invariant sanitizer "
                                 "(same results, per-event checking)")

    exec_parent = argparse.ArgumentParser(add_help=False)
    exec_parent.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="worker processes (1 = serial; results "
                                  "are identical either way)")
    exec_parent.add_argument("--retries", type=int, default=0, metavar="N",
                             help="re-run a failed job up to N extra times "
                                  "with exponential backoff (default 0)")
    exec_parent.add_argument("--timeout", type=float, default=None,
                             metavar="SECONDS",
                             help="per-job wall-clock budget; a timed-out "
                                  "attempt counts as a failure and retries")
    exec_parent.add_argument("--checkpoint", default=None, metavar="DIR",
                             help="persist each completed run as a manifest "
                                  "record in DIR")
    exec_parent.add_argument("--resume", action="store_true",
                             help="skip jobs already recorded in the "
                                  "--checkpoint directory")
    exec_parent.add_argument("--progress", action="store_true",
                             help="print per-point progress and ETA to "
                                  "stderr")

    obs_parent = argparse.ArgumentParser(add_help=False)
    obs_parent.add_argument("--metrics", action="store_true",
                            dest="show_metrics",
                            help="collect and print the metrics registry "
                                 "dump (merged across workers under --jobs)")
    obs_parent.add_argument("--trace", default=None, metavar="FILE",
                            help="write a Chrome trace_event JSON of the run "
                                 "(open in Perfetto or chrome://tracing); "
                                 "under a resilient policy the export also "
                                 "carries per-worker execution tracks")
    obs_parent.add_argument("--trace-capacity", type=int, default=None,
                            metavar="N",
                            help="bound the trace ring buffer to the most "
                                 "recent N events (default 1048576)")
    obs_parent.add_argument("--manifest", default=None, metavar="FILE",
                            help="write the run manifest JSON (config "
                                 "snapshot, stats, metrics, execution "
                                 "telemetry; inspect with 'repro report')")
    obs_parent.add_argument("--metrics-format",
                            choices=("table", "openmetrics"),
                            default="table", dest="metrics_format",
                            help="metrics rendering: aligned table "
                                 "(default) or OpenMetrics/Prometheus "
                                 "text exposition for scraping")

    def add_common(p: argparse.ArgumentParser, workload: bool = True) -> None:
        if workload:
            p.add_argument("workload", choices=WORKLOAD_NAMES)

    sub.add_parser("list", help="list workload models")

    p_run = sub.add_parser("run", help="run one workload under one scheme",
                           parents=[sim_parent, exec_parent, obs_parent])
    add_common(p_run)
    p_run.add_argument("--scheme", choices=SCHEME_NAMES, default="baseline")
    p_run.add_argument("--engine", choices=ENGINE_CHOICES, default="auto",
                       help="hot-loop engine: 'batched' materializes the "
                       "trace and retires resident runs in bulk, 'scalar' "
                       "walks it per event, 'auto' picks batched whenever "
                       "it applies; results are identical either way "
                       "(default: %(default)s)")
    p_run.add_argument("--paging-profile", default=None, metavar="FILE",
                       dest="paging_profile",
                       help="attach the paging-decision profiler and write "
                            "its repro.paging-profile/1 JSON to FILE "
                            "(serial runs only; also embedded in "
                            "--manifest)")

    p_rep = sub.add_parser(
        "report",
        help="diff two run manifests, or render one (incl. exec telemetry)",
    )
    p_rep.add_argument("manifest_a", help="baseline manifest (A)")
    p_rep.add_argument("manifest_b", nargs="?", default=None,
                       help="comparison manifest (B); omit to render A "
                            "alone, with its execution-telemetry fleet "
                            "table when present")
    p_rep.add_argument("--format", choices=("text", "json"), default="text",
                       dest="output_format")

    p_cmp = sub.add_parser("compare", help="compare schemes on one workload",
                           parents=[sim_parent, exec_parent, obs_parent])
    add_common(p_cmp)
    p_cmp.add_argument(
        "--schemes",
        default="baseline,dfp,dfp-stop,sip,hybrid",
        help="comma-separated scheme names",
    )

    p_prof = sub.add_parser(
        "profile",
        help="SIP instrumentation plan, or (--schemes) the paging profiler",
        parents=[sim_parent],
    )
    add_common(p_prof)
    p_prof.add_argument("--threshold", type=float, default=None,
                        help="irregular-ratio threshold (default: config's 5%%)")
    p_prof.add_argument("--top", type=int, default=10,
                        help="show the top N sites by irregular ratio")
    p_prof.add_argument("--schemes", default=None, metavar="A,B",
                        help="run the paging-decision profiler over these "
                             "schemes instead: per-scheme effectiveness, "
                             "phases, heatmap, and a scheme-vs-scheme diff")
    p_prof.add_argument("--window", type=int, default=1024, metavar="N",
                        help="phase-segmentation window in accesses "
                             "(default 1024)")
    p_prof.add_argument("--artifacts", default=None, metavar="DIR",
                        help="write per-scheme paging-profile JSON, "
                             "residency Chrome trace and heatmap files "
                             "into DIR")
    p_prof.add_argument("--format", choices=("text", "json"), default="text",
                        dest="output_format")

    p_cls = sub.add_parser("classify", help="Table 1 classification")
    p_cls.add_argument("workloads", nargs="*", default=[],
                       help="workloads (default: all)")
    p_cls.add_argument("--scale", type=int, default=16)
    p_cls.add_argument("--seed", type=int, default=0)

    p_swp = sub.add_parser("sweep", help="sweep one config parameter",
                           parents=[sim_parent, exec_parent, obs_parent])
    add_common(p_swp)
    p_swp.add_argument("--param", choices=SWEEPABLE, required=True)
    p_swp.add_argument("--values", required=True,
                       help="comma-separated parameter values")
    p_swp.add_argument("--scheme", choices=SCHEME_NAMES, default="dfp-stop")

    p_fleet = sub.add_parser(
        "fleet",
        help="run a named multi-tenant fleet scenario",
        description=(
            "Run a named fleet scenario (tens of tenants with arrival/"
            "departure churn, admission control, spin-up traffic and "
            "open-loop request streams) against one shared EPC, and "
            "render the per-tenant QoS table.  --policy overrides the "
            "scenario's EPC frame policy; --policies runs the same "
            "scenario+seed under several policies and renders the "
            "side-by-side QoS comparison.  The run is deterministic: "
            "the same scenario and seed produce a byte-identical "
            "repro.fleet-manifest/1 block.  --timeseries attaches the "
            "passive windowed sampler (repro.fleet-timeseries/1: "
            "per-tenant and fleet-wide series, rebalance decisions) "
            "and renders sparkline time-series; --slo evaluates "
            "breach intervals over it; --trace/--openmetrics export "
            "the series as a Chrome trace / OpenMetrics exposition.  "
            "Observation is passive: the manifest block stays "
            "byte-identical to a blind run."
        ),
    )
    p_fleet.add_argument("scenario", nargs="?", default=None,
                         help="scenario name (see --list)")
    p_fleet.add_argument("--list", action="store_true", dest="list_scenarios",
                         help="list the named scenarios and exit")
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.add_argument("--policy", choices=FLEET_POLICIES, default=None,
                         help="override the scenario's EPC frame policy")
    p_fleet.add_argument("--policies", default=None, metavar="P1,P2",
                         help="comma-separated EPC policies to compare "
                              "(renders one QoS row per tenant+policy)")
    p_fleet.add_argument("--manifest", default=None, metavar="FILE",
                         help="write the aggregate run manifest (with the "
                              "embedded fleet block) to FILE")
    p_fleet.add_argument("--timeseries", action="store_true",
                         help="attach the windowed sampler and render "
                              "sparkline time-series")
    p_fleet.add_argument("--window-cycles", type=int, default=None,
                         metavar="N",
                         help="sampling window width in cycles (default: "
                              "the scenario's scan period)")
    p_fleet.add_argument("--slo", default=None, metavar="SPEC",
                         help="evaluate SLO breaches, e.g. "
                              "wait_p99=80000,fault_rate=0.2,residency=0.5 "
                              "(implies --timeseries)")
    p_fleet.add_argument("--trace", default=None, metavar="FILE",
                         help="write Chrome counter/lifecycle tracks to "
                              "FILE (implies --timeseries)")
    p_fleet.add_argument("--openmetrics", default=None, metavar="FILE",
                         help="write labeled OpenMetrics series to FILE "
                              "(implies --timeseries)")
    p_fleet.add_argument("--format", choices=("text", "json"),
                         default="text", dest="output_format")

    p_lint = sub.add_parser(
        "lint",
        help="repo-specific static analysis (RL001-RL012, deep RL101-RL104)",
        description=(
            "Repo-specific static analysis.  Per-file rules RL001-RL012 "
            "run by default; --deep adds the whole-program rules "
            "RL101-RL104 (cross-module seed provenance, pickle-safety of "
            "values shipped to workers, wall-clock taint into manifests, "
            "unordered-iteration hazards), which parse the whole tree "
            "once into a shared AST cache and trace dataflow across "
            "function and module boundaries.  Silence a finding in place "
            "with '# repro-lint: disable=RL001' (inline: that line only; "
            "on its own line: whole file; codes comma-separated; "
            "disable=all silences everything) — this works for deep "
            "RL1xx findings too.  --select/--ignore accept any mix of "
            "per-file and RL1xx codes; selecting an RL1xx code enables "
            "the deep pass for it even without --deep."
        ),
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to check (default: src)",
    )
    p_lint.add_argument("--format", choices=("text", "json"), default="text",
                        dest="output_format")
    p_lint.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run, per-file "
                             "and/or RL1xx (default: all per-file rules, "
                             "plus all deep rules under --deep)")
    p_lint.add_argument("--ignore", default=None, metavar="CODES",
                        help="comma-separated rule codes to skip (applies "
                             "after --select)")
    p_lint.add_argument("--deep", action="store_true",
                        help="also run the whole-program rules RL101-RL104 "
                             "(cross-module taint over one shared AST "
                             "cache)")
    p_lint.add_argument("--changed", nargs="?", const="origin/main",
                        default=None, metavar="REF",
                        help="only report findings in files changed vs. REF "
                             "(default origin/main); deep rules still "
                             "analyze the whole program")
    p_lint.add_argument("--baseline", default=None, metavar="FILE",
                        help="silence findings recorded in FILE "
                             "(repro.lint-baseline/1); stale entries are "
                             "reported")
    p_lint.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="write the run's findings to FILE as a fresh "
                             "baseline and exit 0")
    p_lint.add_argument("--sarif", default=None, metavar="FILE",
                        help="also write the findings as SARIF 2.1.0 to "
                             "FILE (for GitHub code scanning)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="list the rule catalogue (per-file + deep) "
                             "and exit")
    return parser


def _config(args: argparse.Namespace) -> SimConfig:
    config = SimConfig.scaled(args.scale)
    if getattr(args, "sanitize", False):
        config = config.replace(sanitize=True)
    return config


def _policy_from_args(args: argparse.Namespace) -> ExecutionPolicy:
    """Compile the shared execution flags into one ExecutionPolicy.

    The single place where ``--jobs/--retries/--timeout/--checkpoint/
    --resume`` become execution configuration; ``run``, ``compare``
    and ``sweep`` all build their policy here.  ``--retries N`` means
    N *extra* attempts, so the attempt budget is ``N + 1``.
    """
    return ExecutionPolicy(
        jobs=args.jobs,
        retry=RetryPolicy(max_attempts=args.retries + 1),
        timeout=args.timeout,
        checkpoint_dir=args.checkpoint,
        resume=args.resume,
    )


def _wants_observation(args: argparse.Namespace) -> bool:
    """Whether any of the shared observation flags was given."""
    return (
        args.show_metrics
        or args.trace is not None
        or args.manifest is not None
    )


def _guard_obs_flags(args: argparse.Namespace, command: str) -> None:
    """Reject the one genuinely unsupported flag combination.

    ``--resume`` serves completed jobs from checkpoint records, which
    record results, not telemetry — a resumed "observed" run would
    ship metrics/traces for the re-executed jobs only and silently
    present the partial merge as the whole fleet's.  Everything else
    (any ``--jobs/--retries/--timeout/--checkpoint`` combination)
    composes with observation since PR 5.
    """
    if args.resume and _wants_observation(args):
        raise ConfigError(
            f"{command}: --metrics/--trace/--manifest cannot combine with "
            "--resume: checkpoint-restored jobs never re-execute, so they "
            "have no telemetry to ship and the merged dump would silently "
            "cover only the re-run jobs — drop --resume to observe the "
            "full fleet, or resume blind"
        )


def _telemetry_from_args(args: argparse.Namespace, *, ship_events: bool):
    """Build the run's :class:`~repro.obs.ExecTelemetry` collector.

    ``ship_events`` decides whether workers ship their full event ring
    (single ``run`` wants the simulation timeline; ``compare``/``sweep``
    traces carry the execution-layer tracks only — shipping N jobs'
    event buffers is single-run tooling).
    """
    from repro.obs.exec_telemetry import ExecTelemetry, TelemetryConfig
    from repro.obs.trace import DEFAULT_EVENT_CAPACITY

    return ExecTelemetry(
        TelemetryConfig(
            metrics=args.show_metrics or args.manifest is not None,
            trace=ship_events and args.trace is not None,
            trace_capacity=(
                args.trace_capacity
                if args.trace_capacity is not None
                else DEFAULT_EVENT_CAPACITY
            ),
        )
    )


def _cmd_list(_args: argparse.Namespace) -> int:
    groups = (
        ("large working set, regular", LARGE_REGULAR),
        ("large working set, irregular", LARGE_IRREGULAR),
        ("small working set", SMALL_WORKING_SET),
        ("vision / synthesized", ("SIFT", "MSER", "mixed-blood", "mcf.2006")),
    )
    rows = [
        [name, group] for group, names in groups for name in names
    ]
    print(format_table(["workload", "paper grouping"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.obs.chrome import write_chrome_trace
    from repro.obs.manifest import build_manifest, write_manifest
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import (
        DEFAULT_EVENT_CAPACITY,
        RingBufferSink,
        event_from_dict,
        register_sink_metrics,
    )

    config = _config(args)
    workload = build_workload(args.workload, scale=args.scale)
    policy = _policy_from_args(args)
    observed = _wants_observation(args)
    _guard_obs_flags(args, "run")
    if args.paging_profile is not None and policy.is_resilient:
        raise ConfigError(
            "run: --paging-profile rides the in-process simulation and "
            "cannot combine with --jobs/--retries/--timeout/--checkpoint "
            "— run serially to profile"
        )
    if args.engine != "auto" and policy.is_resilient:
        raise ConfigError(
            "run: --engine pins the in-process hot loop and cannot "
            "combine with --jobs/--retries/--timeout/--checkpoint — "
            "workers pick their engine themselves; run serially to pin it"
        )
    profiler = None
    paging_block = None
    telemetry = None
    capture: Optional[RingBufferSink] = None
    trace_events = ()
    trace_dropped = 0
    exec_spans = None
    exec_block = None
    if policy.is_resilient:
        if observed:
            telemetry = _telemetry_from_args(args, ship_events=True)
        result = run_jobs(
            [
                JobSpec(
                    workload=WorkloadSpec(args.workload, args.scale),
                    config=config,
                    scheme=args.scheme,
                    seed=args.seed,
                    input_set=args.input_set,
                )
            ],
            policy=policy,
            telemetry=telemetry,
        )[0]
        if telemetry is not None:
            # The worker stripped its dumps off the result before
            # digesting (passivity across the process boundary);
            # re-attach the merged view for display and the manifest.
            merged = telemetry.merged_metrics()
            if merged:
                result = dataclasses.replace(result, metrics=merged)
            trace_events = tuple(
                event_from_dict(record) for record in telemetry.events_for(0)
            )
            trace_dropped = telemetry.total_dropped
            exec_spans = telemetry.spans
            exec_block = telemetry.as_dict()
    else:
        metrics = (
            MetricsRegistry()
            if args.show_metrics or args.manifest is not None
            else None
        )
        if args.trace is not None:
            capture = RingBufferSink(
                args.trace_capacity
                if args.trace_capacity is not None
                else DEFAULT_EVENT_CAPACITY
            )
            if metrics is not None:
                register_sink_metrics(metrics, capture)
        if args.paging_profile is not None:
            from repro.obs.paging import PagingProfiler

            profiler = PagingProfiler()
        result = simulate(
            workload,
            config,
            args.scheme,
            seed=args.seed,
            input_set=args.input_set,
            metrics=metrics,
            tracer=capture,
            profiler=profiler,
            engine=args.engine,
        )
        if capture is not None:
            trace_events = tuple(capture.events)
            trace_dropped = capture.dropped
        if profiler is not None:
            from repro.obs.paging import write_paging_profile

            paging_block = profiler.profile()
            write_paging_profile(args.paging_profile, paging_block)
    print(result.describe())
    tb = result.stats.time
    rows = [
        ["compute", tb.compute],
        ["AEX", tb.aex],
        ["ERESUME", tb.eresume],
        ["fault/channel wait", tb.fault_wait],
        ["SIP checks", tb.sip_check],
        ["SIP waits", tb.sip_wait],
        ["total", tb.total],
    ]
    print()
    print(format_table(["bucket", "cycles"], rows, title="time breakdown"))
    if args.show_metrics and result.metrics is not None:
        print()
        if args.metrics_format == "openmetrics":
            from repro.obs.openmetrics import render_openmetrics

            print(render_openmetrics(result.metrics), end="")
        else:
            metric_rows = [
                [name, _render_metric_value(value)]
                for name, value in result.metrics.items()
            ]
            print(format_table(["metric", "value"], metric_rows, title="metrics"))
    if paging_block is not None:
        from repro.analysis.profile_report import render_profile_summary

        print()
        print("paging profile")
        print(render_profile_summary(paging_block))
        print(f"paging profile -> {args.paging_profile}")
    if args.trace is not None:
        records = write_chrome_trace(
            args.trace,
            trace_events,
            exec_spans=exec_spans,
            dropped_events=trace_dropped,
            paging_profile=paging_block,
        )
        note = f" ({trace_dropped:,} early events dropped)" if trace_dropped else ""
        print(f"\ntrace: {records} records -> {args.trace}{note}")
    if args.manifest is not None:
        write_manifest(
            args.manifest,
            build_manifest(
                result,
                workload=workload,
                exec_telemetry=exec_block,
                paging_profile=paging_block,
            ),
        )
        print(f"manifest -> {args.manifest}")
    if args.trace is not None and trace_dropped:
        # Ring-buffer truncation is easy to miss in the artifact;
        # close the run with an explicit stderr warning.
        print(
            f"warning: trace ring buffer dropped {trace_dropped:,} earliest "
            "event(s); re-run with a larger --trace-capacity for the full "
            "timeline",
            file=sys.stderr,
        )
    return 0


def _render_metric_value(value: object) -> str:
    if isinstance(value, dict):  # histogram dump
        return f"count={value.get('count', 0):,} sum={value.get('sum', 0):,}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.obs.diff import diff_manifests, render_diff
    from repro.obs.manifest import load_manifest

    if args.manifest_b is None:
        return _report_single(load_manifest(args.manifest_a), args)
    doc_a = load_manifest(args.manifest_a)
    doc_b = load_manifest(args.manifest_b)
    diff = diff_manifests(doc_a, doc_b)
    paging_diff = None
    if "paging_profile" in doc_a and "paging_profile" in doc_b:
        from repro.analysis.profile_report import diff_profiles

        paging_diff = diff_profiles(
            doc_a["paging_profile"], doc_b["paging_profile"]
        )
    if args.output_format == "json":
        document = dict(diff)
        if paging_diff is not None:
            document["paging_profiles"] = paging_diff
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(render_diff(diff))
        if paging_diff is not None:
            from repro.analysis.profile_report import render_profile_diff

            label_a = (doc_a.get("run") or {}).get("scheme") or "A"
            label_b = (doc_b.get("run") or {}).get("scheme") or "B"
            print()
            print(
                render_profile_diff(
                    paging_diff, label_a=str(label_a), label_b=str(label_b)
                )
            )
    return 0


def _report_single(manifest: dict, args: argparse.Namespace) -> int:
    """Render one manifest: run summary, metrics health, exec telemetry."""
    import json

    from repro.obs.exec_telemetry import render_exec_report

    if args.output_format == "json":
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0
    run = manifest.get("run", {})
    runs = run.get("runs")
    fleet = f", {runs} run(s)" if runs else ""
    print(
        f"{run.get('workload')} / {run.get('scheme')} "
        f"[{run.get('input_set')}] seed={run.get('seed')}{fleet}"
    )
    print(f"total cycles: {run.get('total_cycles', 0):,}")
    metrics = manifest.get("metrics") or {}
    if metrics:
        dropped = metrics.get("trace.dropped_events", 0)
        dropped_note = (
            f"; {dropped:,} trace event(s) dropped at capacity"
            if dropped
            else ""
        )
        print(f"metrics: {len(metrics)} recorded{dropped_note}")
    block = manifest.get("exec_telemetry")
    if block is not None:
        print()
        print(render_exec_report(block))
    paging = manifest.get("paging_profile")
    if paging is not None:
        from repro.analysis.profile_report import render_profile_summary

        print()
        print("paging profile")
        print(render_profile_summary(paging))
    fleet_block = (manifest.get("extra") or {}).get("fleet")
    if fleet_block is not None:
        from repro.analysis.fleet_report import render_fleet_table

        print()
        print(render_fleet_table(fleet_block))
    timeseries = manifest.get("fleet_timeseries")
    if timeseries is not None:
        from repro.analysis.fleet_report import (
            render_thrash_table,
            render_timeseries,
        )
        from repro.obs.fleet_telemetry import detect_thrash

        print()
        print(render_timeseries(timeseries))
        print()
        print(render_thrash_table(detect_thrash(timeseries)))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = _config(args)
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    _guard_obs_flags(args, "compare")
    telemetry = (
        _telemetry_from_args(args, ship_events=False)
        if _wants_observation(args)
        else None
    )
    results = compare_schemes(
        WorkloadSpec(args.workload, args.scale),
        config,
        schemes,
        seed=args.seed,
        input_set=args.input_set,
        policy=_policy_from_args(args),
        telemetry=telemetry,
    )
    baseline_name = "baseline" if "baseline" in results else schemes[0]
    table = summarize_results(
        {args.workload: results}, baseline=baseline_name
    )[args.workload]
    rows = [
        [name, f"{results[name].total_cycles:,}", f"{table[name]:.3f}",
         f"{results[name].stats.faults:,}"]
        for name in schemes
    ]
    print(
        format_table(
            ["scheme", "cycles", f"vs {baseline_name}", "faults"],
            rows,
            title=f"{args.workload} @ scale {args.scale}",
        )
    )
    _emit_fleet_outputs(
        args, telemetry, [results[name] for name in schemes], schemes
    )
    return 0


def _emit_fleet_outputs(
    args: argparse.Namespace, telemetry, results, labels
) -> None:
    """Shared ``--metrics/--trace/--manifest`` emission (compare/sweep).

    ``results``/``labels`` are in job submission order.  The trace is
    execution-layer only (runner + worker-lane tracks): fleet commands
    do not ship per-job simulation event buffers, that is single-run
    tooling (``repro run --trace``).
    """
    if telemetry is None:
        return
    from repro.obs.chrome import write_chrome_trace
    from repro.obs.exec_telemetry import build_fleet_manifest
    from repro.obs.manifest import write_manifest

    if args.show_metrics:
        merged = telemetry.merged_metrics()
        if merged:
            print()
            if args.metrics_format == "openmetrics":
                from repro.obs.openmetrics import render_openmetrics

                print(render_openmetrics(merged), end="")
            else:
                metric_rows = [
                    [name, _render_metric_value(value)]
                    for name, value in merged.items()
                ]
                print(
                    format_table(
                        ["metric", "value"],
                        metric_rows,
                        title="metrics (merged across jobs)",
                    )
                )
    if args.trace is not None:
        records = write_chrome_trace(
            args.trace,
            (),
            exec_spans=telemetry.spans,
            dropped_events=telemetry.total_dropped,
        )
        print(f"\nexec trace: {records} records -> {args.trace}")
    if args.manifest is not None:
        write_manifest(
            args.manifest,
            build_fleet_manifest(
                list(results), telemetry=telemetry, labels=list(labels)
            ),
        )
        print(f"fleet manifest -> {args.manifest}")


def _profile_schemes(args: argparse.Namespace) -> int:
    """The paging-decision profiler path of ``repro profile --schemes``.

    Runs each scheme over the same workload/seed with a
    :class:`~repro.obs.paging.PagingProfiler` attached, prints the
    per-scheme ledgers, and closes with the scheme-vs-scheme
    effectiveness diff (first scheme is the reference).
    """
    import json as _json
    from pathlib import Path

    from repro.analysis.profile_report import (
        diff_profiles,
        render_heatmap,
        render_profile,
        render_profile_diff,
    )
    from repro.obs.chrome import write_chrome_trace
    from repro.obs.paging import PagingProfiler, write_paging_profile
    from repro.obs.trace import DEFAULT_EVENT_CAPACITY, RingBufferSink
    from repro.sim.engine import prepare_sip_plan

    config = _config(args)
    workload = build_workload(args.workload, scale=args.scale)
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    if not schemes:
        raise ConfigError("profile: --schemes needs at least one scheme name")
    for scheme in schemes:
        if scheme not in SCHEME_NAMES:
            raise ConfigError(
                f"profile: unknown scheme {scheme!r} "
                f"(choose from {', '.join(SCHEME_NAMES)})"
            )
    sip_plan = None
    if any(scheme in ("sip", "hybrid") for scheme in schemes):
        sip_plan = prepare_sip_plan(workload, config, seed=args.seed)
    artifacts = Path(args.artifacts) if args.artifacts is not None else None
    if artifacts is not None:
        artifacts.mkdir(parents=True, exist_ok=True)
    profiles = {}
    for scheme in schemes:
        profiler = PagingProfiler(window_accesses=args.window)
        capture = (
            RingBufferSink(DEFAULT_EVENT_CAPACITY)
            if artifacts is not None
            else None
        )
        simulate(
            workload,
            config,
            scheme,
            seed=args.seed,
            input_set=args.input_set,
            sip_plan=sip_plan,
            tracer=capture,
            profiler=profiler,
        )
        block = profiler.profile()
        profiles[scheme] = block
        if artifacts is not None:
            stem = f"{args.workload}-{scheme}"
            write_paging_profile(
                artifacts / f"{stem}.paging-profile.json", block
            )
            write_chrome_trace(
                artifacts / f"{stem}.trace.json",
                capture.events,
                dropped_events=capture.dropped,
                paging_profile=block,
            )
            (artifacts / f"{stem}.heatmap.txt").write_text(
                render_heatmap(block) + "\n", encoding="utf-8"
            )
    reference = schemes[0]
    if args.output_format == "json":
        document: dict = {"profiles": profiles}
        if len(schemes) > 1:
            document["diffs"] = {
                scheme: diff_profiles(profiles[reference], profiles[scheme])
                for scheme in schemes[1:]
            }
        print(_json.dumps(document, indent=2, sort_keys=True))
        return 0
    for scheme in schemes:
        print(
            render_profile(
                profiles[scheme],
                label=f"{args.workload} / {scheme} @ scale {args.scale}",
            )
        )
        print()
    for scheme in schemes[1:]:
        print(
            render_profile_diff(
                diff_profiles(profiles[reference], profiles[scheme]),
                label_a=reference,
                label_b=scheme,
            )
        )
        print()
    if artifacts is not None:
        print(f"artifacts -> {artifacts}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    if args.schemes is not None:
        return _profile_schemes(args)
    config = _config(args)
    workload = build_workload(args.workload, scale=args.scale)
    profile = profile_workload(
        workload, config, input_set="train", seed=args.seed
    )
    threshold = args.threshold if args.threshold is not None else config.sip_threshold
    plan = build_sip_plan(profile, threshold)
    sites = sorted(
        (p for p in profile.instructions.values() if p.total),
        key=lambda p: p.irregular_ratio,
        reverse=True,
    )
    rows = [
        [
            p.name,
            p.total,
            f"{p.irregular_ratio:.1%}",
            "yes" if plan.is_instrumented(p.instruction) else "",
        ]
        for p in sites[: args.top]
    ]
    print(
        format_table(
            ["site", "accesses", "irregular", "instrumented"],
            rows,
            title=(
                f"{args.workload}: {plan.instrumentation_points} "
                f"instrumentation point(s) at threshold {threshold:.0%}"
            ),
        )
    )
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    config = SimConfig.scaled(args.scale)
    names = args.workloads or list(WORKLOAD_NAMES)
    rows = []
    for name in names:
        workload = build_workload(name, scale=args.scale)
        kind, summary = classify_benchmark(workload, config, seed=args.seed)
        rows.append(
            [
                name,
                f"{workload.footprint_pages / config.epc_pages:.2f}x",
                f"{summary.stream_coverage:.2f}",
                kind.value,
            ]
        )
    print(
        format_table(
            ["workload", "footprint/EPC", "stream coverage", "classification"],
            rows,
            title="Table 1 style classification",
        )
    )
    return 0


def _parse_value(param: str, raw: str):
    return float(raw) if param in ("sip_threshold", "valve_ratio") else int(raw)


def _cmd_sweep(args: argparse.Namespace) -> int:
    config = _config(args)
    values = [_parse_value(args.param, v) for v in args.values.split(",")]
    workload = build_workload(args.workload, scale=args.scale)
    _guard_obs_flags(args, "sweep")
    telemetry = (
        _telemetry_from_args(args, ship_events=False)
        if _wants_observation(args)
        else None
    )
    base = simulate(
        workload, config, "baseline", seed=args.seed, input_set=args.input_set
    )
    progress = None
    if args.progress:
        progress = lambda tick: print(tick.render(), file=sys.stderr)
    points = sweep_config(
        WorkloadSpec(args.workload, args.scale),
        [config.replace(**{args.param: value}) for value in values],
        [args.scheme],
        values=values,
        seed=args.seed,
        input_set=args.input_set,
        progress=progress,
        policy=_policy_from_args(args),
        telemetry=telemetry,
    )
    series = [
        (
            point.value,
            point.results[args.scheme].total_cycles / base.total_cycles,
        )
        for point in points
    ]
    print(
        render_series(
            {args.scheme: series},
            title=(
                f"{args.workload}: {args.param} sweep "
                f"(normalized to baseline, lower is better)"
            ),
        )
    )
    _emit_fleet_outputs(
        args, telemetry, [point.results[args.scheme] for point in points], values
    )
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.fleet_report import (
        render_fleet_table,
        render_policy_comparison,
    )
    from repro.sim.fleet import SCENARIO_NAMES, build_scenario, simulate_fleet

    if args.list_scenarios:
        for name in SCENARIO_NAMES:
            print(name)
        return 0
    if args.scenario is None:
        raise ConfigError(
            "a scenario name is required "
            f"(choose from {', '.join(SCENARIO_NAMES)}, or use --list)"
        )
    slo = None
    if args.slo is not None:
        from repro.obs.fleet_telemetry import SloSpec

        slo = SloSpec.parse(args.slo)
    observed = bool(
        args.timeseries
        or slo is not None
        or args.trace is not None
        or args.openmetrics is not None
        or args.window_cycles is not None
    )
    if args.policies is not None:
        if args.policy is not None:
            raise ConfigError("--policy and --policies are mutually exclusive")
        if args.manifest is not None:
            raise ConfigError(
                "--manifest applies to a single-policy run; pick one "
                "policy with --policy"
            )
        if observed:
            raise ConfigError(
                "--timeseries/--slo/--trace/--openmetrics apply to a "
                "single-policy run; pick one policy with --policy"
            )
        policies = [p.strip() for p in args.policies.split(",") if p.strip()]
        if not policies:
            raise ConfigError("--policies needs at least one policy name")
        blocks = []
        for policy in policies:
            scenario = build_scenario(
                args.scenario, seed=args.seed, policy=policy
            )
            blocks.append(simulate_fleet(scenario).fleet_block())
        if args.output_format == "json":
            document = {"schema": "repro.fleet-comparison/1", "blocks": blocks}
            print(json.dumps(document, indent=2, sort_keys=True))
        else:
            print(render_policy_comparison(blocks))
        return 0
    scenario = build_scenario(args.scenario, seed=args.seed, policy=args.policy)
    telemetry = None
    if observed:
        from repro.obs.fleet_telemetry import FleetTelemetry

        telemetry = FleetTelemetry(window_cycles=args.window_cycles)
    result = simulate_fleet(scenario, telemetry=telemetry)
    if args.output_format == "json":
        print(json.dumps(result.manifest(), indent=2, sort_keys=True))
    else:
        print(render_fleet_table(result.fleet_block()))
        if result.timeseries is not None:
            from repro.analysis.fleet_report import (
                render_thrash_table,
                render_timeseries,
            )
            from repro.obs.fleet_telemetry import detect_thrash

            print()
            print(render_timeseries(result.timeseries))
            print()
            print(render_thrash_table(detect_thrash(result.timeseries)))
            if slo is not None:
                from repro.analysis.fleet_report import render_slo_report
                from repro.obs.fleet_telemetry import evaluate_slo

                print()
                print(render_slo_report(evaluate_slo(result.timeseries, slo)))
    artifacts = []
    if args.trace is not None:
        from repro.obs.chrome import write_fleet_chrome_trace

        count = write_fleet_chrome_trace(args.trace, result.timeseries)
        artifacts.append(f"chrome trace ({count} records) to {args.trace}")
    if args.openmetrics is not None:
        from pathlib import Path

        from repro.obs.openmetrics import render_fleet_openmetrics

        Path(args.openmetrics).write_text(
            render_fleet_openmetrics(result.timeseries), encoding="utf-8"
        )
        artifacts.append(f"openmetrics to {args.openmetrics}")
    if args.manifest is not None:
        from repro.obs.manifest import write_manifest

        target = write_manifest(args.manifest, result.manifest())
        artifacts.append(f"manifest to {target}")
    if artifacts and args.output_format != "json":
        print()
        for line in artifacts:
            print(f"wrote {line}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        deep_rule_catalog,
        load_baseline,
        render_json,
        render_sarif,
        render_text,
        rule_catalog,
        run_lint,
        write_baseline,
    )

    if args.list_rules:
        catalog = rule_catalog() + deep_rule_catalog()
        rows = [[r["code"], r["name"], r["description"]] for r in catalog]
        print(format_table(["code", "name", "checks for"], rows))
        return 0

    def codes(raw: Optional[str]) -> Optional[List[str]]:
        if raw is None:
            return None
        return [c.strip() for c in raw.split(",") if c.strip()]

    baseline = load_baseline(args.baseline) if args.baseline else None
    report = run_lint(
        args.paths,
        select=codes(args.select),
        ignore=codes(args.ignore),
        deep=args.deep,
        changed_ref=args.changed,
        baseline=baseline,
    )
    if args.write_baseline:
        target = write_baseline(args.write_baseline, report.findings)
        print(
            f"baseline: {len(report.findings)} finding(s) -> {target} "
            "(fill in the justifications before committing)"
        )
        return 0
    if args.sarif is not None:
        from pathlib import Path as _Path

        from repro import __version__ as _version

        _Path(args.sarif).write_text(
            render_sarif(
                report.findings,
                catalog=rule_catalog() + deep_rule_catalog(),
                tool_version=_version,
            )
            + "\n",
            encoding="utf-8",
        )
        print(f"sarif: {len(report.findings)} result(s) -> {args.sarif}")
    if args.output_format == "json":
        print(render_json(report.findings, report))
    else:
        print(render_text(report.findings, report))
    return 1 if report.findings else 0


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "report": _cmd_report,
    "compare": _cmd_compare,
    "profile": _cmd_profile,
    "classify": _cmd_classify,
    "sweep": _cmd_sweep,
    "fleet": _cmd_fleet,
    "lint": _cmd_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
