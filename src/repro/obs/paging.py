"""Paging-decision profiler: the per-page ledger behind ``repro profile``.

The metrics layer (PR 2) and the exec telemetry (PR 5) say *how much*
a scheme costs; this layer says *why*.  A :class:`PagingProfiler`
rides along one simulated run as a strictly passive observer — the
driver feeds it every paging decision through the ``ledger_*`` hook
family — and classifies:

* every **preload** into exactly one terminal bucket — ``useful``
  (touched while resident, before any eviction), ``late`` (the demand
  fault raced the channel: the page was still in flight or still
  queued when the application needed it), or **wasted** (evicted
  untouched, or still untouched when the run ended) — plus the
  non-terminal ``redundant`` / ``aborted-collateral`` /
  ``pending-at-exit`` outcomes needed for the enqueue ledger to
  reconcile against the channel counters;
* every **demand fault** by cause — ``cold`` (first touch, no active
  preloader), ``predictor_miss`` (first touch while the DFP preloader
  was live), ``refault`` (the page had been resident and was evicted —
  a premature CLOCK decision, recorded with the evicting context), or
  ``late`` (the fault was absorbed by, or aborted, the page's own
  preload);
* per-page **residency intervals** (load kind, touched-or-not, and
  for closed intervals the evicting decision: which page forced it
  and how many CLOCK second chances the sweep granted);
* run **phases**, segmented from windowed fault-rate and scan-credit
  (``AccPreloadCounter``) signals, plus a window×page-bucket access
  heatmap.

Everything exports as the deterministic, wall-clock-free
``repro.paging-profile/1`` artifact (:meth:`PagingProfiler.profile`),
which attaches to run manifests the way the exec-telemetry block does
and renders via :mod:`repro.analysis.profile_report`.

Passivity contract: the hooks only *read* simulation state handed to
them and mutate profiler-private structures.  A profiled run's
``RunResult`` — and its manifest bytes — are identical to a blind
run's (asserted in ``tests/obs/test_paging.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.errors import ObsError

__all__ = [
    "PAGING_PROFILE_SCHEMA",
    "PagingProfiler",
    "validate_paging_profile",
    "write_paging_profile",
    "load_paging_profile",
]

#: Schema identifier carried by every exported profile block.
PAGING_PROFILE_SCHEMA = "repro.paging-profile/1"

#: Default phase-segmentation window, in application page accesses.
DEFAULT_WINDOW_ACCESSES = 1024

#: Caps keeping the exported artifact small and deterministic.
_MAX_HEATMAP_BUCKETS = 32
_MAX_HEATMAP_COLUMNS = 64
_MAX_PHASES = 32
_MAX_EXPORT_PAGES = 24
_MAX_EXPORT_INTERVALS = 64

_FAULT_CAUSES = ("cold", "predictor_miss", "refault", "late")
_PHASE_LABELS = ("resident", "steady", "bursty")


class _Interval:
    """One residency interval of one page (open until evict/run end)."""

    __slots__ = (
        "start",
        "end",
        "kind",
        "touched",
        "evicted_for_page",
        "evicted_for_kind",
        "second_chances",
    )

    def __init__(self, start: int, kind: str) -> None:
        self.start = start
        self.end = -1  # still open
        self.kind = kind
        self.touched = False
        self.evicted_for_page = -1  # -1: closed at run end, not evicted
        self.evicted_for_kind = ""
        self.second_chances = 0

    def as_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "start": self.start,
            "end": self.end,
            "kind": self.kind,
            "touched": self.touched,
        }
        if self.evicted_for_page >= 0:
            record["evicted_for_page"] = self.evicted_for_page
            record["evicted_for_kind"] = self.evicted_for_kind
            record["second_chances"] = self.second_chances
        return record


class _PageLedger:
    """Per-page tallies plus the page's residency interval history."""

    __slots__ = ("accesses", "faults", "refaults", "evictions", "open", "intervals")

    def __init__(self) -> None:
        self.accesses = 0
        self.faults = 0
        self.refaults = 0
        self.evictions = 0
        self.open: Optional[_Interval] = None
        self.intervals: List[_Interval] = []


class PagingProfiler:
    """Passive per-page decision ledger for exactly one simulated run.

    Construct one, pass it to :func:`repro.sim.engine.simulate` via
    ``profiler=``, then read :meth:`profile` after the run.  The hook
    methods (``ledger_*``) are the driver-facing API; lint rule RL010
    confines their call sites to :mod:`repro.enclave.driver` so every
    ledger entry stays attributable to one emission path.
    """

    def __init__(self, *, window_accesses: int = DEFAULT_WINDOW_ACCESSES) -> None:
        if window_accesses <= 0:
            raise ObsError("window_accesses must be positive")
        self._window_accesses = window_accesses
        self._bound = False
        self._finished = False
        self._base_page = 0
        self._elrange_pages = 0
        self._bucket_pages = 1
        self._buckets = 1
        # Run totals.
        self.accesses = 0
        self.faults = 0
        self.scans = 0
        self.scan_credited = 0
        # Preload outcome buckets (terminal + channel bookkeeping).
        self.enqueued = 0
        self.completed = 0
        self.useful = 0
        self.late_inflight = 0
        self.late_queued = 0
        self.wasted_evicted = 0
        self.wasted_leftover = 0
        self.redundant = 0
        self.aborted_collateral = 0
        self.pending_at_exit = 0
        # Fault causes.
        self.cause_cold = 0
        self.cause_predictor_miss = 0
        self.cause_refault = 0
        self.cause_late = 0
        # Eviction attribution.
        self.evictions = 0
        self.second_chances = 0
        self.victims_accessed = 0
        self.victims_preloaded_untouched = 0
        self.premature_refaulted = 0
        # Internal state.
        self._pages: Dict[int, _PageLedger] = {}
        self._pending: Dict[int, int] = {}
        self._windows: List[Dict[str, object]] = []
        self._window: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # Driver-facing hooks (RL010: call sites confined to the driver)
    # ------------------------------------------------------------------

    def ledger_bind(self, base_page: int, elrange_pages: int) -> None:
        """Bind to one enclave's ELRANGE; a profiler observes one run."""
        if self._bound or self._finished:
            raise ObsError(
                "PagingProfiler observes exactly one run; "
                "construct a fresh profiler per simulate() call"
            )
        self._bound = True
        self._base_page = base_page
        self._elrange_pages = max(1, elrange_pages)
        self._buckets = min(_MAX_HEATMAP_BUCKETS, self._elrange_pages)
        self._bucket_pages = -(-self._elrange_pages // self._buckets)

    def ledger_hit(self, page: int, now: int) -> None:
        """Resident fast-path touch: first touch decides ``useful``."""
        self._tick(page, now, fault=False)
        ledger = self._ledger(page)
        ledger.accesses += 1
        interval = ledger.open
        if interval is None:  # defensive: resident page always has one
            interval = _Interval(now, "demand")
            ledger.open = interval
        if interval.kind == "preload" and not interval.touched:
            self.useful += 1
        interval.touched = True

    def ledger_fault(
        self, page: int, now: int, outcome: str, *, preloader_active: bool = False
    ) -> None:
        """One demand fault, attributed to its cause.

        ``outcome`` is how the fault was serviced: ``"absorbed"`` (the
        page's preload landed during the AEX or was ridden to
        completion on the channel), ``"queued"`` (the fault hit a
        still-queued burst page — in-stream abort, then demand load),
        or ``"miss"`` (no preload anywhere near it — demand load).
        """
        self._tick(page, now, fault=True)
        ledger = self._ledger(page)
        ledger.accesses += 1
        ledger.faults += 1
        self.faults += 1
        interval = ledger.open
        if outcome == "absorbed":
            self.cause_late += 1
            if interval is not None:
                if interval.kind == "preload" and not interval.touched:
                    self.late_inflight += 1
                interval.touched = True
        elif outcome == "queued":
            # The trigger page of an in-stream abort: its own preload
            # was too late to ever complete.
            self.cause_late += 1
            self.late_queued += 1
            if interval is not None:
                interval.touched = True
        else:
            if ledger.evictions > 0:
                self.cause_refault += 1
                ledger.refaults += 1
                self.premature_refaulted += 1
            elif preloader_active:
                self.cause_predictor_miss += 1
            else:
                self.cause_cold += 1
            if interval is not None:
                interval.touched = True

    def ledger_enqueue(self, pages: Iterable[int], now: int) -> None:
        """A predicted burst was queued on the load channel."""
        for page in pages:
            self.enqueued += 1
            self._pending[page] = now

    def ledger_insert(self, page: int, kind: str, now: int) -> None:
        """A load landed in the EPC: open a residency interval."""
        ledger = self._ledger(page)
        if ledger.open is not None:  # defensive: insert implies absent
            self._close(ledger, ledger.open, now)
        ledger.open = _Interval(now, kind)
        if kind == "preload":
            self.completed += 1
            self._pending.pop(page, None)

    def ledger_redundant(self, page: int, now: int) -> None:
        """A queued preload completed for an already-resident page."""
        self.redundant += 1
        self._pending.pop(page, None)

    def ledger_abort(
        self, pages: Iterable[int], now: int, cause: str, *, trigger: int = -1
    ) -> None:
        """Queued pages dropped by an in-stream or valve abort.

        The in-stream ``trigger`` page is *not* collateral — its
        lateness is charged by :meth:`ledger_fault` (``"queued"``).
        """
        for page in pages:
            self._pending.pop(page, None)
            if page != trigger:
                self.aborted_collateral += 1

    def ledger_evict(
        self,
        page: int,
        now: int,
        *,
        accessed: bool,
        preloaded: bool,
        second_chances: int,
        for_page: int,
        for_kind: str,
    ) -> None:
        """A CLOCK eviction of one of this enclave's pages.

        ``for_page``/``for_kind`` record the load that forced the
        decision; ``second_chances`` is how many A-bits the sweep
        cleared before settling on this victim.
        """
        ledger = self._ledger(page)
        ledger.evictions += 1
        self.evictions += 1
        self.second_chances += second_chances
        if accessed:
            self.victims_accessed += 1
        interval = ledger.open
        if interval is not None:
            interval.evicted_for_page = for_page
            interval.evicted_for_kind = for_kind
            interval.second_chances = second_chances
            if interval.kind == "preload" and not interval.touched:
                self.wasted_evicted += 1
                self.victims_preloaded_untouched += 1
            self._close(ledger, interval, now)

    def ledger_scan(self, now: int, credited: int) -> None:
        """The service-thread scan ran; ``credited`` pages were credited."""
        self.scans += 1
        self.scan_credited += credited
        if credited and self._window is not None:
            self._window["credits"] = int(self._window["credits"]) + credited

    def ledger_finish(self, now: int) -> None:
        """Close the ledger at run end (idempotent)."""
        if self._finished:
            return
        self._finished = True
        for page in sorted(self._pages):
            ledger = self._pages[page]
            interval = ledger.open
            if interval is not None:
                if interval.kind == "preload" and not interval.touched:
                    self.wasted_leftover += 1
                self._close(ledger, interval, now)
        self.pending_at_exit = len(self._pending)
        window = self._window
        if window is not None and int(window["accesses"]) > 0:
            self._windows.append(window)
        self._window = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _ledger(self, page: int) -> _PageLedger:
        ledger = self._pages.get(page)
        if ledger is None:
            ledger = _PageLedger()
            self._pages[page] = ledger
        return ledger

    @staticmethod
    def _close(ledger: _PageLedger, interval: _Interval, now: int) -> None:
        interval.end = now
        ledger.intervals.append(interval)
        ledger.open = None

    def _tick(self, page: int, now: int, *, fault: bool) -> None:
        self.accesses += 1
        window = self._window
        if window is None or int(window["accesses"]) >= self._window_accesses:
            if window is not None:
                self._windows.append(window)
            window = {
                "accesses": 0,
                "faults": 0,
                "credits": 0,
                "start_cycle": now,
                "end_cycle": now,
                "heat": [0] * self._buckets,
            }
            self._window = window
        window["accesses"] = int(window["accesses"]) + 1
        window["end_cycle"] = now
        if fault:
            window["faults"] = int(window["faults"]) + 1
        offset = page - self._base_page
        if 0 <= offset < self._elrange_pages:
            bucket = offset // self._bucket_pages
            heat: List[int] = window["heat"]  # type: ignore[assignment]
            heat[bucket] += 1

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def profile(self) -> Dict[str, object]:
        """Export the deterministic ``repro.paging-profile/1`` block."""
        if not self._finished:
            raise ObsError(
                "profile() before the run finished; "
                "simulate() closes the ledger via the driver"
            )
        totals = {
            "accesses": self.accesses,
            "epc_hits": self.accesses - self.faults,
            "faults": self.faults,
            "scans": self.scans,
            "scan_credited_pages": self.scan_credited,
            "preloads": {
                "enqueued": self.enqueued,
                "completed": self.completed,
                "useful": self.useful,
                "late_inflight": self.late_inflight,
                "late_queued": self.late_queued,
                "wasted_evicted": self.wasted_evicted,
                "wasted_leftover": self.wasted_leftover,
                "redundant": self.redundant,
                "aborted_collateral": self.aborted_collateral,
                "pending_at_exit": self.pending_at_exit,
            },
            "fault_causes": {
                "cold": self.cause_cold,
                "predictor_miss": self.cause_predictor_miss,
                "refault": self.cause_refault,
                "late": self.cause_late,
            },
            "evictions": {
                "total": self.evictions,
                "second_chances": self.second_chances,
                "victims_accessed": self.victims_accessed,
                "victims_preloaded_untouched": self.victims_preloaded_untouched,
                "premature_refaulted": self.premature_refaulted,
            },
        }
        return {
            "schema": PAGING_PROFILE_SCHEMA,
            "window_accesses": self._window_accesses,
            "elrange_pages": self._elrange_pages,
            "base_page": self._base_page,
            "totals": totals,
            "effectiveness": self._effectiveness(),
            "phases": self._phases(),
            "heatmap": self._heatmap(),
            "pages": self._top_pages(),
        }

    def _effectiveness(self) -> Dict[str, float]:
        """Preload quality ratios (all in [0, 1], 0.0 when undefined).

        ``preload_precision`` — completed preloads touched in time;
        ``preload_recall`` — page needs served by a timely preload
        (every fault was a need the preloader failed to serve, every
        useful preload a need it served); ``late_rate`` /
        ``refault_rate`` — fault share attributable to channel
        lateness resp. premature eviction; ``waste_rate`` — completed
        preloads that never got touched.
        """

        def ratio(num: int, den: int) -> float:
            return round(num / den, 6) if den else 0.0

        wasted = self.wasted_evicted + self.wasted_leftover
        return {
            "preload_precision": ratio(self.useful, self.completed),
            "preload_recall": ratio(self.useful, self.useful + self.faults),
            "late_rate": ratio(self.cause_late, self.faults),
            "refault_rate": ratio(self.cause_refault, self.faults),
            "waste_rate": ratio(wasted, self.completed),
        }

    def _phases(self) -> List[Dict[str, object]]:
        """Merge same-band windows into phases; coarsen until <= cap."""
        windows = self._windows
        if not windows:
            return []
        mean_rate = self.faults / self.accesses if self.accesses else 0.0
        while True:
            phases = _segment(windows, mean_rate)
            if len(phases) <= _MAX_PHASES or len(windows) <= 2:
                break
            windows = _coarsen(windows)
        for index, phase in enumerate(phases):
            phase["phase"] = index
        return phases

    def _heatmap(self) -> Dict[str, object]:
        """Time-major access heatmap: counts[column][page_bucket]."""
        windows = self._windows
        columns = min(_MAX_HEATMAP_COLUMNS, len(windows)) or 1
        per_column = -(-len(windows) // columns) if windows else 1
        counts: List[List[int]] = []
        for start in range(0, len(windows), per_column):
            merged = [0] * self._buckets
            for window in windows[start : start + per_column]:
                heat: List[int] = window["heat"]  # type: ignore[assignment]
                for bucket, count in enumerate(heat):
                    merged[bucket] += count
            counts.append(merged)
        return {
            "page_buckets": self._buckets,
            "bucket_pages": self._bucket_pages,
            "columns": len(counts),
            "windows_per_column": per_column,
            "counts": counts,
        }

    def _top_pages(self) -> List[Dict[str, object]]:
        """Hottest pages by fault count, with their interval history."""
        ranked = sorted(
            self._pages.items(),
            key=lambda item: (-item[1].faults, -item[1].accesses, item[0]),
        )[:_MAX_EXPORT_PAGES]
        export = []
        for page, ledger in ranked:
            intervals = ledger.intervals[:_MAX_EXPORT_INTERVALS]
            export.append(
                {
                    "page": page,
                    "accesses": ledger.accesses,
                    "faults": ledger.faults,
                    "refaults": ledger.refaults,
                    "evictions": ledger.evictions,
                    "intervals": [interval.as_dict() for interval in intervals],
                    "intervals_truncated": len(ledger.intervals) - len(intervals),
                }
            )
        return export


def _segment(
    windows: List[Dict[str, object]], mean_rate: float
) -> List[Dict[str, object]]:
    """Band each window by fault rate vs the run mean; merge runs."""
    phases: List[Dict[str, object]] = []
    for window in windows:
        accesses = int(window["accesses"])
        faults = int(window["faults"])
        rate = faults / accesses if accesses else 0.0
        if mean_rate <= 0.0 or rate < 0.25 * mean_rate:
            label = "resident"
        elif rate > 2.0 * mean_rate:
            label = "bursty"
        else:
            label = "steady"
        last = phases[-1] if phases else None
        if last is not None and last["label"] == label:
            last["windows"] = int(last["windows"]) + 1
            last["accesses"] = int(last["accesses"]) + accesses
            last["faults"] = int(last["faults"]) + faults
            last["scan_credited_pages"] = int(last["scan_credited_pages"]) + int(
                window["credits"]
            )
            last["end_cycle"] = window["end_cycle"]
        else:
            phases.append(
                {
                    "label": label,
                    "windows": 1,
                    "accesses": accesses,
                    "faults": faults,
                    "scan_credited_pages": int(window["credits"]),
                    "start_cycle": window["start_cycle"],
                    "end_cycle": window["end_cycle"],
                }
            )
    for phase in phases:
        phase["fault_rate"] = round(
            int(phase["faults"]) / int(phase["accesses"]), 6
        ) if int(phase["accesses"]) else 0.0
    return phases


def _coarsen(windows: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Halve the window list by merging adjacent pairs (deterministic)."""
    merged: List[Dict[str, object]] = []
    for start in range(0, len(windows), 2):
        pair = windows[start : start + 2]
        first, last = pair[0], pair[-1]
        heat_a: List[int] = first["heat"]  # type: ignore[assignment]
        heat = list(heat_a)
        if len(pair) == 2:
            heat_b: List[int] = last["heat"]  # type: ignore[assignment]
            for bucket, count in enumerate(heat_b):
                heat[bucket] += count
        merged.append(
            {
                "accesses": sum(int(w["accesses"]) for w in pair),
                "faults": sum(int(w["faults"]) for w in pair),
                "credits": sum(int(w["credits"]) for w in pair),
                "start_cycle": first["start_cycle"],
                "end_cycle": last["end_cycle"],
                "heat": heat,
            }
        )
    return merged


def validate_paging_profile(block: object) -> Dict[str, int]:
    """Schema- and reconciliation-check one profile block.

    Raises :class:`~repro.errors.ObsError` on a malformed block or on
    any broken ledger identity; returns a small summary on success.
    """
    if not isinstance(block, dict):
        raise ObsError("paging profile is not a JSON object")
    schema = block.get("schema")
    if schema != PAGING_PROFILE_SCHEMA:
        raise ObsError(
            f"paging profile has schema {schema!r}, "
            f"expected {PAGING_PROFILE_SCHEMA!r}"
        )
    for key in ("totals", "effectiveness", "phases", "heatmap", "pages"):
        if key not in block:
            raise ObsError(f"paging profile lacks required section {key!r}")
    totals = block["totals"]
    if not isinstance(totals, dict):
        raise ObsError("paging profile totals is not an object")
    try:
        preloads = dict(totals["preloads"])
        causes = dict(totals["fault_causes"])
        evictions = dict(totals["evictions"])
        accesses = int(totals["accesses"])
        faults = int(totals["faults"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ObsError(f"paging profile totals are malformed: {exc}") from exc

    if faults != sum(int(causes.get(cause, 0)) for cause in _FAULT_CAUSES):
        raise ObsError(
            "fault causes do not partition the fault count: "
            f"{causes} vs {faults} faults"
        )
    terminal = (
        int(preloads["useful"])
        + int(preloads["late_inflight"])
        + int(preloads["wasted_evicted"])
        + int(preloads["wasted_leftover"])
    )
    if int(preloads["completed"]) != terminal:
        raise ObsError(
            "completed preloads do not partition into "
            f"useful/late/wasted: {preloads}"
        )
    accounted = (
        int(preloads["completed"])
        + int(preloads["redundant"])
        + int(preloads["late_queued"])
        + int(preloads["aborted_collateral"])
        + int(preloads["pending_at_exit"])
    )
    if int(preloads["enqueued"]) != accounted:
        raise ObsError(
            f"enqueued preloads do not reconcile: {preloads['enqueued']} "
            f"enqueued vs {accounted} accounted"
        )
    if int(evictions["premature_refaulted"]) != int(causes["refault"]):
        raise ObsError("premature-eviction count disagrees with refault cause")
    if int(evictions["victims_preloaded_untouched"]) != int(
        preloads["wasted_evicted"]
    ):
        raise ObsError("untouched-victim count disagrees with wasted preloads")
    phases = block["phases"]
    if not isinstance(phases, list):
        raise ObsError("paging profile phases is not a list")
    phase_accesses = sum(int(p["accesses"]) for p in phases)
    if phase_accesses != accesses:
        raise ObsError(
            f"phase accesses sum to {phase_accesses}, totals say {accesses}"
        )
    for phase in phases:
        if phase.get("label") not in _PHASE_LABELS:
            raise ObsError(f"unknown phase label {phase.get('label')!r}")
    heatmap = block["heatmap"]
    if not isinstance(heatmap, dict):
        raise ObsError("paging profile heatmap is not an object")
    heat_total = sum(sum(column) for column in heatmap.get("counts", []))
    if heat_total != accesses:
        raise ObsError(
            f"heatmap counts sum to {heat_total}, totals say {accesses}"
        )
    return {
        "accesses": accesses,
        "faults": faults,
        "preloads_completed": int(preloads["completed"]),
        "phases": len(phases),
        "pages": len(block["pages"]),  # type: ignore[arg-type]
    }


def write_paging_profile(
    path: Union[str, Path], block: Dict[str, object]
) -> Path:
    """Write one profile block as stable (sorted, indented) JSON."""
    target = Path(path)
    target.write_text(
        json.dumps(block, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return target


def load_paging_profile(path: Union[str, Path]) -> Dict[str, object]:
    """Load and validate one ``repro.paging-profile/1`` file."""
    target = Path(path)
    try:
        document = json.loads(target.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ObsError(f"cannot read paging profile {target}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ObsError(
            f"paging profile {target} is not valid JSON: {exc}"
        ) from exc
    validate_paging_profile(document)
    return document
