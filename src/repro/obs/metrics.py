"""Metrics: counters, gauges and virtual-cycle-bucketed histograms.

Every number the paper's evaluation argues from — faults taken,
preloads completed, AEX/ERESUME pairs removed, channel cycles wasted —
is a counter somewhere in the simulator.  :class:`MetricsRegistry`
gives those counters one name space and one machine-readable dump, so
a run manifest (:mod:`repro.obs.manifest`) can carry the full metric
state alongside :class:`~repro.enclave.stats.RunStats` and the two can
be reconciled mechanically.

Three metric kinds:

* :class:`Counter` — monotone event count (``inc``);
* :class:`Gauge` — point-in-time value, either ``set`` explicitly or
  backed by a callback sampled at dump time.  Callback gauges are the
  preferred way to publish quantities another layer already counts
  (``RunStats`` fields, the DFP valve counters, EPC residency): they
  cost nothing on the hot path and reconcile with their source by
  construction;
* :class:`Histogram` — distribution of virtual-cycle durations over
  fixed buckets (fault-wait and SIP-wait latencies), with exact
  ``sum``/``count`` so totals still reconcile with the time breakdown.

Overhead discipline: a registry constructed with ``enabled=False``
(and the shared :data:`NULL_REGISTRY`) hands out no-op metric
singletons, so instrumented code paths pay one attribute call on a
no-op object when observability is off.  Observation is read-only
either way — enabling metrics changes no simulation outcome.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ObsError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_CYCLE_BUCKETS",
    "histogram_quantile",
]

#: Default histogram bucket upper bounds, in virtual cycles.  A 1-2-5
#: decade ladder spanning everything the simulator times: a bitmap
#: check (~1.4k) up to multi-million-cycle channel convoys.  Values
#: above the last bound land in the overflow bucket.
DEFAULT_CYCLE_BUCKETS: Tuple[int, ...] = (
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
)


class Metric:
    """Base class: a named, self-describing observable value."""

    kind = ""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help

    def dump(self) -> object:
        """JSON-ready value of this metric (scalar or dict)."""
        raise NotImplementedError


class Counter(Metric):
    """Monotone non-decreasing event counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ObsError(
                f"counter {self.name!r} incremented by negative {amount}"
            )
        self.value += amount

    def dump(self) -> int:
        return self.value


class Gauge(Metric):
    """Point-in-time value: ``set`` explicitly, or callback-backed.

    A callback gauge samples ``fn()`` each time it is read, so it
    publishes an existing counter (a ``RunStats`` field, the EPC's
    resident count) with zero hot-path cost and no double bookkeeping.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], object]] = None,
    ) -> None:
        super().__init__(name, help)
        self._fn = fn
        self._value: object = 0

    @property
    def callback(self) -> Optional[Callable[[], object]]:
        """The sampling callback (None for a set-style gauge)."""
        return self._fn

    def set(self, value: object) -> None:
        """Set the gauge (invalid on a callback-backed gauge)."""
        if self._fn is not None:
            raise ObsError(
                f"gauge {self.name!r} is callback-backed and cannot be set"
            )
        self._value = value

    @property
    def value(self) -> object:
        """Current value (samples the callback when one is attached)."""
        return self._fn() if self._fn is not None else self._value

    def dump(self) -> object:
        return self.value


class Histogram(Metric):
    """Distribution over fixed, ascending virtual-cycle buckets.

    ``counts[i]`` is the number of observations ``v`` with
    ``bounds[i-1] < v <= bounds[i]`` (non-cumulative); observations
    above the last bound land in :attr:`overflow`.  ``sum`` and
    ``count`` are exact, so a histogram of waits reconciles with the
    corresponding :class:`~repro.enclave.stats.TimeBreakdown` bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[int] = DEFAULT_CYCLE_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(buckets)
        if not bounds:
            raise ObsError(f"histogram {self.name!r} needs at least one bucket")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ObsError(
                f"histogram {self.name!r} bucket bounds must be strictly "
                f"ascending, got {bounds}"
            )
        self.bounds = bounds
        self.counts: List[int] = [0] * len(bounds)
        self.overflow = 0
        self.sum = 0
        self.count = 0

    def observe(self, value: int) -> None:
        """Record one observation (a duration in virtual cycles)."""
        self.count += 1
        self.sum += value
        index = bisect.bisect_left(self.bounds, value)
        if index >= len(self.bounds):
            self.overflow += 1
        else:
            self.counts[index] += 1

    def quantile(self, q: float) -> float:
        """Deterministic q-quantile estimate from the bucket counts.

        See :func:`histogram_quantile` for the estimation rules.
        """
        return histogram_quantile(self.dump(), q)

    def dump(self) -> Dict[str, object]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip(self.bounds, self.counts)
            ],
            "overflow": self.overflow,
        }


def histogram_quantile(dump: Dict[str, object], q: float) -> float:
    """Estimate the ``q``-quantile of a histogram dump, deterministically.

    ``dump`` is the :meth:`Histogram.dump` shape (``count``, ``buckets``
    as ``[{"le": bound, "count": n}, ...]``, ``overflow``).  The
    estimate assumes observations are uniformly spread inside each
    bucket and linearly interpolates between the previous and current
    bucket bound; the first bucket interpolates from zero.  Quantiles
    falling in the overflow bucket are clamped to the last bound (the
    histogram records no upper limit there).  All arithmetic is plain
    integer/float math over the recorded counts, so the same dump
    always yields the same value — fleet QoS tables built from it are
    reproducible byte for byte.

    An empty histogram yields ``0.0``.
    """
    if not 0.0 <= q <= 1.0:
        raise ObsError(f"quantile must be in [0, 1], got {q}")
    total = int(dump.get("count", 0))
    if total <= 0:
        return 0.0
    buckets = dump.get("buckets", [])
    target = q * total
    cumulative = 0
    lower = 0
    for bucket in buckets:  # type: ignore[union-attr]
        bound = bucket["le"]
        count = bucket["count"]
        if count:
            if cumulative + count >= target:
                inside = max(target - cumulative, 0.0)
                return lower + (bound - lower) * (inside / count)
            cumulative += count
        lower = bound
    # Target falls in the overflow bucket: clamp to the last bound.
    return float(lower)


class _NullCounter(Counter):
    """Shared no-op counter handed out by a disabled registry."""

    def inc(self, amount: int = 1) -> None:  # noqa: ARG002 - no-op by design
        return None


class _NullGauge(Gauge):
    """Shared no-op gauge handed out by a disabled registry."""

    def set(self, value: object) -> None:  # noqa: ARG002 - no-op by design
        return None


class _NullHistogram(Histogram):
    """Shared no-op histogram handed out by a disabled registry."""

    def observe(self, value: int) -> None:  # noqa: ARG002 - no-op by design
        return None


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """Named collection of metrics with a deterministic dump.

    Registration is idempotent for counters, histograms and set-style
    gauges: asking for an existing name returns the existing metric
    (so independent layers can share a counter).  Re-registering a
    name under a different kind, or registering a *callback* gauge
    twice, raises :class:`~repro.errors.ObsError` — a silent clash
    would make two layers overwrite each other's numbers.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[str, Metric] = {}

    def _register(self, name: str, factory: Callable[[], Metric], kind: str) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ObsError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"cannot re-register as {kind}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter ``name``."""
        if not self.enabled:
            return _NULL_COUNTER
        return self._register(name, lambda: Counter(name, help), "counter")  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], object]] = None,
    ) -> Gauge:
        """Get or create the gauge ``name`` (``fn`` makes it sampled)."""
        if not self.enabled:
            return _NULL_GAUGE
        existing = self._metrics.get(name)
        if existing is not None and fn is not None:
            raise ObsError(
                f"callback gauge {name!r} registered twice — each sampled "
                "source must own its name"
            )
        return self._register(name, lambda: Gauge(name, help, fn=fn), "gauge")  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[int] = DEFAULT_CYCLE_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self._register(
            name, lambda: Histogram(name, help, buckets=buckets), "histogram"
        )  # type: ignore[return-value]

    def get(self, name: str) -> Optional[Metric]:
        """The registered metric called ``name``, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """Sorted names of all registered metrics."""
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready dump of every metric, sorted by name.

        Counters and gauges dump as scalars; histograms as dicts (see
        :meth:`Histogram.dump`).  Callback gauges are sampled here, so
        the dump reflects the state of their sources at call time.
        """
        return {name: self._metrics[name].dump() for name in self.names()}


#: Shared disabled registry: the default observer for all hot paths.
NULL_REGISTRY = MetricsRegistry(enabled=False)
