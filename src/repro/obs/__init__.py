"""repro.obs — the unified observability layer of the simulator.

One subsystem, four capabilities, all passive (enabling any of them
changes no simulation outcome — the determinism tests prove runs are
bit-identical with observability on or off):

* **metrics** (:mod:`repro.obs.metrics`) — a registry of counters,
  gauges and virtual-cycle-bucketed histograms that the engine,
  driver, DFP and EPC layers publish into; near-zero overhead when
  disabled;
* **tracing** (:mod:`repro.obs.trace`) — pluggable sinks for the
  driver's timeline events: bounded ring buffer, JSONL streaming, and
  fan-out composition;
* **Chrome trace export** (:mod:`repro.obs.chrome`) — renders a
  captured event list in ``trace_event`` format with per-thread
  app/channel/scan tracks, loadable in Perfetto or chrome://tracing;
* **run manifests** (:mod:`repro.obs.manifest`, :mod:`repro.obs.diff`)
  — self-describing JSON records of one run (provenance, config,
  stats, metrics) and the ``repro report`` cycle-attribution diff
  between two of them;
* **execution telemetry** (:mod:`repro.obs.exec_telemetry`) —
  worker-shipped metric/trace payloads and the parent-side collector
  of execution-layer spans (attempts, retries, timeouts, faults,
  checkpoint I/O), exported as the ``repro.exec-telemetry/1`` manifest
  block, the fleet report table and per-worker Chrome tracks;
* **paging-decision profiling** (:mod:`repro.obs.paging`) — the
  per-page ledger behind ``repro profile``: preload
  useful/wasted/late classification, fault-cause attribution with
  the evicting CLOCK decision, residency intervals, and fault-rate
  phase segmentation, exported as the ``repro.paging-profile/1``
  manifest block and per-page Chrome residency tracks;
* **OpenMetrics export** (:mod:`repro.obs.openmetrics`) — renders any
  metric dump in the Prometheus/OpenMetrics text exposition format so
  fleet runs can be scraped;
* **fleet time-series telemetry** (:mod:`repro.obs.fleet_telemetry`)
  — the passive, cycle-windowed sampler behind ``repro fleet
  --timeseries``: per-tenant and fleet-wide series (occupancy vs
  quota, fault/preload rates, channel utilization, queue depth),
  every adaptive-quota rebalance decision, SLO breach evaluation and
  thrash detection, exported as the ``repro.fleet-timeseries/1``
  manifest block, Chrome counter/lifecycle tracks, and labeled
  OpenMetrics series.
"""

from repro.obs.chrome import (
    THREAD_NAMES,
    chrome_trace,
    fleet_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_fleet_chrome_trace,
)
from repro.obs.diff import diff_manifests, render_diff
from repro.obs.exec_telemetry import (
    EXEC_TELEMETRY_SCHEMA,
    ExecSpan,
    ExecTelemetry,
    SpanKind,
    TelemetryConfig,
    WorkerTelemetry,
    build_fleet_manifest,
    merge_metric_dumps,
    render_exec_report,
    validate_exec_telemetry,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    git_sha,
    load_manifest,
    manifest_digest,
    result_from_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    DEFAULT_CYCLE_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
)
from repro.obs.fleet_telemetry import (
    FLEET_SLO_SCHEMA,
    FLEET_TIMESERIES_SCHEMA,
    FleetTelemetry,
    SloSpec,
    detect_thrash,
    evaluate_slo,
    validate_fleet_timeseries,
)
from repro.obs.openmetrics import render_fleet_openmetrics, render_openmetrics
from repro.obs.paging import (
    PAGING_PROFILE_SCHEMA,
    PagingProfiler,
    load_paging_profile,
    validate_paging_profile,
    write_paging_profile,
)
from repro.obs.trace import (
    DEFAULT_EVENT_CAPACITY,
    JsonlSink,
    RingBufferSink,
    Tracer,
    TraceSink,
    event_from_dict,
    event_to_dict,
    register_sink_metrics,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_CYCLE_BUCKETS",
    "TraceSink",
    "RingBufferSink",
    "JsonlSink",
    "Tracer",
    "DEFAULT_EVENT_CAPACITY",
    "event_to_dict",
    "event_from_dict",
    "register_sink_metrics",
    "EXEC_TELEMETRY_SCHEMA",
    "TelemetryConfig",
    "WorkerTelemetry",
    "SpanKind",
    "ExecSpan",
    "ExecTelemetry",
    "merge_metric_dumps",
    "render_exec_report",
    "validate_exec_telemetry",
    "build_fleet_manifest",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "THREAD_NAMES",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "git_sha",
    "manifest_digest",
    "result_from_manifest",
    "diff_manifests",
    "render_diff",
    "PAGING_PROFILE_SCHEMA",
    "PagingProfiler",
    "validate_paging_profile",
    "write_paging_profile",
    "load_paging_profile",
    "render_openmetrics",
    "render_fleet_openmetrics",
    "FLEET_TIMESERIES_SCHEMA",
    "FLEET_SLO_SCHEMA",
    "FleetTelemetry",
    "SloSpec",
    "evaluate_slo",
    "detect_thrash",
    "validate_fleet_timeseries",
    "fleet_chrome_trace",
    "write_fleet_chrome_trace",
]
