"""OpenMetrics text export over :class:`~repro.obs.metrics.MetricsRegistry` dumps.

Fleet runs want to be scraped, not re-parsed: this renders any metric
dump (a live registry's ``as_dict()`` or the merged fleet dump shipped
back by workers) in the OpenMetrics / Prometheus text exposition
format, so a CI job or a node exporter sidecar can hand simulation
counters straight to a scrape endpoint.

Mapping rules, chosen for fidelity over cleverness:

* metric names are prefixed ``repro_`` and sanitized to the
  ``[a-zA-Z_:][a-zA-Z0-9_:]*`` charset (dots become underscores), so
  ``fault.wait_hist`` exposes as ``repro_fault_wait_hist``;
* scalar counters/gauges export as ``gauge`` samples — the registry
  dump is a point-in-time snapshot, and OpenMetrics counters would
  demand ``_total`` renames that break the 1:1 mapping back to the
  manifest's ``metrics`` section;
* histogram dumps export as a proper ``histogram`` family: cumulative
  ``_bucket{le="..."}`` series (the registry stores per-bucket counts,
  so this cumulates them), the mandatory ``le="+Inf"`` bucket equal to
  the observation count (overflow included), plus ``_sum`` and
  ``_count``;
* non-numeric dump values are skipped — they have no OpenMetrics
  representation and the manifest already carries them;
* output ends with the mandatory ``# EOF`` terminator and is sorted
  by metric name, so the same dump always renders the same bytes.

Fleet time-series blocks (PR 10) get their own renderer:
:func:`render_fleet_openmetrics` turns a ``repro.fleet-timeseries/1``
block into labeled series — fleet-wide samples labeled by window end
cycle, per-tenant samples additionally labeled ``tenant="..."`` — so
one scrape carries the whole windowed history of a multi-tenant run.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping

__all__ = ["render_openmetrics", "render_fleet_openmetrics"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _sample_name(name: str, prefix: str) -> str:
    """Sanitize one dump key into a legal OpenMetrics metric name."""
    sanitized = _NAME_OK.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def _format_value(value: object) -> str:
    """Render one sample value (ints stay ints; floats use repr)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))  # type: ignore[arg-type]


def _is_histogram(value: object) -> bool:
    return isinstance(value, Mapping) and value.get("type") == "histogram"


def render_openmetrics(dump: Mapping[str, object], *, prefix: str = "repro_") -> str:
    """Render a metric dump in OpenMetrics text exposition format.

    ``dump`` is any registry/fleet metrics mapping (name → scalar or
    histogram document).  Returns the full exposition including the
    ``# EOF`` terminator; deterministic for a given dump.
    """
    lines: List[str] = []
    for name in sorted(dump):
        value = dump[name]
        metric = _sample_name(name, prefix)
        if _is_histogram(value):
            doc: Mapping[str, object] = value  # type: ignore[assignment]
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bucket in doc.get("buckets", []):  # type: ignore[union-attr]
                cumulative += int(bucket["count"])
                lines.append(
                    f'{metric}_bucket{{le="{bucket["le"]}"}} {cumulative}'
                )
            count = int(doc["count"])  # type: ignore[index]
            lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
            lines.append(f"{metric}_sum {_format_value(doc['sum'])}")
            lines.append(f"{metric}_count {count}")
        elif isinstance(value, (int, float)):
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(value)}")
        # Anything else (strings, nested objects) has no OpenMetrics
        # representation; the manifest carries it instead.
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_LABEL_ESCAPE = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}

#: Fleet-wide series exported per window: (series key, metric name).
_FLEET_SERIES = (
    ("accesses", "fleet_accesses"),
    ("faults", "fleet_faults"),
    ("preloads_completed", "fleet_preloads_completed"),
    ("channel_wait_cycles", "fleet_channel_wait_cycles"),
    ("fault_wait_p99", "fleet_fault_wait_p99_cycles"),
    ("channel_loads", "fleet_channel_loads"),
    ("channel_busy_cycles", "fleet_channel_busy_cycles"),
    ("channel_utilization", "fleet_channel_utilization"),
    ("epc_resident", "fleet_epc_resident_frames"),
    ("queue_depth", "fleet_queue_depth"),
    ("active_tenants", "fleet_active_tenants"),
    ("truncated_tenants", "fleet_truncated_tenants"),
)

#: Per-tenant series exported per window (resident/quota only appear
#: under a partitioned frame policy and are included when present).
_TENANT_SERIES = (
    ("accesses", "tenant_accesses"),
    ("faults", "tenant_faults"),
    ("preloads_completed", "tenant_preloads_completed"),
    ("wait_cycles", "tenant_channel_wait_cycles"),
    ("fault_wait_p99", "tenant_fault_wait_p99_cycles"),
    ("resident", "tenant_epc_resident_frames"),
    ("quota", "tenant_epc_quota_frames"),
)


def _escape_label(value: str) -> str:
    """Escape one label value per the OpenMetrics text format."""
    return "".join(_LABEL_ESCAPE.get(ch, ch) for ch in value)


def render_fleet_openmetrics(
    block: Mapping[str, object], *, prefix: str = "repro_"
) -> str:
    """Render a ``repro.fleet-timeseries/1`` block as labeled series.

    Every sample carries a ``window`` label holding the window's end
    cycle (windows are half-open, so the label names the exclusive
    upper bound); per-tenant samples add a ``tenant`` label.  Output
    is deterministic — metric-name-major, window-minor, tenants in
    registration order within a window — and ends with ``# EOF``.
    """
    from repro.obs.fleet_telemetry import FLEET_TIMESERIES_SCHEMA

    schema = block.get("schema")
    if schema != FLEET_TIMESERIES_SCHEMA:
        raise ValueError(
            f"not a fleet timeseries block: schema {schema!r} "
            f"(expected {FLEET_TIMESERIES_SCHEMA})"
        )
    ends = [int(v) for v in block["window_end"]]  # type: ignore[index]
    fleet: Mapping[str, object] = block["fleet"]  # type: ignore[assignment]
    tenants = block["tenants"]  # type: ignore[index]
    lines: List[str] = []

    lines.append(f"# TYPE {prefix}fleet_window_cycles gauge")
    lines.append(f"{prefix}fleet_window_cycles {int(block['window_cycles'])}")
    for key, name in _FLEET_SERIES:
        series = fleet[key]
        metric = prefix + name
        lines.append(f"# TYPE {metric} gauge")
        for i, end in enumerate(ends):
            lines.append(
                f'{metric}{{window="{end}"}} {_format_value(series[i])}'
            )
    for key, name in _TENANT_SERIES:
        metric = prefix + name
        header_done = False
        for tenant in tenants:  # type: ignore[union-attr]
            series = tenant.get(key)
            if series is None:
                continue
            if not header_done:
                lines.append(f"# TYPE {metric} gauge")
                header_done = True
            label = _escape_label(str(tenant["name"]))
            for i, end in enumerate(ends):
                lines.append(
                    f'{metric}{{tenant="{label}",window="{end}"}} '
                    f"{_format_value(series[i])}"
                )
    rebalances = block.get("rebalances") or []
    lines.append(f"# TYPE {prefix}fleet_rebalances_total gauge")
    lines.append(f"{prefix}fleet_rebalances_total {len(rebalances)}")
    quota_last: Dict[str, object] = {}
    for decision in rebalances:  # latest decision wins per tenant
        quota_last.update(decision["quotas_after"])
    if quota_last:
        metric = prefix + "tenant_epc_quota_last_frames"
        lines.append(f"# TYPE {metric} gauge")
        for name in sorted(quota_last):
            label = _escape_label(name)
            lines.append(
                f'{metric}{{tenant="{label}"}} '
                f"{_format_value(quota_last[name])}"
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
