"""OpenMetrics text export over :class:`~repro.obs.metrics.MetricsRegistry` dumps.

Fleet runs want to be scraped, not re-parsed: this renders any metric
dump (a live registry's ``as_dict()`` or the merged fleet dump shipped
back by workers) in the OpenMetrics / Prometheus text exposition
format, so a CI job or a node exporter sidecar can hand simulation
counters straight to a scrape endpoint.

Mapping rules, chosen for fidelity over cleverness:

* metric names are prefixed ``repro_`` and sanitized to the
  ``[a-zA-Z_:][a-zA-Z0-9_:]*`` charset (dots become underscores), so
  ``fault.wait_hist`` exposes as ``repro_fault_wait_hist``;
* scalar counters/gauges export as ``gauge`` samples — the registry
  dump is a point-in-time snapshot, and OpenMetrics counters would
  demand ``_total`` renames that break the 1:1 mapping back to the
  manifest's ``metrics`` section;
* histogram dumps export as a proper ``histogram`` family: cumulative
  ``_bucket{le="..."}`` series (the registry stores per-bucket counts,
  so this cumulates them), the mandatory ``le="+Inf"`` bucket equal to
  the observation count (overflow included), plus ``_sum`` and
  ``_count``;
* non-numeric dump values are skipped — they have no OpenMetrics
  representation and the manifest already carries them;
* output ends with the mandatory ``# EOF`` terminator and is sorted
  by metric name, so the same dump always renders the same bytes.
"""

from __future__ import annotations

import re
from typing import List, Mapping

__all__ = ["render_openmetrics"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _sample_name(name: str, prefix: str) -> str:
    """Sanitize one dump key into a legal OpenMetrics metric name."""
    sanitized = _NAME_OK.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def _format_value(value: object) -> str:
    """Render one sample value (ints stay ints; floats use repr)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))  # type: ignore[arg-type]


def _is_histogram(value: object) -> bool:
    return isinstance(value, Mapping) and value.get("type") == "histogram"


def render_openmetrics(dump: Mapping[str, object], *, prefix: str = "repro_") -> str:
    """Render a metric dump in OpenMetrics text exposition format.

    ``dump`` is any registry/fleet metrics mapping (name → scalar or
    histogram document).  Returns the full exposition including the
    ``# EOF`` terminator; deterministic for a given dump.
    """
    lines: List[str] = []
    for name in sorted(dump):
        value = dump[name]
        metric = _sample_name(name, prefix)
        if _is_histogram(value):
            doc: Mapping[str, object] = value  # type: ignore[assignment]
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bucket in doc.get("buckets", []):  # type: ignore[union-attr]
                cumulative += int(bucket["count"])
                lines.append(
                    f'{metric}_bucket{{le="{bucket["le"]}"}} {cumulative}'
                )
            count = int(doc["count"])  # type: ignore[index]
            lines.append(f'{metric}_bucket{{le="+Inf"}} {count}')
            lines.append(f"{metric}_sum {_format_value(doc['sum'])}")
            lines.append(f"{metric}_count {count}")
        elif isinstance(value, (int, float)):
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(value)}")
        # Anything else (strings, nested objects) has no OpenMetrics
        # representation; the manifest carries it instead.
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
