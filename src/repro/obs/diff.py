"""Manifest diffing: the cycle-attribution delta between two runs.

``repro report A.json B.json`` answers the question every figure of
the paper answers — *where did the seconds go?* — for an arbitrary
pair of recorded runs.  The diff attributes the total cycle delta to
the time-breakdown buckets (compute, AEX, ERESUME, fault wait, SIP
check/wait) and lists every counter that moved, so a preloading win
shows up as "fault_wait shrank by N cycles, carried by M fewer
faults" rather than a bare ratio.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.report import format_table

__all__ = ["diff_manifests", "render_diff"]

#: Buckets reported in attribution order (derived totals excluded).
_TIME_BUCKETS = ("compute", "aex", "eresume", "fault_wait", "sip_check", "sip_wait")


def _run_label(manifest: Dict[str, object]) -> str:
    run = manifest.get("run", {})
    if not isinstance(run, dict):
        return "?"
    return (
        f"{run.get('workload', '?')}/{run.get('scheme', '?')}"
        f"[{run.get('input_set', '?')}, seed {run.get('seed', '?')}]"
    )


def _int_of(section: Dict[str, object], key: str) -> int:
    value = section.get(key, 0)
    return value if isinstance(value, int) else 0


def diff_manifests(
    a: Dict[str, object], b: Dict[str, object]
) -> Dict[str, object]:
    """Structured diff of two run manifests (``b`` relative to ``a``).

    Returns a dict with ``total`` (cycles and ratio), ``time`` rows
    attributing the delta per bucket (each with its share of the total
    delta), ``stats`` rows for every counter that changed, and a
    ``comparable`` flag that is False when the two runs are of
    different workloads or input sets (the diff is still produced —
    cross-workload deltas are occasionally what one wants — but the
    renderer flags it).
    """
    run_a = a.get("run", {}) if isinstance(a.get("run"), dict) else {}
    run_b = b.get("run", {}) if isinstance(b.get("run"), dict) else {}
    time_a = a.get("time_breakdown", {}) if isinstance(a.get("time_breakdown"), dict) else {}
    time_b = b.get("time_breakdown", {}) if isinstance(b.get("time_breakdown"), dict) else {}
    stats_a = a.get("stats", {}) if isinstance(a.get("stats"), dict) else {}
    stats_b = b.get("stats", {}) if isinstance(b.get("stats"), dict) else {}

    total_a = _int_of(time_a, "total")
    total_b = _int_of(time_b, "total")
    total_delta = total_b - total_a

    time_rows: List[Dict[str, object]] = []
    for bucket in _TIME_BUCKETS:
        va = _int_of(time_a, bucket)
        vb = _int_of(time_b, bucket)
        delta = vb - va
        share: Optional[float] = delta / total_delta if total_delta else None
        time_rows.append(
            {"bucket": bucket, "a": va, "b": vb, "delta": delta, "share": share}
        )

    stat_rows: List[Dict[str, object]] = []
    for key in sorted(set(stats_a) | set(stats_b)):
        if key == "time":
            continue
        va = _int_of(stats_a, key)
        vb = _int_of(stats_b, key)
        if va != vb:
            stat_rows.append({"counter": key, "a": va, "b": vb, "delta": vb - va})

    comparable = (
        run_a.get("workload") == run_b.get("workload")
        and run_a.get("input_set") == run_b.get("input_set")
    )
    return {
        "a": {"label": _run_label(a), **run_a},
        "b": {"label": _run_label(b), **run_b},
        "comparable": comparable,
        "total": {
            "a": total_a,
            "b": total_b,
            "delta": total_delta,
            "ratio": (total_b / total_a) if total_a else None,
        },
        "time": time_rows,
        "stats": stat_rows,
    }


def _fmt_share(share: Optional[float]) -> str:
    return f"{share:+.1%}" if share is not None else "-"


def render_diff(diff: Dict[str, object]) -> str:
    """Human-readable report of one :func:`diff_manifests` result."""
    a = diff["a"]
    b = diff["b"]
    total = diff["total"]
    lines: List[str] = [
        f"A: {a['label']}",
        f"B: {b['label']}",
    ]
    if not diff["comparable"]:
        lines.append(
            "warning: runs differ in workload or input set — deltas are "
            "cross-experiment, not an apples-to-apples comparison"
        )
    ratio = total["ratio"]
    ratio_text = f"{ratio:.3f}x" if ratio is not None else "-"
    lines.append(
        f"total: {total['a']:,} -> {total['b']:,} cycles "
        f"({total['delta']:+,}; B/A = {ratio_text})"
    )
    lines.append("")
    lines.append(
        format_table(
            ["bucket", "A cycles", "B cycles", "delta", "share of delta"],
            [
                [
                    row["bucket"],
                    f"{row['a']:,}",
                    f"{row['b']:,}",
                    f"{row['delta']:+,}",
                    _fmt_share(row["share"]),
                ]
                for row in diff["time"]
            ],
            title="cycle attribution (B - A)",
        )
    )
    stats = diff["stats"]
    lines.append("")
    if stats:
        lines.append(
            format_table(
                ["counter", "A", "B", "delta"],
                [
                    [row["counter"], f"{row['a']:,}", f"{row['b']:,}", f"{row['delta']:+,}"]
                    for row in stats
                ],
                title="counters that moved",
            )
        )
    else:
        lines.append("no counters moved")
    return "\n".join(lines)
