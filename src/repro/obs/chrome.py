"""Chrome ``trace_event`` export: open any run in Perfetto.

The Trace Event Format (the JSON understood by ``chrome://tracing``
and https://ui.perfetto.dev) models a trace as complete events
(``ph: "X"`` with ``ts``/``dur``) and instant events (``ph: "i"``) on
per-process/per-thread tracks.  The simulator maps naturally onto
three tracks, mirroring the paper's three actors:

==========  ====================================================
``app``     the application thread: compute, AEX/ERESUME world
            switches, fault waits, SIP checks and waits
``channel`` the exclusive non-preemptible load channel: demand
            loads and preload bursts (the paper's kernel thread)
``scan``    the periodic service-thread scan ticks
==========  ====================================================

Timestamps: the trace format counts microseconds, so virtual cycles
are converted at the paper platform's clock (3.5 GHz by default) and
rounded to nanosecond precision; each event also carries its raw
cycle stamps in ``args`` so nothing is lost to rounding.

Execution-layer spans (:class:`~repro.obs.exec_telemetry.ExecSpan`,
PR 5) export next to the simulation tracks: one ``exec-runner`` track
(tid 10) for runner bookkeeping — queue waits, retry backoffs,
checkpoint writes, resume hits, pool degradation — and one
``worker-N`` track per occupied worker lane (tid 11 + lane) carrying
attempt spans with timeout-abandon and injected-fault instants.  Those
spans are wall-clock seconds, not virtual cycles; they are normalized
to the earliest span start so both timelines begin near zero.

Paging-profile residency tracks (PR 7): given a
``repro.paging-profile/1`` block, each exported hot page gets its own
``page-N`` track (tid 100 + rank) whose complete events are the
page's residency intervals — named by load kind and touch outcome, so
a wasted preload is visible as an untouched ``preload`` bar ending at
the CLOCK decision that evicted it (recorded in ``args``).

Fleet time-series tracks (PR 10): :func:`fleet_chrome_trace` renders
a ``repro.fleet-timeseries/1`` block as counter tracks (``ph: "C"``
— Perfetto draws them as stacked area charts) for the fleet-wide
series (faults/preloads per window, EPC occupancy, queue depth,
active tenants, channel utilization), one instant per adaptive-quota
rebalance with its before/after quotas, and one lifecycle track per
tenant (tid 200 + index): ``queued`` → ``spinup`` → ``run`` complete
events with a ``truncated`` instant when the duration cutoff hit.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.enclave.events import EventKind, TimelineEvent
from repro.errors import ObsError

__all__ = [
    "THREAD_NAMES",
    "chrome_trace",
    "fleet_chrome_trace",
    "write_chrome_trace",
    "write_fleet_chrome_trace",
    "validate_chrome_trace",
]

#: Track (tid) assignment per event kind.
_APP_TID = 1
_CHANNEL_TID = 2
_SCAN_TID = 3

THREAD_NAMES: Dict[int, str] = {
    _APP_TID: "app",
    _CHANNEL_TID: "channel",
    _SCAN_TID: "scan",
}

_TID_OF_KIND: Dict[EventKind, int] = {
    EventKind.COMPUTE: _APP_TID,
    EventKind.AEX: _APP_TID,
    EventKind.ERESUME: _APP_TID,
    EventKind.FAULT_WAIT: _APP_TID,
    EventKind.SIP_CHECK: _APP_TID,
    EventKind.SIP_LOAD: _APP_TID,
    EventKind.EPC_HIT: _APP_TID,
    EventKind.ABORT: _APP_TID,
    EventKind.DEMAND_LOAD: _CHANNEL_TID,
    EventKind.PRELOAD: _CHANNEL_TID,
    EventKind.SCAN: _SCAN_TID,
}

#: Execution-layer track (tid) assignment: the runner's bookkeeping
#: track, then one track per worker lane above it.
_EXEC_RUNNER_TID = 10
_EXEC_WORKER_TID0 = 11

#: Paging-profile residency tracks sit above the exec lanes: one per
#: exported hot page, capped so the track list stays readable.
_RESIDENCY_TID0 = 100
_MAX_RESIDENCY_TRACKS = 16

#: Fleet tracks: rebalance instants on one control track, then one
#: lifecycle track per tenant above it.
_FLEET_REBALANCE_TID = 199
_FLEET_TENANT_TID0 = 200

#: Keys every emitted trace event must carry (spec minimum).
_REQUIRED_KEYS = ("name", "ph", "pid", "tid", "ts")


def _cycles_to_us(cycles: int, ghz: float) -> float:
    """Virtual cycles → microseconds at ``ghz``, ns-rounded."""
    return round(cycles / (ghz * 1_000.0), 3)


def _exec_records(exec_spans, pid: int) -> List[Dict[str, object]]:
    """Render execution spans as runner/worker-lane track records."""
    from repro.obs.exec_telemetry import SpanKind

    spans = list(exec_spans)
    records: List[Dict[str, object]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": _EXEC_RUNNER_TID,
            "ts": 0,
            "args": {"name": "exec-runner"},
        }
    ]
    worker_kinds = (
        SpanKind.ATTEMPT,
        SpanKind.TIMEOUT_ABANDON,
        SpanKind.FAULT_INJECTED,
    )
    lanes = sorted({s.lane for s in spans if s.kind in worker_kinds})
    for lane in lanes:
        records.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": _EXEC_WORKER_TID0 + lane,
                "ts": 0,
                "args": {"name": f"worker-{lane}"},
            }
        )
    if not spans:
        return records
    origin = min(s.start_s for s in spans)
    interval_kinds = (
        SpanKind.QUEUE_WAIT,
        SpanKind.ATTEMPT,
        SpanKind.RETRY_BACKOFF,
    )
    for span in spans:
        tid = (
            _EXEC_WORKER_TID0 + span.lane
            if span.kind in worker_kinds
            else _EXEC_RUNNER_TID
        )
        args: Dict[str, object] = {"job": span.job, "attempt": span.attempt}
        if span.outcome:
            args["outcome"] = span.outcome
        if span.detail:
            args["detail"] = span.detail
        record: Dict[str, object] = {
            "name": span.kind.value,
            "cat": "exec",
            "pid": pid,
            "tid": tid,
            "ts": round((span.start_s - origin) * 1e6, 3),
            "args": args,
        }
        if span.kind in interval_kinds:
            record["ph"] = "X"
            record["dur"] = round(max(span.duration_s, 0.0) * 1e6, 3)
        else:
            record["ph"] = "i"
            record["s"] = "t"
        records.append(record)
    return records


def _residency_records(
    paging_profile: Dict[str, object], pid: int, ghz: float
) -> List[Dict[str, object]]:
    """Render a paging profile's hot pages as residency tracks."""
    pages = paging_profile.get("pages", [])
    if not isinstance(pages, list):
        raise ObsError("paging profile pages is not a list")
    records: List[Dict[str, object]] = []
    for rank, entry in enumerate(pages[:_MAX_RESIDENCY_TRACKS]):
        tid = _RESIDENCY_TID0 + rank
        page = entry["page"]
        records.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "args": {"name": f"page-{page}"},
            }
        )
        for interval in entry.get("intervals", []):
            start = int(interval["start"])
            end = int(interval["end"])
            kind = interval["kind"]
            touched = bool(interval["touched"])
            args: Dict[str, object] = {
                "page": page,
                "kind": kind,
                "touched": touched,
                "start_cycles": start,
                "end_cycles": end,
            }
            if "evicted_for_page" in interval:
                args["evicted_for_page"] = interval["evicted_for_page"]
                args["evicted_for_kind"] = interval["evicted_for_kind"]
                args["second_chances"] = interval["second_chances"]
            name = f"{kind}:{'touched' if touched else 'untouched'}"
            record: Dict[str, object] = {
                "name": name,
                "cat": "residency",
                "pid": pid,
                "tid": tid,
                "ts": _cycles_to_us(start, ghz),
                "args": args,
            }
            if end > start:
                record["ph"] = "X"
                record["dur"] = _cycles_to_us(end - start, ghz)
            else:
                record["ph"] = "i"
                record["s"] = "t"
            records.append(record)
    return records


def chrome_trace(
    events: Iterable[TimelineEvent],
    *,
    pid: int = 1,
    ghz: float = 3.5,
    process_name: str = "repro-sim",
    exec_spans=None,
    dropped_events: int = 0,
    paging_profile: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Render ``events`` as a Chrome trace_event JSON document.

    Thread-name metadata for all three tracks is always emitted so
    the track layout is stable regardless of which kinds occurred.
    ``exec_spans`` (a sequence of
    :class:`~repro.obs.exec_telemetry.ExecSpan`) adds the
    execution-layer runner/worker tracks; ``dropped_events`` surfaces a
    ring buffer's eviction count in ``otherData`` so a truncated trace
    says so in the artifact itself; ``paging_profile`` (a
    ``repro.paging-profile/1`` block) adds per-page residency tracks.
    """
    if ghz <= 0:
        raise ObsError(f"clock rate must be positive, got {ghz}")
    trace_events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "args": {"name": process_name},
        }
    ]
    for tid in sorted(THREAD_NAMES):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "args": {"name": THREAD_NAMES[tid]},
            }
        )
    for event in events:
        tid = _TID_OF_KIND.get(event.kind, _APP_TID)
        args: Dict[str, object] = {
            "start_cycles": event.start,
            "end_cycles": event.end,
        }
        if event.page >= 0:
            args["page"] = event.page
        record: Dict[str, object] = {
            "name": event.kind.value,
            "cat": "sim",
            "pid": pid,
            "tid": tid,
            "ts": _cycles_to_us(event.start, ghz),
            "args": args,
        }
        if event.duration > 0:
            record["ph"] = "X"
            record["dur"] = _cycles_to_us(event.duration, ghz)
        else:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        trace_events.append(record)
    if exec_spans is not None:
        trace_events.extend(_exec_records(exec_spans, pid))
    if paging_profile is not None:
        trace_events.extend(_residency_records(paging_profile, pid, ghz))
    other_data: Dict[str, object] = {
        "clock_ghz": ghz,
        "format": "repro.chrome-trace/1",
    }
    if dropped_events:
        other_data["dropped_events"] = dropped_events
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": other_data,
    }


#: Fleet-wide counter tracks: (trace counter name, fleet series key).
_FLEET_COUNTERS = (
    ("fleet-faults", "faults"),
    ("fleet-preloads", "preloads_completed"),
    ("epc-resident", "epc_resident"),
    ("queue-depth", "queue_depth"),
    ("active-tenants", "active_tenants"),
    ("channel-utilization", "channel_utilization"),
)


def fleet_chrome_trace(
    timeseries: Dict[str, object],
    *,
    pid: int = 1,
    ghz: float = 3.5,
    process_name: str = "repro-fleet",
) -> Dict[str, object]:
    """Render a ``repro.fleet-timeseries/1`` block as a Chrome trace.

    Counter events (``ph: "C"``) carry each fleet-wide series, one
    sample per window close; the adaptive-quota policy's rebalance
    decisions land as instants on a ``rebalance`` track with their
    before/after quotas in ``args``; and every tenant gets a
    lifecycle track whose complete events span its queued, spin-up
    and run phases (a ``truncated`` instant marks the duration
    cutoff).  Virtual cycles convert to microseconds at ``ghz``, with
    raw cycle stamps preserved in ``args``.
    """
    from repro.obs.fleet_telemetry import FLEET_TIMESERIES_SCHEMA

    if ghz <= 0:
        raise ObsError(f"clock rate must be positive, got {ghz}")
    schema = timeseries.get("schema") if isinstance(timeseries, dict) else None
    if schema != FLEET_TIMESERIES_SCHEMA:
        raise ObsError(
            f"not a fleet timeseries block: schema {schema!r} "
            f"(expected {FLEET_TIMESERIES_SCHEMA})"
        )
    ends = timeseries["window_end"]
    fleet = timeseries["fleet"]
    end_cycles = int(timeseries["end_cycles"])
    records: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "args": {"name": process_name},
        }
    ]
    for name, key in _FLEET_COUNTERS:
        series = fleet[key]
        for i, end in enumerate(ends):
            records.append(
                {
                    "name": name,
                    "cat": "fleet",
                    "ph": "C",
                    "pid": pid,
                    "tid": 0,
                    "ts": _cycles_to_us(int(end), ghz),
                    "args": {key: series[i]},
                }
            )
    rebalances = timeseries.get("rebalances", [])
    if rebalances:
        records.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": _FLEET_REBALANCE_TID,
                "ts": 0,
                "args": {"name": "rebalance"},
            }
        )
        for decision in rebalances:
            records.append(
                {
                    "name": "rebalance",
                    "cat": "fleet",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": _FLEET_REBALANCE_TID,
                    "ts": _cycles_to_us(int(decision["cycle"]), ghz),
                    "args": {
                        "cycle": decision["cycle"],
                        "quotas_before": decision["quotas_before"],
                        "quotas_after": decision["quotas_after"],
                    },
                }
            )
    for tenant in timeseries["tenants"]:
        tid = _FLEET_TENANT_TID0 + int(tenant["index"])
        records.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "args": {"name": f"tenant-{tenant['name']}"},
            }
        )
        spans = []
        queued_at = tenant.get("queued_at")
        admitted_at = tenant.get("admitted_at")
        started_at = tenant.get("started_at")
        departed_at = tenant.get("departed_at")
        if queued_at is not None:
            queue_end = admitted_at if admitted_at is not None else end_cycles
            spans.append(("queued", queued_at, queue_end))
        if admitted_at is not None and started_at is not None:
            if started_at > admitted_at:
                spans.append(("spinup", admitted_at, started_at))
            run_end = departed_at if departed_at is not None else end_cycles
            spans.append(("run", started_at, run_end))
        for name, start, end in spans:
            start = int(start)
            end = int(end)
            args = {
                "tenant": tenant["name"],
                "scheme": tenant["scheme"],
                "start_cycles": start,
                "end_cycles": end,
            }
            record: Dict[str, object] = {
                "name": name,
                "cat": "lifecycle",
                "pid": pid,
                "tid": tid,
                "ts": _cycles_to_us(start, ghz),
                "args": args,
            }
            if end > start:
                record["ph"] = "X"
                record["dur"] = _cycles_to_us(end - start, ghz)
            else:
                record["ph"] = "i"
                record["s"] = "t"
            records.append(record)
        if tenant.get("truncated"):
            records.append(
                {
                    "name": "truncated",
                    "cat": "lifecycle",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tid,
                    "ts": _cycles_to_us(end_cycles, ghz),
                    "args": {"tenant": tenant["name"]},
                }
            )
    return {
        "traceEvents": records,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock_ghz": ghz,
            "format": "repro.chrome-trace/1",
            "source": FLEET_TIMESERIES_SCHEMA,
        },
    }


def write_fleet_chrome_trace(
    path: Union[str, Path],
    timeseries: Dict[str, object],
    *,
    pid: int = 1,
    ghz: float = 3.5,
) -> int:
    """Write the fleet-timeseries Chrome trace to ``path``.

    Returns the number of trace records written.
    """
    document = fleet_chrome_trace(timeseries, pid=pid, ghz=ghz)
    payload = json.dumps(document, sort_keys=True, indent=1)
    Path(path).write_text(payload + "\n", encoding="utf-8")
    return len(document["traceEvents"])  # type: ignore[arg-type]


def write_chrome_trace(
    path: Union[str, Path],
    events: Iterable[TimelineEvent],
    *,
    pid: int = 1,
    ghz: float = 3.5,
    exec_spans=None,
    dropped_events: int = 0,
    paging_profile: Optional[Dict[str, object]] = None,
) -> int:
    """Write the Chrome trace for ``events`` to ``path``.

    Returns the number of trace records written (including the
    metadata records).
    """
    document = chrome_trace(
        events,
        pid=pid,
        ghz=ghz,
        exec_spans=exec_spans,
        dropped_events=dropped_events,
        paging_profile=paging_profile,
    )
    payload = json.dumps(document, sort_keys=True, indent=1)
    Path(path).write_text(payload + "\n", encoding="utf-8")
    return len(document["traceEvents"])  # type: ignore[arg-type]


def validate_chrome_trace(document: object) -> Dict[str, int]:
    """Check ``document`` against the trace_event schema we emit.

    Raises :class:`~repro.errors.ObsError` on the first violation.
    Returns summary counts (``events``, ``tracks``, ``complete``,
    ``instant``, ``counter``, ``metadata``) so callers can assert on
    them.
    """
    if not isinstance(document, dict):
        raise ObsError("chrome trace must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ObsError("chrome trace lacks a traceEvents array")
    counts = {
        "events": 0,
        "tracks": 0,
        "complete": 0,
        "instant": 0,
        "counter": 0,
        "metadata": 0,
    }
    seen_tids = set()
    for record in events:
        if not isinstance(record, dict):
            raise ObsError(f"trace event is not an object: {record!r}")
        for key in _REQUIRED_KEYS:
            if key not in record:
                raise ObsError(f"trace event missing required key {key!r}: {record!r}")
        phase = record["ph"]
        counts["events"] += 1
        if phase == "M":
            counts["metadata"] += 1
            if record["name"] == "thread_name":
                seen_tids.add(record["tid"])
        elif phase == "X":
            counts["complete"] += 1
            if "dur" not in record or record["dur"] < 0:
                raise ObsError(f"complete event without valid dur: {record!r}")
        elif phase == "i":
            counts["instant"] += 1
        elif phase == "C":
            counts["counter"] += 1
            if not isinstance(record.get("args"), dict) or not record["args"]:
                raise ObsError(
                    f"counter event without sample args: {record!r}"
                )
        else:
            raise ObsError(f"unexpected event phase {phase!r}")
    counts["tracks"] = len(seen_tids)
    return counts
