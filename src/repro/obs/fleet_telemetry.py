"""Fleet time-series telemetry: cycle-windowed sampling of a fleet run.

PR 9's :func:`~repro.sim.fleet.simulate_fleet` reports end-of-run QoS
aggregates — means and percentiles over a whole tenancy.  Those hide
exactly what a multi-tenant EPC story is about: *when* a tenant
thrashed, how occupancy shifted as neighbours churned, and whether the
adaptive-quota policy's rebalances tracked demand or lagged it.  This
module is the missing time axis:

* :class:`FleetTelemetry` — a passive sampler the fleet event loop
  feeds through ``series_*`` hooks (lint rule RL012 confines those
  calls to ``repro.sim.fleet``, the sole sanctioned emitter).  It
  slices virtual time into fixed windows and records, per window,
  per-tenant and fleet-wide series: demand faults, preload
  completions, accesses, channel wait (sum, samples and a per-window
  p99 from bucket deltas of the driver's ``fault.wait_hist``), EPC
  frames held vs quota, load-channel utilization, admission-queue
  depth, active/truncated tenant counts — plus every adaptive-quota
  rebalance decision with its before/after quotas.
* :data:`FLEET_TIMESERIES_SCHEMA` — the deterministic, wall-clock-free
  ``repro.fleet-timeseries/1`` block (:meth:`FleetTelemetry.block`),
  embedded digest-excluded in the fleet manifest so an observed run's
  integrity digest equals the blind run's.
* :func:`validate_fleet_timeseries` — structural checks plus the exact
  reconciliation identities: window deltas cross-foot to the fleet
  series, and totals equal the ``repro.fleet-manifest/1`` QoS
  aggregates field for field.
* :class:`SloSpec` / :func:`evaluate_slo` / :func:`detect_thrash` —
  the SLO layer: per-window breach evaluation (max p99 fault wait,
  max fault rate, min residency ratio) merged into breach intervals,
  and a thrash-window detector flagging windows whose fault rate runs
  far above the tenant's own run mean.

Passivity is the contract everything above rests on: the sampler only
*reads* driver counters, histogram buckets, frame-manager quotas and
channel state — it never calls into the simulation.  The determinism
tests prove a ``--timeseries`` fleet run's manifest block stays
byte-identical to a blind one's under every frame policy.

Windowing semantics: windows are half-open ``[k*W, (k+1)*W)`` spans of
virtual time.  A window closes when the event loop first processes an
event at or past its end, so a window's deltas cover exactly the
events *started* inside it (a fault whose channel wait straddles the
boundary is attributed to the window it began in).  The run's tail —
including the channel drain performed by ``driver.finish`` — lands in
one final window closing at ``end_cycles``, which is what makes the
per-window sums reconcile exactly with the end-of-run aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ObsError
from repro.obs.metrics import histogram_quantile

__all__ = [
    "FLEET_TIMESERIES_SCHEMA",
    "FLEET_SLO_SCHEMA",
    "FleetTelemetry",
    "SloSpec",
    "evaluate_slo",
    "detect_thrash",
    "validate_fleet_timeseries",
]

#: Schema identifier of the fleet time-series manifest block.
FLEET_TIMESERIES_SCHEMA = "repro.fleet-timeseries/1"

#: Schema identifier of an SLO evaluation document.
FLEET_SLO_SCHEMA = "repro.fleet-slo/1"

#: Export cap: coarsen (pairwise-merge) windows until at most this
#: many remain, so the embedded block stays readable and bounded no
#: matter how long the scenario ran.  Merging sums the delta series
#: and keeps the later window's sampled gauges, so every
#: reconciliation identity survives coarsening.
_MAX_EXPORT_WINDOWS = 128


@dataclass(frozen=True)
class SloSpec:
    """A per-window service-level objective over the fleet series.

    Every field is optional; ``None`` disables that objective.  All
    thresholds are evaluated per tenant per window:

    * ``max_fault_wait_p99`` — upper bound (virtual cycles) on the
      window's p99 demand-fault channel wait (windows with no faults
      pass trivially);
    * ``max_fault_rate`` — upper bound on ``faults / accesses`` within
      the window (windows with no accesses pass trivially);
    * ``min_residency_ratio`` — lower bound on ``resident / quota`` at
      the window close; only meaningful under the partitioned frame
      policies (windows where the tenant holds no quota pass).
    """

    max_fault_wait_p99: Optional[float] = None
    max_fault_rate: Optional[float] = None
    min_residency_ratio: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_fault_wait_p99 is not None and self.max_fault_wait_p99 <= 0:
            raise ObsError(
                f"max_fault_wait_p99 must be positive, got {self.max_fault_wait_p99}"
            )
        if self.max_fault_rate is not None and not 0 < self.max_fault_rate <= 1:
            raise ObsError(
                f"max_fault_rate must be in (0, 1], got {self.max_fault_rate}"
            )
        if self.min_residency_ratio is not None and not (
            0 < self.min_residency_ratio <= 1
        ):
            raise ObsError(
                "min_residency_ratio must be in (0, 1], got "
                f"{self.min_residency_ratio}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any objective is set."""
        return (
            self.max_fault_wait_p99 is not None
            or self.max_fault_rate is not None
            or self.min_residency_ratio is not None
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "max_fault_wait_p99": self.max_fault_wait_p99,
            "max_fault_rate": self.max_fault_rate,
            "min_residency_ratio": self.min_residency_ratio,
        }

    _KEYS = {
        "wait_p99": "max_fault_wait_p99",
        "fault_rate": "max_fault_rate",
        "residency": "min_residency_ratio",
    }

    @classmethod
    def parse(cls, text: str) -> "SloSpec":
        """Parse the CLI form: ``wait_p99=80000,fault_rate=0.2,residency=0.5``."""
        values: Dict[str, float] = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, raw = item.partition("=")
            key = key.strip()
            if not sep or key not in cls._KEYS:
                raise ObsError(
                    f"bad SLO term {item!r} "
                    f"(use key=value with keys {', '.join(sorted(cls._KEYS))})"
                )
            try:
                values[cls._KEYS[key]] = float(raw)
            except ValueError:
                raise ObsError(f"SLO term {item!r} has a non-numeric value") from None
        if not values:
            raise ObsError("empty SLO spec (no key=value terms)")
        return cls(**values)


class _TenantSeries:
    """One tenant's lifecycle record plus per-window accumulation."""

    __slots__ = (
        "index", "name", "scheme", "workload", "arrival",
        "queued_at", "admitted_at", "started_at", "departed_at", "truncated",
        "port", "frames_state",
        "last_accesses", "last_faults", "last_preloads",
        "last_wait_sum", "last_wait_count", "last_buckets", "last_overflow",
        "accesses", "faults", "preloads", "wait_cycles", "wait_count",
        "buckets", "overflow", "resident", "quota",
    )

    def __init__(
        self, index: int, name: str, scheme: str, workload: str, arrival: int
    ) -> None:
        self.index = index
        self.name = name
        self.scheme = scheme
        self.workload = workload
        self.arrival = arrival
        self.queued_at: Optional[int] = None
        self.admitted_at: Optional[int] = None
        self.started_at: Optional[int] = None
        self.departed_at: Optional[int] = None
        self.truncated = False
        # Live references, set at admission: (stats, wait_hist, driver).
        self.port = None
        self.frames_state = None
        # Cumulative snapshot at the last window close.
        self.last_accesses = 0
        self.last_faults = 0
        self.last_preloads = 0
        self.last_wait_sum = 0
        self.last_wait_count = 0
        self.last_buckets: Optional[List[int]] = None
        self.last_overflow = 0
        # Per-window series (parallel arrays, one entry per window).
        self.accesses: List[int] = []
        self.faults: List[int] = []
        self.preloads: List[int] = []
        self.wait_cycles: List[int] = []
        self.wait_count: List[int] = []
        self.buckets: List[List[int]] = []
        self.overflow: List[int] = []
        self.resident: List[int] = []
        self.quota: List[int] = []


class FleetTelemetry:
    """Passive, cycle-windowed sampler over one fleet run.

    Construct one per :func:`~repro.sim.fleet.simulate_fleet` call and
    pass it as the ``telemetry`` argument; the fleet loop drives every
    ``series_*`` hook.  ``window_cycles`` defaults to the scenario
    config's scan period — the natural cadence of the simulated
    platform — when left ``None``.
    """

    def __init__(self, *, window_cycles: Optional[int] = None) -> None:
        if window_cycles is not None and window_cycles <= 0:
            raise ObsError(
                f"window_cycles must be positive, got {window_cycles}"
            )
        self._window_cycles = window_cycles
        self._bounds: Optional[Tuple[int, ...]] = None
        self._platform = None
        self._frames = None
        self._config = None
        self._cost_load = 0
        self._cost_evict = 0
        self._tenants: List[_TenantSeries] = []
        self._waiting: set = set()
        self._active = 0
        self._truncated = 0
        self._next_boundary = 0
        self._end: Optional[int] = None
        # Fleet-wide per-window series.
        self._w_start: List[int] = []
        self._w_end: List[int] = []
        self._f_epc: List[int] = []
        self._f_queue: List[int] = []
        self._f_active: List[int] = []
        self._f_truncated: List[int] = []
        self._f_loads: List[int] = []
        self._f_evictions: List[int] = []
        # Channel cumulative snapshot at the last window close.
        self._last_loads = 0
        self._last_evictions = 0
        self._rebalances: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # Hooks (fed exclusively by repro.sim.fleet — lint rule RL012)
    # ------------------------------------------------------------------

    def series_begin(self, config, platform, frames) -> None:
        """Bind the run: resolve the window width, hold platform refs."""
        if self._platform is not None:
            raise ObsError("FleetTelemetry is single-use; make a fresh one")
        self._config = config
        self._platform = platform
        self._frames = frames
        self._cost_load = platform.channel.load_cycles
        self._cost_evict = config.cost.ewb_cycles
        if self._window_cycles is None:
            self._window_cycles = config.scan_period_cycles
        self._next_boundary = self._window_cycles

    def series_tenant(
        self, index: int, name: str, scheme: str, workload: str, arrival: int
    ) -> None:
        """Register one tenant of the scenario (admitted or not)."""
        if index != len(self._tenants):
            raise ObsError(
                f"tenants must register in index order; got {index}, "
                f"expected {len(self._tenants)}"
            )
        self._tenants.append(
            _TenantSeries(index, name, scheme, workload, arrival)
        )

    def series_queued(self, index: int, t: int) -> None:
        """The admission controller parked this tenant in the FIFO."""
        tenant = self._tenants[index]
        tenant.queued_at = t
        self._waiting.add(index)

    def series_admit(self, index: int, t: int, driver, registry) -> None:
        """The tenant was admitted: wire up its passive read ports."""
        tenant = self._tenants[index]
        tenant.admitted_at = t
        self._waiting.discard(index)
        self._active += 1
        hist = registry.get("fault.wait_hist")
        tenant.port = (driver.stats, hist, driver)
        if self._bounds is None:
            self._bounds = tuple(hist.bounds)
        tenant.last_buckets = list(hist.counts)
        tenant.last_overflow = hist.overflow

    def series_started(self, index: int, t: int) -> None:
        """Spin-up finished; the tenant's trace starts at ``t``."""
        self._tenants[index].started_at = t

    def series_tick(self, t: int) -> None:
        """Called at every event-loop pop; closes any elapsed windows."""
        while t >= self._next_boundary:
            self._close_window(self._next_boundary)
            self._next_boundary += self._window_cycles

    def series_rebalance(
        self, t: int, before: Mapping[str, int], after: Mapping[str, int]
    ) -> None:
        """Record one adaptive-quota rebalance with before/after quotas."""
        self._rebalances.append(
            {
                "cycle": t,
                "quotas_before": dict(before),
                "quotas_after": dict(after),
            }
        )

    def series_depart(self, index: int, t: int, *, truncated: bool) -> None:
        """The tenant left (completed its trace, or was truncated)."""
        tenant = self._tenants[index]
        tenant.departed_at = t
        tenant.truncated = truncated
        self._active -= 1
        if truncated:
            self._truncated += 1

    def series_truncated(self, index: int) -> None:
        """Duration cutoff hit while the tenant was still running."""
        tenant = self._tenants[index]
        tenant.truncated = True
        self._active -= 1
        self._truncated += 1

    def series_finish(self, end: int) -> None:
        """Close the run at ``end`` (after every driver drained)."""
        if self._end is not None:
            raise ObsError("series_finish called twice")
        while self._next_boundary < end:
            self._close_window(self._next_boundary)
            self._next_boundary += self._window_cycles
        # The tail window absorbs everything up to the true end —
        # including channel drain done by driver.finish — so the
        # per-window sums equal the end-of-run aggregates exactly.
        last_closed = self._w_end[-1] if self._w_end else 0
        if not self._w_end:
            self._close_window(max(end, 1))
        elif end > last_closed:
            self._close_window(end)
        else:
            # ``end`` fell exactly on an already-closed boundary: fold
            # the drain residue into that final window so nothing the
            # run counted escapes the series.
            self._merge_residuals_into_last()
        self._end = end

    # ------------------------------------------------------------------
    # Sampling internals
    # ------------------------------------------------------------------

    def _close_window(self, boundary: int) -> None:
        start = self._w_end[-1] if self._w_end else 0
        self._w_start.append(start)
        self._w_end.append(boundary)
        frames = self._frames
        for tenant in self._tenants:
            port = tenant.port
            if port is None:
                tenant.accesses.append(0)
                tenant.faults.append(0)
                tenant.preloads.append(0)
                tenant.wait_cycles.append(0)
                tenant.wait_count.append(0)
                tenant.buckets.append([])
                tenant.overflow.append(0)
                tenant.resident.append(0)
                tenant.quota.append(0)
                continue
            stats, hist, driver = port
            tenant.accesses.append(stats.accesses - tenant.last_accesses)
            tenant.faults.append(stats.faults - tenant.last_faults)
            tenant.preloads.append(
                stats.preloads_completed - tenant.last_preloads
            )
            tenant.wait_cycles.append(hist.sum - tenant.last_wait_sum)
            tenant.wait_count.append(hist.count - tenant.last_wait_count)
            tenant.buckets.append(
                [
                    now - last
                    for now, last in zip(hist.counts, tenant.last_buckets)
                ]
            )
            tenant.overflow.append(hist.overflow - tenant.last_overflow)
            tenant.last_accesses = stats.accesses
            tenant.last_faults = stats.faults
            tenant.last_preloads = stats.preloads_completed
            tenant.last_wait_sum = hist.sum
            tenant.last_wait_count = hist.count
            tenant.last_buckets = list(hist.counts)
            tenant.last_overflow = hist.overflow
            if frames is not None:
                tenant.resident.append(frames.resident_of(driver))
                tenant.quota.append(frames.quota_of(driver))
            else:
                tenant.resident.append(0)
                tenant.quota.append(0)
        platform = self._platform
        channel = platform.channel
        loads = (
            channel.demand_loads + channel.sip_loads + channel.preloads_completed
        )
        evictions = sum(
            t.port[0].evictions for t in self._tenants if t.port is not None
        )
        self._f_epc.append(platform.epc.resident_count)
        self._f_queue.append(len(self._waiting))
        self._f_active.append(self._active)
        self._f_truncated.append(self._truncated)
        self._f_loads.append(loads - self._last_loads)
        self._f_evictions.append(evictions - self._last_evictions)
        self._last_loads = loads
        self._last_evictions = evictions

    def _merge_residuals_into_last(self) -> None:
        """Fold post-close counter movement into the final window."""
        frames = self._frames
        for tenant in self._tenants:
            port = tenant.port
            if port is None:
                continue
            stats, hist, driver = port
            tenant.accesses[-1] += stats.accesses - tenant.last_accesses
            tenant.faults[-1] += stats.faults - tenant.last_faults
            tenant.preloads[-1] += (
                stats.preloads_completed - tenant.last_preloads
            )
            tenant.wait_cycles[-1] += hist.sum - tenant.last_wait_sum
            tenant.wait_count[-1] += hist.count - tenant.last_wait_count
            delta = [
                now - last
                for now, last in zip(hist.counts, tenant.last_buckets)
            ]
            if tenant.buckets[-1]:
                tenant.buckets[-1] = [
                    a + b for a, b in zip(tenant.buckets[-1], delta)
                ]
            elif any(delta):
                tenant.buckets[-1] = delta
            tenant.overflow[-1] += hist.overflow - tenant.last_overflow
            tenant.last_accesses = stats.accesses
            tenant.last_faults = stats.faults
            tenant.last_preloads = stats.preloads_completed
            tenant.last_wait_sum = hist.sum
            tenant.last_wait_count = hist.count
            tenant.last_buckets = list(hist.counts)
            tenant.last_overflow = hist.overflow
            if frames is not None:
                tenant.resident[-1] = frames.resident_of(driver)
                tenant.quota[-1] = frames.quota_of(driver)
        platform = self._platform
        channel = platform.channel
        loads = (
            channel.demand_loads + channel.sip_loads + channel.preloads_completed
        )
        evictions = sum(
            t.port[0].evictions for t in self._tenants if t.port is not None
        )
        self._f_loads[-1] += loads - self._last_loads
        self._f_evictions[-1] += evictions - self._last_evictions
        self._last_loads = loads
        self._last_evictions = evictions
        self._f_epc[-1] = platform.epc.resident_count
        self._f_queue[-1] = len(self._waiting)
        self._f_active[-1] = self._active
        self._f_truncated[-1] = self._truncated

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def _coarsen(self) -> int:
        """Pairwise-merge windows in place until under the export cap.

        Returns the number of merge passes performed.  Delta series
        sum; sampled gauges keep the *later* window's value (the state
        at the merged window's close); wait-histogram bucket deltas
        sum, so per-window quantiles stay well defined.
        """

        def merge_sum(series: List[int]) -> List[int]:
            return [
                sum(series[i : i + 2]) for i in range(0, len(series), 2)
            ]

        def merge_last(series: List[int]) -> List[int]:
            return [
                series[min(i + 1, len(series) - 1)]
                for i in range(0, len(series), 2)
            ]

        passes = 0
        while len(self._w_end) > _MAX_EXPORT_WINDOWS:
            passes += 1
            self._w_start = [
                self._w_start[i] for i in range(0, len(self._w_start), 2)
            ]
            self._w_end = merge_last(self._w_end)
            self._f_epc = merge_last(self._f_epc)
            self._f_queue = merge_last(self._f_queue)
            self._f_active = merge_last(self._f_active)
            self._f_truncated = merge_last(self._f_truncated)
            self._f_loads = merge_sum(self._f_loads)
            self._f_evictions = merge_sum(self._f_evictions)
            for tenant in self._tenants:
                tenant.accesses = merge_sum(tenant.accesses)
                tenant.faults = merge_sum(tenant.faults)
                tenant.preloads = merge_sum(tenant.preloads)
                tenant.wait_cycles = merge_sum(tenant.wait_cycles)
                tenant.wait_count = merge_sum(tenant.wait_count)
                tenant.overflow = merge_sum(tenant.overflow)
                tenant.resident = merge_last(tenant.resident)
                tenant.quota = merge_last(tenant.quota)
                merged: List[List[int]] = []
                for i in range(0, len(tenant.buckets), 2):
                    pair = tenant.buckets[i : i + 2]
                    if len(pair) == 1 or not pair[1]:
                        merged.append(pair[0])
                    elif not pair[0]:
                        merged.append(pair[1])
                    else:
                        merged.append(
                            [a + b for a, b in zip(pair[0], pair[1])]
                        )
                tenant.buckets = merged
        return passes

    def _window_p99(
        self, buckets: Sequence[int], overflow: int, count: int, total: int
    ) -> float:
        if count <= 0 or self._bounds is None:
            return 0.0
        dump = {
            "count": count,
            "sum": total,
            "buckets": [
                {"le": bound, "count": n}
                for bound, n in zip(self._bounds, buckets)
            ],
            "overflow": overflow,
        }
        return round(histogram_quantile(dump, 0.99), 3)

    def block(self) -> Dict[str, object]:
        """The deterministic ``repro.fleet-timeseries/1`` block."""
        if self._end is None:
            raise ObsError(
                "fleet telemetry is incomplete: series_finish never ran"
            )
        coarsen_passes = self._coarsen()
        n = len(self._w_end)
        fleet_accesses = [0] * n
        fleet_faults = [0] * n
        fleet_preloads = [0] * n
        fleet_wait = [0] * n
        fleet_wait_count = [0] * n
        fleet_buckets: List[List[int]] = [[] for _ in range(n)]
        fleet_overflow = [0] * n
        tenants_out: List[Dict[str, object]] = []
        partitioned = self._frames is not None
        for tenant in self._tenants:
            for i in range(n):
                fleet_accesses[i] += tenant.accesses[i]
                fleet_faults[i] += tenant.faults[i]
                fleet_preloads[i] += tenant.preloads[i]
                fleet_wait[i] += tenant.wait_cycles[i]
                fleet_wait_count[i] += tenant.wait_count[i]
                fleet_overflow[i] += tenant.overflow[i]
                if tenant.buckets[i]:
                    if fleet_buckets[i]:
                        fleet_buckets[i] = [
                            a + b
                            for a, b in zip(fleet_buckets[i], tenant.buckets[i])
                        ]
                    else:
                        fleet_buckets[i] = list(tenant.buckets[i])
            entry: Dict[str, object] = {
                "name": tenant.name,
                "index": tenant.index,
                "scheme": tenant.scheme,
                "workload": tenant.workload,
                "arrival": tenant.arrival,
                "queued_at": tenant.queued_at,
                "admitted_at": tenant.admitted_at,
                "started_at": tenant.started_at,
                "departed_at": tenant.departed_at,
                "truncated": tenant.truncated,
                "accesses": tenant.accesses,
                "faults": tenant.faults,
                "preloads_completed": tenant.preloads,
                "wait_cycles": tenant.wait_cycles,
                "wait_count": tenant.wait_count,
                "fault_wait_p99": [
                    self._window_p99(
                        tenant.buckets[i],
                        tenant.overflow[i],
                        tenant.wait_count[i],
                        tenant.wait_cycles[i],
                    )
                    for i in range(n)
                ],
            }
            if partitioned:
                entry["resident"] = tenant.resident
                entry["quota"] = tenant.quota
            tenants_out.append(entry)
        busy = [
            loads * self._cost_load + evictions * self._cost_evict
            for loads, evictions in zip(self._f_loads, self._f_evictions)
        ]
        utilization = [
            round(min(b / (end - start), 1.0), 4) if end > start else 0.0
            for b, start, end in zip(busy, self._w_start, self._w_end)
        ]
        return {
            "schema": FLEET_TIMESERIES_SCHEMA,
            "window_cycles": self._window_cycles,
            "coarsen_passes": coarsen_passes,
            "end_cycles": self._w_end[-1],
            "window_start": list(self._w_start),
            "window_end": list(self._w_end),
            "fleet": {
                "accesses": fleet_accesses,
                "faults": fleet_faults,
                "preloads_completed": fleet_preloads,
                "channel_wait_cycles": fleet_wait,
                "fault_wait_p99": [
                    self._window_p99(
                        fleet_buckets[i],
                        fleet_overflow[i],
                        fleet_wait_count[i],
                        fleet_wait[i],
                    )
                    for i in range(n)
                ],
                "channel_loads": list(self._f_loads),
                "channel_busy_cycles": busy,
                "channel_utilization": utilization,
                "epc_resident": list(self._f_epc),
                "queue_depth": list(self._f_queue),
                "active_tenants": list(self._f_active),
                "truncated_tenants": list(self._f_truncated),
            },
            "tenants": tenants_out,
            "rebalances": self._rebalances,
            "totals": {
                "accesses": sum(fleet_accesses),
                "faults": sum(fleet_faults),
                "preloads_completed": sum(fleet_preloads),
                "channel_wait_cycles": sum(fleet_wait),
                "channel_wait_samples": sum(fleet_wait_count),
            },
        }


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------

_FLEET_SERIES_KEYS = (
    "accesses",
    "faults",
    "preloads_completed",
    "channel_wait_cycles",
    "fault_wait_p99",
    "channel_loads",
    "channel_busy_cycles",
    "channel_utilization",
    "epc_resident",
    "queue_depth",
    "active_tenants",
    "truncated_tenants",
)

_TENANT_SERIES_KEYS = (
    "accesses",
    "faults",
    "preloads_completed",
    "wait_cycles",
    "wait_count",
    "fault_wait_p99",
)

#: (timeseries totals key → per-tenant QoS key) pairs that must agree
#: exactly when a fleet block is supplied for cross-checking.
_QOS_IDENTITIES = (
    ("accesses", "accesses"),
    ("faults", "faults"),
    ("wait_cycles", "channel_wait_cycles"),
    ("wait_count", "channel_wait_samples"),
)


def validate_fleet_timeseries(
    block: Mapping[str, object],
    *,
    fleet_block: Optional[Mapping[str, object]] = None,
) -> Dict[str, int]:
    """Check a ``repro.fleet-timeseries/1`` block, raising on violation.

    Structural checks: schema tag, equal-length contiguous windows,
    every series array exactly one entry per window.  Accounting
    checks: the fleet series cross-foot to the per-tenant series in
    every window, and the ``totals`` section equals the series sums.
    When ``fleet_block`` (the ``repro.fleet-manifest/1`` block of the
    same run) is given, per-tenant and fleet totals must reconcile
    *exactly* with its QoS aggregates.  Returns summary counts.
    """
    if not isinstance(block, Mapping):
        raise ObsError("fleet timeseries must be a mapping")
    schema = block.get("schema")
    if schema != FLEET_TIMESERIES_SCHEMA:
        raise ObsError(
            f"not a fleet timeseries block: schema {schema!r} "
            f"(expected {FLEET_TIMESERIES_SCHEMA})"
        )
    starts = block.get("window_start")
    ends = block.get("window_end")
    if not isinstance(starts, list) or not isinstance(ends, list):
        raise ObsError("fleet timeseries lacks window_start/window_end arrays")
    n = len(ends)
    if len(starts) != n or n == 0:
        raise ObsError(
            f"window arrays disagree: {len(starts)} starts vs {n} ends"
        )
    if starts[0] != 0:
        raise ObsError(f"first window must start at cycle 0, got {starts[0]}")
    for i in range(n):
        if ends[i] <= starts[i]:
            raise ObsError(
                f"window {i} is empty or inverted: "
                f"[{starts[i]}, {ends[i]})"
            )
        if i and starts[i] != ends[i - 1]:
            raise ObsError(
                f"window {i} is not contiguous: starts at {starts[i]}, "
                f"previous ended at {ends[i - 1]}"
            )
    if ends[-1] != block.get("end_cycles"):
        raise ObsError(
            f"last window ends at {ends[-1]} but the block records "
            f"end_cycles={block.get('end_cycles')}"
        )
    fleet = block.get("fleet")
    if not isinstance(fleet, Mapping):
        raise ObsError("fleet timeseries lacks the fleet series section")
    for key in _FLEET_SERIES_KEYS:
        series = fleet.get(key)
        if not isinstance(series, list) or len(series) != n:
            raise ObsError(
                f"fleet series {key!r} must have one entry per window "
                f"({n}), got {len(series) if isinstance(series, list) else series!r}"
            )
    tenants = block.get("tenants")
    if not isinstance(tenants, list):
        raise ObsError("fleet timeseries lacks the tenants section")
    for tenant in tenants:
        for key in _TENANT_SERIES_KEYS:
            series = tenant.get(key)
            if not isinstance(series, list) or len(series) != n:
                raise ObsError(
                    f"tenant {tenant.get('name')!r} series {key!r} must "
                    f"have one entry per window ({n})"
                )
    # Cross-foot: the fleet delta series are the per-tenant sums.
    for fleet_key, tenant_key in (
        ("accesses", "accesses"),
        ("faults", "faults"),
        ("preloads_completed", "preloads_completed"),
        ("channel_wait_cycles", "wait_cycles"),
    ):
        for i in range(n):
            total = sum(t[tenant_key][i] for t in tenants)
            if total != fleet[fleet_key][i]:
                raise ObsError(
                    f"window {i} does not cross-foot: tenant "
                    f"{tenant_key} sums to {total}, fleet records "
                    f"{fleet[fleet_key][i]}"
                )
    totals = block.get("totals")
    if not isinstance(totals, Mapping):
        raise ObsError("fleet timeseries lacks the totals section")
    for key in ("accesses", "faults", "preloads_completed", "channel_wait_cycles"):
        if totals.get(key) != sum(fleet[key]):
            raise ObsError(
                f"totals[{key!r}] = {totals.get(key)} does not equal the "
                f"series sum {sum(fleet[key])}"
            )
    rebalances = block.get("rebalances")
    if not isinstance(rebalances, list):
        raise ObsError("fleet timeseries lacks the rebalances section")
    for decision in rebalances:
        for key in ("cycle", "quotas_before", "quotas_after"):
            if key not in decision:
                raise ObsError(f"rebalance decision lacks {key!r}: {decision!r}")
    if fleet_block is not None:
        _reconcile_with_fleet_block(block, fleet_block)
    return {
        "windows": n,
        "tenants": len(tenants),
        "faults": int(totals["faults"]),
        "preloads_completed": int(totals["preloads_completed"]),
        "rebalances": len(rebalances),
    }


def _reconcile_with_fleet_block(
    block: Mapping[str, object], fleet_block: Mapping[str, object]
) -> None:
    """Exact identities against the ``repro.fleet-manifest/1`` block."""
    summary = fleet_block.get("summary") or {}
    totals = block["totals"]
    if totals["faults"] != summary.get("faults"):
        raise ObsError(
            f"timeseries faults total {totals['faults']} != fleet "
            f"summary faults {summary.get('faults')}"
        )
    if len(block["rebalances"]) != summary.get("rebalances"):
        raise ObsError(
            f"timeseries records {len(block['rebalances'])} rebalances, "
            f"fleet summary says {summary.get('rebalances')}"
        )
    qos_by_name = {t.get("name"): t for t in fleet_block.get("tenants", [])}
    for tenant in block["tenants"]:
        qos = qos_by_name.get(tenant["name"])
        if qos is None:
            raise ObsError(
                f"timeseries tenant {tenant['name']!r} missing from the "
                "fleet block"
            )
        if not qos.get("admitted"):
            if any(tenant["accesses"]):
                raise ObsError(
                    f"never-admitted tenant {tenant['name']!r} has "
                    "non-zero access deltas"
                )
            continue
        for series_key, qos_key in _QOS_IDENTITIES:
            expected = qos.get(qos_key)
            got = sum(tenant[series_key])
            if got != expected:
                raise ObsError(
                    f"tenant {tenant['name']!r}: timeseries "
                    f"{series_key} sums to {got}, QoS {qos_key} "
                    f"records {expected}"
                )


# ----------------------------------------------------------------------
# SLO evaluation and thrash detection
# ----------------------------------------------------------------------


def evaluate_slo(
    block: Mapping[str, object], slo: SloSpec
) -> Dict[str, object]:
    """Evaluate ``slo`` per tenant per window; merge breach intervals.

    Returns a ``repro.fleet-slo/1`` document: one interval per maximal
    run of consecutive breaching windows, annotated with which
    objectives were violated and the worst observed value of each.
    """
    if not slo.enabled:
        raise ObsError("SLO spec has no objectives set")
    validate_fleet_timeseries(block)
    starts = block["window_start"]
    ends = block["window_end"]
    n = len(ends)
    breaches: List[Dict[str, object]] = []
    for tenant in block["tenants"]:
        open_interval: Optional[Dict[str, object]] = None
        for i in range(n):
            violated: List[str] = []
            worst: Dict[str, float] = {}
            if (
                slo.max_fault_wait_p99 is not None
                and tenant["wait_count"][i] > 0
                and tenant["fault_wait_p99"][i] > slo.max_fault_wait_p99
            ):
                violated.append("fault_wait_p99")
                worst["fault_wait_p99"] = tenant["fault_wait_p99"][i]
            if slo.max_fault_rate is not None and tenant["accesses"][i] > 0:
                rate = tenant["faults"][i] / tenant["accesses"][i]
                if rate > slo.max_fault_rate:
                    violated.append("fault_rate")
                    worst["fault_rate"] = round(rate, 4)
            if (
                slo.min_residency_ratio is not None
                and tenant.get("quota") is not None
                and tenant["quota"][i] > 0
            ):
                ratio = tenant["resident"][i] / tenant["quota"][i]
                if ratio < slo.min_residency_ratio:
                    violated.append("residency_ratio")
                    worst["residency_ratio"] = round(ratio, 4)
            if violated:
                if open_interval is None:
                    open_interval = {
                        "tenant": tenant["name"],
                        "start_window": i,
                        "end_window": i,
                        "start_cycle": starts[i],
                        "end_cycle": ends[i],
                        "windows": 1,
                        "violated": list(violated),
                        "worst": dict(worst),
                    }
                else:
                    open_interval["end_window"] = i
                    open_interval["end_cycle"] = ends[i]
                    open_interval["windows"] += 1
                    merged = set(open_interval["violated"]) | set(violated)
                    open_interval["violated"] = sorted(merged)
                    for key, value in worst.items():
                        prior = open_interval["worst"].get(key)
                        if key == "residency_ratio":
                            keep = value if prior is None else min(prior, value)
                        else:
                            keep = value if prior is None else max(prior, value)
                        open_interval["worst"][key] = keep
            elif open_interval is not None:
                breaches.append(open_interval)
                open_interval = None
        if open_interval is not None:
            breaches.append(open_interval)
    return {
        "schema": FLEET_SLO_SCHEMA,
        "spec": slo.as_dict(),
        "windows_evaluated": n,
        "tenants": len(block["tenants"]),
        "breaches": breaches,
    }


def detect_thrash(
    block: Mapping[str, object],
    *,
    factor: float = 2.0,
    min_faults: int = 8,
) -> List[Dict[str, object]]:
    """Flag windows where a tenant faults far above its own run mean.

    A window *thrashes* when the tenant's fault rate (faults per cycle
    of window width) exceeds ``factor`` times its mean rate over the
    windows it was active in, and the window holds at least
    ``min_faults`` faults (so near-idle tenants never flag).  Returns
    merged intervals, one per maximal consecutive run, sorted by
    tenant index then window.
    """
    if factor <= 1.0:
        raise ObsError(f"thrash factor must exceed 1, got {factor}")
    if min_faults < 1:
        raise ObsError(f"min_faults must be >= 1, got {min_faults}")
    validate_fleet_timeseries(block)
    starts = block["window_start"]
    ends = block["window_end"]
    n = len(ends)
    intervals: List[Dict[str, object]] = []
    for tenant in block["tenants"]:
        active = [i for i in range(n) if tenant["accesses"][i] > 0]
        total_faults = sum(tenant["faults"][i] for i in active)
        total_span = sum(ends[i] - starts[i] for i in active)
        if total_faults < min_faults or total_span <= 0:
            continue
        mean_rate = total_faults / total_span
        open_interval: Optional[Dict[str, object]] = None
        for i in range(n):
            width = ends[i] - starts[i]
            rate = tenant["faults"][i] / width if width else 0.0
            hot = (
                tenant["faults"][i] >= min_faults
                and rate > factor * mean_rate
            )
            if hot:
                if open_interval is None:
                    open_interval = {
                        "tenant": tenant["name"],
                        "start_window": i,
                        "end_window": i,
                        "start_cycle": starts[i],
                        "end_cycle": ends[i],
                        "windows": 1,
                        "faults": tenant["faults"][i],
                        "peak_rate_vs_mean": round(rate / mean_rate, 2),
                    }
                else:
                    open_interval["end_window"] = i
                    open_interval["end_cycle"] = ends[i]
                    open_interval["windows"] += 1
                    open_interval["faults"] += tenant["faults"][i]
                    open_interval["peak_rate_vs_mean"] = max(
                        open_interval["peak_rate_vs_mean"],
                        round(rate / mean_rate, 2),
                    )
            elif open_interval is not None:
                intervals.append(open_interval)
                open_interval = None
        if open_interval is not None:
            intervals.append(open_interval)
    return intervals
