"""Execution telemetry: observing the resilient job runner itself.

PR 2 made single runs observable (metrics, traces, manifests) and PR 4
made figure-scale sweeps resilient (retries, timeouts, checkpoints) —
but the two never composed: resilient jobs ran blind, so the exact
runs the paper's figures depend on were the ones that could not be
observed.  This module closes that gap on both axes:

* **worker-shipped telemetry** — a picklable :class:`TelemetryConfig`
  tells each worker to run its job under a private
  :class:`~repro.obs.metrics.MetricsRegistry` and/or a bounded
  :class:`~repro.obs.trace.RingBufferSink`.  The worker serializes the
  dumps into a :class:`WorkerTelemetry` payload riding the
  digest-checked result envelope, *after* stripping them off the
  :class:`~repro.sim.results.RunResult` — so the result (and its
  integrity digest, and any checkpoint record built from it) stays
  byte-identical to a blind run.  The parent merges payloads in job
  submission order (:func:`merge_metric_dumps`), which is wall-clock
  free and therefore deterministic: two observed resilient sweeps, or
  an observed sweep and a blind serial one, agree on every result
  byte.  This is the PR-2 passivity rule extended across the process
  boundary.
* **execution-layer spans** — the runner narrates its own schedule
  into a parent-side :class:`ExecTelemetry` collector as typed
  :class:`ExecSpan` records: queue wait, attempt start/end, retry
  backoff, timeout abandon, injected fault, checkpoint write and
  resume hit.  Spans carry wall-clock stamps (execution *is* a
  wall-clock phenomenon) and export as per-worker tracks in the
  Chrome ``trace_event`` writer (:mod:`repro.obs.chrome`) — but they
  are kept out of the manifest block by default, so manifests stay
  reproducible.
* **the fleet report** — :meth:`ExecTelemetry.as_dict` renders a
  deterministic ``repro.exec-telemetry/1`` block (per-job attempt /
  retry / timeout / fault tallies, checkpoint provenance, trace
  capture and drop counts) that :func:`build_fleet_manifest` embeds in
  an aggregate ``repro.run-manifest/1`` record and ``repro report``
  renders as the fleet table (:func:`render_exec_report`).

Lint rule RL009 makes this module the *only* sanctioned way to emit
execution-layer span records: ad-hoc event dicts in ``repro.robust``
or ``repro.sim.parallel`` are flagged, so every span in the tree has
one schema and one collector.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ObsError

__all__ = [
    "EXEC_TELEMETRY_SCHEMA",
    "TelemetryConfig",
    "WorkerTelemetry",
    "SpanKind",
    "ExecSpan",
    "ExecTelemetry",
    "merge_metric_dumps",
    "render_exec_report",
    "validate_exec_telemetry",
    "build_fleet_manifest",
]

#: Schema identifier of the execution-telemetry manifest block.
EXEC_TELEMETRY_SCHEMA = "repro.exec-telemetry/1"


@dataclass(frozen=True)
class TelemetryConfig:
    """Picklable instructions for a worker's in-job observability.

    Shipped inside every pool submission when the caller asked for an
    observed run; workers honour it by running the simulation under a
    private registry/ring buffer and returning the dumps in the result
    envelope.  The default config observes nothing — workers then run
    exactly as blind as before PR 5.
    """

    #: Run each job under a private MetricsRegistry and ship its dump.
    metrics: bool = False
    #: Capture each job's timeline events in a bounded ring buffer and
    #: ship them (serialized) with the result.  Sweep-scale callers
    #: usually leave this off and rely on execution spans instead —
    #: shipping N jobs' event buffers is single-run tooling.
    trace: bool = False
    #: Ring-buffer capacity when :attr:`trace` is on.
    trace_capacity: int = 1 << 20

    def __post_init__(self) -> None:
        if self.trace_capacity <= 0:
            raise ObsError(
                f"trace_capacity must be positive, got {self.trace_capacity}"
            )

    @property
    def enabled(self) -> bool:
        """Whether this config asks workers to observe anything."""
        return self.metrics or self.trace


@dataclass(frozen=True)
class WorkerTelemetry:
    """One job's observability payload, shipped beside its result.

    Everything here is plain picklable data (metric dumps, serialized
    event dicts) — never live registries or sinks — and it is produced
    *after* the result's integrity digest was computed over the
    stripped result, so shipping telemetry can never change what the
    parent accepts as the answer.
    """

    #: ``MetricsRegistry.as_dict()`` of the job's private registry,
    #: None when metrics were not requested.
    metrics: Optional[Dict[str, object]] = None
    #: Serialized timeline events (``event_to_dict`` form), oldest
    #: first; empty when tracing was not requested.
    events: Tuple[Dict[str, object], ...] = ()
    #: Events the worker's ring buffer evicted to stay bounded.
    dropped: int = 0


class SpanKind(enum.Enum):
    """What one execution-layer span records."""

    QUEUE_WAIT = "queue_wait"
    ATTEMPT = "attempt"
    RETRY_BACKOFF = "retry_backoff"
    TIMEOUT_ABANDON = "timeout_abandon"
    FAULT_INJECTED = "fault_injected"
    CHECKPOINT_WRITE = "checkpoint_write"
    RESUME_HIT = "resume_hit"
    POOL_DEGRADED = "pool_degraded"


@dataclass(frozen=True)
class ExecSpan:
    """One interval (or instant) on the execution timeline.

    ``start_s``/``end_s`` are wall-clock seconds on the collector's
    monotonic clock (equal for instant spans); ``lane`` is the worker
    slot the span occupied — 0 for the serial path and for runner-side
    bookkeeping spans (queue wait, backoff, checkpoint I/O).
    """

    kind: SpanKind
    job: int
    attempt: int
    lane: int
    start_s: float
    end_s: float
    outcome: str = ""
    detail: str = ""

    @property
    def duration_s(self) -> float:
        """Span length in seconds (0.0 for instants)."""
        return self.end_s - self.start_s


class _JobTally:
    """Mutable per-job execution bookkeeping (internal)."""

    def __init__(self) -> None:
        self.attempts = 0
        self.timeouts = 0
        self.faults: Dict[str, int] = {}
        self.source = "computed"
        self.worker: Optional[WorkerTelemetry] = None
        self.deliveries = 0

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)


class ExecTelemetry:
    """Parent-side collector for one ``run_jobs`` invocation.

    The runner narrates its schedule through the methods below; lint
    rule RL009 makes this the only sanctioned span emitter.  Two kinds
    of state accumulate:

    * **deterministic tallies** (attempts, retries, timeouts, faults
      by kind, submit errors, checkpoint writes, resume hits, shipped
      worker telemetry) — wall-clock free, dumped by :meth:`as_dict`
      into the ``repro.exec-telemetry/1`` manifest block;
    * **wall-clock spans** (:attr:`spans`) — the Perfetto-facing
      timeline, deliberately *excluded* from the default manifest dump
      so observed manifests stay byte-reproducible.

    Worker telemetry is delivered at most once per job (the runner's
    exactly-once guard holds it to that; this class additionally keeps
    the first payload and counts duplicates, so a delivery bug is
    testable rather than silent).
    """

    def __init__(
        self, config: Optional[TelemetryConfig] = None
    ) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self.spans: List[ExecSpan] = []
        self.submit_errors = 0
        self.checkpoints_written = 0
        self.resume_hits = 0
        self.degraded_to_serial = False
        self._jobs: Dict[int, _JobTally] = {}
        self._total = 0
        self._policy: Dict[str, object] = {}
        self._enqueued: Dict[Tuple[int, int], float] = {}
        self._open: Dict[Tuple[int, int], Tuple[int, float]] = {}
        self._faults_seen: set = set()

    # -- runner narration --------------------------------------------

    def _now(self) -> float:
        return time.monotonic()

    def _job(self, job: int) -> _JobTally:
        tally = self._jobs.get(job)
        if tally is None:
            tally = self._jobs[job] = _JobTally()
        return tally

    def begin(self, policy: object, total_jobs: int) -> None:
        """Start of a run: record the policy summary and fleet size."""
        self._total = max(self._total, total_jobs)
        summary = getattr(policy, "summary", None)
        if callable(summary):
            self._policy = dict(summary())

    def job_enqueued(self, job: int, attempt: int) -> None:
        """An attempt entered the runner's submission queue."""
        self._enqueued[(job, attempt)] = self._now()

    def attempt_started(self, job: int, attempt: int, lane: int) -> None:
        """An attempt began executing on ``lane``.

        Closes the queue-wait interval opened by :meth:`job_enqueued`
        (if any) and opens the attempt span.
        """
        now = self._now()
        queued = self._enqueued.pop((job, attempt), None)
        if queued is not None:
            self.spans.append(
                ExecSpan(SpanKind.QUEUE_WAIT, job, attempt, 0, queued, now)
            )
        self._open[(job, attempt)] = (lane, now)
        self._job(job).attempts += 1

    def _close_attempt(
        self, job: int, attempt: int, outcome: str, detail: str
    ) -> None:
        lane, started = self._open.pop((job, attempt), (0, self._now()))
        self.spans.append(
            ExecSpan(
                SpanKind.ATTEMPT,
                job,
                attempt,
                lane,
                started,
                self._now(),
                outcome=outcome,
                detail=detail,
            )
        )

    def attempt_finished(
        self, job: int, attempt: int, outcome: str, detail: str = ""
    ) -> None:
        """An attempt returned (``outcome``: ``"ok"``/``"failed"``...).

        No-op when the attempt span was already closed — the serial
        path abandons an injected hang (closing the span with
        ``"timeout"``) and then flows through the common failure
        narration, which must not emit a second degenerate span.
        """
        if (job, attempt) not in self._open:
            return
        self._close_attempt(job, attempt, outcome, detail)

    def attempt_abandoned(self, job: int, attempt: int, detail: str = "") -> None:
        """An attempt blew its deadline and was abandoned (timeout)."""
        lane, _ = self._open.get((job, attempt), (0, 0.0))
        self._close_attempt(job, attempt, "timeout", detail)
        now = self._now()
        self.spans.append(
            ExecSpan(
                SpanKind.TIMEOUT_ABANDON, job, attempt, lane, now, now,
                outcome="timeout", detail=detail,
            )
        )
        self._job(job).timeouts += 1

    def backoff(self, job: int, attempt: int, delay_s: float) -> None:
        """A retry backoff of ``delay_s`` was scheduled after ``attempt``.

        Recorded as the *scheduled* interval (the runner sleeps right
        after this call), so one narration call covers the wait.
        """
        now = self._now()
        self.spans.append(
            ExecSpan(
                SpanKind.RETRY_BACKOFF, job, attempt, 0, now, now + delay_s,
                detail=f"{delay_s:.3f}s",
            )
        )

    def fault_injected(self, job: int, attempt: int, kind: object) -> None:
        """A scripted/rated fault fired at ``(job, attempt)``.

        Idempotent per coordinate: the serial path re-dispatches an
        attempt after an injected submission error, and the repeat
        narration must not double-count the fault.
        """
        name = getattr(kind, "value", str(kind))
        key = (job, attempt, name)
        if key in self._faults_seen:
            return
        self._faults_seen.add(key)
        tally = self._job(job)
        tally.faults[name] = tally.faults.get(name, 0) + 1
        if name == "submit-error":
            self.submit_errors += 1
        lane, _ = self._open.get((job, attempt), (0, 0.0))
        now = self._now()
        self.spans.append(
            ExecSpan(
                SpanKind.FAULT_INJECTED, job, attempt, lane, now, now,
                outcome=name,
            )
        )

    def checkpoint_written(self, job: int) -> None:
        """The job's completed-run record was persisted."""
        self.checkpoints_written += 1
        now = self._now()
        self.spans.append(
            ExecSpan(SpanKind.CHECKPOINT_WRITE, job, 0, 0, now, now)
        )

    def resume_hit(self, job: int) -> None:
        """The job was served from an existing checkpoint record."""
        self.resume_hits += 1
        self._job(job).source = "checkpoint"
        now = self._now()
        self.spans.append(ExecSpan(SpanKind.RESUME_HIT, job, 0, 0, now, now))

    def degraded(self) -> None:
        """The pool broke and execution fell back to serial."""
        self.degraded_to_serial = True
        now = self._now()
        self.spans.append(ExecSpan(SpanKind.POOL_DEGRADED, 0, 0, 0, now, now))

    def deliver_worker(self, job: int, payload: WorkerTelemetry) -> None:
        """Accept one job's shipped telemetry (first delivery wins)."""
        tally = self._job(job)
        tally.deliveries += 1
        if tally.worker is None:
            tally.worker = payload

    # -- read side ---------------------------------------------------

    @property
    def total_jobs(self) -> int:
        """Fleet size (as declared by :meth:`begin`, or as observed)."""
        highest = max(self._jobs) + 1 if self._jobs else 0
        return max(self._total, highest)

    def deliveries_for(self, job: int) -> int:
        """How many worker payloads arrived for ``job`` (should be ≤1)."""
        tally = self._jobs.get(job)
        return tally.deliveries if tally is not None else 0

    def worker_for(self, job: int) -> Optional[WorkerTelemetry]:
        """The job's shipped telemetry payload, if any arrived."""
        tally = self._jobs.get(job)
        return tally.worker if tally is not None else None

    def events_for(self, job: int) -> Tuple[Dict[str, object], ...]:
        """The job's shipped (serialized) timeline events."""
        worker = self.worker_for(job)
        return worker.events if worker is not None else ()

    def merged_metrics(self) -> Dict[str, object]:
        """All shipped metric dumps merged in job submission order."""
        dumps = []
        for job in sorted(self._jobs):
            worker = self._jobs[job].worker
            if worker is not None and worker.metrics is not None:
                dumps.append(worker.metrics)
        return merge_metric_dumps(dumps)

    @property
    def total_attempts(self) -> int:
        return sum(t.attempts for t in self._jobs.values())

    @property
    def total_retries(self) -> int:
        return sum(t.retries for t in self._jobs.values())

    @property
    def total_timeouts(self) -> int:
        return sum(t.timeouts for t in self._jobs.values())

    @property
    def total_faults(self) -> int:
        return sum(sum(t.faults.values()) for t in self._jobs.values())

    @property
    def total_dropped(self) -> int:
        return sum(
            t.worker.dropped for t in self._jobs.values() if t.worker is not None
        )

    def health_counts(self) -> Tuple[int, int, int]:
        """(retries, timeouts, faults) — the sweep-progress health trio."""
        return (self.total_retries, self.total_timeouts, self.total_faults)

    def attribution(self) -> Dict[str, float]:
        """Wall-clock attribution: queue wait vs. run time vs. backoff.

        Derived from the spans, so it carries wall-clock and is *not*
        part of the deterministic manifest block unless the caller
        opts in via ``as_dict(include_timing=True)``.
        """
        out = {"queue_wait_s": 0.0, "run_s": 0.0, "backoff_s": 0.0}
        for span in self.spans:
            if span.kind is SpanKind.QUEUE_WAIT:
                out["queue_wait_s"] += span.duration_s
            elif span.kind is SpanKind.ATTEMPT:
                out["run_s"] += span.duration_s
            elif span.kind is SpanKind.RETRY_BACKOFF:
                out["backoff_s"] += span.duration_s
        return {key: round(value, 6) for key, value in sorted(out.items())}

    def as_dict(self, *, include_timing: bool = False) -> Dict[str, object]:
        """The ``repro.exec-telemetry/1`` block.

        Deterministic by default: tallies only, iterated in job
        submission order, no wall-clock anywhere — so an observed
        manifest stays byte-identical across runs.  ``include_timing``
        adds the (non-deterministic) queue-wait/run-time attribution
        for interactive reports.
        """
        per_job: List[Dict[str, object]] = []
        for job in range(self.total_jobs):
            tally = self._jobs.get(job, _JobTally())
            entry: Dict[str, object] = {
                "job": job,
                "attempts": tally.attempts,
                "retries": tally.retries,
                "timeouts": tally.timeouts,
                "faults": dict(sorted(tally.faults.items())),
                "source": tally.source,
            }
            if tally.worker is not None:
                entry["trace_events"] = len(tally.worker.events)
                entry["trace_dropped"] = tally.worker.dropped
            per_job.append(entry)
        faults_by_kind: Dict[str, int] = {}
        for tally in self._jobs.values():
            for name, count in tally.faults.items():
                faults_by_kind[name] = faults_by_kind.get(name, 0) + count
        block: Dict[str, object] = {
            "schema": EXEC_TELEMETRY_SCHEMA,
            "policy": dict(self._policy),
            "jobs": {"total": self.total_jobs, "per_job": per_job},
            "totals": {
                "attempts": self.total_attempts,
                "retries": self.total_retries,
                "timeouts": self.total_timeouts,
                "faults": dict(sorted(faults_by_kind.items())),
                "submit_errors": self.submit_errors,
                "checkpoints_written": self.checkpoints_written,
                "resume_hits": self.resume_hits,
                "degraded_to_serial": self.degraded_to_serial,
                "trace_events": sum(
                    len(t.worker.events)
                    for t in self._jobs.values()
                    if t.worker is not None
                ),
                "trace_dropped": self.total_dropped,
            },
        }
        if include_timing:
            block["timing"] = self.attribution()
        return block


def merge_metric_dumps(
    dumps: Sequence[Mapping[str, object]],
) -> Dict[str, object]:
    """Merge per-worker metric dumps into one fleet dump.

    Deterministic and wall-clock free: dumps are folded in the order
    given (job submission order), scalars sum, and histogram dumps
    merge bucket-wise — so the merge of N single-job registries equals
    the dump one shared registry would have produced had the jobs run
    serially in one process.  Mixing metric shapes under one name (a
    counter in one worker, a histogram in another) is an
    :class:`~repro.errors.ObsError`: that is two layers fighting over
    a name, not a fleet view of one metric.
    """
    merged: Dict[str, object] = {}
    for dump in dumps:
        for name in dump:
            value = dump[name]
            if name not in merged:
                merged[name] = _copy_metric_value(value)
                continue
            merged[name] = _merge_metric_value(name, merged[name], value)
    return {name: merged[name] for name in sorted(merged)}


def _is_histogram(value: object) -> bool:
    return isinstance(value, Mapping) and value.get("type") == "histogram"


def _copy_metric_value(value: object) -> object:
    if _is_histogram(value):
        doc = dict(value)  # type: ignore[arg-type]
        doc["buckets"] = [dict(bucket) for bucket in doc.get("buckets", [])]
        return doc
    return value


def _merge_metric_value(name: str, into: object, value: object) -> object:
    if _is_histogram(into) != _is_histogram(value):
        raise ObsError(
            f"metric {name!r} has mismatched shapes across workers and "
            "cannot be merged"
        )
    if _is_histogram(into):
        a, b = dict(into), dict(value)  # type: ignore[arg-type]
        bounds_a = [bucket["le"] for bucket in a.get("buckets", [])]
        bounds_b = [bucket["le"] for bucket in b.get("buckets", [])]
        if bounds_a != bounds_b:
            raise ObsError(
                f"histogram {name!r} has different bucket bounds across "
                "workers and cannot be merged"
            )
        return {
            "type": "histogram",
            "count": a["count"] + b["count"],
            "sum": a["sum"] + b["sum"],
            "buckets": [
                {"le": x["le"], "count": x["count"] + y["count"]}
                for x, y in zip(a["buckets"], b["buckets"])
            ],
            "overflow": a["overflow"] + b["overflow"],
        }
    if isinstance(into, (int, float)) and isinstance(value, (int, float)):
        return into + value
    if into == value:
        return into
    raise ObsError(
        f"metric {name!r} is non-numeric and differs across workers "
        f"({into!r} vs {value!r}); cannot merge"
    )


def validate_exec_telemetry(block: object) -> Dict[str, int]:
    """Check an ``exec_telemetry`` block against the schema we emit.

    Raises :class:`~repro.errors.ObsError` on the first violation;
    returns summary counts so callers can assert on them.
    """
    if not isinstance(block, Mapping):
        raise ObsError("exec telemetry block must be a JSON object")
    if block.get("schema") != EXEC_TELEMETRY_SCHEMA:
        raise ObsError(
            f"exec telemetry block has schema {block.get('schema')!r}, "
            f"expected {EXEC_TELEMETRY_SCHEMA!r}"
        )
    jobs = block.get("jobs")
    totals = block.get("totals")
    if not isinstance(jobs, Mapping) or not isinstance(totals, Mapping):
        raise ObsError("exec telemetry block lacks jobs/totals sections")
    per_job = jobs.get("per_job")
    if not isinstance(per_job, list):
        raise ObsError("exec telemetry jobs section lacks a per_job list")
    if jobs.get("total") != len(per_job):
        raise ObsError(
            f"exec telemetry claims {jobs.get('total')} jobs but lists "
            f"{len(per_job)}"
        )
    attempts = retries = timeouts = faults = 0
    for entry in per_job:
        if not isinstance(entry, Mapping):
            raise ObsError(f"per-job entry is not an object: {entry!r}")
        for key in ("job", "attempts", "retries", "timeouts", "faults", "source"):
            if key not in entry:
                raise ObsError(f"per-job entry missing {key!r}: {entry!r}")
        if entry["attempts"] < 0 or entry["retries"] < 0 or entry["timeouts"] < 0:
            raise ObsError(f"per-job tallies must be non-negative: {entry!r}")
        attempts += entry["attempts"]
        retries += entry["retries"]
        timeouts += entry["timeouts"]
        faults += sum(entry["faults"].values())
    for key, observed in (
        ("attempts", attempts),
        ("retries", retries),
        ("timeouts", timeouts),
    ):
        if totals.get(key) != observed:
            raise ObsError(
                f"exec telemetry totals[{key!r}] = {totals.get(key)!r} "
                f"disagrees with the per-job sum {observed}"
            )
    if totals.get("faults") is not None and sum(
        totals["faults"].values()
    ) != faults:
        raise ObsError(
            "exec telemetry totals.faults disagrees with the per-job sums"
        )
    return {
        "jobs": len(per_job),
        "attempts": attempts,
        "retries": retries,
        "timeouts": timeouts,
        "faults": faults,
    }


def render_exec_report(block: Mapping[str, object]) -> str:
    """Human-readable fleet table of one ``exec_telemetry`` block."""
    from repro.analysis.report import format_table

    validate_exec_telemetry(block)
    jobs = block["jobs"]["per_job"]  # type: ignore[index]
    totals = block["totals"]  # type: ignore[index]
    rows = []
    for entry in jobs:
        faults = entry["faults"]
        fault_text = (
            ", ".join(f"{kind}x{n}" for kind, n in sorted(faults.items()))
            or "-"
        )
        trace_text = "-"
        if "trace_events" in entry:
            trace_text = f"{entry['trace_events']:,}"
            if entry.get("trace_dropped"):
                trace_text += f" (+{entry['trace_dropped']:,} dropped)"
        rows.append(
            [
                str(entry["job"]),
                str(entry["attempts"]),
                str(entry["retries"]),
                str(entry["timeouts"]),
                fault_text,
                entry["source"],
                trace_text,
            ]
        )
    lines = [
        format_table(
            ["job", "attempts", "retries", "timeouts", "faults", "source",
             "trace events"],
            rows,
            title="execution telemetry (fleet)",
        )
    ]
    fault_totals = totals.get("faults") or {}
    fault_text = (
        ", ".join(f"{kind}x{n}" for kind, n in sorted(fault_totals.items()))
        or "none"
    )
    lines.append(
        f"totals: {totals['attempts']} attempts, {totals['retries']} "
        f"retries, {totals['timeouts']} timeouts, faults: {fault_text}; "
        f"{totals['submit_errors']} submit error(s), "
        f"{totals['checkpoints_written']} checkpoint(s) written, "
        f"{totals['resume_hits']} resume hit(s)"
    )
    if totals.get("degraded_to_serial"):
        lines.append("note: pool broke mid-run; execution degraded to serial")
    if totals.get("trace_dropped"):
        lines.append(
            f"note: {totals['trace_dropped']:,} trace event(s) dropped at "
            "ring-buffer capacity"
        )
    timing = block.get("timing")
    if isinstance(timing, Mapping):
        lines.append(
            "wall-clock attribution: "
            f"{timing.get('queue_wait_s', 0.0):.3f}s queue wait, "
            f"{timing.get('run_s', 0.0):.3f}s running, "
            f"{timing.get('backoff_s', 0.0):.3f}s backoff"
        )
    else:
        lines.append(
            "wall-clock attribution: not recorded (deterministic manifest; "
            "see the Chrome trace for the timeline)"
        )
    policy = block.get("policy")
    if policy:
        text = ", ".join(f"{k}={v}" for k, v in sorted(policy.items()))
        lines.append(f"policy: {text}")
    return "\n".join(lines)


def _sum_section(
    sections: Sequence[Mapping[str, object]],
) -> Dict[str, object]:
    """Key-wise sum of structurally identical numeric dicts."""
    out: Dict[str, object] = {}
    for section in sections:
        for key, value in section.items():
            if isinstance(value, Mapping):
                inner = out.setdefault(key, {})
                assert isinstance(inner, dict)
                for k, v in _sum_section([value]).items():
                    inner[k] = inner.get(k, 0) + v if isinstance(v, (int, float)) else v
            elif isinstance(value, bool):
                out[key] = out.get(key, False) or value
            elif isinstance(value, (int, float)):
                out[key] = out.get(key, 0) + value
            else:
                out[key] = value
    return out


def build_fleet_manifest(
    results: Sequence[object],
    *,
    telemetry: Optional[ExecTelemetry] = None,
    labels: Optional[Sequence[object]] = None,
    extra: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Aggregate N job results into one ``repro.run-manifest/1`` record.

    ``results`` are :class:`~repro.sim.results.RunResult` objects in
    job submission order.  The aggregate sums the deterministic
    sections (stats, time breakdown, cycle totals) — so the fleet
    record of an observed resilient sweep equals, field for field, the
    sums a blind serial sweep would produce — embeds the merged worker
    metrics and the deterministic ``exec_telemetry`` block, and lists
    each run's identity under ``runs``.  The ``config`` section is
    included only when every run shares one configuration (a scheme
    comparison does; a parameter sweep deliberately does not).
    """
    import dataclasses as _dataclasses

    from repro import __version__
    from repro.obs.manifest import MANIFEST_SCHEMA, git_sha

    if not results:
        raise ObsError("cannot build a fleet manifest from zero results")
    stats = _sum_section([r.stats.as_dict() for r in results])
    stats.pop("time", None)
    time_breakdown = _sum_section(
        [r.stats.time.as_dict() for r in results]
    )
    schemes = sorted({r.scheme for r in results})
    workloads = sorted({r.workload for r in results})
    manifest: Dict[str, object] = {
        "schema": MANIFEST_SCHEMA,
        "generator": {"repro_version": __version__, "git_sha": git_sha()},
        "run": {
            "workload": "+".join(workloads),
            "scheme": "+".join(schemes),
            "input_set": "+".join(sorted({r.input_set for r in results})),
            "seed": results[0].seed,
            "total_cycles": sum(r.total_cycles for r in results),
            "seconds": sum(r.seconds for r in results),
            "sip_points": sum(r.sip_points for r in results),
            "runs": len(results),
        },
        "stats": stats,
        "time_breakdown": time_breakdown,
        "metrics": telemetry.merged_metrics() if telemetry is not None else {},
        "runs": [
            {
                "job": index,
                "label": (
                    labels[index]
                    if labels is not None and index < len(labels)
                    else index
                ),
                "workload": r.workload,
                "scheme": r.scheme,
                "seed": r.seed,
                "input_set": r.input_set,
                "total_cycles": r.total_cycles,
                "faults": r.stats.faults,
            }
            for index, r in enumerate(results)
        ],
    }
    import json as _json

    configs = {
        _json.dumps(_dataclasses.asdict(r.config), sort_keys=True, default=str)
        for r in results
    }
    if len(configs) == 1:
        manifest["config"] = _dataclasses.asdict(results[0].config)
    if telemetry is not None:
        manifest["exec_telemetry"] = telemetry.as_dict()
    if extra:
        manifest["extra"] = dict(extra)
    return manifest
