"""Run manifests: self-describing JSON records of one simulated run.

Every experiment in the paper is an attribution argument — seconds
regained are explained by counting the AEX/ERESUME pairs removed and
the channel cycles spent — so a result is only as good as the record
of the run that produced it.  A manifest captures everything needed to
re-derive or compare a number:

* provenance — library version and (best-effort) git SHA;
* the run identity — workload, scheme, input set, seed;
* the full configuration snapshot (cost model included);
* the workload's shape (footprint/ELRANGE) when available;
* the complete :class:`~repro.enclave.stats.RunStats` counters and
  cycle-time breakdown;
* the metrics dump, when the run was observed
  (:mod:`repro.obs.metrics`).

Manifests are deliberately free of wall-clock timestamps: two runs of
the same (workload, config, seed) at the same source revision produce
byte-identical manifests, which is what makes ``repro report`` diffs
trustworthy.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import subprocess
from pathlib import Path
from typing import Dict, Optional, Tuple, TYPE_CHECKING, Union

from repro.errors import ObsError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.results import RunResult
    from repro.workloads.base import Workload

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "git_sha",
    "manifest_digest",
    "result_from_manifest",
]

#: Schema identifier carried by every manifest.
MANIFEST_SCHEMA = "repro.run-manifest/1"


def git_sha() -> str:
    """The source tree's HEAD commit, or ``"unknown"``.

    Resolved relative to this file so the answer names the revision of
    the *code that ran*, not whatever directory the caller sits in.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def build_manifest(
    result: "RunResult",
    *,
    workload: Optional["Workload"] = None,
    extra: Optional[Dict[str, object]] = None,
    exec_telemetry: Optional[Dict[str, object]] = None,
    paging_profile: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build the manifest dict for one :class:`~repro.sim.results.RunResult`.

    ``workload`` enriches the record with the workload's shape;
    ``extra`` is carried through verbatim (experiment labels, sweep
    coordinates, ...); ``exec_telemetry`` embeds the deterministic
    ``repro.exec-telemetry/1`` block of the run's execution
    (:meth:`~repro.obs.exec_telemetry.ExecTelemetry.as_dict`);
    ``paging_profile`` embeds the ``repro.paging-profile/1`` block of
    a profiled run (:meth:`~repro.obs.paging.PagingProfiler.profile`).
    """
    from repro import __version__

    manifest: Dict[str, object] = {
        "schema": MANIFEST_SCHEMA,
        "generator": {"repro_version": __version__, "git_sha": git_sha()},
        "run": {
            "workload": result.workload,
            "scheme": result.scheme,
            "input_set": result.input_set,
            "seed": result.seed,
            "total_cycles": result.total_cycles,
            "seconds": result.seconds,
            "sip_points": result.sip_points,
        },
        "config": dataclasses.asdict(result.config),
        "stats": result.stats.as_dict(),
        "time_breakdown": result.stats.time.as_dict(),
        "metrics": dict(result.metrics) if result.metrics else {},
    }
    if workload is not None:
        manifest["workload"] = {
            "name": workload.name,
            "footprint_pages": workload.footprint_pages,
            "elrange_pages": workload.elrange_pages,
        }
    if extra:
        manifest["extra"] = dict(extra)
    if exec_telemetry is not None:
        manifest["exec_telemetry"] = dict(exec_telemetry)
    if paging_profile is not None:
        manifest["paging_profile"] = dict(paging_profile)
    return manifest


def write_manifest(path: Union[str, Path], manifest: Dict[str, object]) -> Path:
    """Write ``manifest`` as stable (sorted, indented) JSON; return path."""
    target = Path(path)
    target.write_text(
        json.dumps(manifest, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return target


#: Sections excluded from the integrity digest: provenance varies
#: with the checkout (git SHA), not with what the run computed — and
#: execution telemetry records how a run *executed* (real timeouts or
#: pool breaks legitimately vary the tallies across machines), never
#: what it computed.  The paging profile is derived observation of the
#: same run — attaching it must keep a profiled manifest's digest
#: equal to the blind run's (same bar as the telemetry block).  The
#: fleet time-series block is held to the same standard: windowed
#: sampling observes a fleet run without becoming part of its
#: identity, so a ``--timeseries`` manifest digests identically to a
#: blind one.
_DIGEST_EXCLUDE: Tuple[str, ...] = (
    "generator",
    "exec_telemetry",
    "paging_profile",
    "fleet_timeseries",
)


def manifest_digest(
    manifest: Dict[str, object], *, exclude: Tuple[str, ...] = _DIGEST_EXCLUDE
) -> str:
    """Content digest of a manifest's run-defining sections.

    SHA-256 over the canonical (sorted, compact) JSON form, with the
    provenance section excluded so the digest is a function of what
    the run *computed*, not where the code was checked out.  The
    parallel runner uses this as its result-integrity check: workers
    digest the manifest of the result they produced, the parent
    replays the digest over the result it received, and a mismatch
    rejects the result (:class:`~repro.errors.ResultIntegrityError`).
    """
    payload = {k: v for k, v in manifest.items() if k not in exclude}
    try:
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise ObsError(f"manifest is not canonically serializable: {exc}") from exc
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def result_from_manifest(manifest: Dict[str, object]) -> "RunResult":
    """Reconstruct the :class:`~repro.sim.results.RunResult` a manifest records.

    The inverse of :func:`build_manifest` for the run-defining
    sections (run identity, config snapshot, stats, time breakdown;
    the metrics dump rides along when present).  Round-tripping is
    exact — ``build_manifest(result_from_manifest(m))`` reproduces
    ``m``'s bytes — which is what lets checkpoint/resume hand back
    restored results indistinguishable from freshly computed ones.
    """
    # Function-level imports: repro.sim imports repro.obs at package
    # init, so the reverse edge must stay out of module import time.
    from repro.core.config import CostModel, SimConfig
    from repro.enclave.stats import RunStats, TimeBreakdown
    from repro.sim.results import RunResult

    try:
        run = dict(manifest["run"])  # type: ignore[arg-type]
        config_doc = dict(manifest["config"])  # type: ignore[arg-type]
        stats_doc = dict(manifest["stats"])  # type: ignore[arg-type]
        time_doc = dict(stats_doc.pop("time"))  # type: ignore[arg-type]
    except (KeyError, TypeError) as exc:
        raise ObsError(f"manifest lacks a run-defining section: {exc}") from exc

    try:
        time = TimeBreakdown(
            **{
                k: v
                for k, v in time_doc.items()
                if k not in ("total", "overhead")
            }
        )
        stats = RunStats(**stats_doc, time=time)
        cost = CostModel(**dict(config_doc.pop("cost")))
        config = SimConfig(**config_doc, cost=cost)
    except TypeError as exc:
        raise ObsError(
            f"manifest sections do not match the current schema: {exc}"
        ) from exc

    metrics = dict(manifest.get("metrics") or {}) or None
    result = RunResult(
        workload=run["workload"],
        scheme=run["scheme"],
        input_set=run["input_set"],
        seed=run["seed"],
        total_cycles=run["total_cycles"],
        stats=stats,
        config=config,
        sip_points=run.get("sip_points", 0),
        metrics=metrics,
    )
    if result.stats.time.total != result.total_cycles:
        raise ObsError(
            f"manifest is internally inconsistent: time buckets sum to "
            f"{result.stats.time.total}, run records {result.total_cycles} "
            "cycles"
        )
    return result


def load_manifest(path: Union[str, Path]) -> Dict[str, object]:
    """Load and schema-check one manifest file."""
    target = Path(path)
    try:
        document = json.loads(target.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ObsError(f"cannot read manifest {target}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ObsError(f"manifest {target} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ObsError(f"manifest {target} is not a JSON object")
    schema = document.get("schema")
    if schema != MANIFEST_SCHEMA:
        raise ObsError(
            f"manifest {target} has schema {schema!r}, expected {MANIFEST_SCHEMA!r}"
        )
    for key in ("run", "stats", "time_breakdown"):
        if key not in document:
            raise ObsError(f"manifest {target} lacks required section {key!r}")
    if "exec_telemetry" in document:
        from repro.obs.exec_telemetry import validate_exec_telemetry

        validate_exec_telemetry(document["exec_telemetry"])
    if "paging_profile" in document:
        from repro.obs.paging import validate_paging_profile

        validate_paging_profile(document["paging_profile"])
    if "fleet_timeseries" in document:
        from repro.obs.fleet_telemetry import validate_fleet_timeseries

        fleet_block = (document.get("extra") or {}).get("fleet")
        validate_fleet_timeseries(
            document["fleet_timeseries"], fleet_block=fleet_block
        )
    return document
