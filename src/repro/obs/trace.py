"""Structured tracing: pluggable sinks for the driver's timeline events.

The driver's ``record_events`` recorder used to be an unbounded list —
fine for the didactic Figure 2/4 traces, fatal for a full-scale run
that produces millions of events.  This module generalizes it:
:class:`~repro.enclave.driver.SgxDriver` emits each
:class:`~repro.enclave.events.TimelineEvent` to any number of
:class:`TraceSink` objects, and the sinks decide what to keep:

* :class:`RingBufferSink` — bounded in-memory buffer keeping the most
  recent ``capacity`` events and counting what it dropped (this is
  what ``record_events=True`` now uses, so its memory promise is
  actually kept);
* :class:`JsonlSink` — streams one JSON object per event to a file,
  for unbounded captures that must not live in memory;
* :class:`Tracer` — fan-out composite, itself a sink.

A captured event list renders to the Chrome ``trace_event`` format via
:mod:`repro.obs.chrome`, so any run opens in Perfetto or
``chrome://tracing``.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Deque, Iterable, Iterator, List, Optional, Union

from repro.enclave.events import EventKind, TimelineEvent
from repro.errors import ObsError

__all__ = [
    "TraceSink",
    "RingBufferSink",
    "JsonlSink",
    "Tracer",
    "DEFAULT_EVENT_CAPACITY",
    "event_to_dict",
    "event_from_dict",
    "register_sink_metrics",
]

#: Default capacity of the driver's event ring buffer: large enough for
#: every didactic and benchmark-scale trace, bounded for full runs.
DEFAULT_EVENT_CAPACITY = 1 << 20


def event_to_dict(event: TimelineEvent) -> dict:
    """JSON-ready representation of one timeline event."""
    record = {
        "kind": event.kind.value,
        "start": event.start,
        "end": event.end,
    }
    if event.page >= 0:
        record["page"] = event.page
    return record


def event_from_dict(record: dict) -> TimelineEvent:
    """Rebuild a :class:`TimelineEvent` from its ``event_to_dict`` form.

    The inverse used when events cross a process boundary (a worker's
    shipped ring-buffer contents) and the parent wants to feed them to
    the Chrome writer as if it had captured them locally.
    """
    try:
        return TimelineEvent(
            kind=EventKind(record["kind"]),
            start=record["start"],
            end=record["end"],
            page=record.get("page", -1),
        )
    except (KeyError, ValueError) as exc:
        raise ObsError(f"malformed serialized event {record!r}: {exc}") from exc


def register_sink_metrics(registry, sink: "RingBufferSink") -> None:
    """Expose a ring buffer's capture/drop counts as callback gauges.

    Wires ``trace.captured_events`` and ``trace.dropped_events`` into
    ``registry`` (a :class:`~repro.obs.metrics.MetricsRegistry`), so a
    dump taken at any time — including a worker's end-of-job dump —
    says how complete its shipped trace is.
    """
    registry.gauge(
        "trace.captured_events",
        "events currently held by the trace ring buffer",
        fn=lambda: len(sink),
    )
    registry.gauge(
        "trace.dropped_events",
        "events evicted from the trace ring buffer at capacity",
        fn=lambda: sink.dropped,
    )


class TraceSink:
    """One consumer of timeline events.

    Sinks must be passive: they observe events, never influence the
    simulation (the determinism tests assert this end to end).
    """

    def emit(self, event: TimelineEvent) -> None:
        """Consume one event."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release any resources (idempotent)."""


class RingBufferSink(TraceSink):
    """Keep the most recent ``capacity`` events; count the dropped."""

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY) -> None:
        if capacity <= 0:
            raise ObsError(f"ring buffer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._buffer: Deque[TimelineEvent] = deque(maxlen=capacity)
        #: Events evicted to make room (0 while the buffer has space).
        self.dropped = 0

    def emit(self, event: TimelineEvent) -> None:
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)

    @property
    def events(self) -> List[TimelineEvent]:
        """Snapshot of the buffered events, oldest first."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[TimelineEvent]:
        return iter(self._buffer)


class JsonlSink(TraceSink):
    """Stream events as JSON Lines to a path or file-like object."""

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        if isinstance(target, (str, Path)):
            self._fp: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_fp = True
        else:
            self._fp = target
            self._owns_fp = False
        #: Events written so far.
        self.emitted = 0

    def emit(self, event: TimelineEvent) -> None:
        self._fp.write(json.dumps(event_to_dict(event), sort_keys=True))
        self._fp.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if self._owns_fp and not self._fp.closed:
            self._fp.close()


class Tracer(TraceSink):
    """Composite sink: fans each event out to every attached sink."""

    def __init__(self, sinks: Iterable[TraceSink] = ()) -> None:
        self._sinks: List[TraceSink] = list(sinks)

    @property
    def sinks(self) -> List[TraceSink]:
        """The attached sinks (snapshot)."""
        return list(self._sinks)

    def add_sink(self, sink: TraceSink) -> None:
        """Attach one more sink."""
        self._sinks.append(sink)

    def ring(self) -> Optional[RingBufferSink]:
        """The first attached ring buffer, if any (convenience)."""
        for sink in self._sinks:
            if isinstance(sink, RingBufferSink):
                return sink
        return None

    def emit(self, event: TimelineEvent) -> None:
        for sink in self._sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()
