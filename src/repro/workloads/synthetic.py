"""Reusable access-pattern generators.

Benchmark models are assembled from a small vocabulary of page-level
patterns, mirroring how the paper characterizes its workloads
(Table 1, Figure 3):

* :func:`sequential` — one linear scan (the *bwaves*/*lbm* signature);
* :func:`interleaved_streams` — several concurrent linear scans, the
  pattern multi-array stencil codes produce and the reason the DFP
  predictor tracks *multiple* streams;
* :func:`uniform_random` — irregular touches spread uniformly over a
  region, optionally in short sequential runs (real irregular codes
  touch a few consecutive pages per object);
* :func:`zipf_random` — irregular touches with a hot/cold skew, the
  signature of pointer-heavy codes whose hot structures stay resident;
* :func:`hot_loop` — repeated touches of a small fixed set.

Every generator is a *factory*: it returns a phase callable taking
``(seed, input_set)`` and yielding ``(instruction, page,
compute_cycles)`` tuples.  Determinism: the phase RNG is seeded from
``(seed, salt, input_set)``, so the same workload replays identically
and the train/ref inputs differ in content but not in structure.
``train`` phases emit ``train_fraction`` of the ref event count.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.workloads.base import PhaseFactory, TraceEvent

__all__ = [
    "sequential",
    "interleaved_streams",
    "uniform_random",
    "zipf_random",
    "hot_loop",
    "concat",
    "interleave_phases",
    "phase_rng",
]

#: Fraction of the ref event count emitted under the ``train`` input.
TRAIN_FRACTION = 0.3


def phase_rng(seed: int, salt: int, input_set: str) -> random.Random:
    """Deterministic RNG for one phase of one run."""
    return random.Random(f"{seed}/{salt}/{input_set}")


def _scaled_count(count: int, input_set: str) -> int:
    if input_set == "train":
        return max(1, int(count * TRAIN_FRACTION))
    return count


def _check_region(lo: int, hi: int) -> None:
    if lo < 0 or hi <= lo:
        raise WorkloadError(f"invalid page region [{lo}, {hi})")


def _jittered(compute: int, jitter: int, rng: random.Random) -> int:
    if jitter <= 0:
        return compute
    return compute + rng.randrange(-jitter, jitter + 1)


def _check_runs(run_length: Tuple[int, int], multi_run_prob: "float | None") -> None:
    run_lo, run_hi = run_length
    if run_lo <= 0 or run_hi < run_lo:
        raise WorkloadError(f"invalid run_length {run_length}")
    if multi_run_prob is not None and not 0.0 <= multi_run_prob <= 1.0:
        raise WorkloadError(f"multi_run_prob must be in [0, 1], got {multi_run_prob}")


def _pick_run(
    rng: random.Random,
    run_length: Tuple[int, int],
    multi_run_prob: "float | None",
) -> int:
    """Length of the next sequential micro-run.

    With ``multi_run_prob`` unset, uniform over ``run_length``.  When
    set, most touches are singletons and a run of 2..max pages starts
    with that probability — the sparse short-run structure that makes
    irregular codes occasionally look sequential to the DFP detector.
    """
    run_lo, run_hi = run_length
    if multi_run_prob is None:
        return run_lo if run_lo == run_hi else rng.randint(run_lo, run_hi)
    if run_hi < 2 or rng.random() >= multi_run_prob:
        return 1
    return rng.randint(2, run_hi)


def sequential(
    instr: int,
    start: int,
    npages: int,
    *,
    compute: int,
    jitter: int = 0,
    passes: int = 1,
    salt: int = 0,
) -> PhaseFactory:
    """One instruction scanning ``npages`` pages linearly, ``passes`` times."""
    _check_region(start, start + npages)
    if passes <= 0:
        raise WorkloadError(f"passes must be positive, got {passes}")

    def phase(seed: int, input_set: str) -> Iterator[TraceEvent]:
        rng = phase_rng(seed, salt, input_set)
        reps = passes if input_set == "ref" else max(1, int(passes * TRAIN_FRACTION))
        for _ in range(reps):
            for page in range(start, start + npages):
                yield (instr, page, _jittered(compute, jitter, rng))

    return phase


def interleaved_streams(
    instrs: Sequence[int],
    regions: Sequence[Tuple[int, int]],
    *,
    compute: int,
    jitter: int = 0,
    block: int = 1,
    noise_instr: "int | None" = None,
    noise_rate: float = 0.0,
    noise_region: "Tuple[int, int] | None" = None,
    rounds: int = 1,
    strides: "Sequence[int] | None" = None,
    salt: int = 0,
) -> PhaseFactory:
    """Several linear scans advancing in lockstep (stencil signature).

    ``regions`` are half-open page ranges, one per stream; each stream
    has its own instruction id from ``instrs``.  The scans advance
    ``block`` pages at a time in round-robin order until the *longest*
    region is exhausted (shorter regions wrap around, as reused arrays
    do).  With ``noise_rate > 0``, uniformly random touches of
    ``noise_region`` are interspersed — the irregular residue that
    churns the DFP stream list in otherwise regular codes.

    ``strides`` (one per stream, default all 1) make a stream touch
    every ``stride``-th page — the access-with-gaps signature of
    array-of-struct sweeps.  A strided stream still looks sequential
    to the windowed detector, but next-page preloads for it are partly
    wasted, which is what separates the paper's mid-pack regular
    benchmarks from the perfectly dense microbenchmark.
    """
    if len(instrs) != len(regions):
        raise WorkloadError("one instruction id is required per stream")
    if not regions:
        raise WorkloadError("at least one stream region is required")
    for lo, hi in regions:
        _check_region(lo, hi)
    if block <= 0:
        raise WorkloadError(f"block must be positive, got {block}")
    if noise_rate and (noise_instr is None or noise_region is None):
        raise WorkloadError("noise requires noise_instr and noise_region")
    if noise_region is not None:
        _check_region(*noise_region)
    if rounds <= 0:
        raise WorkloadError(f"rounds must be positive, got {rounds}")
    stride_list = list(strides) if strides is not None else [1] * len(regions)
    if len(stride_list) != len(regions):
        raise WorkloadError("one stride is required per stream")
    if any(st <= 0 for st in stride_list):
        raise WorkloadError(f"strides must be positive, got {stride_list}")

    def phase(seed: int, input_set: str) -> Iterator[TraceEvent]:
        rng = phase_rng(seed, salt, input_set)
        lengths = [hi - lo for lo, hi in regions]
        blocks_per_round = (max(lengths) + block - 1) // block
        total_blocks = _scaled_count(blocks_per_round * rounds, input_set)
        for blk in range(total_blocks):
            for sid, (lo, _hi) in enumerate(regions):
                length = lengths[sid]
                instr = instrs[sid]
                stride = stride_list[sid]
                for off in range(block):
                    page = lo + ((blk * block + off) * stride) % length
                    yield (instr, page, _jittered(compute, jitter, rng))
                    if noise_rate and rng.random() < noise_rate:
                        nlo, nhi = noise_region  # type: ignore[misc]
                        yield (
                            noise_instr,  # type: ignore[misc]
                            rng.randrange(nlo, nhi),
                            _jittered(compute, jitter, rng),
                        )

    return phase


def uniform_random(
    instrs: Sequence[int],
    lo: int,
    hi: int,
    count: int,
    *,
    compute: int,
    jitter: int = 0,
    run_length: Tuple[int, int] = (1, 1),
    multi_run_prob: "float | None" = None,
    salt: int = 0,
) -> PhaseFactory:
    """Irregular touches uniform over ``[lo, hi)``.

    Each touch starts a short sequential run of ``run_length`` =
    ``(min, max)`` pages — real irregular codes (hash probes, graph
    edges, tree nodes) usually touch a couple of consecutive pages per
    object, and those micro-runs are what occasionally fools the DFP
    stream detector into a useless burst.  ``multi_run_prob`` makes
    multi-page runs sparse (see :func:`_pick_run`).  Instruction ids
    are drawn round-robin from ``instrs`` so the SIP profiler sees a
    stable per-site population.
    """
    _check_region(lo, hi)
    if count <= 0:
        raise WorkloadError(f"count must be positive, got {count}")
    _check_runs(run_length, multi_run_prob)
    if not instrs:
        raise WorkloadError("at least one instruction id is required")

    def phase(seed: int, input_set: str) -> Iterator[TraceEvent]:
        rng = phase_rng(seed, salt, input_set)
        remaining = _scaled_count(count, input_set)
        region = hi - lo
        instr_cycle = itertools.cycle(instrs)
        while remaining > 0:
            run = min(_pick_run(rng, run_length, multi_run_prob), remaining)
            start = lo + rng.randrange(region)
            instr = next(instr_cycle)
            for off in range(run):
                page = start + off
                if page >= hi:
                    page = lo + (page - hi)
                yield (instr, page, _jittered(compute, jitter, rng))
            remaining -= run

    return phase


def _zipf_cdf(n: int, alpha: float) -> List[float]:
    """Cumulative Zipf(alpha) weights over ranks 1..n."""
    weights = [1.0 / (rank ** alpha) for rank in range(1, n + 1)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w
        cdf.append(acc / total)
    return cdf


def zipf_random(
    instrs: Sequence[int],
    lo: int,
    hi: int,
    count: int,
    *,
    alpha: float = 0.9,
    compute: int,
    jitter: int = 0,
    run_length: Tuple[int, int] = (1, 1),
    multi_run_prob: "float | None" = None,
    shuffle_ranks: bool = True,
    salt: int = 0,
) -> PhaseFactory:
    """Irregular touches with a Zipf hot/cold skew over ``[lo, hi)``.

    Hot ranks map to pages through a per-input-set permutation when
    ``shuffle_ranks`` is set, so the *train* and *ref* inputs share the
    skew but not the identity of the hot pages — exactly the
    profile-vs-run divergence a PGO scheme must tolerate.
    """
    _check_region(lo, hi)
    if count <= 0:
        raise WorkloadError(f"count must be positive, got {count}")
    if alpha <= 0:
        raise WorkloadError(f"alpha must be positive, got {alpha}")
    _check_runs(run_length, multi_run_prob)
    if not instrs:
        raise WorkloadError("at least one instruction id is required")

    def phase(seed: int, input_set: str) -> Iterator[TraceEvent]:
        rng = phase_rng(seed, salt, input_set)
        region = hi - lo
        cdf = _zipf_cdf(region, alpha)
        if shuffle_ranks:
            mapping = list(range(region))
            rng.shuffle(mapping)
        else:
            mapping = None
        remaining = _scaled_count(count, input_set)
        instr_cycle = itertools.cycle(instrs)
        while remaining > 0:
            run = min(_pick_run(rng, run_length, multi_run_prob), remaining)
            rank = bisect.bisect_left(cdf, rng.random())
            base = mapping[rank] if mapping is not None else rank
            instr = next(instr_cycle)
            for off in range(run):
                page = lo + (base + off) % region
                yield (instr, page, _jittered(compute, jitter, rng))
            remaining -= run

    return phase


def hot_loop(
    instr: int,
    pages: Sequence[int],
    count: int,
    *,
    compute: int,
    jitter: int = 0,
    salt: int = 0,
) -> PhaseFactory:
    """Repeated touches of a small fixed page set (resident hot data)."""
    if not pages:
        raise WorkloadError("hot_loop needs at least one page")
    if count <= 0:
        raise WorkloadError(f"count must be positive, got {count}")

    def phase(seed: int, input_set: str) -> Iterator[TraceEvent]:
        rng = phase_rng(seed, salt, input_set)
        page_list = list(pages)
        n = len(page_list)
        for i in range(_scaled_count(count, input_set)):
            yield (instr, page_list[i % n], _jittered(compute, jitter, rng))

    return phase


def concat(*factories: PhaseFactory) -> PhaseFactory:
    """Compose several phase factories into one sequential phase."""
    if not factories:
        raise WorkloadError("concat needs at least one phase")

    def phase(seed: int, input_set: str) -> Iterator[TraceEvent]:
        for factory in factories:
            for event in factory(seed, input_set):
                yield event

    return phase


def interleave_phases(
    factories: Sequence[PhaseFactory],
    *,
    chunk: "int | Sequence[int]" = 64,
    salt: int = 0,
) -> PhaseFactory:
    """Round-robin interleaving of several phases.

    Models program phases that are logically concurrent (e.g. a scan
    instruction and an irregular lookup in the same loop body) rather
    than back-to-back.  ``chunk`` is the number of events taken from
    each phase per round; pass a sequence to give phases different
    weights (size the chunks proportionally to phase event counts to
    spread a sparse phase evenly across a dense one).
    """
    if not factories:
        raise WorkloadError("interleave_phases needs at least one phase")
    if isinstance(chunk, int):
        chunks = [chunk] * len(factories)
    else:
        chunks = list(chunk)
    if len(chunks) != len(factories):
        raise WorkloadError(
            f"{len(factories)} phases but {len(chunks)} chunk sizes"
        )
    if any(c <= 0 for c in chunks):
        raise WorkloadError(f"chunk sizes must be positive, got {chunks}")

    def phase(seed: int, input_set: str) -> Iterator[TraceEvent]:
        slots: List[Tuple[Iterator[TraceEvent], int]] = [
            (iter(factory(seed, input_set)), chunks[i])
            for i, factory in enumerate(factories)
        ]
        while slots:
            survivors: List[Tuple[Iterator[TraceEvent], int]] = []
            for it, take in slots:
                emitted = 0
                for event in it:
                    yield event
                    emitted += 1
                    if emitted >= take:
                        break
                if emitted >= take:
                    survivors.append((it, take))
            slots = survivors

    return phase
