"""SPEC CPU2017 (and SPEC 2006 ``mcf``) workload models.

Each model reproduces the page-level behaviour the paper documents for
the benchmark (Table 1 classification, Figure 3 patterns, the SIP
site counts of Table 2), expressed with the generators of
:mod:`repro.workloads.synthetic`:

* *large regular* — ``bwaves``, ``lbm``, ``wrf``: multi-array stencil
  sweeps, i.e. several interleaved sequential page streams over
  footprints 2–3× the EPC, with a small irregular residue;
* *large irregular* — ``mcf``, ``deepsjeng``, ``omnetpp``, ``roms``,
  ``xz`` (plus ``mcf.2006``): dominated by pointer-/hash-style touches
  with hot-cold structure and sparse short sequential micro-runs;
* *small working set* — ``cactuBSSN``, ``imagick``, ``leela``,
  ``nab``, ``exchange2``: footprints below the EPC, so enclave paging
  is a warm-up effect only.

Footprints are expressed as ratios of the full-scale usable EPC
(24,576 pages) and shrink with ``scale``; run a workload built with
``scale=f`` against ``SimConfig.scaled(f)``.

The irregular models build *instruction site groups*: a pool of
instruction ids shared between a hot-access phase (Class 1 dominant)
and a cold-access phase (Class 3 dominant), mixed in a controlled
ratio.  The group's cold share is therefore its profiled
irregular-access ratio — the exact quantity the SIP pass thresholds —
which lets each model place its sites above or below the 5% decision
boundary the way the paper describes (e.g. ``mcf``'s 99 sites sit just
above it, which is why instrumenting them is a wash, Section 5.2).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.workloads.base import PhaseFactory, SyntheticWorkload
from repro.workloads.synthetic import (
    hot_loop,
    interleave_phases,
    interleaved_streams,
    sequential,
    uniform_random,
    zipf_random,
)

__all__ = [
    "BASE_EPC_PAGES",
    "InstructionTable",
    "make_bwaves",
    "make_lbm",
    "make_wrf",
    "make_mcf",
    "make_mcf2006",
    "make_deepsjeng",
    "make_omnetpp",
    "make_roms",
    "make_xz",
    "make_cactubssn",
    "make_imagick",
    "make_leela",
    "make_nab",
    "make_exchange2",
]

#: Usable EPC pages at full scale (96 MB of 4 KiB pages); footprint
#: ratios below are relative to this.
BASE_EPC_PAGES = 24_576


def _fp(ratio: float, scale: int) -> int:
    """Footprint in pages for an EPC ratio at a given scale."""
    if scale <= 0:
        raise WorkloadError(f"scale must be positive, got {scale}")
    return max(192, int(ratio * BASE_EPC_PAGES) // scale)


class InstructionTable:
    """Allocates stable instruction ids with human-readable names."""

    def __init__(self) -> None:
        self._names: Dict[int, str] = {}
        self._next = 0

    def add(self, name: str) -> int:
        """Allocate one instruction id."""
        instr = self._next
        self._next += 1
        self._names[instr] = name
        return instr

    def pool(self, prefix: str, count: int) -> List[int]:
        """Allocate ``count`` ids named ``prefix[0..count)``."""
        if count <= 0:
            raise WorkloadError(f"pool size must be positive, got {count}")
        return [self.add(f"{prefix}[{i}]") for i in range(count)]

    @property
    def names(self) -> Dict[int, str]:
        """Snapshot of id → name."""
        return dict(self._names)


def _site_group(
    pool: Sequence[int],
    *,
    hot_lo: int,
    hot_hi: int,
    cold_lo: int,
    cold_hi: int,
    accesses: int,
    cold_share: float,
    compute: int,
    jitter: int,
    hot_alpha: float = 0.7,
    cold_runs: Tuple[int, int] = (1, 1),
    cold_multi_run_prob: "float | None" = None,
    salt: int = 0,
) -> PhaseFactory:
    """One instruction site group: hot and cold phases sharing ``pool``.

    ``cold_share`` of the group's accesses go uniformly to the cold
    region (irregular, fault-prone, Class 3); the rest follow a Zipf
    skew over the hot region (resident, Class 1).  The two phases are
    interleaved with chunk sizes proportional to their event counts so
    the mix is stationary over the whole trace.
    """
    if not 0.0 < cold_share < 1.0:
        raise WorkloadError(f"cold_share must be in (0, 1), got {cold_share}")
    cold_count = max(1, int(accesses * cold_share))
    hot_count = max(1, accesses - cold_count)
    hot = zipf_random(
        pool,
        hot_lo,
        hot_hi,
        hot_count,
        alpha=hot_alpha,
        compute=compute,
        jitter=jitter,
        salt=salt * 2 + 1,
    )
    cold = uniform_random(
        pool,
        cold_lo,
        cold_hi,
        cold_count,
        compute=compute,
        jitter=jitter,
        run_length=cold_runs,
        multi_run_prob=cold_multi_run_prob,
        salt=salt * 2 + 2,
    )
    # Chunk proportions: at least 1 event per round from the sparse
    # cold phase; scale the hot chunk to preserve the share.
    cold_chunk = 1
    hot_chunk = max(1, round(hot_count / cold_count))
    return interleave_phases([hot, cold], chunk=[hot_chunk, cold_chunk], salt=salt)


# ----------------------------------------------------------------------
# Large working set, regular access patterns (Table 1 row 3)
# ----------------------------------------------------------------------


def make_bwaves(scale: int = 1) -> SyntheticWorkload:
    """``bwaves``: block-tridiagonal solver, three sweeping arrays.

    Figure 3(a): evidently sequential page pattern.  Fortran, so it is
    excluded from the SIP experiments; the irregular residue is a
    plain noise term.
    """
    fp = _fp(2.5, scale)
    table = InstructionTable()
    third = fp // 3
    streams = [
        table.add("solve(): coefficient sweep"),
        table.add("solve(): rhs sweep"),
        table.add("solve(): solution sweep"),
    ]
    noise = table.add("index(): boundary gather")
    body = interleaved_streams(
        streams,
        [(0, third), (third, 2 * third), (2 * third, fp - 3)],
        compute=1_200,
        jitter=300,
        block=2,
        noise_instr=noise,
        noise_rate=0.02,
        noise_region=(0, fp),
        rounds=5,
        salt=1,
    )
    scratch = table.add("solve(): in-cache block update")
    hot_count = max(200, (12_000 * 16) // scale)
    hot = hot_loop(
        scratch, list(range(0, 64)), hot_count, compute=100_000, jitter=9_000, salt=45
    )
    return SyntheticWorkload("bwaves", fp, table.names, [body, hot])


def make_lbm(scale: int = 1) -> SyntheticWorkload:
    """``lbm``: lattice-Boltzmann, source/destination grid sweeps.

    Figure 3(c): sequential.  Its one irregular site (boundary
    handling) mixes 96% hot touches with 4% cold ones, keeping it
    *below* the 5% SIP threshold — Table 2 reports 0 instrumentation
    points for lbm.
    """
    fp = _fp(3.0, scale)
    table = InstructionTable()
    half = fp // 2
    streams = [
        table.add("streamCollide(): src grid sweep"),
        table.add("streamCollide(): dst grid sweep"),
    ]
    boundary = table.add("handleBoundary(): obstacle lookup")
    rounds = 5
    body = interleaved_streams(
        streams,
        [(0, half), (half, fp)],
        compute=1_500,
        jitter=400,
        block=1,
        rounds=rounds,
        salt=2,
    )
    body_events = rounds * fp
    noise_total = max(40, int(body_events * 0.04))
    noise_cold = max(2, int(noise_total * 0.04))
    noise_hot = noise_total - noise_cold
    hot_pages = list(range(0, 48))
    noise_hot_phase = hot_loop(
        boundary, hot_pages, noise_hot, compute=1_500, jitter=400, salt=3
    )
    noise_cold_phase = uniform_random(
        [boundary], 0, fp, noise_cold, compute=1_500, jitter=400, salt=4
    )
    hot_chunk = max(1, round(noise_hot / noise_cold))
    body_chunk = max(1, round(body_events / noise_cold))
    local_work = table.add("streamCollide(): cell-local collide")
    local_count = max(200, (2_400 * 16) // scale)
    local_phase = hot_loop(
        local_work, list(range(0, 48)), local_count, compute=50_000, jitter=5_000, salt=7
    )
    mixed = interleave_phases(
        [body, noise_hot_phase, noise_cold_phase],
        chunk=[body_chunk, hot_chunk, 1],
        salt=5,
    )
    return SyntheticWorkload("lbm", fp, table.names, [mixed, local_phase])


def make_wrf(scale: int = 1) -> SyntheticWorkload:
    """``wrf``: weather model, four field arrays swept per timestep.

    Fortran (excluded from SIP); regular with a little noise.
    """
    fp = _fp(2.0, scale)
    table = InstructionTable()
    quarter = fp // 4
    streams = [
        table.add("advance(): u-wind sweep"),
        table.add("advance(): v-wind sweep"),
        table.add("advance(): temperature sweep"),
        table.add("advance(): moisture sweep"),
    ]
    noise = table.add("physics(): lookup table")
    body = interleaved_streams(
        streams,
        [
            (0, quarter),
            (quarter, 2 * quarter),
            (2 * quarter, 3 * quarter),
            (3 * quarter, fp - 3),
        ],
        compute=1_000,
        jitter=250,
        block=2,
        noise_instr=noise,
        noise_rate=0.03,
        noise_region=(0, fp),
        rounds=5,
        salt=6,
    )
    micro_phys = table.add("physics(): column microphysics")
    hot_count = max(200, (12_000 * 16) // scale)
    hot = hot_loop(
        micro_phys, list(range(0, 64)), hot_count, compute=76_000, jitter=7_000, salt=47
    )
    return SyntheticWorkload("wrf", fp, table.names, [body, hot])


# ----------------------------------------------------------------------
# Large working set, irregular access patterns (Table 1 row 2)
# ----------------------------------------------------------------------


def make_deepsjeng(scale: int = 1) -> SyntheticWorkload:
    """``deepsjeng``: chess search over a transposition table ~4× EPC.

    Figure 3(b): highly irregular.  Site groups span the SIP ratio
    spectrum so the threshold sweep of Figure 9 has structure:
    10 sites at ~2% (below threshold), then 15/10/10 sites at ~8%,
    ~25% and ~70% — 35 instrumented points at the default 5%
    threshold, matching Table 2.
    """
    fp = _fp(4.0, scale)
    table = InstructionTable()
    hot_hi = max(64, fp // 16)
    compute, jitter = 9_000, 1_200
    accesses = max(4_000, (36_000 * 16) // scale)
    groups = [
        # (pool name, sites, share of accesses, cold share)
        ("probe_tt(): hot entry", 10, 0.40, 0.03),
        ("probe_tt(): depth slot", 15, 0.25, 0.10),
        ("pawn_hash(): bucket", 10, 0.20, 0.22),
        ("eval_cache(): cold probe", 10, 0.15, 0.52),
    ]
    phases: List[PhaseFactory] = []
    chunks: List[int] = []
    for salt, (name, sites, share, cold_share) in enumerate(groups, start=10):
        pool = table.pool(name, sites)
        phases.append(
            _site_group(
                pool,
                hot_lo=0,
                hot_hi=hot_hi,
                cold_lo=hot_hi,
                cold_hi=fp,
                accesses=int(accesses * share),
                cold_share=cold_share,
                compute=compute,
                jitter=jitter,
                hot_alpha=1.3,
                cold_runs=(2, 3),
                cold_multi_run_prob=0.5,
                salt=salt,
            )
        )
        chunks.append(max(1, round(share * 100)))
    body = interleave_phases(phases, chunk=chunks, salt=9)
    return SyntheticWorkload("deepsjeng", fp, table.names, [body])


def make_mcf(scale: int = 1) -> SyntheticWorkload:
    """``mcf`` (SPEC 2017): network simplex, footprint ~1.3× EPC.

    The paper's dilemma benchmark: 99 sites whose accesses are mostly
    EPC hits (Class 1) with an irregular share just above the SIP
    threshold, so instrumentation converts few faults but pays the
    check on every hot access — a performance wash (Section 5.2).
    """
    fp = _fp(1.3, scale)
    table = InstructionTable()
    # The hot node/arc arrays fit the EPC with headroom; the cold
    # remainder churns against the leftover frames, so cold probes
    # fault only part of the time — the profile says "irregular" but
    # the conversion rate at run time is modest, hence the wash.
    epc = max(1, BASE_EPC_PAGES // scale)
    hot_hi = min(fp - 64, max(128, int(epc * 0.58)))
    pool = table.pool("arc_cost(): node lookup", 99)
    scan = table.add("price_out(): arc array sweep")
    accesses = max(4_000, (40_000 * 16) // scale)
    group = _site_group(
        pool,
        hot_lo=0,
        hot_hi=hot_hi,
        cold_lo=hot_hi,
        cold_hi=fp,
        accesses=accesses,
        cold_share=0.085,
        compute=5_000,
        jitter=800,
        hot_alpha=1.1,
        cold_runs=(2, 3),
        cold_multi_run_prob=0.4,
        salt=20,
    )
    head = max(64, hot_hi // 3)
    sweep = sequential(scan, 0, head, compute=5_000, jitter=800, passes=1, salt=21)
    body = interleave_phases(
        [group, sweep], chunk=[max(1, accesses // head), 1], salt=22
    )
    return SyntheticWorkload("mcf", fp, table.names, [body])


def make_mcf2006(scale: int = 1) -> SyntheticWorkload:
    """``mcf`` from SPEC 2006: same solver, colder access mix.

    Its 114 sites carry a clearly-above-threshold irregular share, so
    SIP converts real faults and wins ~5% (Figure 10).
    """
    fp = _fp(1.6, scale)
    table = InstructionTable()
    epc = max(1, BASE_EPC_PAGES // scale)
    hot_hi = min(fp - 64, max(128, int(epc * 0.65)))
    pool = table.pool("refresh_potential(): node", 114)
    accesses = max(4_000, (40_000 * 16) // scale)
    group = _site_group(
        pool,
        hot_lo=0,
        hot_hi=hot_hi,
        cold_lo=hot_hi,
        cold_hi=fp,
        accesses=accesses,
        cold_share=0.085,
        compute=5_000,
        jitter=800,
        hot_alpha=1.0,
        cold_runs=(2, 3),
        cold_multi_run_prob=0.25,
        salt=24,
    )
    return SyntheticWorkload("mcf.2006", fp, table.names, [group])


def make_omnetpp(scale: int = 1) -> SyntheticWorkload:
    """``omnetpp``: discrete-event network simulation, ~1.7× EPC.

    Pointer-heavy event objects with Zipf reuse and short runs.  The
    paper's instrumentation tool could not handle omnetpp, so it is
    excluded from SIP experiments; DFP sees it as mildly irregular.
    """
    fp = _fp(1.7, scale)
    table = InstructionTable()
    pool = table.pool("scheduleAt(): event object", 24)
    accesses = max(4_000, (34_000 * 16) // scale)
    body = zipf_random(
        pool,
        0,
        fp,
        accesses,
        alpha=0.85,
        compute=7_000,
        jitter=1_000,
        run_length=(2, 3),
        multi_run_prob=0.25,
        salt=26,
    )
    return SyntheticWorkload("omnetpp", fp, table.names, [body])


def make_roms(scale: int = 1) -> SyntheticWorkload:
    """``roms``: ocean model, blocky halo exchanges, ~2.2× EPC.

    Short sequential micro-runs at random offsets — the pattern that
    fools the stream detector most (worst DFP overhead in Figure 8).
    Fortran, excluded from SIP.
    """
    fp = _fp(2.2, scale)
    table = InstructionTable()
    pool = table.pool("halo_exchange(): tile row", 12)
    accesses = max(4_000, (36_000 * 16) // scale)
    body = uniform_random(
        pool,
        0,
        fp,
        accesses,
        compute=4_000,
        jitter=700,
        run_length=(2, 3),
        multi_run_prob=0.42,
        salt=28,
    )
    return SyntheticWorkload("roms", fp, table.names, [body])


def make_xz(scale: int = 1) -> SyntheticWorkload:
    """``xz``: LZMA compression, dictionary scan + match probes.

    Half the work is a sequential window sweep, half irregular match
    lookups across the dictionary (46 SIP sites, Table 2).
    """
    fp = _fp(2.8, scale)
    table = InstructionTable()
    epc = max(1, BASE_EPC_PAGES // scale)
    scan = table.add("lzma_encode(): window sweep")
    pool = table.pool("find_match(): hash chain", 46)
    accesses = max(4_000, (20_000 * 16) // scale)
    sweep = sequential(scan, 0, fp - 4, compute=6_000, jitter=900, passes=1, salt=30)
    # Match probes concentrate near the recently-scanned dictionary
    # head but chase long hash chains into cold history.
    probes = _site_group(
        pool,
        hot_lo=0,
        hot_hi=min(fp - 64, max(128, epc // 2)),
        cold_lo=min(fp - 64, max(128, epc // 2)),
        cold_hi=fp,
        accesses=accesses,
        cold_share=0.25,
        compute=6_000,
        jitter=900,
        hot_alpha=0.9,
        cold_runs=(2, 3),
        cold_multi_run_prob=0.15,
        salt=31,
    )
    body = interleave_phases([sweep, probes], chunk=[1, 1], salt=32)
    return SyntheticWorkload("xz", fp, table.names, [body])


# ----------------------------------------------------------------------
# Small working set (Table 1 row 1)
# ----------------------------------------------------------------------


def make_cactubssn(scale: int = 1) -> SyntheticWorkload:
    """``cactuBSSN``: stencil over a grid comfortably inside the EPC."""
    fp = _fp(0.6, scale)
    table = InstructionTable()
    third = fp // 3
    streams = [
        table.add("bssn_rhs(): metric sweep"),
        table.add("bssn_rhs(): curvature sweep"),
        table.add("bssn_rhs(): gauge sweep"),
    ]
    body = interleaved_streams(
        streams,
        [(0, third), (third, 2 * third), (2 * third, fp - 3)],
        compute=9_000,
        jitter=1_200,
        block=2,
        rounds=12,
        salt=34,
    )
    return SyntheticWorkload("cactuBSSN", fp, table.names, [body])


def make_imagick(scale: int = 1) -> SyntheticWorkload:
    """``imagick``: filter passes over an in-EPC image."""
    fp = _fp(0.4, scale)
    table = InstructionTable()
    instr = table.add("MorphologyApply(): pixel row sweep")
    body = sequential(instr, 0, fp, compute=7_000, jitter=1_000, passes=16, salt=36)
    return SyntheticWorkload("imagick", fp, table.names, [body])


def make_leela(scale: int = 1) -> SyntheticWorkload:
    """``leela``: MCTS over a small, hot tree."""
    fp = _fp(0.15, scale)
    table = InstructionTable()
    pool = table.pool("uct_select(): tree node", 16)
    accesses = max(2_000, (26_000 * 16) // scale)
    body = zipf_random(
        pool, 0, fp, accesses, alpha=1.0, compute=5_000, jitter=800, salt=38
    )
    return SyntheticWorkload("leela", fp, table.names, [body])


def make_nab(scale: int = 1) -> SyntheticWorkload:
    """``nab``: molecular dynamics over in-EPC coordinate arrays."""
    fp = _fp(0.3, scale)
    table = InstructionTable()
    half = fp // 2
    streams = [
        table.add("mme(): coordinate sweep"),
        table.add("mme(): force sweep"),
    ]
    body = interleaved_streams(
        streams,
        [(0, half), (half, fp)],
        compute=8_000,
        jitter=1_200,
        block=1,
        rounds=12,
        salt=40,
    )
    return SyntheticWorkload("nab", fp, table.names, [body])


def make_exchange2(scale: int = 1) -> SyntheticWorkload:
    """``exchange2``: sudoku solver, tiny hot working set."""
    fp = _fp(0.05, scale)
    table = InstructionTable()
    instr = table.add("digits_2(): board state")
    pool = table.pool("digits_2(): candidate grid", 6)
    accesses = max(2_000, (20_000 * 16) // scale)
    hot = hot_loop(
        instr, list(range(min(32, fp))), accesses // 2, compute=4_000, jitter=600, salt=42
    )
    rand = uniform_random(
        pool, 0, fp, accesses // 2, compute=4_000, jitter=600, salt=43
    )
    body = interleave_phases([hot, rand], chunk=[1, 1], salt=44)
    return SyntheticWorkload("exchange2", fp, table.names, [body])
