"""SD-VBS vision application models: SIFT, MSER, and ``mixed-blood``.

Section 5.3 evaluates two real image-processing applications on
MIT-Adobe FiveK images:

* **SIFT** — scale-invariant feature transform.  Dominated by
  sequential passes over the image and its Gaussian pyramid levels;
  the paper profiles it as sequential-heavy (a DFP candidate, +9.5%)
  and the SIP pass finds no instrumentation points (Table 2: 0).
* **MSER** — maximally stable extremal regions.  A union-find over
  pixel intensity order: irregular touches across the component
  forest; a SIP candidate (+3.0%) with 54 instrumentation points.

Section 5.4 synthesizes **mixed-blood**: a sequential image scan
followed by MSER blob detection, giving comparable Class 2 and Class 3
populations — the one workload where the hybrid scheme (SIP + DFP)
beats both parts (Figure 13: SIP 1.6%, DFP 6.0%, hybrid 7.1%).
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import PhaseFactory, SyntheticWorkload
from repro.workloads.spec import InstructionTable, _fp
from repro.workloads.synthetic import (
    hot_loop,
    interleave_phases,
    sequential,
    uniform_random,
    zipf_random,
)

__all__ = ["make_sift", "make_mser", "make_mixed_blood"]


def make_sift(scale: int = 1) -> SyntheticWorkload:
    """SIFT: pyramid of sequential passes plus a hot descriptor loop."""
    fp = _fp(2.4, scale)
    table = InstructionTable()
    phases: List[PhaseFactory] = []
    # Gaussian pyramid: full image, then halved levels.  Each level is
    # a fresh sequential stream — the multi-stream predictor's bread
    # and butter.
    level_pages = fp
    level = 0
    while level_pages >= 128 and level < 5:
        instr = table.add(f"gaussian_blur(): level {level} row sweep")
        phases.append(
            sequential(
                instr,
                0,
                level_pages,
                compute=2_500,
                jitter=600,
                passes=2 if level == 0 else 1,
                salt=60 + level,
            )
        )
        level_pages //= 2
        level += 1
    descriptors = table.add("keypoint_descriptor(): histogram bin")
    phases.append(
        hot_loop(
            descriptors,
            list(range(0, 64)),
            max(2_000, (24_000 * 16) // scale),
            compute=26_000,
            jitter=3_000,
            salt=66,
        )
    )
    body: List[PhaseFactory] = phases
    return SyntheticWorkload("SIFT", fp, table.names, body)


def _mser_irregular(
    table: InstructionTable, fp: int, accesses: int, *, salt: int
) -> PhaseFactory:
    """MSER's union-find phase: 54 sites, moderately cold probes."""
    pool = table.pool("union_find(): parent pointer", 54)
    hot_hi = max(64, fp // 3)
    hot_count = max(1, int(accesses * 0.925))
    cold_count = max(1, accesses - hot_count)
    hot = zipf_random(
        pool,
        0,
        hot_hi,
        hot_count,
        alpha=0.8,
        compute=4_000,
        jitter=800,
        salt=salt + 1,
    )
    cold = uniform_random(
        pool,
        hot_hi,
        fp,
        cold_count,
        compute=4_000,
        jitter=800,
        run_length=(2, 3),
        multi_run_prob=0.2,
        salt=salt + 2,
    )
    hot_chunk = max(1, round(hot_count / cold_count))
    return interleave_phases([hot, cold], chunk=[hot_chunk, 1], salt=salt)


def make_mser(scale: int = 1) -> SyntheticWorkload:
    """MSER: intensity sort (one scan) then irregular union-find."""
    fp = _fp(1.8, scale)
    table = InstructionTable()
    sort_instr = table.add("intensity_sort(): pixel sweep")
    phases: List[PhaseFactory] = [
        sequential(sort_instr, 0, fp, compute=4_000, jitter=800, passes=1, salt=70),
        _mser_irregular(table, fp, max(4_000, (26_000 * 16) // scale), salt=72),
    ]
    return SyntheticWorkload("MSER", fp, table.names, phases)


def make_mixed_blood(scale: int = 1) -> SyntheticWorkload:
    """``mixed-blood``: sequential image scan + MSER detection.

    Built exactly as Section 5.4 describes: scan an image region
    sequentially (Class 2 work for DFP), then run MSER-style blob
    detection over it (Class 3 work for SIP), with comparable volumes
    of each.
    """
    fp = _fp(2.0, scale)
    table = InstructionTable()
    scan_instr = table.add("image_scan(): pixel sweep")
    irregular_accesses = max(4_000, (18_000 * 16) // scale)
    phases: List[PhaseFactory] = [
        sequential(scan_instr, 0, fp, compute=2_000, jitter=500, passes=2, salt=80),
        _mser_irregular(table, fp, irregular_accesses, salt=82),
    ]
    return SyntheticWorkload("mixed-blood", fp, table.names, phases)
