"""Workload models.

The paper evaluates SPEC CPU2017 benchmarks (plus SPEC 2006 ``mcf``),
a 1 GB sequential microbenchmark, and two SD-VBS vision applications
(SIFT and MSER).  None of those inputs are redistributable here, and
the schemes only ever observe *page-granular access behaviour* — so
each benchmark is modelled as a deterministic generator reproducing
the access-pattern class the paper documents for it (Table 1 and
Figure 3): footprint relative to the EPC, sequential-stream structure,
irregular/Zipf components, and the per-instruction mix that drives the
SIP pass.

* :mod:`repro.workloads.base` — the :class:`Workload` abstraction.
* :mod:`repro.workloads.synthetic` — reusable pattern generators.
* :mod:`repro.workloads.spec` — SPEC CPU2017 / 2006 models.
* :mod:`repro.workloads.micro` — the 1 GB sequential microbenchmark.
* :mod:`repro.workloads.vision` — SIFT, MSER and ``mixed-blood``.
* :mod:`repro.workloads.registry` — name → factory lookup.
"""

from repro.workloads.base import Access, Workload, SyntheticWorkload
from repro.workloads.requests import (
    RequestProfile,
    memcached_profile,
    nginx_profile,
    request_gaps,
)
from repro.workloads.registry import (
    WORKLOAD_NAMES,
    LARGE_REGULAR,
    LARGE_IRREGULAR,
    SMALL_WORKING_SET,
    CPP_BENCHMARKS,
    build_workload,
)

__all__ = [
    "Access",
    "Workload",
    "SyntheticWorkload",
    "WORKLOAD_NAMES",
    "LARGE_REGULAR",
    "LARGE_IRREGULAR",
    "SMALL_WORKING_SET",
    "CPP_BENCHMARKS",
    "build_workload",
    "RequestProfile",
    "memcached_profile",
    "nginx_profile",
    "request_gaps",
]
