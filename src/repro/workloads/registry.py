"""Workload registry: name → factory, plus the paper's groupings.

The groupings mirror Table 1 (working-set classification) and the
implementation constraints of Section 5.2 (only C/C++ applications are
supported by the SIP instrumentation tool; the Fortran benchmarks and
``omnetpp`` are excluded from SIP experiments).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import WorkloadError
from repro.workloads import micro, spec, vision
from repro.workloads.base import Workload

__all__ = [
    "WORKLOAD_NAMES",
    "LARGE_REGULAR",
    "LARGE_IRREGULAR",
    "SMALL_WORKING_SET",
    "CPP_BENCHMARKS",
    "VISION_APPS",
    "build_workload",
]

_FACTORIES: Dict[str, Callable[[int], Workload]] = {
    "bwaves": spec.make_bwaves,
    "lbm": spec.make_lbm,
    "wrf": spec.make_wrf,
    "mcf": spec.make_mcf,
    "mcf.2006": spec.make_mcf2006,
    "deepsjeng": spec.make_deepsjeng,
    "omnetpp": spec.make_omnetpp,
    "roms": spec.make_roms,
    "xz": spec.make_xz,
    "cactuBSSN": spec.make_cactubssn,
    "imagick": spec.make_imagick,
    "leela": spec.make_leela,
    "nab": spec.make_nab,
    "exchange2": spec.make_exchange2,
    "microbenchmark": micro.make_microbenchmark,
    "SIFT": vision.make_sift,
    "MSER": vision.make_mser,
    "mixed-blood": vision.make_mixed_blood,
}

#: Every model in the library.
WORKLOAD_NAMES: Tuple[str, ...] = tuple(sorted(_FACTORIES))

#: Table 1, "Large Working Set with regular access".
LARGE_REGULAR: Tuple[str, ...] = ("bwaves", "lbm", "wrf", "microbenchmark")

#: Table 1, "Large Working Set with irregular access".
LARGE_IRREGULAR: Tuple[str, ...] = ("roms", "mcf", "deepsjeng", "omnetpp", "xz")

#: Table 1, "Small Working Set".
SMALL_WORKING_SET: Tuple[str, ...] = (
    "cactuBSSN",
    "imagick",
    "leela",
    "nab",
    "exchange2",
)

#: C/C++ applications the SIP toolchain supports (Section 5.2 and
#: Table 2): the Fortran benchmarks (bwaves, roms, wrf) and omnetpp
#: are excluded.
CPP_BENCHMARKS: Tuple[str, ...] = (
    "mcf.2006",
    "mcf",
    "xz",
    "deepsjeng",
    "lbm",
    "MSER",
    "SIFT",
    "microbenchmark",
)

#: The SD-VBS real-world applications of Section 5.3.
VISION_APPS: Tuple[str, ...] = ("SIFT", "MSER")


def build_workload(name: str, *, scale: int = 1) -> Workload:
    """Build the named workload model at the given scale.

    ``scale`` must match the factor passed to
    :meth:`repro.core.config.SimConfig.scaled` so footprint-to-EPC
    ratios stay faithful to the paper's platform.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; expected one of {', '.join(WORKLOAD_NAMES)}"
        ) from None
    return factory(scale)
