"""Workload abstraction.

A workload is a deterministic generator of page-touch events.  Each
event is a ``(instruction, page, compute_cycles)`` triple:

* ``instruction`` — a stable small integer naming the memory
  instruction (source-line analogue) that issued the access; the SIP
  profiler aggregates per-instruction class histograms over these ids
  and the SIP pass instruments a subset of them;
* ``page`` — the 4 KiB enclave page touched (page-granular, like the
  fault stream SGX exposes to the OS);
* ``compute_cycles`` — in-enclave computation since the previous
  event, i.e. the work available to overlap with preloading.

Traces are generated lazily and are deterministic in ``(seed,
input_set)``; the ``train`` input set is what SIP profiles, the ``ref``
input set is what performance runs use, mirroring the paper's
PGO-realistic split (Section 5.2).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, Mapping, Tuple

from repro.errors import WorkloadError

__all__ = ["Access", "Workload", "SyntheticWorkload", "TraceEvent"]

#: The raw event tuple flowing through the hot simulation loop.
TraceEvent = Tuple[int, int, int]


@dataclass(frozen=True)
class Access:
    """One page-touch event (friendly wrapper over the raw tuple)."""

    instruction: int
    page: int
    compute_cycles: int


class Workload(abc.ABC):
    """A deterministic page-access trace generator."""

    #: Input sets every workload supports.
    INPUT_SETS: Tuple[str, ...] = ("train", "ref")

    def __init__(self, name: str, footprint_pages: int) -> None:
        if not name:
            raise WorkloadError("workload name must be non-empty")
        if footprint_pages <= 0:
            raise WorkloadError(
                f"footprint must be at least one page, got {footprint_pages}"
            )
        self._name = name
        self._footprint_pages = footprint_pages

    # ------------------------------------------------------------------
    # Identity and geometry
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Benchmark name (e.g. ``"lbm"``)."""
        return self._name

    @property
    def footprint_pages(self) -> int:
        """Distinct pages the workload may touch."""
        return self._footprint_pages

    @property
    def elrange_pages(self) -> int:
        """Enclave virtual span: the footprint plus a small guard.

        Real enclaves reserve ELRANGE beyond their live data; the guard
        also gives DFP room to preload past the last page of an array
        without faulting the simulator.
        """
        return self._footprint_pages + 64

    @property
    @abc.abstractmethod
    def instructions(self) -> Mapping[int, str]:
        """Stable mapping of instruction id → human-readable name."""

    # ------------------------------------------------------------------
    # Trace generation
    # ------------------------------------------------------------------

    def _check_input_set(self, input_set: str) -> None:
        if input_set not in self.INPUT_SETS:
            raise WorkloadError(
                f"unknown input set {input_set!r} for {self._name!r}; "
                f"expected one of {', '.join(self.INPUT_SETS)}"
            )

    @abc.abstractmethod
    def trace(self, *, seed: int = 0, input_set: str = "ref") -> Iterator[TraceEvent]:
        """Yield ``(instruction, page, compute_cycles)`` events."""

    def accesses(self, *, seed: int = 0, input_set: str = "ref") -> Iterator[Access]:
        """Like :meth:`trace` but yielding :class:`Access` objects."""
        for instr, page, cycles in self.trace(seed=seed, input_set=input_set):
            yield Access(instr, page, cycles)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self._name!r}, "
            f"footprint_pages={self._footprint_pages})"
        )


#: A phase factory: given the RNG-seeded context, returns an iterable
#: of trace events.  Defined in :mod:`repro.workloads.synthetic`.
PhaseFactory = Callable[[int, str], Iterable[TraceEvent]]


class SyntheticWorkload(Workload):
    """A workload assembled from phase generators.

    Concrete benchmark models supply a list of phase factories; each
    factory receives ``(seed, input_set)`` and yields trace events.
    Phases run in order, once per trace.
    """

    def __init__(
        self,
        name: str,
        footprint_pages: int,
        instructions: Mapping[int, str],
        phases: "list[PhaseFactory]",
    ) -> None:
        super().__init__(name, footprint_pages)
        if not phases:
            raise WorkloadError(f"workload {name!r} needs at least one phase")
        self._instructions = dict(instructions)
        self._phases = list(phases)

    @property
    def instructions(self) -> Mapping[int, str]:
        return self._instructions

    def trace(self, *, seed: int = 0, input_set: str = "ref") -> Iterator[TraceEvent]:
        self._check_input_set(input_set)
        footprint = self._footprint_pages
        known = self._instructions
        for phase in self._phases:
            for event in phase(seed, input_set):
                instr, page, _cycles = event
                if page >= footprint or page < 0:
                    raise WorkloadError(
                        f"workload {self._name!r} touched page {page} outside "
                        f"its declared footprint of {footprint} pages"
                    )
                if instr not in known:
                    raise WorkloadError(
                        f"workload {self._name!r} used undeclared instruction {instr}"
                    )
                yield event
