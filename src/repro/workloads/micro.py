"""The sequential-access microbenchmark (Sections 1 and 5).

The paper's microbenchmark walks a 1 GB buffer sequentially in a loop;
it is the program whose enclave port showed the motivating ~46×
slowdown, and the best case for DFP (+18.6% in Figure 8).  One memory
instruction, purely sequential — the SIP pass correctly finds nothing
to instrument (Table 2: 0 points).
"""

from __future__ import annotations

from repro import units
from repro.workloads.base import SyntheticWorkload
from repro.workloads.spec import InstructionTable, _fp
from repro.workloads.synthetic import sequential

__all__ = ["make_microbenchmark", "MICRO_BUFFER_BYTES"]

#: Buffer size the paper's microbenchmark touches.
MICRO_BUFFER_BYTES = units.GIB


def make_microbenchmark(scale: int = 1) -> SyntheticWorkload:
    """1 GB sequential walk (scaled), two passes, light compute."""
    full_pages = units.pages_of(MICRO_BUFFER_BYTES)
    ratio = full_pages / 24_576  # ≈ 10.67 × the usable EPC
    fp = _fp(ratio, scale)
    table = InstructionTable()
    instr = table.add("main(): buf[i] sequential read")
    body = sequential(instr, 0, fp, compute=3_000, jitter=400, passes=2, salt=50)
    return SyntheticWorkload("microbenchmark", fp, table.names, [body])
