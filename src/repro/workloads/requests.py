"""Open-loop request arrival profiles for fleet tenants.

The SGX benchmarking literature (and every datacenter-facing paper the
fleet scenarios model themselves on) drives servers with *open-loop*
request streams: requests arrive on their own schedule — memcached and
nginx style Poisson or bounded-jitter inter-arrival processes — whether
or not the server has finished the previous one.  A fixed synthetic
trace, by contrast, is closed-loop: the next touch happens exactly when
the previous one retires, so queueing effects never appear.

:class:`RequestProfile` layers an open-loop schedule *on top of* an
existing :class:`~repro.workloads.base.Workload` trace: the trace is
cut into requests of ``events_per_request`` consecutive events, and
request *k* arrives ``k`` inter-arrival gaps after the tenant starts
serving.  The fleet loop (:mod:`repro.sim.fleet`) then:

* idles the tenant until the arrival when it is ahead of schedule
  (the gap is charged to the ``idle`` time bucket); or
* starts the request late when it is behind — the lag is the tenant's
  queueing delay, recorded in its per-tenant QoS histogram.

Determinism: gaps come from :func:`repro.workloads.synthetic.phase_rng`
seeded by ``(seed, salt, "fleet-req")``, so a scenario replays its
arrival schedule exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import WorkloadError
from repro.workloads.synthetic import phase_rng

__all__ = [
    "RequestProfile",
    "memcached_profile",
    "nginx_profile",
    "request_gaps",
]

#: Supported inter-arrival processes.
_KINDS = ("poisson", "uniform", "periodic")


@dataclass(frozen=True)
class RequestProfile:
    """Open-loop request schedule layered on a workload trace.

    * ``kind`` — inter-arrival process: ``"poisson"`` (exponential
      gaps, the memcached-style default), ``"uniform"`` (gaps drawn
      uniformly from ``mean_gap_cycles`` ± 50%, nginx-style bounded
      jitter), or ``"periodic"`` (a fixed-rate ticker);
    * ``mean_gap_cycles`` — mean inter-arrival time in virtual cycles;
    * ``events_per_request`` — how many consecutive trace events one
      request consumes;
    * ``max_requests`` — optional cap; ``None`` serves requests until
      the trace is exhausted.
    """

    kind: str = "poisson"
    mean_gap_cycles: int = 200_000
    events_per_request: int = 64
    max_requests: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise WorkloadError(
                f"unknown request profile kind {self.kind!r} "
                f"(choose from {', '.join(_KINDS)})"
            )
        if self.mean_gap_cycles <= 0:
            raise WorkloadError(
                f"mean_gap_cycles must be positive, got {self.mean_gap_cycles}"
            )
        if self.events_per_request <= 0:
            raise WorkloadError(
                f"events_per_request must be positive, got "
                f"{self.events_per_request}"
            )
        if self.max_requests is not None and self.max_requests <= 0:
            raise WorkloadError(
                f"max_requests must be positive or None, got {self.max_requests}"
            )


def memcached_profile(
    mean_gap_cycles: int = 200_000, *, events_per_request: int = 32
) -> RequestProfile:
    """Memcached-style profile: Poisson arrivals, small requests."""
    return RequestProfile(
        kind="poisson",
        mean_gap_cycles=mean_gap_cycles,
        events_per_request=events_per_request,
    )


def nginx_profile(
    mean_gap_cycles: int = 500_000, *, events_per_request: int = 128
) -> RequestProfile:
    """Nginx-style profile: bounded-jitter arrivals, larger requests."""
    return RequestProfile(
        kind="uniform",
        mean_gap_cycles=mean_gap_cycles,
        events_per_request=events_per_request,
    )


def request_gaps(
    profile: RequestProfile, *, seed: int, salt: int = 0
) -> Iterator[int]:
    """Yield successive inter-arrival gaps (cycles), deterministically.

    The first gap separates the tenant's start from request 1's
    arrival — request 0 arrives the moment the tenant starts serving.
    Gaps are at least one cycle so arrivals strictly advance.
    """
    rng = phase_rng(seed, salt, "fleet-req")
    mean = profile.mean_gap_cycles
    if profile.kind == "poisson":
        rate = 1.0 / mean
        while True:
            yield max(1, int(rng.expovariate(rate)))
    elif profile.kind == "uniform":
        lo = max(1, mean // 2)
        hi = mean + mean // 2
        while True:
            yield rng.randint(lo, hi)
    else:  # periodic
        while True:
            yield mean
