"""The SGX driver: enclave page-fault handling plus preloading hooks.

This is the simulation counterpart of the paper's modified Intel Linux
SGX driver.  Physical resources (EPC, CLOCK evictor, load channel,
service-thread schedule) live on a
:class:`~repro.enclave.platform.SharedPlatform` — private to this
driver in the common single-enclave case, shared between drivers in
the Section 5.6 multi-enclave configuration.  The driver exposes the
two entry points the engine drives:

* :meth:`SgxDriver.access` — one enclave page touch.  Resident pages
  just set their accessed bit; non-resident pages take the full demand
  fault path (AEX → wait on the non-preemptible channel → ELDU →
  ERESUME) with the DFP hooks of Section 4.1/4.2 applied.
* :meth:`SgxDriver.sip_prefetch` — one SIP preloading notification
  (``BIT_MAP_CHECK`` + ``page_loadin_function``), Section 4.3: when the
  page is absent it is loaded synchronously *without* leaving the
  enclave, so the AEX/ERESUME pair is saved at the cost of the
  notification round trip.

Abort semantics (Section 4.1's in-stream abort): each predicted burst
is queued under its own tag.  A demand fault that lands on a page still
*queued* in some burst is proof the preloader fell behind or predicted
wrong — that burst's remainder is dropped and the page is demand
loaded.  Faults unrelated to any queued burst leave other streams'
bursts alone; with up to ``stream_list_length`` concurrent streams,
one stream's miss must not cancel another stream's correct work.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import SimConfig
from repro.core.dfp import DfpEngine
from repro.enclave.enclave import Enclave
from repro.enclave.events import EventKind, TimelineEvent
from repro.enclave.epc import PAGE_ACCESSED, PAGE_PRELOADED
from repro.enclave.loader import LoadKind
from repro.enclave.page_table import SharedBitmap
from repro.enclave.platform import SharedPlatform
from repro.enclave.sanitizer import SimSanitizer
from repro.enclave.stats import RunStats
from repro.errors import SimulationError
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.paging import PagingProfiler
from repro.obs.trace import DEFAULT_EVENT_CAPACITY, RingBufferSink, TraceSink

__all__ = ["SgxDriver"]


class SgxDriver:
    """Untrusted-OS side of the simulated SGX stack, for one enclave."""

    def __init__(
        self,
        config: SimConfig,
        enclave: Enclave,
        *,
        dfp: Optional[DfpEngine] = None,
        record_events: bool = False,
        platform: Optional[SharedPlatform] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[TraceSink] = None,
        event_capacity: Optional[int] = None,
        profiler: Optional[PagingProfiler] = None,
    ) -> None:
        self._config = config
        self._cost = config.cost
        self._enclave = enclave
        # ELRANGE bounds, hoisted for the per-access fast path.
        self._base_page = enclave.base_page
        self._limit_page = enclave.base_page + enclave.elrange_pages
        self._dfp = dfp
        self._platform = platform if platform is not None else SharedPlatform(config)
        self._platform.register(self)
        self.epc = self._platform.epc
        # Per-page status byte table (registration above guaranteed it
        # spans this enclave's ELRANGE, so after the bounds check the
        # hot paths index it unconditionally).
        self._status_table = self.epc.status_table
        self.evictor = self._platform.evictor
        self.channel = self._platform.channel
        self.bitmap = SharedBitmap(
            self.epc, enclave.elrange_pages, base_page=enclave.base_page
        )
        self.stats = RunStats()
        # Event recording goes through trace sinks (repro.obs.trace):
        # ``record_events`` keeps a bounded ring buffer for .events,
        # and an external ``tracer`` sink (JSONL stream, fan-out, ...)
        # receives every event as it happens.
        self._ring: Optional[RingBufferSink] = (
            RingBufferSink(
                event_capacity if event_capacity is not None else DEFAULT_EVENT_CAPACITY
            )
            if record_events
            else None
        )
        self._sinks: List[TraceSink] = []
        if self._ring is not None:
            self._sinks.append(self._ring)
        if tracer is not None:
            self._sinks.append(tracer)
        self._register_metrics(metrics if metrics is not None else NULL_REGISTRY)
        # Paging-decision ledger (repro.obs.paging): strictly passive,
        # reads state it is handed and writes only profiler-private
        # structures.  ``_profiling`` is hoisted so the disabled hot
        # path pays a single falsy attribute test per hook site.
        self._profiler = profiler
        self._profiling = profiler is not None
        if profiler is not None:
            profiler.ledger_bind(enclave.base_page, enclave.elrange_pages)
        self._last_now = 0
        # Application-clock high-water mark, updated only at the entry
        # and exit of the application-visible calls — the points where
        # the time buckets provably equal the clock.  The sanitizer's
        # per-tick accounting check compares against this (a scan fired
        # from another enclave's poll, or from finish(), runs at a time
        # this driver's buckets never saw).
        self._clock_hw = 0
        #: Runtime invariant checker; None unless ``config.sanitize``.
        self.sanitizer: Optional[SimSanitizer] = (
            SimSanitizer(self.epc, self.channel, label=enclave.name)
            if config.sanitize
            else None
        )
        # "Is anything watching?" — sinks and the sanitizer are fixed
        # at construction, so the fault path guards its ``_emit`` calls
        # with one attribute test instead of paying the call.
        self._observing = bool(self._sinks) or self.sanitizer is not None

    @property
    def enclave(self) -> Enclave:
        """The enclave this driver serves."""
        return self._enclave

    @property
    def platform(self) -> SharedPlatform:
        """The (possibly shared) physical platform."""
        return self._platform

    @property
    def events(self) -> List[TimelineEvent]:
        """Recorded timeline events (most recent ``event_capacity``)."""
        return self._ring.events if self._ring is not None else []

    @property
    def events_dropped(self) -> int:
        """Events the bounded recorder had to evict (0 with room)."""
        return self._ring.dropped if self._ring is not None else 0

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _register_metrics(self, metrics: MetricsRegistry) -> None:
        """Publish this driver's layers into ``metrics``.

        Quantities another layer already counts (``RunStats`` fields,
        EPC occupancy, channel counters) are exposed as callback
        gauges — sampled at dump time, zero hot-path cost, reconciled
        with their source by construction.  Quantities no other layer
        tracks (aborts by cause, wait-latency distributions, scan
        credits, recorder drops) get true counters and histograms.
        With the shared NULL registry all of these are no-op
        singletons, so the disabled path costs one dead method call.
        """
        self._metrics = metrics
        stats = self.stats
        time = stats.time
        if metrics.enabled:
            for name, fn in (
                ("app.accesses", lambda: stats.accesses),
                ("app.epc_hits", lambda: stats.epc_hits),
                ("fault.count", lambda: stats.faults),
                ("fault.absorbed_by_inflight", lambda: stats.faults_absorbed_by_inflight),
                ("preload.hits", lambda: stats.preload_hits),
                ("preload.enqueued", lambda: stats.preloads_enqueued),
                ("preload.completed", lambda: stats.preloads_completed),
                ("preload.aborted", lambda: stats.preloads_aborted),
                ("preload.accessed", lambda: stats.preloads_accessed),
                ("preload.redundant", lambda: stats.preloads_redundant),
                ("preload.evicted_unused", lambda: stats.preloads_evicted_unused),
                ("epc.evictions", lambda: stats.evictions),
                ("epc.resident_pages", lambda: self.epc.resident_count),
                ("epc.capacity_pages", lambda: self.epc.capacity),
                ("sip.checks", lambda: stats.sip_checks),
                ("sip.check_hits", lambda: stats.sip_check_hits),
                ("sip.loads", lambda: stats.sip_loads),
                ("valve.stops", lambda: stats.valve_stops),
                ("scan.count", lambda: stats.scans),
                ("time.compute_cycles", lambda: time.compute),
                ("time.aex_cycles", lambda: time.aex),
                ("time.eresume_cycles", lambda: time.eresume),
                ("time.fault_wait_cycles", lambda: time.fault_wait),
                ("time.sip_check_cycles", lambda: time.sip_check),
                ("time.sip_wait_cycles", lambda: time.sip_wait),
                ("time.total_cycles", lambda: time.total),
                ("time.overhead_cycles", lambda: time.overhead),
                ("trace.events_dropped", lambda: self.events_dropped),
            ):
                metrics.gauge(name, fn=fn)
        self._m_abort_instream = metrics.counter(
            "abort.in_stream", "in-stream aborts taken on a queued-burst fault"
        )
        self._m_abort_instream_pages = metrics.counter(
            "abort.in_stream_pages", "queued pages dropped by in-stream aborts"
        )
        self._m_abort_valve = metrics.counter(
            "abort.valve", "safety-valve aborts (preload thread stops)"
        )
        self._m_abort_valve_pages = metrics.counter(
            "abort.valve_pages", "queued pages dropped when the valve fired"
        )
        self._m_scan_credited = metrics.counter(
            "scan.credited_pages", "preloaded pages credited as accessed by scans"
        )
        self._m_fault_wait_hist = metrics.histogram(
            "fault.wait_hist", "per-fault channel wait, virtual cycles"
        )
        self._m_sip_wait_hist = metrics.histogram(
            "sip.wait_hist", "per-notification synchronous wait, virtual cycles"
        )

    def _emit(self, kind: EventKind, start: int, end: int, page: int = -1) -> None:
        if self._sinks:
            event = TimelineEvent(kind, start, end, page)
            for sink in self._sinks:
                sink.emit(event)
        if self.sanitizer is not None:
            self.sanitizer.record_event(kind, start, end, page)

    def _note_eviction(self, state) -> None:
        """Account an eviction of one of *this* enclave's pages."""
        self.stats.evictions += 1
        if state.preloaded:
            if state.accessed:
                # Correct preload caught at eviction before a scan
                # could credit it.
                self.stats.preloads_accessed += 1
                if self._dfp is not None:
                    self._dfp.credit_accessed(1)
            else:
                self.stats.preloads_evicted_unused += 1

    def _apply_load(self, page: int, kind: LoadKind, finish: int) -> bool:
        """Land one page of this enclave in the EPC at ``finish``.

        Chooses a CLOCK victim when the EPC is full — possibly another
        enclave's page, whose owner gets the eviction bookkeeping.
        Returns True when a victim was evicted, so the channel can
        charge the EWB housekeeping time.
        """
        evicted = False
        epc = self.epc
        if self._status_table[page]:
            # Already resident (the table spans this enclave's ELRANGE,
            # and loads are routed to the owning driver).
            if kind is LoadKind.PRELOAD:
                self.stats.preloads_redundant += 1
                if self.sanitizer is not None:
                    self.sanitizer.check_redundant_preload(page, finish)
                if self._profiling:
                    self._profiler.ledger_redundant(page, finish)
            return evicted
        frames = self._platform.frames
        if frames is not None:
            # Per-tenant frame policy (fleet scenarios): the manager
            # decides when a frame must be freed and from whose
            # partition the CLOCK victim comes.  A quota shrink can
            # leave this tenant several pages over, so this loops until
            # the insert is within policy, not just until a frame is
            # free.
            while frames.needs_victim(self):
                victim = frames.select_victim(self)
                state = epc.evict(victim)
                frames.note_evict(victim)
                evicted = True
                victim_owner = self._platform.owner_of(victim) or self
                victim_owner._note_eviction(state)
            epc.insert(page, preloaded=(kind is LoadKind.PRELOAD))
            frames.note_insert(self, page)
            if self.sanitizer is not None:
                self.sanitizer.check_load(page, kind, finish)
            if kind is LoadKind.PRELOAD:
                self.stats.preloads_completed += 1
                if self._dfp is not None:
                    self._dfp.note_preload_completed()
                if self._observing:
                    self._emit(
                        EventKind.PRELOAD,
                        finish - self.channel.load_cycles,
                        finish,
                        page,
                    )
            return evicted
        if epc.is_full:
            evictor = self.evictor
            chances_before = evictor.second_chances
            victim = evictor.select_victim()
            state = epc.evict(victim)
            evictor.note_evict(victim)
            evicted = True
            platform = self._platform
            if len(platform._owners) == 1:
                victim_owner = self
            else:
                victim_owner = platform.owner_of(victim) or self
            victim_owner._note_eviction(state)
            if victim_owner._profiling:
                victim_owner._profiler.ledger_evict(
                    victim,
                    finish,
                    accessed=state.accessed,
                    preloaded=state.preloaded,
                    second_chances=self.evictor.second_chances - chances_before,
                    for_page=page,
                    for_kind=kind.value,
                )
        epc.insert(page, preloaded=(kind is LoadKind.PRELOAD))
        self.evictor.note_insert(page)
        if self._profiling:
            self._profiler.ledger_insert(page, kind.value, finish)
        if self.sanitizer is not None:
            self.sanitizer.check_load(page, kind, finish)
        if kind is LoadKind.PRELOAD:
            self.stats.preloads_completed += 1
            if self._dfp is not None:
                self._dfp.note_preload_completed()
            if self._observing:
                self._emit(
                    EventKind.PRELOAD,
                    finish - self.channel.load_cycles,
                    finish,
                    page,
                )
        return evicted

    def _queued_pages_of_tag(self, tag: int) -> List[int]:
        """Snapshot of the queued pages belonging to one burst."""
        channel = self.channel
        return [p for p in channel.queued_pages if channel.queued_tag(p) == tag]

    def _after_scan(self, now: int, credited: int) -> None:
        """Platform hook: the global service-thread scan just ran."""
        self.stats.scans += 1
        if self._observing:
            self._emit(EventKind.SCAN, now, now)
        if self._profiling:
            self._profiler.ledger_scan(now, credited)
        if credited:
            self.stats.preloads_accessed += credited
            self._m_scan_credited.inc(credited)
        if self._dfp is not None:
            if credited:
                self._dfp.credit_accessed(credited)
            if self._dfp.check_valve():
                self.stats.valve_stops += 1
                base = self._enclave.base_page
                limit = base + self._enclave.elrange_pages
                if self.sanitizer is not None or self._profiling:
                    doomed = [
                        p for p in self.channel.queued_pages if base <= p < limit
                    ]
                    if self.sanitizer is not None:
                        self.sanitizer.check_abort(doomed, now)
                    if self._profiling:
                        self._profiler.ledger_abort(doomed, now, "valve")
                dropped = self.channel.abort_pages_in_range(base, limit, now)
                self._m_abort_valve.inc()
                self._m_abort_valve_pages.inc(dropped)
                if dropped:
                    self._dfp.note_aborted(dropped)
        if self.sanitizer is not None:
            # Per-tick cross-checks: valve-counter sanity and the
            # bucket-sum-equals-clock accounting identity (the engine
            # checks the latter only once, at run end).
            if self._dfp is not None:
                self.sanitizer.check_counters(
                    self._dfp.preload_counter, self._dfp.acc_preload_counter, now
                )
            else:
                self.sanitizer.check_counters(
                    self.stats.preloads_completed, self.stats.preloads_accessed, now
                )
            self.sanitizer.check_tick(self.stats, self._clock_hw, now)

    def poll(self, now: int) -> None:
        """Advance background machinery (channel + scans) to ``now``."""
        if now < self._last_now:
            raise SimulationError(
                f"time went backwards: {now} < {self._last_now}"
            )
        self._last_now = now
        self._platform.poll(now)

    def next_wakeup(self) -> int:
        """The platform's event horizon (next scan or channel landing).

        Strictly before this time no background machinery can run: a
        resident page stays resident, its bits change only through
        this driver's own touches, and no counters move.  The batched
        engine uses this to retire whole runs of resident accesses
        without per-event polling.
        """
        return self._platform.next_wakeup()

    def retire_run(
        self,
        count: int,
        preload_hits: int,
        now: int,
        sip_hits: int = 0,
    ) -> None:
        """Account a run of ``count`` resident touches ending at ``now``.

        The bulk counterpart of the resident fast path in
        :meth:`access`: every event in the run found its page resident
        (one access, one EPC hit each) and ``preload_hits`` of them
        were the first touch of a still-uncredited preloaded page.
        ``sip_hits`` of them were additionally SIP-instrumented — the
        engine already charged the ``BIT_MAP_CHECK`` cycles to the
        clock and the sip_check time bucket; this books the matching
        check/hit counters and bitmap read counts (the bitmap check of
        a resident page succeeds by definition inside the horizon).
        The engine has already set the accessed/preloaded bits and
        advanced its compute bucket; this updates the counters and the
        driver's clock bookkeeping in one step.  This is the reference
        implementation of the retirement contract: the batched
        engine's hot loop inlines the counter updates (and skips the
        clock stamps — they only feed the monotonic-time guard and the
        sanitizer, neither of which a bulk-retired run can trip), so
        any drift between the two is a bug.  Retirement applies only
        to unobserved runs — with a sanitizer, tracer, profiler or
        metrics registry attached the engine keeps the scalar path so
        per-event hooks keep firing.
        """
        stats = self.stats
        stats.accesses += count
        stats.epc_hits += count
        stats.preload_hits += preload_hits
        if sip_hits:
            stats.sip_checks += sip_hits
            stats.sip_check_hits += sip_hits
            self.bitmap.reads += sip_hits
        self._last_now = now
        self._clock_hw = now

    def _filter_burst(self, burst: List[int]) -> List[int]:
        """Drop burst pages that need no load: outside the ELRANGE,
        already resident, in flight, or already queued.

        Runs on every fault with a prediction, so the ELRANGE bounds,
        the residency table and the channel lookups are hoisted out of
        the per-page loop instead of being re-read per burst page.
        """
        base = self._base_page
        limit = self._limit_page
        resident = self.epc.resident_map
        channel = self.channel
        current = channel.current_page
        queued = channel.is_queued
        return [
            page
            for page in burst
            if base <= page < limit
            and page not in resident
            and page != current
            and not queued(page)
        ]

    def _touch(self, page: int, *, hit: bool) -> None:
        """Set the accessed bit; account preload hits on first touch."""
        status = self._status_table
        code = status[page]
        if not code:
            self.epc.state_of(page)  # raises EpcError: not resident
        if not code & PAGE_ACCESSED:
            if code & PAGE_PRELOADED:
                self.stats.preload_hits += 1
            status[page] = code | PAGE_ACCESSED
        if hit:
            self.stats.epc_hits += 1

    # ------------------------------------------------------------------
    # Application-visible entry points
    # ------------------------------------------------------------------

    def access(self, page: int, now: int) -> int:
        """Simulate one enclave page touch at ``now``; return end time."""
        if page < self._base_page or page >= self._limit_page:
            raise SimulationError(
                f"access to page {page} outside ELRANGE "
                f"[{self._base_page}, {self._limit_page})"
            )
        self._clock_hw = now
        # Inlined poll(): this runs once per simulated event, and the
        # background machinery must still advance *before* residency is
        # read — a completion landing at or before ``now`` can insert
        # this very page (or evict it as a CLOCK victim).
        if now < self._last_now:
            raise SimulationError(
                f"time went backwards: {now} < {self._last_now}"
            )
        self._last_now = now
        self._platform.poll(now)
        stats = self.stats
        stats.accesses += 1
        status = self._status_table
        code = status[page]
        if code:
            # Resident fast path: one status-byte probe, set the A bit,
            # done — no fault machinery, no event emission (a plain EPC
            # hit has no timeline extent).
            if not code & PAGE_ACCESSED:
                if code & PAGE_PRELOADED:
                    stats.preload_hits += 1
                status[page] = code | PAGE_ACCESSED
            stats.epc_hits += 1
            if self._profiling:
                self._profiler.ledger_hit(page, now)
            return now

        # Demand fault: AEX out of the enclave.
        cost = self._cost
        stats.faults += 1
        t = now + cost.aex_cycles
        stats.time.aex += cost.aex_cycles
        observing = self._observing
        if observing:
            self._emit(EventKind.AEX, now, t)
        self.channel.advance_to(t)

        if self.epc.is_resident(page):
            # A preload landed during the AEX itself.
            stats.faults_absorbed_by_inflight += 1
            if self._profiling:
                self._profiler.ledger_fault(page, t, "absorbed")
        elif self.channel.current_page == page:
            # The page is mid-load on the non-preemptible channel:
            # ride the in-flight preload to completion.
            finish = self.channel.wait_for_current(t)
            stats.faults_absorbed_by_inflight += 1
            stats.time.fault_wait += finish - t
            self._m_fault_wait_hist.observe(finish - t)
            if observing:
                self._emit(EventKind.FAULT_WAIT, t, finish, page)
            t = finish
            if self._profiling:
                self._profiler.ledger_fault(page, t, "absorbed")
        else:
            burst_tag = self.channel.queued_tag(page)
            if burst_tag is not None:
                # Fault inside a queued burst: the preloader fell
                # behind — abort that burst's remainder (in-stream
                # abort, Section 4.1).
                if self.sanitizer is not None or self._profiling:
                    doomed = self._queued_pages_of_tag(burst_tag)
                    if self.sanitizer is not None:
                        self.sanitizer.check_abort(doomed, t)
                    if self._profiling:
                        self._profiler.ledger_abort(
                            doomed, t, "in_stream", trigger=page
                        )
                dropped = self.channel.abort_tag(burst_tag, t)
                self._m_abort_instream.inc()
                self._m_abort_instream_pages.inc(dropped)
                if self._dfp is not None and dropped:
                    self._dfp.note_aborted(dropped)
                if observing:
                    self._emit(EventKind.ABORT, t, t, page)
            finish = self.channel.load_sync(page, LoadKind.DEMAND, t)
            stats.time.fault_wait += finish - t
            self._m_fault_wait_hist.observe(finish - t)
            if observing:
                self._emit(
                    EventKind.DEMAND_LOAD,
                    finish - self.channel.load_cycles,
                    finish,
                    page,
                )
            t = finish
            if self._profiling:
                self._profiler.ledger_fault(
                    page,
                    t,
                    "queued" if burst_tag is not None else "miss",
                    preloader_active=(
                        self._dfp is not None and self._dfp.active
                    ),
                )

        # The OS observed the fault: feed the predictor and schedule
        # the predicted burst (it starts loading during the ERESUME).
        if self._dfp is not None:
            burst = self._dfp.on_fault(page)
            if burst:
                pages = self._filter_burst(burst)
                if pages:
                    if self.sanitizer is not None:
                        self.sanitizer.check_enqueue(pages, t)
                    self.channel.enqueue_preloads(pages, t)
                    if self._profiling:
                        self._profiler.ledger_enqueue(pages, t)

        end = t + cost.eresume_cycles
        stats.time.eresume += cost.eresume_cycles
        if observing:
            self._emit(EventKind.ERESUME, t, end)
        self._touch(page, hit=False)
        self._clock_hw = end
        return end

    def sip_prefetch(self, page: int, now: int) -> int:
        """Simulate one SIP preloading notification at ``now``.

        The instrumented code checks the shared residency bitmap; when
        the page is absent it sends a load request to the kernel thread
        and waits inside the enclave for completion.  Returns the time
        at which the application continues (the following real access
        will then hit).
        """
        if not self._enclave.contains_page(page):
            raise SimulationError(
                f"SIP notification for page {page} outside ELRANGE"
            )
        self._clock_hw = now
        self.poll(now)
        cost = self._cost
        stats = self.stats
        stats.sip_checks += 1
        t = now + cost.bitmap_check_cycles
        stats.time.sip_check += cost.bitmap_check_cycles
        if self._observing:
            self._emit(EventKind.SIP_CHECK, now, t, page)
        self.channel.advance_to(t)
        if self.bitmap.check(page):
            stats.sip_check_hits += 1
            self._clock_hw = t
            return t
        if self.channel.current_page == page:
            finish = self.channel.wait_for_current(t)
            stats.time.sip_wait += finish - t
            self._m_sip_wait_hist.observe(finish - t)
            if self._observing:
                self._emit(EventKind.SIP_LOAD, t, finish, page)
            self._clock_hw = finish
            return finish
        stats.sip_loads += 1
        finish = self.channel.load_sync(page, LoadKind.SIP, t)
        finish += cost.notification_cycles
        stats.time.sip_wait += finish - t
        self._m_sip_wait_hist.observe(finish - t)
        if self._observing:
            self._emit(EventKind.SIP_LOAD, t, finish, page)
        self._clock_hw = finish
        return finish

    def account_idle(self, cycles: int, now: int) -> None:
        """Charge application-thread idle time ending at ``now``.

        A fleet tenant spends real virtual time outside the enclave —
        waiting for the next open-loop request, for an admission slot,
        or for enclave spin-up.  The fleet loop charges those cycles
        here so the ``time.total == clock`` identity the sanitizer and
        the end-of-run accounting check enforce keeps holding with no
        special cases.  ``now`` is the clock after the idle interval;
        the sanitizer's notion of hardware time advances with it even
        when ``cycles`` is zero (e.g. a tenant that departs without
        ever touching a page).
        """
        if cycles < 0:
            raise SimulationError(f"idle interval cannot be negative: {cycles}")
        if cycles:
            self.stats.time.idle += cycles
        self._clock_hw = now

    def finish(self, now: int) -> None:
        """Drain background work at the end of a run."""
        self.poll(now)
        # Propagate channel counters into the run stats.  On a shared
        # platform the channel counters are global; per-driver counts
        # are kept in the DFP engine instead.
        if self._dfp is not None and len(self._platform.drivers) > 1:
            self.stats.preloads_enqueued = (
                self._dfp.preload_counter + self._dfp.aborted_preloads
            )
            self.stats.preloads_aborted = self._dfp.aborted_preloads
        else:
            self.stats.preloads_enqueued = self.channel.preloads_enqueued
            self.stats.preloads_aborted = self.channel.preloads_aborted
        if self._profiling:
            self._profiler.ledger_finish(now)
