"""OS ↔ enclave shared residency state.

Section 4.3 of the paper: SIP needs to know, from *inside* the enclave,
whether a page is already in the EPC, so the instrumented code can skip
the preload notification for resident pages.  The prototype shares a
bitmap array between the enclave and the OS — one bit per ELRANGE page,
created at enclave establishment and updated by the OS only when a page
is loaded or evicted.  The bitmap is explicitly *not* secret: page
residency is always visible to the untrusted OS anyway.

:class:`SharedBitmap` reproduces that object.  It is deliberately a
separate type from :class:`repro.enclave.epc.Epc` even though it is
backed by the same residency information: the enclave-side code (the
SIP runtime) is only ever handed the bitmap, never the EPC itself,
mirroring the trust boundary in the real system.
"""

from __future__ import annotations

from repro.enclave.epc import Epc
from repro.errors import EpcError

__all__ = ["SharedBitmap"]


class SharedBitmap:
    """One-bit-per-page residency view shared with the enclave.

    In the prototype the OS writes this bitmap on every EPC load and
    eviction; here the "writes" are implicit because the view is backed
    directly by the EPC residency set, which is updated at exactly
    those two points.  The behaviour observable to the enclave code is
    identical; the class keeps a read counter so experiments can verify
    the cost accounting of ``BIT_MAP_CHECK``.
    """

    def __init__(self, epc: Epc, elrange_pages: int, *, base_page: int = 0) -> None:
        if elrange_pages <= 0:
            raise EpcError(
                f"ELRANGE must span at least one page, got {elrange_pages}"
            )
        if base_page < 0:
            raise EpcError(f"base_page must be non-negative, got {base_page}")
        self._epc = epc
        self._base_page = base_page
        self._elrange_pages = elrange_pages
        #: Number of BIT_MAP_CHECK reads performed (stats only).
        self.reads = 0

    @property
    def elrange_pages(self) -> int:
        """Number of pages the bitmap covers (one bit each)."""
        return self._elrange_pages

    @property
    def size_bytes(self) -> int:
        """Size of the bitmap array in bytes (one bit per page)."""
        return (self._elrange_pages + 7) // 8

    def check(self, page: int) -> bool:
        """``BIT_MAP_CHECK``: True if ``page`` is currently in the EPC.

        Raises :class:`EpcError` for pages outside the ELRANGE — the
        instrumented code can only ever ask about enclave pages.
        """
        if not self._base_page <= page < self._base_page + self._elrange_pages:
            raise EpcError(
                f"page {page} outside ELRANGE of {self._elrange_pages} pages "
                f"starting at {self._base_page}"
            )
        self.reads += 1
        return self._epc.is_resident(page)
