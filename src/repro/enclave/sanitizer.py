"""Opt-in runtime sanitizer for the enclave simulation.

The engine already proves one invariant at run end (the per-bucket time
breakdown reconstructs the clock); everything else — EPC occupancy,
channel/residency exclusion, counter monotonicity — is enforced only
locally by each component.  Accounting drift *between* components
(exactly the failure mode that invalidates paging results; see the
fault-pattern and EDMM literature cited in DESIGN.md) would surface
only as silently wrong numbers.

:class:`SimSanitizer` closes that gap.  When a run is built with
``SimConfig(sanitize=True)`` (CLI: ``--sanitize``), the driver invokes
the sanitizer at every structural event and the sanitizer asserts:

* the EPC resident-page count never exceeds capacity;
* no page is simultaneously resident and on the load channel
  (queued or in flight);
* ``AccPreloadCounter ≤ PreloadCounter``, and both are monotone
  non-decreasing;
* the in-stream abort only ever cancels *queued* (never
  already-loaded) pages;
* at every service-thread tick — not only at run end — the per-bucket
  cycle accounting sums to the application clock.

The sanitizer is read-only: it never changes timing or stats, so a
sanitized run produces bit-identical :class:`~repro.sim.results.RunResult`
numbers (the integration suite asserts this).  A violation raises
:class:`~repro.errors.SanitizerError` carrying the tail of the event
trace (a bounded ring buffer, recorded even when full event recording
is off) so the offending sequence is visible in the failure itself.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional, TYPE_CHECKING

from repro.enclave.events import EventKind
from repro.errors import SanitizerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.enclave.epc import Epc
    from repro.enclave.loader import LoadChannel, LoadKind
    from repro.enclave.stats import RunStats

__all__ = ["SimSanitizer", "TRACE_TAIL_LENGTH"]

#: How many trailing trace entries a :class:`SanitizerError` carries.
TRACE_TAIL_LENGTH = 24


class SimSanitizer:
    """Cross-component invariant checker for one driver's run."""

    def __init__(
        self,
        epc: "Epc",
        channel: "LoadChannel",
        *,
        label: str = "",
        trace_length: int = TRACE_TAIL_LENGTH,
    ) -> None:
        self._epc = epc
        self._channel = channel
        self._label = label
        self._trace: Deque[str] = deque(maxlen=trace_length)
        # High-water marks for the monotonicity checks.
        self._last_preload_counter = 0
        self._last_acc_counter = 0
        #: Number of individual assertions evaluated (overhead metric
        #: and a cheap way for tests to prove the sanitizer was live).
        self.checks = 0
        #: Number of violations raised (0 on a clean run).
        self.violations = 0

    # ------------------------------------------------------------------
    # Trace recording
    # ------------------------------------------------------------------

    @property
    def trace_tail(self) -> "tuple[str, ...]":
        """Snapshot of the recorded event tail (oldest first)."""
        return tuple(self._trace)

    def record_event(
        self, kind: EventKind, start: int, end: int, page: int = -1
    ) -> None:
        """Record one driver timeline event into the ring buffer."""
        suffix = f" page={page}" if page >= 0 else ""
        self._trace.append(f"[{start}..{end}] {kind.value}{suffix}")

    def note(self, entry: str) -> None:
        """Record a sanitizer-internal trace entry (scans, enqueues)."""
        self._trace.append(entry)

    def _fail(self, message: str) -> None:
        self.violations += 1
        if self._label:
            message = f"{self._label}: {message}"
        raise SanitizerError(message, trace=self._trace)

    def _check(self, ok: bool, message: str) -> None:
        self.checks += 1
        if not ok:
            self._fail(message)

    # ------------------------------------------------------------------
    # Hooks (driven by SgxDriver / the engine)
    # ------------------------------------------------------------------

    def check_enqueue(self, pages: Iterable[int], now: int) -> None:
        """A predicted burst is about to be queued for preloading."""
        pages = tuple(pages)
        self.note(f"[{now}] enqueue burst {list(pages)}")
        for page in pages:
            self._check(
                not self._epc.is_resident(page),
                f"page {page} enqueued for preload at t={now} while already "
                "resident in the EPC (burst filtering is broken)",
            )
            self._check(
                self._channel.current_page != page,
                f"page {page} enqueued for preload at t={now} while already "
                "in flight on the load channel",
            )
            self._check(
                not self._channel.is_queued(page),
                f"page {page} enqueued for preload at t={now} while already "
                "queued on the load channel",
            )

    def check_load(self, page: int, kind: "LoadKind", finish: int) -> None:
        """One page load just landed in the EPC."""
        self._check(
            self._epc.resident_count <= self._epc.capacity,
            f"EPC over-committed after loading page {page} at t={finish}: "
            f"{self._epc.resident_count} resident pages > capacity "
            f"{self._epc.capacity}",
        )
        self._check(
            self._epc.is_resident(page),
            f"{kind.value} load of page {page} completed at t={finish} but "
            "the page is not resident",
        )
        self._check(
            not self._channel.is_queued(page),
            f"page {page} is resident and still queued on the load channel "
            f"at t={finish}",
        )

    def check_redundant_preload(self, page: int, finish: int) -> None:
        """A speculative load landed on an already-resident page."""
        self._fail(
            f"preload of page {page} completed at t={finish} for a page "
            "that is already resident — it was enqueued without filtering "
            "or a demand load raced past the in-stream abort"
        )

    def check_abort(self, pages: Iterable[int], now: int) -> None:
        """Queued preloads are about to be dropped by an abort."""
        pages = tuple(pages)
        self.note(f"[{now}] abort drops {list(pages)}")
        for page in pages:
            self._check(
                not self._epc.is_resident(page),
                f"abort at t={now} would cancel page {page}, which is "
                "already loaded into the EPC; aborts may only drop queued "
                "(not-yet-started) preloads",
            )

    def check_counters(self, preload_counter: int, acc_counter: int, now: int) -> None:
        """The service-thread scan just updated the valve counters."""
        self.note(
            f"[{now}] scan: PreloadCounter={preload_counter} "
            f"AccPreloadCounter={acc_counter}"
        )
        self._check(
            preload_counter >= self._last_preload_counter,
            f"PreloadCounter decreased at t={now}: "
            f"{self._last_preload_counter} -> {preload_counter}",
        )
        self._check(
            acc_counter >= self._last_acc_counter,
            f"AccPreloadCounter decreased at t={now}: "
            f"{self._last_acc_counter} -> {acc_counter}",
        )
        self._check(
            acc_counter <= preload_counter,
            f"AccPreloadCounter {acc_counter} exceeds PreloadCounter "
            f"{preload_counter} at t={now}: more preloads credited as "
            "accessed than were ever completed",
        )
        self._last_preload_counter = preload_counter
        self._last_acc_counter = acc_counter

    def check_tick(self, stats: "RunStats", clock: int, now: int) -> None:
        """Per-tick accounting: buckets must reconstruct the clock.

        ``clock`` is the driver's application-time high-water mark at
        the tick (scan time ``now`` may lag it; the buckets are only
        mutated at access boundaries, where they equal the clock).
        """
        total = stats.time.total
        self._check(
            total == clock,
            f"cycle accounting drifted at scan t={now}: buckets sum to "
            f"{total} but the application clock reads {clock} "
            f"(delta {total - clock:+d})",
        )

    def check_final(self, stats: "RunStats", clock: int) -> None:
        """End-of-run sweep once the driver has drained."""
        self.note(f"[{clock}] run end")
        self.check_tick(stats, clock, clock)
        self._check(
            self._epc.resident_count <= self._epc.capacity,
            f"EPC over-committed at run end: {self._epc.resident_count} "
            f"resident pages > capacity {self._epc.capacity}",
        )
        self._check(
            stats.preloads_aborted <= stats.preloads_enqueued,
            f"more preloads aborted ({stats.preloads_aborted}) than were "
            f"ever enqueued ({stats.preloads_enqueued})",
        )
