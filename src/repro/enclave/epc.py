"""The Enclave Page Cache (EPC).

The EPC is the contiguous physical memory region SGX reserves for
enclave pages.  It is managed by the (untrusted) OS at 4 KiB page
granularity; on the paper's platform 128 MB are reserved of which
~96 MB are usable by applications.

This module models the EPC as a fixed pool of frames plus, for every
*resident* virtual page, the two bits the paper's mechanisms rely on:

* the **accessed** bit — set by the "hardware" on every touch, cleared
  periodically by the driver's CLOCK service thread; CLOCK replacement
  and the DFP preload accounting both read it;
* the **preloaded** bit — set when a page is brought in by the DFP
  preload thread rather than by a demand fault, cleared when the
  service-thread scan credits the page as a correct preload.  This is
  the per-page state behind the paper's ``PreloadedPageList``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.errors import EpcError

__all__ = ["Epc", "EpcPageState"]


@dataclass
class EpcPageState:
    """Per-resident-page metadata.

    ``accessed`` mirrors the page-table A bit; ``preloaded`` marks pages
    brought in speculatively and not yet credited by the scan thread.
    """

    accessed: bool = False
    preloaded: bool = False


class Epc:
    """A fixed pool of EPC frames with residency tracking.

    The class enforces the physical constraint the whole paper is
    about: at most :attr:`capacity` pages can be resident at once, and
    making room for a new page requires an explicit eviction (the OS's
    EWB path), which this class *checks* but does not *choose* — victim
    selection lives in :class:`repro.enclave.eviction.ClockEvictor`.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise EpcError(f"EPC capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._resident: Dict[int, EpcPageState] = {}
        # Lifetime counters, exposed for stats and invariant tests.
        self.total_inserts = 0
        self.total_evictions = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Number of frames in the pool."""
        return self._capacity

    @property
    def resident_count(self) -> int:
        """Number of pages currently resident."""
        return len(self._resident)

    @property
    def free_frames(self) -> int:
        """Number of frames currently unoccupied."""
        return self._capacity - len(self._resident)

    @property
    def is_full(self) -> bool:
        """True when an insert would require an eviction first."""
        return len(self._resident) >= self._capacity

    def is_resident(self, page: int) -> bool:
        """True if virtual ``page`` currently occupies an EPC frame."""
        return page in self._resident

    def lookup(self, page: int) -> Optional[EpcPageState]:
        """The metadata of ``page`` if resident, else ``None``.

        One dictionary probe combining :meth:`is_resident` and
        :meth:`state_of` — the driver's access fast path runs this
        once per page touch, which is once per simulated event.
        """
        return self._resident.get(page)

    def state_of(self, page: int) -> EpcPageState:
        """Return the metadata of a resident page.

        Raises :class:`EpcError` for non-resident pages: callers must
        check residency first, mirroring the driver's own flow.
        """
        try:
            return self._resident[page]
        except KeyError:
            raise EpcError(f"page {page} is not resident") from None

    def resident_pages(self) -> Iterator[int]:
        """Iterate over the resident page numbers (scan-thread view)."""
        return iter(self._resident)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert(self, page: int, *, preloaded: bool = False) -> EpcPageState:
        """Load ``page`` into a free frame (the ELDU/ELDB effect).

        Raises :class:`EpcError` if the EPC is full (the driver must
        evict first) or the page is already resident (a demand load and
        a preload racing on the same page must be resolved by the
        caller — the channel model never double-loads).
        """
        if page in self._resident:
            raise EpcError(f"page {page} is already resident")
        if self.is_full:
            raise EpcError("EPC is full; evict a page before inserting")
        state = EpcPageState(accessed=False, preloaded=preloaded)
        self._resident[page] = state
        self.total_inserts += 1
        return state

    def evict(self, page: int) -> EpcPageState:
        """Evict ``page`` to untrusted memory (the EWB effect).

        Returns the final metadata of the evicted page so the caller
        can account for evicted-before-use preloads.
        """
        try:
            state = self._resident.pop(page)
        except KeyError:
            raise EpcError(f"cannot evict non-resident page {page}") from None
        self.total_evictions += 1
        return state

    def mark_accessed(self, page: int) -> EpcPageState:
        """Set the accessed bit of a resident page (hardware A-bit)."""
        state = self.state_of(page)
        state.accessed = True
        return state

    def clear_accessed(self, page: int) -> None:
        """Clear the accessed bit (CLOCK aging, done by the scan)."""
        self.state_of(page).accessed = False
