"""The Enclave Page Cache (EPC).

The EPC is the contiguous physical memory region SGX reserves for
enclave pages.  It is managed by the (untrusted) OS at 4 KiB page
granularity; on the paper's platform 128 MB are reserved of which
~96 MB are usable by applications.

This module models the EPC as a fixed pool of frames plus, for every
*resident* virtual page, the two bits the paper's mechanisms rely on:

* the **accessed** bit — set by the "hardware" on every touch, cleared
  periodically by the driver's CLOCK service thread; CLOCK replacement
  and the DFP preload accounting both read it;
* the **preloaded** bit — set when a page is brought in by the DFP
  preload thread rather than by a demand fault, cleared when the
  service-thread scan credits the page as a correct preload.  This is
  the per-page state behind the paper's ``PreloadedPageList``.

Storage layout: both bits live in one **status byte per page** of the
registered address space (:attr:`Epc.status_table`), as a bit field:

==============  =====  ===========================================
constant        value  meaning
==============  =====  ===========================================
PAGE_ABSENT     0      not resident (the whole byte is zero)
PAGE_RESIDENT   1      bit 0: the page occupies an EPC frame
PAGE_ACCESSED   2      bit 1: the A bit is set
PAGE_PRELOADED  4      bit 2: preloaded and not yet credited
==============  =====  ===========================================

so a clean resident page is ``1``, an accessed one ``3``, a pending
preload ``5`` and an accessed pending preload ``7``.  The bit layout
makes a page touch *idempotent* — ``code | PAGE_ACCESSED`` is correct
whether or not the page was touched before — which is what makes the
batched simulation engine fast: a whole window of trace pages is
checked for residency with one C-level
``bytes(map(table.__getitem__, window))`` sweep and a ``find``, and
the run's accessed bits are retired with one C-level
``map(table.__setitem__, window, flags.translate(...))`` scatter,
with no Python-level work per event.

:class:`EpcPageState` is a *view* over one page's status byte — reads
and writes through its ``accessed``/``preloaded`` properties go
straight to the table, so code holding a state object and code
scanning the table can never disagree.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.errors import EpcError

__all__ = [
    "Epc",
    "EpcPageState",
    "PAGE_ABSENT",
    "PAGE_RESIDENT",
    "PAGE_ACCESSED",
    "PAGE_PRELOADED",
]

#: Status-byte bit flags (see the module docstring's table).
PAGE_ABSENT = 0
PAGE_RESIDENT = 1
PAGE_ACCESSED = 2
PAGE_PRELOADED = 4


class EpcPageState:
    """Per-resident-page metadata.

    ``accessed`` mirrors the page-table A bit; ``preloaded`` marks pages
    brought in speculatively and not yet credited by the scan thread.

    Instances returned by :meth:`Epc.insert` / :meth:`Epc.lookup` /
    :meth:`Epc.state_of` are live views over the EPC's status table:
    mutations through the properties update the table, and table
    updates are visible through the properties.  :meth:`Epc.evict`
    returns a *detached* copy holding the page's final bits.
    """

    __slots__ = ("_table", "_index")

    def __init__(self, accessed: bool = False, preloaded: bool = False) -> None:
        code = (
            PAGE_RESIDENT
            | (PAGE_ACCESSED if accessed else 0)
            | (PAGE_PRELOADED if preloaded else 0)
        )
        self._table = bytearray((code,))
        self._index = 0

    @classmethod
    def _view(cls, table: bytearray, index: int) -> "EpcPageState":
        """A live view of ``table[index]`` (internal to :class:`Epc`)."""
        state = object.__new__(cls)
        state._table = table
        state._index = index
        return state

    @property
    def accessed(self) -> bool:
        return bool(self._table[self._index] & PAGE_ACCESSED)

    @accessed.setter
    def accessed(self, value: bool) -> None:
        code = self._table[self._index]
        if code == PAGE_ABSENT:
            raise EpcError("stale page state: the page was evicted")
        if value:
            self._table[self._index] = code | PAGE_ACCESSED
        else:
            self._table[self._index] = code & ~PAGE_ACCESSED

    @property
    def preloaded(self) -> bool:
        return bool(self._table[self._index] & PAGE_PRELOADED)

    @preloaded.setter
    def preloaded(self, value: bool) -> None:
        code = self._table[self._index]
        if code == PAGE_ABSENT:
            raise EpcError("stale page state: the page was evicted")
        if value:
            self._table[self._index] = code | PAGE_PRELOADED
        else:
            self._table[self._index] = code & ~PAGE_PRELOADED

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EpcPageState):
            return (self.accessed, self.preloaded) == (
                other.accessed,
                other.preloaded,
            )
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"EpcPageState(accessed={self.accessed}, "
            f"preloaded={self.preloaded})"
        )


class Epc:
    """A fixed pool of EPC frames with residency tracking.

    The class enforces the physical constraint the whole paper is
    about: at most :attr:`capacity` pages can be resident at once, and
    making room for a new page requires an explicit eviction (the OS's
    EWB path), which this class *checks* but does not *choose* — victim
    selection lives in :class:`repro.enclave.eviction.ClockEvictor`.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise EpcError(f"EPC capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._resident: Dict[int, EpcPageState] = {}
        # Source of truth for the per-page bits: one status byte per
        # page of the covered address space (grown, never rebound, so
        # bound references like ``table.__getitem__`` stay valid).
        self._status = bytearray()
        # Lifetime counters, exposed for stats and invariant tests.
        self.total_inserts = 0
        self.total_evictions = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Number of frames in the pool."""
        return self._capacity

    @property
    def resident_count(self) -> int:
        """Number of pages currently resident."""
        return len(self._resident)

    @property
    def free_frames(self) -> int:
        """Number of frames currently unoccupied."""
        return self._capacity - len(self._resident)

    @property
    def is_full(self) -> bool:
        """True when an insert would require an eviction first."""
        return len(self._resident) >= self._capacity

    def is_resident(self, page: int) -> bool:
        """True if virtual ``page`` currently occupies an EPC frame."""
        return page in self._resident

    def lookup(self, page: int) -> Optional[EpcPageState]:
        """The metadata of ``page`` if resident, else ``None``.

        One dictionary probe combining :meth:`is_resident` and
        :meth:`state_of` — the driver's access fast path runs this
        once per page touch, which is once per simulated event.
        """
        return self._resident.get(page)

    def state_of(self, page: int) -> EpcPageState:
        """Return the metadata of a resident page.

        Raises :class:`EpcError` for non-resident pages: callers must
        check residency first, mirroring the driver's own flow.
        """
        try:
            return self._resident[page]
        except KeyError:
            raise EpcError(f"page {page} is not resident") from None

    def resident_pages(self) -> Iterator[int]:
        """Iterate over the resident page numbers (scan-thread view)."""
        return iter(self._resident)

    @property
    def resident_map(self) -> Dict[int, EpcPageState]:
        """The live page → :class:`EpcPageState` residency table.

        Exposed for bulk membership checks (e.g. the driver's burst
        filter): one bound lookup on this dict replaces a ``lookup``
        call per page.  The dict object is stable for the EPC's
        lifetime (it is mutated, never rebound).  Callers must treat
        it as read-only — residency changes go through
        :meth:`insert`/:meth:`evict` so the lifetime counters and the
        evictor stay consistent.
        """
        return self._resident

    @property
    def status_table(self) -> bytearray:
        """The per-page status byte table (see the module docstring).

        ``status_table[page]`` is ``PAGE_ABSENT`` for every
        non-resident page of the covered span, else one of the four
        resident codes.  The object is grown in place and never
        rebound, so hot paths may hold it (or a bound
        ``__getitem__``) across residency changes.  Only the driver
        and the simulation engines may write through it; everything
        else mutates bits via :class:`EpcPageState` views or the
        ``mark``/``clear`` helpers, which edit the same bytes.
        """
        return self._status

    def ensure_page_span(self, span: int) -> None:
        """Grow the status table to cover pages ``[0, span)``.

        Called at enclave registration with the ELRANGE limit (and by
        the batched engine with the trace's page bound) so that hot
        paths can index the table without per-access bounds checks.
        """
        if span > len(self._status):
            self._status.extend(bytes(span - len(self._status)))

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert(self, page: int, *, preloaded: bool = False) -> EpcPageState:
        """Load ``page`` into a free frame (the ELDU/ELDB effect).

        Raises :class:`EpcError` if the EPC is full (the driver must
        evict first) or the page is already resident (a demand load and
        a preload racing on the same page must be resolved by the
        caller — the channel model never double-loads).
        """
        if page < 0:
            raise EpcError(f"page numbers must be non-negative, got {page}")
        if page in self._resident:
            raise EpcError(f"page {page} is already resident")
        if self.is_full:
            raise EpcError("EPC is full; evict a page before inserting")
        if page >= len(self._status):
            self.ensure_page_span(page + 1)
        self._status[page] = (
            PAGE_RESIDENT | PAGE_PRELOADED if preloaded else PAGE_RESIDENT
        )
        state = EpcPageState._view(self._status, page)
        self._resident[page] = state
        self.total_inserts += 1
        return state

    def evict(self, page: int) -> EpcPageState:
        """Evict ``page`` to untrusted memory (the EWB effect).

        Returns a detached snapshot of the evicted page's final
        metadata so the caller can account for evicted-before-use
        preloads after the table slot is cleared.
        """
        try:
            del self._resident[page]
        except KeyError:
            raise EpcError(f"cannot evict non-resident page {page}") from None
        code = self._status[page]
        self._status[page] = PAGE_ABSENT
        self.total_evictions += 1
        return EpcPageState(
            accessed=bool(code & PAGE_ACCESSED),
            preloaded=bool(code & PAGE_PRELOADED),
        )

    def mark_accessed(self, page: int) -> EpcPageState:
        """Set the accessed bit of a resident page (hardware A-bit)."""
        state = self.state_of(page)
        state.accessed = True
        return state

    def clear_accessed(self, page: int) -> None:
        """Clear the accessed bit (CLOCK aging, done by the scan)."""
        self.state_of(page).accessed = False
