"""Run statistics: event counters and the cycle-time breakdown.

Every experiment in the paper is a comparison of execution times, and
the analysis sections attribute differences to specific events (faults
avoided, AEX/ERESUME pairs removed, channel time wasted on
mispredicted preloads).  :class:`RunStats` collects exactly those
counters; :class:`TimeBreakdown` attributes every simulated cycle to
one bucket, and the two must reconcile — the engine asserts that the
buckets sum to the total run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict

__all__ = ["RunStats", "TimeBreakdown"]


@dataclass
class TimeBreakdown:
    """Where the application thread's cycles went.

    The buckets partition total execution time:

    * ``compute`` — useful in-enclave work between page touches;
    * ``aex`` / ``eresume`` — world-switch halves of demand faults;
    * ``fault_wait`` — time the faulting thread waited on the load
      channel (the 44k-cycle loads plus any in-flight load it had to
      let finish first);
    * ``sip_check`` — BIT_MAP_CHECK executions;
    * ``sip_wait`` — synchronous SIP page_loadin waits, including the
      notification round trip;
    * ``idle`` — cycles the application thread spent outside the
      enclave entirely: open-loop request gaps, admission wait and
      enclave spin-up in a fleet scenario (:mod:`repro.sim.fleet`).
      Always zero for solo runs and for the legacy shared path, so the
      bucket identity ``total == clock`` is unchanged there.
    """

    compute: int = 0
    aex: int = 0
    eresume: int = 0
    fault_wait: int = 0
    sip_check: int = 0
    sip_wait: int = 0
    idle: int = 0

    @property
    def total(self) -> int:
        """Sum of all buckets; equals the run's total cycles."""
        return (
            self.compute
            + self.aex
            + self.eresume
            + self.fault_wait
            + self.sip_check
            + self.sip_wait
            + self.idle
        )

    @property
    def overhead(self) -> int:
        """Every paging-attributable cycle: what preloading shrinks.

        Idle cycles are excluded — a tenant waiting for its next
        open-loop request is not paying paging overhead.
        """
        return self.total - self.compute - self.idle

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready breakdown, including the derived totals."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["total"] = self.total
        out["overhead"] = self.overhead
        return out


@dataclass
class RunStats:
    """Counters accumulated over one simulated run."""

    #: Page touches issued by the workload.
    accesses: int = 0
    #: Touches that found the page resident.
    epc_hits: int = 0
    #: Demand page faults taken (AEX + load + ERESUME path).
    faults: int = 0
    #: Faults that found their page already in flight on the channel
    #: (they waited for the preload instead of issuing a load).
    faults_absorbed_by_inflight: int = 0
    #: Faults whose page had been preloaded before the touch — these
    #: became plain EPC hits and are also counted in ``epc_hits``.
    preload_hits: int = 0
    #: Preloads enqueued / completed / aborted on the channel.
    preloads_enqueued: int = 0
    preloads_completed: int = 0
    preloads_aborted: int = 0
    #: Preloaded pages credited as accessed by the scan thread
    #: (the paper's AccPreloadCounter).
    preloads_accessed: int = 0
    #: Preloaded pages evicted without ever being accessed.
    preloads_evicted_unused: int = 0
    #: Completed preloads that found the page already resident.
    preloads_redundant: int = 0
    #: EPC evictions performed.
    evictions: int = 0
    #: SIP BIT_MAP_CHECK executions.
    sip_checks: int = 0
    #: SIP page_loadin requests actually issued (page was absent).
    sip_loads: int = 0
    #: SIP checks that found the page resident (only check cost paid).
    sip_check_hits: int = 0
    #: Times the DFP safety valve stopped the preload thread.
    valve_stops: int = 0
    #: Service-thread scan passes performed.
    scans: int = 0
    #: Attribution of all application cycles.
    time: TimeBreakdown = field(default_factory=TimeBreakdown)

    @property
    def total_cycles(self) -> int:
        """Total simulated execution time of the run."""
        return self.time.total

    @property
    def fault_rate(self) -> float:
        """Demand faults per page touch."""
        return self.faults / self.accesses if self.accesses else 0.0

    @property
    def preload_accuracy(self) -> float:
        """Fraction of completed preloads later credited as accessed."""
        if not self.preloads_completed:
            return 0.0
        return self.preloads_accessed / self.preloads_completed

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready counters (time nested under ``"time"``)."""
        out: Dict[str, object] = {
            f.name: getattr(self, f.name) for f in fields(self) if f.name != "time"
        }
        out["time"] = self.time.as_dict()
        return out
