"""CLOCK (second chance) EPC replacement.

Intel's Linux SGX driver selects eviction victims with a CLOCK-style
scan over EPC pages: a service thread periodically walks the page
table, giving recently accessed pages a second chance by clearing
their accessed bit and passing over them, and evicting the first page
found with the bit already clear.  Section 4.2 of the paper piggybacks
its preloaded-page accounting on exactly this scan.

:class:`ClockEvictor` implements the victim selection over the
simulator's :class:`~repro.enclave.epc.Epc`; the periodic scan itself
is driven by :class:`repro.enclave.driver.SgxDriver` (it owns the
virtual-time schedule and the preload accounting that rides along).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.enclave.epc import PAGE_ACCESSED, Epc
from repro.errors import EpcError

__all__ = ["ClockEvictor"]


class ClockEvictor:
    """Second-chance victim selection over the EPC frame ring.

    Frames are arranged in a fixed circular buffer the size of the EPC;
    a *hand* sweeps the ring.  ``select_victim`` advances the hand,
    clearing accessed bits as it passes set ones, and returns the first
    page whose bit is already clear.  Empty slots (free frames) are
    skipped.

    The evictor must be told about every insert and evict so its ring
    stays consistent with the EPC; the driver is the single caller of
    both, which keeps that contract easy to honour.

    ``capacity`` overrides the ring size (default: the whole EPC).  A
    partitioned frame policy (:mod:`repro.enclave.platform`) runs one
    CLOCK hand *per tenant* over that tenant's pages only, so its rings
    are sized to the tenant's ELRANGE — the upper bound on how many of
    its pages can ever be resident — rather than to the shared EPC.
    """

    def __init__(self, epc: Epc, *, capacity: Optional[int] = None) -> None:
        ring_size = epc.capacity if capacity is None else capacity
        if ring_size <= 0:
            raise EpcError(f"evictor ring capacity must be positive, got {ring_size}")
        self._epc = epc
        self._status = epc.status_table
        self._ring: List[Optional[int]] = [None] * ring_size
        self._slot_of: Dict[int, int] = {}
        self._hand = 0
        self._free_slots: List[int] = list(range(ring_size - 1, -1, -1))
        #: Lifetime count of second chances granted (stats/tests).
        self.second_chances = 0

    # ------------------------------------------------------------------
    # Ring maintenance (driven by the driver on insert/evict)
    # ------------------------------------------------------------------

    def note_insert(self, page: int) -> None:
        """Register a page that was just inserted into the EPC."""
        if page in self._slot_of:
            raise EpcError(f"page {page} already tracked by the evictor")
        if not self._free_slots:
            raise EpcError("evictor ring is full; EPC and ring disagree")
        slot = self._free_slots.pop()
        self._ring[slot] = page
        self._slot_of[page] = slot

    def note_evict(self, page: int) -> None:
        """Unregister a page that was just evicted from the EPC."""
        try:
            slot = self._slot_of.pop(page)
        except KeyError:
            raise EpcError(f"page {page} not tracked by the evictor") from None
        self._ring[slot] = None
        self._free_slots.append(slot)

    # ------------------------------------------------------------------
    # Victim selection
    # ------------------------------------------------------------------

    def select_victim(self) -> int:
        """Return the page CLOCK chooses to evict next.

        Sweeps at most two full revolutions: the first may clear every
        accessed bit, the second is then guaranteed to find a victim.
        Raises :class:`EpcError` when nothing is resident.
        """
        if not self._slot_of:
            raise EpcError("cannot select a victim from an empty EPC")
        capacity = len(self._ring)
        status = self._status
        for _ in range(2 * capacity):
            page = self._ring[self._hand]
            self._hand = (self._hand + 1) % capacity
            if page is None:
                continue
            code = status[page]
            if code & PAGE_ACCESSED:
                # Second chance: clear the A bit, keep the preloaded
                # bit, pass over the page.
                status[page] = code ^ PAGE_ACCESSED
                self.second_chances += 1
                continue
            return page
        raise EpcError("CLOCK failed to find a victim in two revolutions")
