"""The enclave: ELRANGE and trust-boundary bookkeeping.

An SGX application creates an enclave whose *virtual* span — the
enclave linear address range (ELRANGE) — may be arbitrarily larger than
the physical EPC; the EPC paging mechanism in the untrusted OS makes up
the difference (paper Figure 1).  The enclave object here carries the
ELRANGE geometry, the identity used by per-process fault-history
tracking, and the TCB accounting that Section 5.5 evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.errors import ConfigError

__all__ = ["Enclave"]

#: Lines of C in the prototype's preloading-notification function
#: (Section 5.5): the only enclave-resident code SIP adds.
NOTIFICATION_STUB_LOC = 23


@dataclass
class Enclave:
    """One enclave instance.

    ``elrange_pages`` bounds every page number a workload may touch;
    the driver validates faults against it.  ``instrumentation_points``
    is filled in when a SIP plan is attached, and feeds the TCB-size
    study (paper Table 2).
    """

    name: str
    elrange_pages: int
    #: Process id used as the key for per-process fault streams.
    pid: int = 0
    #: Number of SIP notification sites compiled into the enclave.
    instrumentation_points: int = field(default=0)
    #: First global page number of this enclave's ELRANGE.  Zero for a
    #: lone enclave; multi-enclave simulations give each enclave a
    #: disjoint range of the global page space (Section 5.6).
    base_page: int = 0

    def __post_init__(self) -> None:
        if self.elrange_pages <= 0:
            raise ConfigError(
                f"ELRANGE must span at least one page, got {self.elrange_pages}"
            )
        if self.pid < 0:
            raise ConfigError(f"pid must be non-negative, got {self.pid}")
        if self.base_page < 0:
            raise ConfigError(f"base_page must be non-negative, got {self.base_page}")

    @property
    def elrange_bytes(self) -> int:
        """Virtual span of the enclave in bytes."""
        return units.bytes_of(self.elrange_pages)

    @property
    def added_tcb_loc(self) -> int:
        """Lines of code SIP adds to the TCB (0 when uninstrumented).

        The notification stub is linked in once; each instrumentation
        point is a check+call site.  DFP adds nothing — it lives
        entirely in the untrusted OS.
        """
        if self.instrumentation_points == 0:
            return 0
        return NOTIFICATION_STUB_LOC + self.instrumentation_points

    def contains_page(self, page: int) -> bool:
        """True if global ``page`` lies inside this enclave's ELRANGE."""
        return self.base_page <= page < self.base_page + self.elrange_pages
