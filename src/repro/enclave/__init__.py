"""SGX enclave paging substrate.

This package re-implements, as a cycle-accounted simulation, the pieces
of the SGX stack that the paper's prototype touches:

* :mod:`repro.enclave.epc` — the Enclave Page Cache: a fixed pool of
  4 KiB frames with per-page accessed/preloaded bits.
* :mod:`repro.enclave.page_table` — the OS-visible page table view and
  the residency bitmap SIP shares between the enclave and the OS.
* :mod:`repro.enclave.eviction` — CLOCK (second chance) replacement, as
  used by Intel's Linux SGX driver, plus the periodic service thread
  that scans and clears access bits.
* :mod:`repro.enclave.loader` — the exclusive, non-preemptible EPC page
  load channel (one ELDU/ELDB at a time, ~44,000 cycles each).
* :mod:`repro.enclave.enclave` — the enclave object: ELRANGE plus
  AEX/ERESUME accounting.
* :mod:`repro.enclave.driver` — the SGX driver: the enclave page-fault
  handler, with hooks where DFP and SIP plug in.
"""

from repro.enclave.epc import Epc, EpcPageState
from repro.enclave.page_table import SharedBitmap
from repro.enclave.eviction import ClockEvictor
from repro.enclave.loader import LoadChannel, LoadKind
from repro.enclave.enclave import Enclave
from repro.enclave.platform import SharedPlatform
from repro.enclave.driver import SgxDriver
from repro.enclave.stats import RunStats, TimeBreakdown

__all__ = [
    "Epc",
    "EpcPageState",
    "SharedBitmap",
    "ClockEvictor",
    "LoadChannel",
    "LoadKind",
    "Enclave",
    "SharedPlatform",
    "SgxDriver",
    "RunStats",
    "TimeBreakdown",
]
