"""Timeline event records, for the Figure 2 / Figure 4 reproductions.

The paper's didactic figures plot the exact sequence of AEX, page-load,
ERESUME and notification intervals on a time axis.  When a driver is
constructed with ``record_events=True`` it emits one
:class:`TimelineEvent` per interval into a bounded ring buffer
(:class:`repro.obs.trace.RingBufferSink`), which the Figure 2 bench
renders as an ASCII time chart.

Recording is off by default, and memory stays bounded even when it is
on: large runs produce millions of events, so the ring buffer keeps
only the most recent ``event_capacity`` of them and counts the rest in
``SgxDriver.events_dropped``.  Arbitrary additional consumers (JSONL
streams, the Chrome trace exporter) attach through the driver's
``tracer`` sink — see :mod:`repro.obs.trace`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["EventKind", "TimelineEvent"]


class EventKind(enum.Enum):
    """What happened during a recorded interval."""

    COMPUTE = "compute"
    AEX = "aex"
    ERESUME = "eresume"
    DEMAND_LOAD = "demand_load"
    PRELOAD = "preload"
    SIP_CHECK = "sip_check"
    SIP_LOAD = "sip_load"
    FAULT_WAIT = "fault_wait"
    ABORT = "abort"
    EPC_HIT = "epc_hit"
    SCAN = "scan"


@dataclass(frozen=True)
class TimelineEvent:
    """One interval on the virtual-cycle timeline.

    ``start`` and ``end`` are virtual cycle stamps; ``page`` is -1 for
    events not tied to a page (a pure compute interval, an AEX).
    """

    kind: EventKind
    start: int
    end: int
    page: int = -1

    @property
    def duration(self) -> int:
        """Length of the interval in cycles."""
        return self.end - self.start

    def __str__(self) -> str:
        page = f" page={self.page}" if self.page >= 0 else ""
        return f"[{self.start:>10}..{self.end:>10}] {self.kind.value}{page}"
