"""The EPC page-load channel.

Two hardware/OS constraints drive the paper's whole cost analysis
(Sections 3.1 and 5.6):

* the EPC load path is **exclusive** — it moves one page at a time
  between untrusted memory and the EPC;
* an individual page load (ELDU/ELDB, ~44,000 cycles) is
  **non-preemptible** — once started it must run to completion, so a
  demand fault arriving mid-preload waits for the in-flight load even
  when the preload turns out to be useless.

:class:`LoadChannel` models that channel on a virtual-cycle timeline.
Demand loads (faults and SIP ``page_loadin`` requests) run
synchronously from the application's point of view; DFP preloads are
queued and drained asynchronously in the background, overlapping with
enclave execution.  ``advance_to(now)`` retires every background load
that completed by ``now``, applying it to the EPC via the callback the
driver installs — so eviction decisions happen in correct time order.

Queued preloads are grouped into **bursts** (one burst per predictor
hit), each identified by a tag.  The driver uses tags to implement the
paper's in-stream abort: a fault inside one stream's queued burst
cancels that burst's remainder without disturbing the bursts of other,
still-healthy streams.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Dict, Optional, Sequence, Tuple

from repro.errors import ChannelError

__all__ = ["LoadChannel", "LoadKind"]


class LoadKind(enum.Enum):
    """Why a page is being loaded into the EPC."""

    #: Synchronous load servicing a demand page fault.
    DEMAND = "demand"
    #: Asynchronous speculative load issued by the DFP preloader.
    PRELOAD = "preload"
    #: Synchronous load issued by a SIP preload notification.
    SIP = "sip"


#: Signature of the driver callback invoked when a load lands:
#: ``apply_load(page, kind, finish_time) -> eviction_performed``.
#: The boolean drives the channel's post-load housekeeping: evicting
#: the victim (EWB) occupies the same exclusive channel *after* the
#: landing page is usable, so eviction is hidden from a lone demand
#: fault's latency but limits back-to-back load throughput.
ApplyLoad = Callable[[int, "LoadKind", int], bool]


class LoadChannel:
    """Single-lane, non-preemptible EPC load channel.

    All methods take ``now`` (virtual cycles) and require time to be
    monotonically non-decreasing across calls, which the simulation
    engine guarantees.
    """

    def __init__(
        self,
        load_cycles: int,
        apply_load: ApplyLoad,
        *,
        evict_cycles: int = 0,
    ) -> None:
        if load_cycles <= 0:
            raise ChannelError(f"load_cycles must be positive, got {load_cycles}")
        if evict_cycles < 0:
            raise ChannelError(f"evict_cycles must be non-negative, got {evict_cycles}")
        self._load_cycles = load_cycles
        self._evict_cycles = evict_cycles
        self._apply = apply_load
        # Time the channel becomes free of the *current* load.  When
        # idle this lags behind `now` until the next use.
        self._free_at = 0
        self._current: Optional[Tuple[int, LoadKind, int]] = None
        self._queue: Deque[Tuple[int, int]] = deque()  # (page, burst tag)
        self._queued_tag: Dict[int, int] = {}
        self._next_tag = 0
        # Lifetime counters (stats/invariants).
        self.demand_loads = 0
        self.sip_loads = 0
        self.preloads_enqueued = 0
        self.preloads_completed = 0
        self.preloads_aborted = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def load_cycles(self) -> int:
        """Duration of one page load on this channel."""
        return self._load_cycles

    @property
    def current_page(self) -> Optional[int]:
        """Page of the in-flight load, or None when idle."""
        return self._current[0] if self._current else None

    @property
    def current_finish(self) -> Optional[int]:
        """Finish time of the in-flight load, or None when idle."""
        return self._current[2] if self._current else None

    @property
    def queued_pages(self) -> Tuple[int, ...]:
        """Snapshot of the pending (not yet started) preload queue."""
        return tuple(page for page, _tag in self._queue)

    def is_queued(self, page: int) -> bool:
        """True if ``page`` is waiting in the preload queue."""
        return page in self._queued_tag

    def queued_tag(self, page: int) -> Optional[int]:
        """Burst tag of a queued page, or None if not queued."""
        return self._queued_tag.get(page)

    def is_idle(self, now: int) -> bool:
        """True when nothing is in flight or queued as of ``now``."""
        self.advance_to(now)
        return self._current is None and not self._queue

    def next_completion(self) -> Optional[int]:
        """Finish time of the next background landing, or None if none.

        This is the channel's contribution to the batched engine's
        event horizon: strictly before this time the EPC cannot change
        under the application's feet.  When the channel is idle but
        preloads are queued (a burst was enqueued and no ``advance_to``
        has promoted it yet), the first queued load will start at
        ``_free_at`` — ``enqueue_preloads`` refreshed it against the
        enqueue time — and land one load later.
        """
        if self._current is not None:
            return self._current[2]
        if self._queue:
            return self._free_at + self._load_cycles
        return None

    # ------------------------------------------------------------------
    # Background (preload) path
    # ------------------------------------------------------------------

    def advance_to(self, now: int) -> None:
        """Retire every background load that completed by ``now``.

        Completions are applied in order at their true finish times, so
        the EPC (and its eviction clock) sees the same sequence it
        would have seen in continuous time.
        """
        while True:
            if self._current is not None:
                page, kind, finish = self._current
                if finish > now:
                    return
                self._current = None
                if kind is LoadKind.PRELOAD:
                    self.preloads_completed += 1
                evicted = self._apply(page, kind, finish)
                self._free_at = finish + (self._evict_cycles if evicted else 0)
            elif self._queue:
                page, _tag = self._queue.popleft()
                del self._queued_tag[page]
                finish = self._free_at + self._load_cycles
                self._current = (page, LoadKind.PRELOAD, finish)
            else:
                return

    def enqueue_preloads(self, pages: Sequence[int], now: int) -> int:
        """Queue one burst of speculative loads; return its tag.

        The first queued load starts as soon as the channel is free
        (immediately, if idle at ``now``).  The caller must have
        de-duplicated ``pages`` against residency, the in-flight load
        and the existing queue (the driver's ``_filter_burst``).
        """
        self.advance_to(now)
        tag = self._next_tag
        self._next_tag += 1
        if not pages:
            return tag
        for page in pages:
            if page in self._queued_tag:
                raise ChannelError(f"page {page} is already queued")
        if self._current is None and not self._queue:
            # Channel idle: background work starts now, not at the
            # stale _free_at left over from the previous load.
            self._free_at = max(self._free_at, now)
        for page in pages:
            self._queue.append((page, tag))
            self._queued_tag[page] = tag
        self.preloads_enqueued += len(pages)
        return tag

    def abort_tag(self, tag: int, now: int) -> int:
        """Drop every queued load of one burst; return how many.

        The in-flight load, if any, is *not* cancelled — it is
        non-preemptible.  This is the in-stream abort of Section 4.1:
        a demand fault inside a burst invalidates its remainder.
        """
        self.advance_to(now)
        if not self._queue:
            return 0
        keep = [(page, t) for page, t in self._queue if t != tag]
        aborted = len(self._queue) - len(keep)
        if aborted:
            self._queue = deque(keep)
            self._queued_tag = {page: t for page, t in keep}
            self.preloads_aborted += aborted
        return aborted

    def abort_pages_in_range(self, lo: int, hi: int, now: int) -> int:
        """Drop every queued preload whose page is in ``[lo, hi)``.

        Used when one enclave's valve fires on a shared platform: its
        speculative work is cancelled without touching the queued
        bursts of other enclaves.
        """
        self.advance_to(now)
        if not self._queue:
            return 0
        keep = [(page, t) for page, t in self._queue if not lo <= page < hi]
        aborted = len(self._queue) - len(keep)
        if aborted:
            self._queue = deque(keep)
            self._queued_tag = {page: t for page, t in keep}
            self.preloads_aborted += aborted
        return aborted

    def abort_all(self, now: int) -> int:
        """Drop every queued preload (used when the valve fires)."""
        self.advance_to(now)
        aborted = len(self._queue)
        self._queue.clear()
        self._queued_tag.clear()
        self.preloads_aborted += aborted
        return aborted

    # ------------------------------------------------------------------
    # Synchronous (demand / SIP) path
    # ------------------------------------------------------------------

    def wait_for_current(self, now: int) -> int:
        """Block until the in-flight load lands; return that time.

        Used when the faulting page is the one already being loaded:
        no second load is issued, the fault simply rides the in-flight
        preload to completion.  Returns ``now`` unchanged if idle.
        """
        self.advance_to(now)
        if self._current is None:
            return now
        page, kind, finish = self._current
        self._current = None
        if kind is LoadKind.PRELOAD:
            self.preloads_completed += 1
        evicted = self._apply(page, kind, finish)
        self._free_at = finish + (self._evict_cycles if evicted else 0)
        return finish

    def drain(self, now: int) -> int:
        """Run the channel until idle; return the time that happens.

        Queued preloads complete at their natural times; nothing is
        cancelled.  Returns ``now`` when already idle.
        """
        self.advance_to(now)
        t = now
        while self._current is not None:
            t = self.wait_for_current(t)
            # Promote the next queued preload (if any) to in-flight so
            # the loop drains it too.
            self.advance_to(t)
        return t

    def load_sync(self, page: int, kind: LoadKind, now: int) -> int:
        """Perform a synchronous load of ``page``; return its finish time.

        The kernel's page load-in path is exclusive and non-preemptible
        (Section 5.6): a demand load issued while the preload thread is
        working waits for the *whole* outstanding queue, not just the
        in-flight page — this is exactly why mispredicted preloading is
        so expensive and why the paper needs its abort mechanisms (the
        caller aborts the relevant burst *before* calling this).
        """
        if kind is LoadKind.PRELOAD:
            raise ChannelError("preloads must go through enqueue_preloads")
        if self._current is None and not self._queue:
            # Idle channel (the overwhelmingly common demand-fault
            # case): skip the drain machinery, start as soon as the
            # previous load's housekeeping is done.
            start = self._free_at if self._free_at > now else now
        else:
            start = self.drain(now)
            start = max(start, self._free_at, now)
        finish = start + self._load_cycles
        if kind is LoadKind.DEMAND:
            self.demand_loads += 1
        else:
            self.sip_loads += 1
        evicted = self._apply(page, kind, finish)
        self._free_at = finish + (self._evict_cycles if evicted else 0)
        return finish
