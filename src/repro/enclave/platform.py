"""Shared SGX hardware: one EPC serving multiple enclaves.

Section 5.6 of the paper: the EPC can be shared among multiple
processes (or VMs), the total EPC size stays the same, each enclave
effectively receives a smaller portion, and "EPC contention becomes a
serious issue"; the preloading schemes still work because "each
enclave can handle its preloading independently" (per-process fault
streams, Algorithm 1's ``find_stream_list(ID)``).

:class:`SharedPlatform` owns the physical resources every enclave
contends for — the EPC frame pool, the CLOCK evictor, the exclusive
load channel, and the service-thread schedule — and routes hardware
events back to the owning enclave's driver:

* completed loads are applied by the *loading* enclave's driver;
* eviction bookkeeping (preload credits, evicted-unused counts) goes
  to the *victim page's* owner — under contention the CLOCK victim is
  frequently another enclave's page;
* the periodic scan runs once globally (it is one kernel thread), and
  credits/valve checks are routed per enclave.

A single-enclave driver constructs a private platform transparently,
so the common case is unchanged.  Page numbering is global: each
registered enclave occupies the disjoint range
``[base_page, base_page + elrange_pages)``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core.config import SimConfig
from repro.enclave.epc import (
    PAGE_ACCESSED,
    PAGE_PRELOADED,
    PAGE_RESIDENT,
    Epc,
)
from repro.enclave.eviction import ClockEvictor
from repro.enclave.loader import LoadChannel, LoadKind
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.enclave.driver import SgxDriver

__all__ = ["SharedPlatform"]

#: An accessed page with a pending preload credit: the byte the scan
#: counts per owner range to credit correct preloads.
_PAGE_CREDITED = PAGE_RESIDENT | PAGE_ACCESSED | PAGE_PRELOADED

#: Scan-aging byte translation: one C-level pass over the status table
#: clears every accessed bit, and for accessed+preloaded pages the
#: preloaded bit too (the credit was just taken); absent, clean and
#: untouched-preloaded pages pass through unchanged.
_SCAN_AGING = bytes(
    PAGE_RESIDENT if code & PAGE_ACCESSED else code for code in range(8)
) + bytes(range(8, 256))


class SharedPlatform:
    """The physical SGX resources shared by one or more enclaves."""

    def __init__(self, config: SimConfig) -> None:
        self._config = config
        self.epc = Epc(config.epc_pages)
        self.evictor = ClockEvictor(self.epc)
        self.channel = LoadChannel(
            config.cost.page_load_cycles,
            self._on_load,
            evict_cycles=config.cost.ewb_cycles,
        )
        # (base, limit, driver), sorted by base; ``_bases`` is the
        # parallel sorted key array ``owner_of`` bisects over — the
        # lookup runs on every cross-enclave eviction and every load
        # completion, so it must not scan linearly over the fleet.
        self._owners: List[Tuple[int, int, "SgxDriver"]] = []
        self._bases: List[int] = []
        self._next_scan = config.scan_period_cycles
        self._last_now = 0

    # ------------------------------------------------------------------
    # Registration and routing
    # ------------------------------------------------------------------

    def register(self, driver: "SgxDriver") -> None:
        """Attach a driver; its enclave's page range must be disjoint."""
        enclave = driver.enclave
        base = enclave.base_page
        limit = base + enclave.elrange_pages
        for lo, hi, _d in self._owners:
            if base < hi and lo < limit:
                raise SimulationError(
                    f"enclave {enclave.name!r} pages [{base}, {limit}) overlap "
                    f"an already-registered enclave's [{lo}, {hi})"
                )
        self._owners.append((base, limit, driver))
        self._owners.sort(key=lambda item: item[0])
        self._bases = [lo for lo, _hi, _d in self._owners]
        # Cover the enclave's page range in the status table up front
        # so the per-access hot paths can index it unconditionally.
        self.epc.ensure_page_span(limit)

    def owner_of(self, page: int) -> Optional["SgxDriver"]:
        """The driver whose enclave owns ``page`` (None if unowned).

        Ranges are disjoint and sorted, so the candidate is the last
        range starting at or below ``page`` — one bisect, not a scan
        over every registered enclave.
        """
        index = bisect_right(self._bases, page) - 1
        if index >= 0:
            lo, hi, driver = self._owners[index]
            if lo <= page < hi:
                return driver
        return None

    @property
    def drivers(self) -> Tuple["SgxDriver", ...]:
        """Registered drivers, in page-range order."""
        return tuple(driver for _lo, _hi, driver in self._owners)

    # ------------------------------------------------------------------
    # Hardware callbacks
    # ------------------------------------------------------------------

    def _on_load(self, page: int, kind: LoadKind, finish: int) -> bool:
        """Channel callback: route the landing to the owning driver."""
        owner = self.owner_of(page)
        if owner is None:
            raise SimulationError(f"load completed for unowned page {page}")
        return owner._apply_load(page, kind, finish)

    # ------------------------------------------------------------------
    # The service thread (one kernel thread, global schedule)
    # ------------------------------------------------------------------

    def next_wakeup(self) -> int:
        """Earliest future time at which background state can change.

        The minimum of the next service-thread scan deadline and the
        next load-channel completion: strictly before this horizon a
        ``poll`` is a no-op — no page can land, no victim can be
        evicted, no accessed bit can be cleared, no valve can fire.
        The batched engine retires whole runs of resident accesses
        whose times fall strictly inside the horizon without polling.

        The batched engine calls this once per retired run, so the
        channel's :meth:`~repro.enclave.loader.LoadChannel.next_completion`
        logic is inlined here (same expression over the same state) —
        an idle channel, the overwhelmingly common case under schemes
        without preloading, costs two attribute reads instead of a
        second method call.
        """
        horizon = self._next_scan
        channel = self.channel
        current = channel._current
        if current is not None:
            if current[2] < horizon:
                return current[2]
        elif channel._queue:
            completion = channel._free_at + channel._load_cycles
            if completion < horizon:
                return completion
        return horizon

    def poll(self, now: int) -> None:
        """Advance scans and the channel to ``now`` (global time)."""
        if now < self._last_now:
            # Multi-enclave simulation processes apps by event start
            # time; an app can observe the platform slightly behind
            # another app's completion.  The platform itself only ever
            # moves forward.
            now = self._last_now
        self._last_now = now
        while self._next_scan <= now:
            scan_time = self._next_scan
            self.channel.advance_to(scan_time)
            self._scan(scan_time)
            self._next_scan += self._config.scan_period_cycles
        self.channel.advance_to(now)

    def _scan(self, now: int) -> None:
        """One global scan: age access bits, credit preloads per owner,
        then let each enclave's valve react.

        Runs at C speed over the status table: each owner's credit is
        a byte count over its page range (an accessed+preloaded page is
        exactly one ``RESIDENT|ACCESSED|PRELOADED`` byte), then a
        single translation pass clears every accessed bit.  Ranges are
        disjoint and non-resident bytes are ``PAGE_ABSENT``, so this
        is equivalent to the per-resident-page walk it replaces.
        """
        status = self.epc.status_table
        owners = self._owners
        if len(owners) == 1:
            credits = (status.count(_PAGE_CREDITED),)
        else:
            credits = tuple(
                status.count(_PAGE_CREDITED, lo, hi)
                for lo, hi, _driver in owners
            )
        status[:] = status.translate(_SCAN_AGING)
        for (_lo, _hi, driver), credited in zip(owners, credits):
            driver._after_scan(now, credited)
