"""Shared SGX hardware: one EPC serving multiple enclaves.

Section 5.6 of the paper: the EPC can be shared among multiple
processes (or VMs), the total EPC size stays the same, each enclave
effectively receives a smaller portion, and "EPC contention becomes a
serious issue"; the preloading schemes still work because "each
enclave can handle its preloading independently" (per-process fault
streams, Algorithm 1's ``find_stream_list(ID)``).

:class:`SharedPlatform` owns the physical resources every enclave
contends for — the EPC frame pool, the CLOCK evictor, the exclusive
load channel, and the service-thread schedule — and routes hardware
events back to the owning enclave's driver:

* completed loads are applied by the *loading* enclave's driver;
* eviction bookkeeping (preload credits, evicted-unused counts) goes
  to the *victim page's* owner — under contention the CLOCK victim is
  frequently another enclave's page;
* the periodic scan runs once globally (it is one kernel thread), and
  credits/valve checks are routed per enclave.

A single-enclave driver constructs a private platform transparently,
so the common case is unchanged.  Page numbering is global: each
registered enclave occupies the disjoint range
``[base_page, base_page + elrange_pages)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core.config import SimConfig
from repro.enclave.epc import Epc
from repro.enclave.eviction import ClockEvictor
from repro.enclave.loader import LoadChannel, LoadKind
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.enclave.driver import SgxDriver

__all__ = ["SharedPlatform"]


class SharedPlatform:
    """The physical SGX resources shared by one or more enclaves."""

    def __init__(self, config: SimConfig) -> None:
        self._config = config
        self.epc = Epc(config.epc_pages)
        self.evictor = ClockEvictor(self.epc)
        self.channel = LoadChannel(
            config.cost.page_load_cycles,
            self._on_load,
            evict_cycles=config.cost.ewb_cycles,
        )
        # (base, limit, driver), sorted by base.
        self._owners: List[Tuple[int, int, "SgxDriver"]] = []
        self._next_scan = config.scan_period_cycles
        self._last_now = 0

    # ------------------------------------------------------------------
    # Registration and routing
    # ------------------------------------------------------------------

    def register(self, driver: "SgxDriver") -> None:
        """Attach a driver; its enclave's page range must be disjoint."""
        enclave = driver.enclave
        base = enclave.base_page
        limit = base + enclave.elrange_pages
        for lo, hi, _d in self._owners:
            if base < hi and lo < limit:
                raise SimulationError(
                    f"enclave {enclave.name!r} pages [{base}, {limit}) overlap "
                    f"an already-registered enclave's [{lo}, {hi})"
                )
        self._owners.append((base, limit, driver))
        self._owners.sort(key=lambda item: item[0])

    def owner_of(self, page: int) -> Optional["SgxDriver"]:
        """The driver whose enclave owns ``page`` (None if unowned)."""
        for lo, hi, driver in self._owners:
            if lo <= page < hi:
                return driver
        return None

    @property
    def drivers(self) -> Tuple["SgxDriver", ...]:
        """Registered drivers, in page-range order."""
        return tuple(driver for _lo, _hi, driver in self._owners)

    # ------------------------------------------------------------------
    # Hardware callbacks
    # ------------------------------------------------------------------

    def _on_load(self, page: int, kind: LoadKind, finish: int) -> bool:
        """Channel callback: route the landing to the owning driver."""
        owner = self.owner_of(page)
        if owner is None:
            raise SimulationError(f"load completed for unowned page {page}")
        return owner._apply_load(page, kind, finish)

    # ------------------------------------------------------------------
    # The service thread (one kernel thread, global schedule)
    # ------------------------------------------------------------------

    def poll(self, now: int) -> None:
        """Advance scans and the channel to ``now`` (global time)."""
        if now < self._last_now:
            # Multi-enclave simulation processes apps by event start
            # time; an app can observe the platform slightly behind
            # another app's completion.  The platform itself only ever
            # moves forward.
            now = self._last_now
        self._last_now = now
        while self._next_scan <= now:
            scan_time = self._next_scan
            self.channel.advance_to(scan_time)
            self._scan(scan_time)
            self._next_scan += self._config.scan_period_cycles
        self.channel.advance_to(now)

    def _scan(self, now: int) -> None:
        """One global scan: age access bits, credit preloads per owner,
        then let each enclave's valve react."""
        credited = {}
        for page in self.epc.resident_pages():
            state = self.epc.state_of(page)
            if state.accessed:
                if state.preloaded:
                    owner = self.owner_of(page)
                    if owner is not None:
                        credited[owner] = credited.get(owner, 0) + 1
                    state.preloaded = False
                state.accessed = False
        for _lo, _hi, driver in self._owners:
            driver._after_scan(now, credited.get(driver, 0))
