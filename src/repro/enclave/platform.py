"""Shared SGX hardware: one EPC serving multiple enclaves.

Section 5.6 of the paper: the EPC can be shared among multiple
processes (or VMs), the total EPC size stays the same, each enclave
effectively receives a smaller portion, and "EPC contention becomes a
serious issue"; the preloading schemes still work because "each
enclave can handle its preloading independently" (per-process fault
streams, Algorithm 1's ``find_stream_list(ID)``).

:class:`SharedPlatform` owns the physical resources every enclave
contends for — the EPC frame pool, the CLOCK evictor, the exclusive
load channel, and the service-thread schedule — and routes hardware
events back to the owning enclave's driver:

* completed loads are applied by the *loading* enclave's driver;
* eviction bookkeeping (preload credits, evicted-unused counts) goes
  to the *victim page's* owner — under contention the CLOCK victim is
  frequently another enclave's page;
* the periodic scan runs once globally (it is one kernel thread), and
  credits/valve checks are routed per enclave.

A single-enclave driver constructs a private platform transparently,
so the common case is unchanged.  Page numbering is global: each
registered enclave occupies the disjoint range
``[base_page, base_page + elrange_pages)``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.config import SimConfig
from repro.enclave.epc import (
    PAGE_ACCESSED,
    PAGE_PRELOADED,
    PAGE_RESIDENT,
    Epc,
)
from repro.enclave.eviction import ClockEvictor
from repro.enclave.loader import LoadChannel, LoadKind
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.enclave.driver import SgxDriver

__all__ = [
    "AdaptiveQuotaFrames",
    "FrameManager",
    "SharedPlatform",
    "StaticPartitionFrames",
]

#: An accessed page with a pending preload credit: the byte the scan
#: counts per owner range to credit correct preloads.
_PAGE_CREDITED = PAGE_RESIDENT | PAGE_ACCESSED | PAGE_PRELOADED

#: Scan-aging byte translation: one C-level pass over the status table
#: clears every accessed bit, and for accessed+preloaded pages the
#: preloaded bit too (the credit was just taken); absent, clean and
#: untouched-preloaded pages pass through unchanged.
_SCAN_AGING = bytes(
    PAGE_RESIDENT if code & PAGE_ACCESSED else code for code in range(8)
) + bytes(range(8, 256))


class SharedPlatform:
    """The physical SGX resources shared by one or more enclaves."""

    def __init__(self, config: SimConfig) -> None:
        self._config = config
        self.epc = Epc(config.epc_pages)
        self.evictor = ClockEvictor(self.epc)
        self.channel = LoadChannel(
            config.cost.page_load_cycles,
            self._on_load,
            evict_cycles=config.cost.ewb_cycles,
        )
        # (base, limit, driver), sorted by base; ``_bases`` is the
        # parallel sorted key array ``owner_of`` bisects over — the
        # lookup runs on every cross-enclave eviction and every load
        # completion, so it must not scan linearly over the fleet.
        self._owners: List[Tuple[int, int, "SgxDriver"]] = []
        self._bases: List[int] = []
        self._next_scan = config.scan_period_cycles
        self._last_now = 0
        #: Optional per-tenant frame policy (:class:`FrameManager`).
        #: ``None`` — the default for every solo run and the legacy
        #: shared path — keeps the single shared CLOCK over the whole
        #: EPC, and the driver's eviction fast path stays byte-for-byte
        #: what it was.  The fleet simulator installs a partitioned or
        #: adaptive manager before admitting tenants.
        self.frames: Optional["FrameManager"] = None

    # ------------------------------------------------------------------
    # Registration and routing
    # ------------------------------------------------------------------

    def register(self, driver: "SgxDriver") -> None:
        """Attach a driver; its enclave's page range must be disjoint."""
        enclave = driver.enclave
        base = enclave.base_page
        limit = base + enclave.elrange_pages
        for lo, hi, _d in self._owners:
            if base < hi and lo < limit:
                raise SimulationError(
                    f"enclave {enclave.name!r} pages [{base}, {limit}) overlap "
                    f"an already-registered enclave's [{lo}, {hi})"
                )
        self._owners.append((base, limit, driver))
        self._owners.sort(key=lambda item: item[0])
        self._bases = [lo for lo, _hi, _d in self._owners]
        # Cover the enclave's page range in the status table up front
        # so the per-access hot paths can index it unconditionally.
        self.epc.ensure_page_span(limit)

    def owner_of(self, page: int) -> Optional["SgxDriver"]:
        """The driver whose enclave owns ``page`` (None if unowned).

        Ranges are disjoint and sorted, so the candidate is the last
        range starting at or below ``page`` — one bisect, not a scan
        over every registered enclave.
        """
        index = bisect_right(self._bases, page) - 1
        if index >= 0:
            lo, hi, driver = self._owners[index]
            if lo <= page < hi:
                return driver
        return None

    @property
    def drivers(self) -> Tuple["SgxDriver", ...]:
        """Registered drivers, in page-range order."""
        return tuple(driver for _lo, _hi, driver in self._owners)

    # ------------------------------------------------------------------
    # Hardware callbacks
    # ------------------------------------------------------------------

    def _on_load(self, page: int, kind: LoadKind, finish: int) -> bool:
        """Channel callback: route the landing to the owning driver."""
        owner = self.owner_of(page)
        if owner is None:
            raise SimulationError(f"load completed for unowned page {page}")
        return owner._apply_load(page, kind, finish)

    # ------------------------------------------------------------------
    # The service thread (one kernel thread, global schedule)
    # ------------------------------------------------------------------

    def next_wakeup(self) -> int:
        """Earliest future time at which background state can change.

        The minimum of the next service-thread scan deadline and the
        next load-channel completion: strictly before this horizon a
        ``poll`` is a no-op — no page can land, no victim can be
        evicted, no accessed bit can be cleared, no valve can fire.
        The batched engine retires whole runs of resident accesses
        whose times fall strictly inside the horizon without polling.

        The batched engine calls this once per retired run, so the
        channel's :meth:`~repro.enclave.loader.LoadChannel.next_completion`
        logic is inlined here (same expression over the same state) —
        an idle channel, the overwhelmingly common case under schemes
        without preloading, costs two attribute reads instead of a
        second method call.
        """
        horizon = self._next_scan
        channel = self.channel
        current = channel._current
        if current is not None:
            if current[2] < horizon:
                return current[2]
        elif channel._queue:
            completion = channel._free_at + channel._load_cycles
            if completion < horizon:
                return completion
        return horizon

    def poll(self, now: int) -> None:
        """Advance scans and the channel to ``now`` (global time)."""
        if now < self._last_now:
            # Multi-enclave simulation processes apps by event start
            # time; an app can observe the platform slightly behind
            # another app's completion.  The platform itself only ever
            # moves forward.
            now = self._last_now
        self._last_now = now
        while self._next_scan <= now:
            scan_time = self._next_scan
            self.channel.advance_to(scan_time)
            self._scan(scan_time)
            self._next_scan += self._config.scan_period_cycles
        self.channel.advance_to(now)

    def _scan(self, now: int) -> None:
        """One global scan: age access bits, credit preloads per owner,
        then let each enclave's valve react.

        Runs at C speed over the status table: each owner's credit is
        a byte count over its page range (an accessed+preloaded page is
        exactly one ``RESIDENT|ACCESSED|PRELOADED`` byte), then a
        single translation pass clears every accessed bit.  Ranges are
        disjoint and non-resident bytes are ``PAGE_ABSENT``, so this
        is equivalent to the per-resident-page walk it replaces.
        """
        status = self.epc.status_table
        owners = self._owners
        if len(owners) == 1:
            credits = (status.count(_PAGE_CREDITED),)
        else:
            credits = tuple(
                status.count(_PAGE_CREDITED, lo, hi)
                for lo, hi, _driver in owners
            )
        status[:] = status.translate(_SCAN_AGING)
        for (_lo, _hi, driver), credited in zip(owners, credits):
            driver._after_scan(now, credited)


class _TenantFrames:
    """Per-tenant frame-accounting record kept by a :class:`FrameManager`.

    One CLOCK ring per tenant (sized to its ELRANGE — the most of its
    pages that can ever be resident), the live resident count, the
    current quota, and the admission state.  The record outlives the
    tenant: a departed enclave's pages stay resident until demand
    reclaims them, so the ring and count must keep tracking them.
    """

    __slots__ = ("driver", "evictor", "resident", "quota", "active", "fault_mark")

    def __init__(self, driver: "SgxDriver", evictor: ClockEvictor) -> None:
        self.driver = driver
        self.evictor = evictor
        self.resident = 0
        self.quota = 0
        self.active = False
        # Fault count at the last adaptive rebalance (signal baseline).
        self.fault_mark = 0


class FrameManager:
    """Pluggable per-tenant EPC frame policy for a shared platform.

    The paper's shared-EPC experiment (§5.6) runs one global CLOCK over
    the whole frame pool — any enclave's load can evict any enclave's
    page.  A fleet operator has two other classic options: *static
    partitioning* (every admitted tenant gets an equal, private slice)
    and *adaptive quotas* (slices resized from live fault-rate
    signals).  Both need per-tenant frame accounting, which is what
    this hierarchy provides; the shared-CLOCK default needs none and is
    represented by ``platform.frames is None``.

    The driver consults the installed manager at its one eviction
    decision point (``SgxDriver._apply_load``):

    * :meth:`needs_victim` — must a frame be freed before ``driver``
      may insert a page?
    * :meth:`select_victim` — choose the victim page (CLOCK within the
      chosen tenant's own ring);
    * :meth:`note_insert` / :meth:`note_evict` — keep the rings and
      resident counts consistent with the EPC.

    The fleet loop drives the admission side: :meth:`on_admit` /
    :meth:`on_depart` recompute quotas as tenants come and go.
    """

    def __init__(self, platform: SharedPlatform) -> None:
        self._platform = platform
        self._epc = platform.epc
        self._tenants: Dict[int, _TenantFrames] = {}  # keyed by base page
        self._order: List[int] = []  # admission-stable base order

    # -- policy identity -------------------------------------------------

    name = "frame-manager"

    # -- admission lifecycle --------------------------------------------

    def on_admit(self, driver: "SgxDriver") -> None:
        """Register an admitted tenant and recompute quotas."""
        base = driver.enclave.base_page
        state = self._tenants.get(base)
        if state is None:
            state = _TenantFrames(
                driver,
                ClockEvictor(self._epc, capacity=driver.enclave.elrange_pages),
            )
            self._tenants[base] = state
            self._order.append(base)
            self._order.sort()
        state.active = True
        self._rebalance_quotas()

    def on_depart(self, driver: "SgxDriver") -> None:
        """Mark a tenant departed; its pages drain under demand.

        The record is kept (resident pages of a dead enclave remain in
        the EPC until reclaimed), but its quota drops to zero so the
        most-over-quota victim search drains it first.
        """
        state = self._tenants[driver.enclave.base_page]
        state.active = False
        state.quota = 0
        self._rebalance_quotas()

    # -- eviction decision point (driver hot path) ----------------------

    def needs_victim(self, driver: "SgxDriver") -> bool:
        """Must a frame be freed before ``driver`` inserts a page?

        A tenant at quota zero with nothing resident (a departed
        enclave whose in-flight preload completes late) cannot free a
        frame of its own; with spare EPC capacity its insert proceeds
        and the page drains through the over-quota search later.
        """
        if self._epc.is_full:
            return True
        state = self._tenants[driver.enclave.base_page]
        return state.resident >= state.quota and state.resident > 0

    def select_victim(self, driver: "SgxDriver") -> int:
        """Choose the victim page for an insert by ``driver``.

        A globally full EPC reclaims from the most-over-quota tenant
        (departed tenants, at quota zero, drain first; ties break on
        the lowest base page).  Otherwise the inserting tenant is over
        its own quota and evicts within its own partition — the whole
        point of partitioning: one tenant's thrashing cannot disturb a
        neighbour's resident set.
        """
        state = self._tenants[driver.enclave.base_page]
        if self._epc.is_full:
            worst = None
            worst_over = None
            for base in self._order:
                candidate = self._tenants[base]
                if candidate.resident <= 0:
                    continue
                over = candidate.resident - candidate.quota
                if worst_over is None or over > worst_over:
                    worst = candidate
                    worst_over = over
            if worst is None:
                raise SimulationError(
                    "EPC full but no tenant has resident pages to reclaim"
                )
            return worst.evictor.select_victim()
        return state.evictor.select_victim()

    def note_insert(self, driver: "SgxDriver", page: int) -> None:
        """A page of ``driver`` just landed in the EPC."""
        state = self._tenants[driver.enclave.base_page]
        state.evictor.note_insert(page)
        state.resident += 1

    def note_evict(self, page: int) -> None:
        """A page was just evicted; route bookkeeping to its owner."""
        owner = self._platform.owner_of(page)
        if owner is None:
            raise SimulationError(f"evicted unowned page {page}")
        state = self._tenants[owner.enclave.base_page]
        state.evictor.note_evict(page)
        state.resident -= 1

    @property
    def second_chances(self) -> int:
        """Total CLOCK second chances granted across all tenant rings."""
        return sum(self._tenants[b].evictor.second_chances for b in self._order)

    # -- introspection ---------------------------------------------------

    def quota_of(self, driver: "SgxDriver") -> int:
        """Current frame quota of one tenant (0 if never admitted)."""
        state = self._tenants.get(driver.enclave.base_page)
        return state.quota if state is not None else 0

    def resident_of(self, driver: "SgxDriver") -> int:
        """Current resident frame count of one tenant."""
        state = self._tenants.get(driver.enclave.base_page)
        return state.resident if state is not None else 0

    # -- quota computation ----------------------------------------------

    def _active_states(self) -> List[_TenantFrames]:
        return [
            self._tenants[base]
            for base in self._order
            if self._tenants[base].active
        ]

    def _rebalance_quotas(self) -> None:
        raise NotImplementedError

    def _distribute(
        self, states: List[_TenantFrames], weights: List[int], floor: int
    ) -> None:
        """Assign ``capacity`` frames by weight with a per-tenant floor.

        Largest-remainder apportionment with ties broken by position —
        pure integer arithmetic, so the same signals always produce the
        same quotas.  Quotas never exceed a tenant's ELRANGE (frames it
        could never use are left to the others).
        """
        if not states:
            return
        capacity = self._epc.capacity
        if len(states) > capacity:
            raise SimulationError(
                f"{len(states)} admitted tenants exceed the {capacity}-frame "
                "EPC: a partitioned policy cannot give everyone a frame"
            )
        floor = max(1, min(floor, capacity // len(states)))
        spare = capacity - floor * len(states)
        total_weight = sum(weights)
        shares = [
            floor + (spare * weight) // total_weight if total_weight else floor
            for weight in weights
        ]
        leftover = capacity - sum(shares)
        if total_weight and leftover:
            remainders = sorted(
                range(len(states)),
                key=lambda i: (-((spare * weights[i]) % total_weight), i),
            )
            for i in remainders[:leftover]:
                shares[i] += 1
        for state, share in zip(states, shares):
            state.quota = min(share, state.driver.enclave.elrange_pages)


class StaticPartitionFrames(FrameManager):
    """Equal static partition: the EPC is split evenly among admitted
    tenants, recomputed only at admission and departure."""

    name = "static-partition"

    def _rebalance_quotas(self) -> None:
        states = self._active_states()
        self._distribute(states, [1] * len(states), self._epc.capacity)


class AdaptiveQuotaFrames(FrameManager):
    """Adaptive per-tenant quotas resized from live fault-rate signals.

    Between rebalances the policy behaves like a static partition.  At
    each :meth:`rebalance` tick (the fleet loop schedules them on a
    fixed virtual-cycle period) every tenant's demand-fault count since
    the previous tick becomes its weight — plus one, so an idle tenant
    keeps a floor share — and the frame pool is re-apportioned
    proportionally.  Tenants thrashing hardest get more frames; quiet
    tenants shrink toward the floor and their surplus pages drain
    through the most-over-quota victim search.
    """

    name = "adaptive-quota"

    def __init__(self, platform: SharedPlatform, *, min_quota: int = 8) -> None:
        super().__init__(platform)
        if min_quota < 1:
            raise SimulationError(f"min_quota must be >= 1, got {min_quota}")
        self._min_quota = min_quota
        #: Rebalance passes performed (fleet telemetry).
        self.rebalances = 0

    def _rebalance_quotas(self) -> None:
        # Admission/departure: equal shares with the configured floor;
        # fault signals only apply at explicit rebalance() ticks.
        states = self._active_states()
        self._distribute(states, [1] * len(states), self._min_quota)

    def rebalance(self, now: int) -> None:
        """Re-apportion quotas from each tenant's recent fault count."""
        del now  # deterministic virtual-time tick; kept for symmetry
        states = self._active_states()
        if not states:
            return
        weights = []
        for state in states:
            faults = state.driver.stats.faults
            weights.append(faults - state.fault_mark + 1)
            state.fault_mark = faults
        self._distribute(states, weights, self._min_quota)
        self.rebalances += 1
