"""Memory-size and cycle-count unit helpers.

Everything in the simulator is denominated in two base units:

* **pages** — 4 KiB enclave pages, the granularity at which the SGX EPC
  (Enclave Page Cache) is managed and the granularity at which page-fault
  addresses are exposed to the untrusted OS (SGX clears the bottom 12 bits
  of a faulting address before reporting it).
* **cycles** — CPU clock cycles, the unit in which the paper reports every
  cost (AEX ~10,000; ELDU/ELDB ~44,000; ERESUME ~10,000; regular page
  fault ~2,000).

This module provides the constants and conversions used across the
library so that call sites never multiply raw byte counts inline.
"""

from __future__ import annotations

__all__ = [
    "PAGE_SIZE",
    "PAGE_SHIFT",
    "KIB",
    "MIB",
    "GIB",
    "EPC_TOTAL_BYTES",
    "EPC_USABLE_BYTES",
    "pages_of",
    "bytes_of",
    "page_number",
    "cycles_to_seconds",
]

#: Size of one enclave page in bytes.  SGX manages the EPC at 4 KiB
#: granularity; this is fixed by the architecture, not configurable.
PAGE_SIZE = 4096

#: Number of low address bits cleared by SGX when reporting a fault.
PAGE_SHIFT = 12

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Total physical EPC reserved by BIOS on the paper's platform.
EPC_TOTAL_BYTES = 128 * MIB

#: EPC usable by applications after enclave metadata (~96 MB, Section 1).
EPC_USABLE_BYTES = 96 * MIB


def pages_of(nbytes: int) -> int:
    """Return the number of 4 KiB pages needed to hold ``nbytes`` bytes.

    Rounds up, so any non-zero byte count occupies at least one page.

    >>> pages_of(1)
    1
    >>> pages_of(PAGE_SIZE)
    1
    >>> pages_of(PAGE_SIZE + 1)
    2
    """
    if nbytes < 0:
        raise ValueError(f"byte count must be non-negative, got {nbytes}")
    return (nbytes + PAGE_SIZE - 1) >> PAGE_SHIFT


def bytes_of(npages: int) -> int:
    """Return the byte size of ``npages`` 4 KiB pages."""
    if npages < 0:
        raise ValueError(f"page count must be non-negative, got {npages}")
    return npages << PAGE_SHIFT


def page_number(address: int) -> int:
    """Return the page number containing byte ``address``.

    This mirrors what the SGX hardware exposes to the OS on a fault:
    the bottom :data:`PAGE_SHIFT` bits are discarded.
    """
    if address < 0:
        raise ValueError(f"address must be non-negative, got {address}")
    return address >> PAGE_SHIFT


def cycles_to_seconds(cycles: int, ghz: float = 3.5) -> float:
    """Convert a cycle count to wall seconds at ``ghz`` GHz.

    The paper's platform is a Xeon E3-1240 v5 at 3.5 GHz; that is the
    default so reports can quote human-readable times.
    """
    if ghz <= 0:
        raise ValueError(f"clock frequency must be positive, got {ghz}")
    return cycles / (ghz * 1e9)
