"""Plain-text rendering of paper-style tables and charts.

Every benchmark target prints what the corresponding paper table or
figure shows: rows of a table, or series of (x, y) points rendered as
an ASCII bar/line chart.  Keeping rendering here (rather than in the
benches) makes the examples reusable and the benches short.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple

from repro.errors import SimulationError

__all__ = ["format_table", "ascii_bar_chart", "render_series"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an aligned plain-text table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise SimulationError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def ascii_bar_chart(
    entries: Mapping[str, float],
    *,
    title: str = "",
    width: int = 48,
    reference: "float | None" = None,
) -> str:
    """Horizontal bar chart of label → value.

    With ``reference`` set (e.g. 1.0 for normalized times), a marker
    column shows where the reference falls so above/below is readable
    at a glance.
    """
    if not entries:
        raise SimulationError("cannot chart an empty mapping")
    if width <= 0:
        raise SimulationError(f"width must be positive, got {width}")
    max_value = max(max(entries.values()), reference or 0.0)
    if max_value <= 0:
        max_value = 1.0
    label_w = max(len(k) for k in entries)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in entries.items():
        bar = "#" * max(0, round(value / max_value * width))
        line = f"{label.ljust(label_w)} |{bar.ljust(width)}| {value:.3f}"
        if reference is not None:
            mark = round(reference / max_value * width)
            chars = list(line)
            pos = label_w + 2 + mark
            if 0 <= pos < len(chars) and chars[pos] not in "|":
                chars[pos] = "+" if chars[pos] == "#" else "."
            line = "".join(chars)
        lines.append(line)
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Sequence[Tuple[object, float]]],
    *,
    title: str = "",
    value_format: str = "{:.3f}",
) -> str:
    """Render named (x, y) series as an aligned matrix.

    All series must share the same x values (the sweep labels); the
    output is one row per x with one column per series — the exact
    data grid behind a line plot like Figure 6 or Figure 7.
    """
    if not series:
        raise SimulationError("cannot render an empty series mapping")
    names = list(series)
    xs = [x for x, _y in series[names[0]]]
    for name in names[1:]:
        other = [x for x, _y in series[name]]
        if other != xs:
            raise SimulationError(
                f"series {name!r} has different x values than {names[0]!r}"
            )
    headers = ["x"] + names
    rows: List[List[object]] = []
    for i, x in enumerate(xs):
        row: List[object] = [x]
        for name in names:
            row.append(value_format.format(series[name][i][1]))
        rows.append(row)
    return format_table(headers, rows, title=title)
